"""Legacy setup shim: the sandbox's setuptools predates PEP 660 editable
wheels, so ``pip install -e .`` needs the classic ``setup.py develop``
path.  All real metadata lives in pyproject.toml."""

from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
