"""Tests for the parametric scenario topology generators."""

import pytest

from repro.net.topology import Topology
from repro.scenarios.generators import (
    GENERATORS,
    fat_tree,
    grid2d,
    harary,
    jellyfish,
    parse_topology,
    ring,
)


# -- bridge detection (the net-layer primitive the generators rely on) -------


def _path(n):
    topo = Topology()
    names = [f"p{i}" for i in range(n)]
    for name in names:
        topo.add_switch(name)
    for a, b in zip(names, names[1:]):
        topo.add_link(a, b)
    return topo, names


def test_bridges_on_path_graph():
    topo, names = _path(4)
    assert topo.bridges() == [tuple(sorted(e)) for e in zip(names, names[1:])]
    assert not topo.two_edge_connected()


def test_bridges_on_cycle_is_empty():
    topo = ring(6)
    assert topo.bridges() == []
    assert topo.two_edge_connected()


def test_bridge_between_two_cycles():
    """Two triangles joined by one edge: exactly that edge is a bridge."""
    topo = Topology()
    for name in ["a0", "a1", "a2", "b0", "b1", "b2"]:
        topo.add_switch(name)
    for u, v in [("a0", "a1"), ("a1", "a2"), ("a2", "a0"),
                 ("b0", "b1"), ("b1", "b2"), ("b2", "b0")]:
        topo.add_link(u, v)
    topo.add_link("a0", "b0")
    assert topo.bridges() == [("a0", "b0")]
    assert not topo.two_edge_connected()


def test_bridges_agree_with_edge_connectivity():
    for builder in (lambda: ring(7), lambda: grid2d(3, 3), lambda: fat_tree(4)):
        topo = builder()
        assert topo.two_edge_connected() == (topo.edge_connectivity() >= 2)


def test_two_edge_connected_needs_two_nodes():
    topo = Topology()
    topo.add_switch("only")
    assert not topo.two_edge_connected()


# -- generator node counts and 2-edge-connectivity ---------------------------


@pytest.mark.parametrize("k,expected", [(4, 20), (6, 45)])
def test_fat_tree_node_count_and_resilience(k, expected):
    topo = fat_tree(k)
    assert len(topo.switches) == expected  # 5k²/4
    assert topo.two_edge_connected()


def test_fat_tree_rejects_odd_or_small_arity():
    with pytest.raises(ValueError):
        fat_tree(3)
    with pytest.raises(ValueError):
        fat_tree(2)


@pytest.mark.parametrize("n,degree", [(8, 3), (20, 3), (15, 4)])
def test_jellyfish_node_count_degree_and_resilience(n, degree):
    topo = jellyfish(n, degree, seed=0)
    assert len(topo.switches) == n
    assert all(topo.degree(s) == degree for s in topo.switches)
    assert topo.two_edge_connected()


def test_jellyfish_deterministic_in_seed():
    assert jellyfish(12, 3, seed=5).links == jellyfish(12, 3, seed=5).links
    assert jellyfish(12, 3, seed=5).links != jellyfish(12, 3, seed=6).links


def test_jellyfish_rejects_bad_parameters():
    with pytest.raises(ValueError):
        jellyfish(9, 3)  # odd stub count
    with pytest.raises(ValueError):
        jellyfish(3, 3)  # n <= degree
    with pytest.raises(ValueError):
        jellyfish(10, 2)  # degree < 3


@pytest.mark.parametrize("n", [3, 6, 16])
def test_ring_node_count_and_resilience(n):
    topo = ring(n)
    assert len(topo.switches) == n
    assert len(topo.links) == n
    assert topo.two_edge_connected()


def test_ring_rejects_tiny():
    with pytest.raises(ValueError):
        ring(2)


@pytest.mark.parametrize("rows,cols", [(2, 2), (3, 4), (5, 2)])
def test_grid_node_count_and_resilience(rows, cols):
    topo = grid2d(rows, cols)
    assert len(topo.switches) == rows * cols
    assert topo.two_edge_connected()


def test_grid_rejects_one_dimensional():
    with pytest.raises(ValueError):
        grid2d(1, 5)


# -- spec parsing ------------------------------------------------------------


def test_parse_topology_parametric_forms():
    assert len(parse_topology("fattree:4").switches) == 20
    assert len(parse_topology("fat-tree:4").switches) == 20
    assert len(parse_topology("jellyfish:20").switches) == 20
    assert len(parse_topology("jellyfish:20x4").switches) == 20
    assert len(parse_topology("ring:16").switches) == 16
    assert len(parse_topology("grid:4x5").switches) == 20


def test_parse_topology_table8_names():
    assert len(parse_topology("B4").switches) == 12
    assert len(parse_topology("Clos").switches) == 20


def test_parse_topology_seed_only_affects_randomized_families():
    assert parse_topology("ring:8", seed=0).links == parse_topology("ring:8", seed=9).links
    assert (
        parse_topology("jellyfish:12", seed=0).links
        != parse_topology("jellyfish:12", seed=9).links
    )


@pytest.mark.parametrize("bad", ["nope", "jellyfish", "ring:x", "grid:4", "fattree:4x4"])
def test_parse_topology_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        parse_topology(bad)


def test_generator_registry_covers_all_families():
    assert set(GENERATORS) == {"fattree", "jellyfish", "ring", "grid", "harary"}


def test_parse_topology_dispatches_through_the_registry():
    """Regression: parse_topology must resolve families via GENERATORS,
    not a hardcoded chain, so new registrations are picked up (and a
    family missing from the table errors instead of falling through)."""
    from repro.scenarios import generators as g

    marker = g.ring(5)
    g.GENERATORS["probe"] = (lambda arg, seed: marker, "probe:X")
    try:
        assert g.parse_topology("probe:anything") is marker
    finally:
        del g.GENERATORS["probe"]


@pytest.mark.parametrize("n,k", [(6, 2), (10, 3), (12, 4)])
def test_harary_node_count_and_resilience(n, k):
    topo = harary(n, k, seed=0)
    assert len(topo.switches) == n
    assert topo.two_edge_connected()
    assert topo.edge_connectivity() >= min(k, 2)


def test_parse_harary_spec():
    topo = parse_topology("harary:10x3", seed=2)
    assert len(topo.switches) == 10
    with pytest.raises(ValueError):
        parse_topology("harary:10")  # needs NxK
