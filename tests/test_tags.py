"""Unit tests for the bounded unique-tag generator (Section 4.2)."""

import pytest

from repro.core.tags import Tag, TagGenerator, DELTA_SYNCH


def test_tags_unique_in_sequence():
    gen = TagGenerator("c0", domain=64)
    tags = [gen.next_tag() for _ in range(50)]
    assert len(set(tags)) == 50


def test_tag_owner_recorded():
    gen = TagGenerator("c7", domain=64)
    assert gen.next_tag().owner == "c7"


def test_observed_tags_skipped():
    gen = TagGenerator("c0", domain=8)
    observed = [Tag("c0", v) for v in (1, 2, 3)]
    tag = gen.next_tag(observed=observed)
    assert tag.value not in (1, 2, 3)


def test_other_owners_tags_do_not_block():
    gen = TagGenerator("c0", domain=8, start=0)
    observed = [Tag("c1", 1)]
    tag = gen.next_tag(observed=observed)
    assert tag.value == 1  # c1's value 1 is irrelevant to c0


def test_wraps_around_domain():
    gen = TagGenerator("c0", domain=8, start=6)
    values = [gen.next_tag().value for _ in range(4)]
    assert values == [7, 0, 1, 2]


def test_exhausted_domain_raises():
    gen = TagGenerator("c0", domain=8)
    observed = [Tag("c0", v) for v in range(8)]
    with pytest.raises(RuntimeError):
        gen.next_tag(observed=observed)


def test_corruption_does_not_break_uniqueness():
    """Self-stabilization: after corrupting the counter, fresh tags still
    avoid everything observed as live."""
    gen = TagGenerator("c0", domain=16)
    live = [gen.next_tag() for _ in range(3)]
    gen.corrupt(live[0].value)  # counter points at a live tag
    fresh = gen.next_tag(observed=live)
    assert fresh not in live


def test_tiny_domain_rejected():
    with pytest.raises(ValueError):
        TagGenerator("c0", domain=2)


def test_tag_equality_by_value():
    assert Tag("c0", 5) == Tag("c0", 5)
    assert Tag("c0", 5) != Tag("c1", 5)
    assert Tag("c0", 5) != Tag("c0", 6)


def test_delta_synch_is_small_constant():
    assert 1 <= DELTA_SYNCH <= 5
