"""Property-based self-stabilization tests (seeded generate-and-shrink).

The paper's headline claim is convergence to a legitimate configuration
from *any* initial state.  The harness in :mod:`repro.adversary.harness`
generates random ``(topology, corruption, scheduler, seed)`` tuples
across every topology family, corruption strategy, and bounded
adversarial delivery scheduler, checks that each stabilizes within the
bounded horizon, and on failure shrinks to (and prints) a minimal
reproducing tuple.
"""

import pytest

from repro.adversary import harness
from repro.adversary.corruptions import CORRUPTIONS
from repro.adversary.harness import (
    SCHEDULER_POOL,
    StabilizationCase,
    check_stabilization_case,
    generate_stabilization_cases,
    run_stabilization_property,
    shrink_stabilization_case,
)


def test_generate_cases_deterministic_and_diverse():
    a = generate_stabilization_cases(64, base_seed=0)
    assert a == generate_stabilization_cases(64, base_seed=0)
    assert a != generate_stabilization_cases(64, base_seed=1)
    assert {case.corruption for case in a} == set(CORRUPTIONS)
    assert {case.scheduler for case in a} == set(SCHEDULER_POOL)
    families = {case.topology.split(":")[0] for case in a}
    assert families == {"ring", "grid", "jellyfish", "harary", "fattree"}


def test_stabilization_property_25_cases():
    """Acceptance: ≥ 25 generated corruption-axis cases in tier-1.  Any
    failure prints the reproducing (topology, corruption, scheduler,
    seed) tuple."""
    report = run_stabilization_property(25, base_seed=0)
    assert report.ok, f"non-stabilizing cases: {report.failures}"
    assert len(report.stabilization_times) == 25
    assert all(t >= 0.0 for t in report.stabilization_times)


def test_regression_phantom_reply_livelock():
    """Regression: a fabricated in-flight reply claiming adjacency to live
    switches used to livelock a controller permanently (the round waited
    forever on a node whose route ran through the phantom, and the
    phantom entry — stamped with the live round tag — was never pruned).
    Fixed by the bounded round refresh."""
    case = StabilizationCase("fattree:4", "mixed", "none", seed=0)
    assert check_stabilization_case(case) is not None


def test_regression_slow_reply_rule_flap():
    """Regression: with reply round-trips stretched past the iteration
    period (max-delay scheduler on a high-diameter ring), planning rules
    from the literal current-round snapshot tore down in-flight nodes'
    flows in a permanent limit cycle.  Fixed by the corroborated-fusion
    reference view (robust_views)."""
    case = StabilizationCase("ring:16", "garbage-rules", "max-delay", seed=312990)
    assert check_stabilization_case(case) is not None


def test_shrink_prefers_smaller_topologies(monkeypatch):
    case = StabilizationCase("ring:10", "mixed", "none", seed=2)

    def fake_check(c):
        return None if c.topology.startswith("ring") else 0.5

    monkeypatch.setattr(harness, "check_stabilization_case", fake_check)
    shrunk = shrink_stabilization_case(case)
    assert shrunk.topology == "ring:5"


def test_shrink_drops_scheduler_and_composite_corruption(monkeypatch):
    """An oracle failing on everything shrinks to the benign scheduler
    and the first atomic corruption."""
    case = StabilizationCase("grid:2x3", "mixed", "extremes", seed=3)
    monkeypatch.setattr(harness, "check_stabilization_case", lambda c: None)
    shrunk = shrink_stabilization_case(case)
    assert shrunk.scheduler == "none"
    assert shrunk.corruption != "mixed"


def test_shrink_keeps_scheduler_when_it_is_essential(monkeypatch):
    """If the failure needs the scheduler, shrinking must not drop it."""
    case = StabilizationCase("grid:2x3", "desync-views", "max-delay", seed=4)

    def fake_check(c):
        return None if c.scheduler == "max-delay" else 0.5

    monkeypatch.setattr(harness, "check_stabilization_case", fake_check)
    shrunk = shrink_stabilization_case(case)
    assert shrunk.scheduler == "max-delay"


def test_repro_line_is_copy_pastable():
    case = StabilizationCase("grid:2x3", "desync-views", "reorder", seed=77)
    line = case.repro_line()
    assert "grid:2x3" in line and "desync-views" in line and "77" in line
    assert (
        eval(
            line,
            {
                "check_stabilization_case": check_stabilization_case,
                "StabilizationCase": StabilizationCase,
            },
        )
        is not None
    )


def test_failing_case_reports_tuple(monkeypatch, capsys):
    cases = [StabilizationCase("ring:5", "mixed", "reorder", seed=9)]
    monkeypatch.setattr(
        harness, "generate_stabilization_cases", lambda n, base_seed=0: cases
    )
    monkeypatch.setattr(harness, "check_stabilization_case", lambda c: None)
    monkeypatch.setattr(harness, "shrink_stabilization_case", lambda c: c)
    report = run_stabilization_property(1)
    assert not report.ok
    out = capsys.readouterr().out
    assert "ring:5" in out and "mixed" in out and "reorder" in out and "seed=9" in out
    assert "reproduce:" in out


@pytest.mark.parametrize("corruption", sorted(CORRUPTIONS))
def test_each_corruption_stabilizes_on_a_fixed_small_case(corruption):
    assert (
        check_stabilization_case(
            StabilizationCase("grid:2x3", corruption, "none", seed=13)
        )
        is not None
    )
