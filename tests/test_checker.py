"""Unit tests for LegitimacyChecker conditions with hand-built states."""

from repro.core.config import RenaissanceConfig
from repro.core.controller import RenaissanceController
from repro.core.legitimacy import LegitimacyChecker
from repro.net.topology import Topology
from repro.switch.abstract_switch import AbstractSwitch
from repro.switch.flow_table import Rule


def tiny_world():
    """c0 - s1 - s2 triangle (c0 dual-homed for 2-edge-connectivity)."""
    topo = Topology()
    topo.add_controller("c0")
    topo.add_switch("s1")
    topo.add_switch("s2")
    topo.add_link("c0", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("s2", "c0")
    switches = {
        s: AbstractSwitch(s, alive_neighbors=(lambda n: (lambda: topo.operational_neighbors(n)))(s))
        for s in ("s1", "s2")
    }
    config = RenaissanceConfig.for_network(1, 2)
    controller = RenaissanceController("c0", config, alive_neighbors=lambda: topo.operational_neighbors("c0"))
    checker = LegitimacyChecker(topo, switches, {"c0": controller}, kappa=1)
    return topo, switches, controller, checker


def test_live_sets():
    topo, switches, controller, checker = tiny_world()
    assert checker.live_controllers() == ["c0"]
    assert checker.live_switches() == ["s1", "s2"]
    controller.fail_stop()
    assert checker.live_controllers() == []


def test_managers_correct_requires_exact_set():
    topo, switches, _, checker = tiny_world()
    assert not checker.managers_correct()  # nobody registered yet
    switches["s1"].managers.add("c0")
    switches["s2"].managers.add("c0")
    assert checker.managers_correct()
    switches["s2"].managers.add("intruder")
    assert not checker.managers_correct()


def test_no_stale_rules_detects_ghosts():
    topo, switches, _, checker = tiny_world()
    assert checker.no_stale_rules()
    switches["s1"].table.install(
        Rule(cid="ghost", sid="s1", src="ghost", dst="x", priority=1, forward_to="s2")
    )
    assert not checker.no_stale_rules()


def test_flows_operational_via_direct_links():
    topo, switches, _, checker = tiny_world()
    # Both switches are direct neighbours of c0 in the triangle, and
    # s1 <-> s2 is direct too, so zero rules already suffice.
    assert checker.flows_operational()


def test_views_accurate_tracks_controller_view():
    topo, switches, controller, checker = tiny_world()
    assert not checker.views_accurate()  # empty view at start
    # Feed the controller enough replies to complete its view.
    for _ in range(4):
        for dst, batch in controller.iterate():
            if dst in switches:
                reply = switches[dst].handle_batch(batch)
                if reply is not None:
                    controller.on_reply(reply)
    assert checker.views_accurate()


def test_achievable_kappa_degrades_with_connectivity():
    topo, switches, _, checker = tiny_world()
    assert checker._achievable_kappa() == 1  # triangle is 2-edge-connected
    topo.remove_link("s2", "c0")  # now a line: 1-edge-connected
    assert checker._achievable_kappa() == 0


def test_is_legitimate_false_without_controllers():
    topo, switches, controller, checker = tiny_world()
    controller.fail_stop()
    assert not checker.is_legitimate()
