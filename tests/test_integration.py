"""End-to-end integration tests on small networks.

These exercise the full stack — discovery, in-band routing, Algorithm 2,
rule installation, failover — against the paper's claims: bootstrap from
empty configurations, recovery from every benign failure class (Lemmas 7
and 8), and self-stabilization after arbitrary state corruption
(Theorem 2).
"""

import pytest

from repro import build_network, NetworkSimulation, SimulationConfig
from repro.net.topology import Topology
from repro.net.topologies import random_k_connected, attach_controllers
from repro.sim.faults import FaultPlan
from repro.switch.flow_table import Rule


def small_sim(n_controllers=2, seed=1, **config_kw):
    topo = build_network("B4", n_controllers=n_controllers, seed=seed)
    sim = NetworkSimulation(topo, SimulationConfig(seed=seed, **config_kw))
    return sim


def test_bootstrap_b4_reaches_full_legitimacy():
    sim = small_sim()
    t = sim.run_until_legitimate(timeout=120.0)
    assert t is not None
    assert sim.is_legitimate(full=True)


def test_bootstrap_no_illegitimate_deletions():
    """Section 6.4.1: from empty configurations, no controller ever
    performs an illegitimate deletion."""
    sim = small_sim(n_controllers=3)
    assert sim.run_until_legitimate(timeout=120.0) is not None
    assert sim.metrics.illegitimate_deletions == 0


def test_bootstrap_no_c_resets_with_correct_bounds():
    """Lemma 2: with maxReplies >= 2(NC+NS) a legal execution never
    C-resets."""
    sim = small_sim(n_controllers=3)
    assert sim.run_until_legitimate(timeout=120.0) is not None
    assert sim.metrics.c_resets == 0


def test_every_switch_managed_by_every_controller():
    sim = small_sim(n_controllers=3)
    assert sim.run_until_legitimate(timeout=120.0) is not None
    expected = set(sim.topology.controllers)
    for switch in sim.switches.values():
        assert set(switch.managers.members()) == expected


def test_switch_memory_within_lemma1_bound():
    """Lemma 1: rules per switch bounded by the configured maximum."""
    sim = small_sim(n_controllers=3)
    assert sim.run_until_legitimate(timeout=120.0) is not None
    for switch in sim.switches.values():
        assert len(switch.table) <= sim.rena_config.max_rules
        assert switch.table.evictions == 0


def test_recovery_after_controller_failstop():
    sim = small_sim(n_controllers=3)
    assert sim.run_until_legitimate(timeout=120.0) is not None
    victim = sim.topology.controllers[0]
    sim.inject(FaultPlan().fail_node(sim.sim.now + 0.1, victim))
    sim.run_for(0.2)
    t = sim.run_until_legitimate(timeout=120.0)
    assert t is not None
    # The dead controller's rules and manager entries are gone.
    for switch in sim.switches.values():
        assert victim not in switch.managers.members()
        assert switch.table.rules_of(victim) == []


def test_recovery_after_link_removal():
    sim = small_sim(n_controllers=2)
    assert sim.run_until_legitimate(timeout=120.0) is not None
    # Remove a switch-switch link that keeps the graph connected.
    for u, v in sim.topology.links:
        if not sim.topology.is_switch(u) or not sim.topology.is_switch(v):
            continue
        probe = sim.topology.copy()
        probe.remove_link(u, v)
        if probe.connected():
            break
    sim.inject(FaultPlan().remove_link(sim.sim.now + 0.1, u, v))
    sim.run_for(0.2)
    assert sim.run_until_legitimate(timeout=120.0) is not None


def test_recovery_after_switch_removal():
    sim = small_sim(n_controllers=2)
    assert sim.run_until_legitimate(timeout=120.0) is not None
    for victim in sim.topology.switches:
        probe = sim.topology.copy()
        probe.remove_node(victim)
        if probe.connected():
            break
    plan = FaultPlan()
    from repro.sim.faults import FaultAction

    plan.actions.append(FaultAction(sim.sim.now + 0.1, "remove_node", (victim,)))
    sim.inject(plan)
    sim.run_for(0.2)
    assert sim.run_until_legitimate(timeout=120.0) is not None
    for cid in sim.topology.controllers:
        assert victim not in sim.controllers[cid].current_view().nodes


def test_recovery_after_temporary_link_failure():
    """Lemma 7: from a legitimate state, a single link failure within
    κ=1 never breaks forwarding — the failover detours carry traffic
    before the control plane even notices."""
    sim = small_sim(n_controllers=2)
    assert sim.run_until_legitimate(timeout=120.0) is not None
    # Settle to *full* legitimacy (κ-resilient rules everywhere): fast
    # convergence may be declared one round before all detours refresh.
    for _ in range(20):
        if sim.is_legitimate(full=True):
            break
        sim.run_for(1.0)
    assert sim.is_legitimate(full=True)
    u, v = next(
        (u, v)
        for u, v in sim.topology.links
        if sim.topology.is_switch(u) and sim.topology.is_switch(v)
    )
    sim.inject(FaultPlan().fail_link(sim.sim.now + 0.1, u, v))
    sim.run_for(0.2)
    # Even before re-convergence, every controller still reaches every
    # node thanks to the κ-fault-resilient flows.
    assert sim.checker.flows_operational()


def test_controller_recovery_after_failstop_and_return():
    sim = small_sim(n_controllers=2)
    assert sim.run_until_legitimate(timeout=120.0) is not None
    victim = sim.topology.controllers[0]
    sim.inject(FaultPlan().fail_node(sim.sim.now + 0.1, victim))
    sim.run_for(20.0)
    sim.inject(
        FaultPlan().recover_node(sim.sim.now + 0.1, victim), mark_fault_time=False
    )
    sim.run_for(0.2)
    assert sim.run_until_legitimate(timeout=120.0) is not None
    assert sim.is_legitimate(full=False)


def test_self_stabilization_from_corrupted_switch_state():
    """Theorem 2 (empirical): plant garbage rules/managers in every switch
    and verify convergence back to a legitimate state."""
    sim = small_sim(n_controllers=2)
    assert sim.run_until_legitimate(timeout=120.0) is not None
    plan = FaultPlan()
    for i, sid in enumerate(sim.topology.switches):
        garbage = Rule(
            cid="ghost",
            sid=sid,
            src="ghost",
            dst="nowhere",
            priority=7,
            forward_to=sim.topology.neighbors(sid)[0],
        )
        plan.corrupt_switch(sim.sim.now + 0.1, sid, rules=(garbage,), managers=("ghost",))
    sim.inject(plan)
    sim.run_for(0.2)
    t = sim.run_until_legitimate(timeout=120.0)
    assert t is not None
    for switch in sim.switches.values():
        assert "ghost" not in switch.managers.members()
        assert switch.table.rules_of("ghost") == []


def test_self_stabilization_from_cleared_switch_state():
    """Wiping every switch mid-run is a transient fault; the system
    re-bootstraps in-band."""
    sim = small_sim(n_controllers=2)
    assert sim.run_until_legitimate(timeout=120.0) is not None
    plan = FaultPlan()
    for sid in sim.topology.switches:
        plan.corrupt_switch(sim.sim.now + 0.1, sid, clear_first=True)
    sim.inject(plan)
    sim.run_for(0.2)
    assert sim.run_until_legitimate(timeout=180.0) is not None
    assert sim.is_legitimate(full=True)


def test_bootstrap_on_random_topology():
    topo = random_k_connected(14, 2, seed=5, extra_edge_prob=0.1)
    attach_controllers(topo, 2, seed=5)
    sim = NetworkSimulation(topo, SimulationConfig(seed=5))
    assert sim.run_until_legitimate(timeout=120.0) is not None


def test_single_controller_network():
    topo = build_network("Clos", n_controllers=1, seed=2)
    sim = NetworkSimulation(topo, SimulationConfig(seed=2))
    assert sim.run_until_legitimate(timeout=120.0) is not None
    assert sim.is_legitimate(full=True)


def test_unambiguous_rule_tables_after_convergence():
    """Section 2.1's unambiguity requirement, checked operationally."""
    sim = small_sim(n_controllers=2)
    assert sim.run_until_legitimate(timeout=120.0) is not None
    for sid, switch in sim.switches.items():
        usable = sim.topology.operational_neighbors(sid)
        assert switch.table.is_unambiguous(operational=usable), sid
