"""Integration tests for the traffic workloads (Figures 15-20 protocol)."""

import pytest

from repro.net.topologies import b4, telstra
from repro.transport.traffic import (
    FlowMaintainer,
    TrafficRun,
    middle_primary_link,
    place_hosts_at_max_distance,
    standalone_switches,
)
from repro.transport.stats import pearson
from repro.core.legitimacy import forwarding_path


def test_host_placement_at_diameter():
    topo = b4()
    pair = place_hosts_at_max_distance(topo)
    assert pair.distance == topo.diameter()
    assert topo.is_switch(pair.a) and topo.is_switch(pair.b)


def test_middle_link_is_on_primary_and_safe():
    topo = b4()
    pair = place_hosts_at_max_distance(topo)
    u, v = middle_primary_link(topo, pair)
    path = topo.shortest_path(pair.a, pair.b)
    hops = set(zip(path, path[1:])) | set(zip(path[1:], path))
    assert (u, v) in hops
    probe = topo.copy()
    probe.remove_link(u, v)
    assert probe.connected()


def test_flow_maintainer_installs_working_flow():
    topo = b4()
    pair = place_hosts_at_max_distance(topo)
    switches = standalone_switches(topo)
    installed = FlowMaintainer(topo, switches, pair).install()
    assert installed > 0
    assert forwarding_path(topo, switches, pair.a, pair.b) is not None
    assert forwarding_path(topo, switches, pair.b, pair.a) is not None


def test_flow_survives_single_mid_path_failure():
    topo = b4()
    pair = place_hosts_at_max_distance(topo)
    switches = standalone_switches(topo)
    FlowMaintainer(topo, switches, pair).install()
    u, v = middle_primary_link(topo, pair)
    topo.set_link_up(u, v, False)
    assert forwarding_path(topo, switches, pair.a, pair.b) is not None


def test_traffic_run_produces_30_seconds():
    topo = b4()
    pair = place_hosts_at_max_distance(topo)
    stats = TrafficRun(topo, standalone_switches(topo), pair).run()
    assert len(stats.throughput_series()) == 30


def test_traffic_valley_at_failure_second():
    topo = telstra()
    pair = place_hosts_at_max_distance(topo)
    stats = TrafficRun(topo, standalone_switches(topo), pair).run()
    series = stats.throughput_series()
    pre = sum(series[4:9]) / 5
    valley = min(series[9:13])
    post = sum(series[-5:]) / 5
    assert valley < pre * 0.95  # a visible dip
    assert post > pre * 0.9  # full recovery


def test_retransmission_spike_in_paper_band():
    topo = telstra()
    pair = place_hosts_at_max_distance(topo)
    stats = TrafficRun(topo, standalone_switches(topo), pair).run()
    retrans = stats.retransmission_series()
    assert max(retrans[:9]) < 2.0
    assert 5.0 <= max(retrans[9:14]) <= 30.0


def test_recovery_and_norecovery_strongly_correlated():
    """Table 17: the two modes correlate at >= ~0.9."""
    topo1 = telstra()
    pair1 = place_hosts_at_max_distance(topo1)
    with_rec = TrafficRun(topo1, standalone_switches(topo1), pair1, recovery=True).run()
    topo2 = telstra()
    pair2 = place_hosts_at_max_distance(topo2)
    without = TrafficRun(topo2, standalone_switches(topo2), pair2, recovery=False).run()
    r = pearson(with_rec.throughput_series(), without.throughput_series())
    assert r > 0.85


def test_no_recovery_still_flows_via_detours():
    topo = b4()
    pair = place_hosts_at_max_distance(topo)
    switches = standalone_switches(topo)
    stats = TrafficRun(topo, switches, pair, recovery=False).run()
    series = stats.throughput_series()
    assert series[-1] > 300.0  # backup path carries traffic to the end
