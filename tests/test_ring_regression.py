"""Pinned reproduction of the ROADMAP ring-convergence defect.

Scenario campaigns (PR 2) surfaced a latent protocol defect: bootstrap
never converges on larger even rings for some controller placements —
``ring:16`` at seed 0 (3 controllers, Θ = 10) being the smallest known
reproduction.  Views and manager sets converge, but
``LegitimacyChecker.flows_operational()`` stays false: one controller
permanently lacks working in-band paths to a handful of far-side
switches (suspected first-shortest-path tie-breaking vs installed-rule
forwarding on high-diameter even cycles).

The xfail below pins the defect through the public API.  It is *strict*:
the day the defect is fixed, the test XPASSes loudly and the marker (and
the ROADMAP open item) must be removed — progress is visible either way.

The 60-simulated-second budget is generous: healthy ring placements at
these settings bootstrap in well under 20 s (see the sanity check), while
the defective placement is permanently stuck, not slow.
"""

import pytest

from repro.api import Bootstrap, RunPlan


def _ring_bootstrap(spec: str, seed: int, timeout: float = 60.0):
    return (
        RunPlan(spec, controllers=3, seed=seed)
        .configure(theta=10)
        .then(Bootstrap(timeout=timeout))
        .run()
    )


@pytest.mark.xfail(
    reason="ROADMAP defect: ring:16 seed-0 placement never reaches "
    "flows_operational (in-band path tie-breaking on even cycles)",
    strict=True,
)
def test_ring16_seed0_bootstrap_converges():
    result = _ring_bootstrap("ring:16", seed=0)
    assert result.bootstrap_time is not None


def test_ring16_other_placements_converge():
    """Sanity bound for the xfail: the defect is placement-specific, not a
    blanket ring:16 failure — seed 1's placement bootstraps comfortably
    inside the same budget."""
    result = _ring_bootstrap("ring:16", seed=1)
    assert result.bootstrap_time is not None
    assert result.bootstrap_time < 60.0
