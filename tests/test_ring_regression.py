"""Regression coverage for the (fixed) ROADMAP ring-convergence defect.

Scenario campaigns (PR 2) surfaced bootstrap non-convergence on larger
even rings for some controller placements — ``ring:16`` seed 0 and
``ring:20`` seeds 0–1 being the pinned reproductions.  The root cause
was *not* path tie-breaking: ``RenaissanceConfig.for_network`` sized
``max_rules`` as 2·NC·(N−1)·(κ+2), assuming each flow deposits at most
κ+2 rules per switch.  The fast-failover construction installs one
detour per primary-path edge, so on a diameter-D graph a single flow
can deposit up to D+1 rules at one switch; on ring:16 the legitimate
steady-state rule set (~390 rules/switch) exceeded the 327-rule bound.
The clogged-memory LRU eviction then made the three controllers
perpetually evict each other's live rules — ``flows_operational()``
could never hold, a permanent livelock rather than slow convergence.

The fix makes ``for_network`` diameter-aware (the simulation passes the
ground-truth diameter), so the bound covers the worst-case per-flow
footprint.  These tests pin the previously-failing placements as plain
convergence assertions; the 60-simulated-second budget is generous —
healthy ring placements at these settings bootstrap in under 20 s.
"""

import pytest

from repro.api import Bootstrap, RunPlan


def _ring_bootstrap(spec: str, seed: int, timeout: float = 60.0):
    return (
        RunPlan(spec, controllers=3, seed=seed)
        .configure(theta=10)
        .then(Bootstrap(timeout=timeout))
        .run()
    )


@pytest.mark.parametrize(
    "spec,seed",
    [
        ("ring:16", 0),  # smallest known reproduction of the livelock
        ("ring:20", 0),
        ("ring:20", 1),
    ],
)
def test_defective_ring_placements_now_converge(spec, seed):
    result = _ring_bootstrap(spec, seed)
    assert result.bootstrap_time is not None
    assert result.bootstrap_time < 60.0


def test_ring16_other_placements_converge():
    """The defect was placement-specific; the healthy placement must keep
    bootstrapping comfortably inside the same budget after the fix."""
    result = _ring_bootstrap("ring:16", seed=1)
    assert result.bootstrap_time is not None
    assert result.bootstrap_time < 60.0


def test_ring16_rule_bound_covers_steady_state():
    """The repaired bound must hold the full legitimate rule set: no
    evictions may occur on the previously-livelocked placement."""
    plan = RunPlan("ring:16", controllers=3, seed=0).configure(theta=10).then(
        Bootstrap(timeout=60.0)
    )
    session = plan.session()
    result = session.run()
    assert result.bootstrap_time is not None
    for sid, switch in session.sim.switches.items():
        assert switch.table.evictions == 0, f"evictions at {sid}"
        assert len(switch.table) <= session.sim.rena_config.max_rules
