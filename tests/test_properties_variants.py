"""Property tests for reply-store fusion semantics and variant invariants."""

from hypothesis import given, strategies as st

from repro.core.replydb import ReplyDB
from repro.core.tags import Tag
from repro.switch.commands import QueryReply


T1 = Tag("c0", 1)
T2 = Tag("c0", 2)


def reply(node, marker):
    return QueryReply(node=node, neighbors=(marker,), managers=(), rules=())


@given(
    prev_nodes=st.lists(st.integers(0, 8), unique=True, max_size=8),
    curr_nodes=st.lists(st.integers(0, 8), unique=True, max_size=8),
)
def test_fusion_covers_union_and_prefers_current(prev_nodes, curr_nodes):
    db = ReplyDB("c0", max_replies=64)
    for n in prev_nodes:
        db.store(reply(f"s{n}", "old"), T1, current_tag=T1)
    for n in curr_nodes:
        db.store(reply(f"s{n}", "new"), T2, current_tag=T2)
    merged = {r.node: r for r in db.fusion(current=T2, previous=T1)}
    # Union coverage…
    assert set(merged) == {f"s{n}" for n in set(prev_nodes) | set(curr_nodes)}
    # …with current-round replies winning on overlap.
    for n in curr_nodes:
        assert merged[f"s{n}"].neighbors == ("new",)
    for n in set(prev_nodes) - set(curr_nodes):
        assert merged[f"s{n}"].neighbors == ("old",)


@given(
    arrivals=st.lists(
        st.tuples(st.integers(0, 5), st.sampled_from([T1, T2])), max_size=40
    )
)
def test_res_partitions_replydb(arrivals):
    """res(T1) and res(T2) are disjoint and jointly cover the store."""
    db = ReplyDB("c0", max_replies=64)
    for n, tag in arrivals:
        db.store(reply(f"s{n}", "x"), tag, current_tag=tag)
    r1 = {r.node for r in db.res(T1)}
    r2 = {r.node for r in db.res(T2)}
    assert r1.isdisjoint(r2)
    assert r1 | r2 == set(db.nodes())
