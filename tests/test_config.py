"""Unit tests for RenaissanceConfig parameter validation and derivation."""

import pytest

from repro.core.config import RenaissanceConfig


def test_defaults_valid():
    config = RenaissanceConfig()
    assert config.kappa == 1
    assert config.n_priorities == 3


def test_for_network_satisfies_paper_bounds():
    """Section 4.2 / Lemma 1: maxManagers >= NC,
    maxReplies >= 2(NC+NS), maxRules >= NC·(NC+NS-1)·nprt."""
    nc, ns, kappa = 5, 40, 1
    config = RenaissanceConfig.for_network(nc, ns, kappa=kappa)
    assert config.max_managers >= nc
    assert config.max_replies >= 2 * (nc + ns)
    assert config.max_rules >= nc * (nc + ns - 1) * (kappa + 2)


def test_for_network_theta_passthrough():
    config = RenaissanceConfig.for_network(3, 10, theta=30)
    assert config.theta == 30


def test_negative_kappa_rejected():
    with pytest.raises(ValueError):
        RenaissanceConfig(kappa=-1)


def test_bad_memory_bounds_rejected():
    with pytest.raises(ValueError):
        RenaissanceConfig(max_rules=0)
    with pytest.raises(ValueError):
        RenaissanceConfig(max_replies=1)


def test_bad_theta_rejected():
    with pytest.raises(ValueError):
        RenaissanceConfig(theta=0)


def test_tiny_tag_domain_rejected():
    with pytest.raises(ValueError):
        RenaissanceConfig(tag_domain=4)


def test_frozen():
    config = RenaissanceConfig()
    with pytest.raises(Exception):
        config.kappa = 2  # type: ignore[misc]
