"""Unit tests for the TCP Reno model (Figures 15-20 substrate)."""

import pytest

from repro.transport.tcp import RenoConnection, RenoParams
from repro.transport.stats import pearson


def steady_path(hops=8):
    path = [f"s{i}" for i in range(hops + 1)]
    return lambda: list(path)


def test_throughput_reaches_host_limited_plateau():
    conn = RenoConnection(steady_path())
    stats = conn.run(10.0)
    series = stats.throughput_series()
    # After slow start the plateau sits in the paper's 450-550 Mbit/s band.
    plateau = series[3:]
    assert all(440.0 <= x <= 560.0 for x in plateau), plateau


def test_slow_start_ramps_up():
    conn = RenoConnection(steady_path())
    stats = conn.run(5.0)
    series = stats.throughput_series()
    assert series[0] < series[-1]


def test_longer_paths_slightly_slower():
    short = RenoConnection(steady_path(4)).run(10.0).throughput_series()
    long = RenoConnection(steady_path(12)).run(10.0).throughput_series()
    assert sum(short[5:]) > sum(long[5:])


def test_blackhole_stalls_and_recovers():
    state = {"path": [f"s{i}" for i in range(9)], "dead": False}

    def provider():
        return None if state["dead"] else list(state["path"])

    conn = RenoConnection(provider)
    conn.run(5.0)
    state["dead"] = True
    conn.run(2.0)
    state["dead"] = False
    conn.run(5.0)
    series = conn.stats.throughput_series()
    dead_zone = series[5:7]
    assert min(dead_zone) < 100.0  # stalled
    # The final bucket may cover a partial second; check the one before.
    assert series[-2] > 400.0  # recovered


def test_reroute_produces_retransmission_spike():
    state = {"path": [f"s{i}" for i in range(9)]}
    conn = RenoConnection(lambda: list(state["path"]))
    conn.run(10.0)
    state["path"] = ["s0", "x1", "x2", "x3", "s8"]  # failover reroute
    conn.run(10.0)
    retrans = conn.stats.retransmission_series()
    baseline = max(retrans[2:9])
    spike = max(retrans[9:13])
    assert baseline < 2.0
    assert 5.0 <= spike <= 30.0


def test_reroute_produces_out_of_order_bump():
    state = {"path": [f"s{i}" for i in range(9)]}
    conn = RenoConnection(lambda: list(state["path"]))
    conn.run(10.0)
    state["path"] = ["s0", "y1", "y2", "s8"]
    conn.run(10.0)
    ooo = conn.stats.out_of_order_series()
    assert max(ooo[9:13]) > 0.0
    assert max(ooo[9:13]) <= 10.0


def test_bad_tcp_includes_retransmissions():
    state = {"path": [f"s{i}" for i in range(9)]}
    conn = RenoConnection(lambda: list(state["path"]))
    conn.run(10.0)
    state["path"] = ["s0", "y1", "y2", "s8"]
    conn.run(5.0)
    for second in conn.stats.seconds():
        assert second.bad_tcp >= second.retransmissions


def test_baseline_loss_noise_floor_below_one_percent():
    conn = RenoConnection(steady_path(), RenoParams(baseline_loss=0.0005, seed=3))
    stats = conn.run(15.0)
    noise = stats.retransmission_series()[3:]
    assert all(x < 1.5 for x in noise)


def test_deterministic_given_seed():
    a = RenoConnection(steady_path(), RenoParams(seed=9)).run(8.0).throughput_series()
    b = RenoConnection(steady_path(), RenoParams(seed=9)).run(8.0).throughput_series()
    assert a == b


def test_pearson_perfect_correlation():
    assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)


def test_pearson_anti_correlation():
    assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)


def test_pearson_rejects_degenerate():
    import math

    with pytest.raises(ValueError):
        pearson([1.0], [2.0])
    # Zero variance is undefined correlation, not a crash: a flatline
    # series (e.g. a fully stalled transfer) yields NaN.
    assert math.isnan(pearson([1, 1, 1], [1, 2, 3]))
