"""Unit tests for view building and rule generation (myRules)."""

from repro.core.rules import RuleGenerator, build_view
from repro.core.tags import Tag
from repro.net.topology import NodeKind
from repro.switch.commands import QueryReply


def reply(node, neighbors, kind="switch"):
    return QueryReply(
        node=node, neighbors=tuple(neighbors), managers=(), rules=(), kind=kind
    )


T = Tag("c0", 1)
T2 = Tag("c0", 2)


def test_build_view_nodes_and_edges():
    view = build_view("c0", ["s1"], [reply("s1", ["c0", "s2"]), reply("s2", ["s1"])])
    assert set(view.nodes) == {"c0", "s1", "s2"}
    assert ("s1", "s2") in view.links or ("s2", "s1") in view.links
    assert view.has_link("c0", "s1")


def test_build_view_owner_is_controller():
    view = build_view("c0", [], [])
    assert view.is_controller("c0")


def test_build_view_controller_kind_from_reply():
    view = build_view("c0", ["c1"], [reply("c1", ["c0"], kind="controller")])
    assert view.is_controller("c1")


def test_build_view_unknown_nodes_are_switches():
    view = build_view("c0", ["s1"], [reply("s1", ["mystery"])])
    assert view.is_switch("mystery")


def test_build_view_deduplicates_edges():
    view = build_view(
        "c0", ["s1"], [reply("s1", ["s2"]), reply("s2", ["s1"])]
    )
    assert len(view.links) == 2  # c0-s1 and s1-s2 exactly once


def test_rules_for_view_covers_reachable_targets():
    view = build_view(
        "c0",
        ["s1"],
        [reply("s1", ["c0", "s2"]), reply("s2", ["s1", "s3"]), reply("s3", ["s2"])],
    )
    gen = RuleGenerator("c0", kappa=0)
    per_switch = gen.rules_for_view(view, T)
    # Forwarding to s2/s3 requires rules at s1 and s2 at least.
    assert "s1" in per_switch and "s2" in per_switch
    dsts = {r.dst for rules in per_switch.values() for r in rules}
    assert {"s2", "s3"} <= dsts


def test_rules_cached_per_view_and_tag():
    view = build_view("c0", ["s1"], [reply("s1", ["c0", "s2"]), reply("s2", ["s1"])])
    gen = RuleGenerator("c0", kappa=0)
    gen.rules_for_view(view, T)
    gen.rules_for_view(view, T)
    assert gen.computations == 1
    gen.rules_for_view(view, T2)  # new round: recompute
    assert gen.computations == 2


def test_cache_invalidated_on_view_change():
    gen = RuleGenerator("c0", kappa=0)
    view1 = build_view("c0", ["s1"], [reply("s1", ["c0"])])
    gen.rules_for_view(view1, T)
    view2 = build_view("c0", ["s1"], [reply("s1", ["c0", "s2"])])
    gen.rules_for_view(view2, T)
    assert gen.computations == 2


def test_my_rules_owned_and_tagged():
    view = build_view("c0", ["s1"], [reply("s1", ["c0", "s2"]), reply("s2", ["s1"])])
    gen = RuleGenerator("c0", kappa=0)
    for r in gen.my_rules(view, "s1", T):
        assert r.cid == "c0"
        assert r.tag == T
        assert r.sid == "s1"


def test_my_rules_deduplicates_by_key():
    view = build_view(
        "c0",
        ["s1"],
        [reply("s1", ["c0", "s2"]), reply("s2", ["s1", "s3"]), reply("s3", ["s2"])],
    )
    gen = RuleGenerator("c0", kappa=0)
    rules = gen.my_rules(view, "s1", T)
    keys = [r.key() for r in rules]
    assert len(keys) == len(set(keys))


def test_no_rules_installed_on_controllers():
    view = build_view(
        "c0", ["s1"], [reply("s1", ["c0", "c1"]), reply("c1", ["s1"], kind="controller")]
    )
    gen = RuleGenerator("c0", kappa=0)
    per_switch = gen.rules_for_view(view, T)
    assert "c1" not in per_switch


def test_invalidate_clears_cache():
    view = build_view("c0", ["s1"], [reply("s1", ["c0"])])
    gen = RuleGenerator("c0", kappa=0)
    gen.rules_for_view(view, T)
    gen.invalidate()
    gen.rules_for_view(view, T)
    assert gen.computations == 2
