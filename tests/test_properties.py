"""Property-based tests (hypothesis) for the core invariants (DESIGN.md §6)."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.tags import Tag, TagGenerator
from repro.core.replydb import ReplyDB
from repro.net.channel import ChannelPair
from repro.net.failure_detector import ThetaFailureDetector
from repro.net.topology import Topology, edge
from repro.net.topologies import random_k_connected
from repro.flows.paths import edge_disjoint_paths, path_edges, is_simple_path
from repro.flows.failover import plan_flow_rules
from repro.switch.abstract_switch import AbstractSwitch
from repro.switch.flow_table import FlowTable, Rule
from repro.switch.managers import ManagerSet
from repro.switch.commands import QueryReply
from repro.core.legitimacy import forwarding_path
from repro.sim.metrics import quartiles, summarize


# -- invariant 1: bounded switch memory ---------------------------------------


@given(
    bound=st.integers(min_value=1, max_value=8),
    ops=st.lists(
        st.tuples(st.sampled_from(["c0", "c1", "c2"]), st.integers(0, 9)),
        max_size=60,
    ),
)
def test_flow_table_never_exceeds_bound(bound, ops):
    table = FlowTable("s0", max_rules=bound)
    for cid, dst in ops:
        table.install(
            Rule(cid=cid, sid="s0", src=cid, dst=f"d{dst}", priority=1, forward_to="x")
        )
        assert len(table) <= bound


@given(
    bound=st.integers(min_value=1, max_value=5),
    adds=st.lists(st.sampled_from([f"c{i}" for i in range(10)]), max_size=50),
)
def test_manager_set_never_exceeds_bound(bound, adds):
    managers = ManagerSet(max_managers=bound)
    for cid in adds:
        managers.add(cid)
        assert len(managers) <= bound


# -- invariant 2: at most one C-reset -----------------------------------------


@given(
    bound=st.integers(min_value=2, max_value=6),
    arrivals=st.lists(st.integers(0, 12), min_size=1, max_size=80),
)
def test_replydb_c_resets_bounded_by_arrival_pattern(bound, arrivals):
    """A C-reset empties the store, so consecutive resets need ≥ bound
    fresh nodes in between; the count can never exceed arrivals/bound."""
    db = ReplyDB("c0", max_replies=bound)
    tag = Tag("c0", 1)
    for node in arrivals:
        db.store(
            QueryReply(node=f"s{node}", neighbors=(), managers=(), rules=()),
            tag,
            current_tag=tag,
        )
        assert len(db) <= bound
    assert db.c_resets <= max(1, len(arrivals) // bound)


# -- invariant 3: unambiguous rule sets -----------------------------------------


@given(
    rules=st.lists(
        st.tuples(
            st.sampled_from(["c0", "c1"]),
            st.sampled_from(["d0", "d1", "d2"]),
            st.integers(1, 4),
            st.sampled_from(["n0", "n1"]),
        ),
        max_size=30,
    )
)
def test_single_owner_tables_are_unambiguous_per_priority(rules):
    """One controller's planner emits at most one action per
    (match, priority); the table's identity key guarantees the rest."""
    table = FlowTable("s0", max_rules=100)
    seen = {}
    for cid, dst, prt, fwd in rules:
        key = (cid, dst, prt)
        if key in seen and seen[key] != fwd:
            continue  # planner never does this; skip the illegal insert
        seen[key] = fwd
        table.install(
            Rule(cid=cid, sid="s0", src=cid, dst=dst, priority=prt, forward_to=fwd)
        )
    for cid in ("c0", "c1"):
        # Per-owner unambiguity always holds.
        owner_rules = [r for r in table.rules_of(cid) if not r.is_meta]
        keys = [(r.src, r.dst, r.priority) for r in owner_rules]
        assert len(keys) == len(set(keys))


# -- invariant 4: κ-fault resilience on random graphs ----------------------------


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=6, max_value=14),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_planned_flows_survive_any_single_link_failure(n, seed):
    """Install a κ=1 flow plan on a 2-edge-connected random graph and
    verify forwarding survives every single-link failure."""
    topo = random_k_connected(n, 2, seed=seed, extra_edge_prob=0.1)
    rng = random.Random(seed)
    nodes = topo.switches
    src, dst = rng.sample(nodes, 2)
    switches = {
        s: AbstractSwitch(s, alive_neighbors=(lambda x: (lambda: topo.operational_neighbors(x)))(s))
        for s in nodes
    }
    for hop_rule in plan_flow_rules(topo, src, dst, kappa=1):
        switches[hop_rule.switch].table.install(
            Rule(
                cid="c",
                sid=hop_rule.switch,
                src=hop_rule.src,
                dst=hop_rule.dst,
                priority=hop_rule.priority,
                forward_to=hop_rule.forward_to,
                detour=hop_rule.detour,
                detour_start=hop_rule.detour_start,
            )
        )
    base = forwarding_path(topo, switches, src, dst)
    assert base is not None
    for u, v in topo.links:
        assert (
            forwarding_path(topo, switches, src, dst, extra_failed={edge(u, v)})
            is not None
        ), f"failed on {u}-{v}"


# -- invariant 6: channel reliability under arbitrary benign faults ----------------


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_messages=st.integers(min_value=1, max_value=10),
    omission=st.floats(min_value=0.0, max_value=0.6),
    duplication=st.floats(min_value=0.0, max_value=0.5),
)
def test_channel_delivers_in_order_despite_faults(seed, n_messages, omission, duplication):
    rng = random.Random(seed)

    def wire(datagram):
        if rng.random() < omission:
            return []
        if rng.random() < duplication:
            return [datagram, datagram]
        return [datagram]

    pair = ChannelPair("a", "b", wire_a_to_b=wire, wire_b_to_a=wire)
    expected = [f"m{i}" for i in range(n_messages)]
    for message in expected:
        pair.a.offer(message)
    pair.pump(rounds=800)
    assert pair.delivered_at_b == expected


# -- invariant: edge-disjoint paths are really disjoint and simple -----------------


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=6, max_value=16),
    k=st.sampled_from([2, 3, 4]),
    seed=st.integers(min_value=0, max_value=500),
)
def test_edge_disjoint_paths_properties(n, k, seed):
    if n <= k:
        return
    topo = random_k_connected(n, k, seed=seed)
    rng = random.Random(seed)
    src, dst = rng.sample(topo.switches, 2)
    paths = edge_disjoint_paths(topo, src, dst, k)
    assert len(paths) >= min(k, 2)
    used = set()
    for path in paths:
        assert is_simple_path(path)
        assert path[0] == src and path[-1] == dst
        for e in path_edges(path):
            assert e not in used
            used.add(e)


# -- detector: dead neighbours always eventually suspected ---------------------------


@given(
    theta=st.integers(min_value=1, max_value=10),
    live=st.integers(min_value=1, max_value=5),
)
def test_detector_eventually_suspects_dead_neighbor(theta, live):
    neighbors = [f"n{i}" for i in range(live)] + ["dead"]
    detector = ThetaFailureDetector(theta=theta, neighbors=neighbors)
    for _ in range(theta + 2):
        for v in neighbors[:-1]:
            detector.record_reply(v)
    assert "dead" in detector.suspected()
    assert all(v not in detector.suspected() for v in neighbors[:-1])


# -- tags: uniqueness under arbitrary observation sets ----------------------------


@given(
    observed=st.lists(st.integers(min_value=0, max_value=31), max_size=20),
    start=st.integers(min_value=0, max_value=31),
)
def test_next_tag_avoids_observed(observed, start):
    gen = TagGenerator("c0", domain=32, start=start)
    tags = [Tag("c0", v) for v in observed]
    fresh = gen.next_tag(observed=tags)
    assert fresh.value not in set(observed)


# -- statistics helpers -----------------------------------------------------------


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
def test_summary_orderings(values):
    s = summarize(values)
    assert s["min"] <= s["q1"] <= s["median"] <= s["q3"] <= s["max"]


@given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=2, max_size=40))
def test_quartiles_within_range(values):
    q1, med, q3 = quartiles(values)
    assert min(values) <= q1 <= q3 <= max(values)
