"""Convergence forensics: symptom detection, root-cause attribution from
the provenance DAG, identity-based replay, the store-first ``repro
explain`` engine, and campaign-wide trace stitching."""

import json

import pytest

from repro.api import AwaitLegitimacy, Bootstrap, CorruptState, RunPlan
from repro.cli import main
from repro.exp.spec import CaseSpec, ExperimentSpec, SPECS, register
from repro.fabric import FabricWorker, run_fabric_campaign, submit_campaign
from repro.obs import (
    Telemetry,
    explain_payload,
    explain_rerun,
    explain_run,
    use_telemetry,
)
from repro.obs.explain import plan_from_identity
from repro.obs.export import (
    find_traces,
    load_trace,
    save_trace,
    stitch_chrome_trace,
    trace_payload,
    validate_chrome_trace,
)
from repro.store.hashing import fingerprint
from repro.store.store import RunStore

if "explain-selftest" not in SPECS:
    register(
        ExperimentSpec(
            name="explain-selftest",
            title="explain selftest",
            build_cases=lambda networks=None, **_: [
                CaseSpec(
                    label="selftest",
                    network=None,
                    measure=lambda seed: float(seed % 13),
                    trim=False,
                )
            ],
            default_reps=2,
        )
    )


def failing_stabilize_plan(seed=3):
    """Corrupt the channels, then demand legitimacy within a window far
    too small — deterministic non-convergence with a known root cause."""
    return (
        RunPlan("jellyfish:8", controllers=2, seed=seed)
        .configure(theta=4, task_delay=0.1, robust_views=True)
        .then(
            CorruptState("channel-garbage"),
            AwaitLegitimacy(timeout=0.05),
        )
    )


# -- explain over payloads ---------------------------------------------------


def test_explain_names_the_injected_corruption():
    explanation = explain_rerun(
        lambda: failing_stabilize_plan().session().run(), source="selftest"
    )
    assert not explanation.ok
    assert explanation.symptom["kind"] == "non-convergence"
    assert explanation.root_cause["kind"] == "corruption"
    assert explanation.root_cause["id"] == "channel-garbage@seed=3"
    assert explanation.chain
    assert "corrupt:channel-garbage" in explanation.chain[0]
    rendered = explanation.render()
    assert "root cause: state corruption channel-garbage@seed=3" in rendered
    assert explanation.n_events > 0
    assert explanation.source == "selftest"


def test_explain_reports_convergence():
    plan = (
        RunPlan("jellyfish:8", controllers=2, seed=1)
        .configure(theta=4, task_delay=0.1)
        .then(Bootstrap(timeout=120.0), AwaitLegitimacy(timeout=120.0))
    )
    explanation = explain_rerun(lambda: plan.session().run())
    assert explanation.ok
    assert explanation.symptom["kind"] == "converged"


def test_explain_handles_pre_causality_payloads():
    explanation = explain_payload({"summary": {}, "spans": []})
    assert not explanation.ok
    assert explanation.symptom["kind"] == "no-causal-data"


def test_explain_to_dict_round_trips_through_json():
    explanation = explain_rerun(
        lambda: failing_stabilize_plan().session().run()
    )
    doc = json.loads(json.dumps(explanation.to_dict(), sort_keys=True))
    assert doc["ok"] is False
    assert doc["root_cause"]["id"] == "channel-garbage@seed=3"
    assert doc["chain"] == explanation.chain


def test_stuck_round_anomaly_detected_from_synthetic_rows():
    rows = [[-1, 0.0, "provenance_root", "corrupt", None,
             {"corruption_id": "x@seed=0", "corruption": "x"}]]
    for index in range(12):
        rows.append(
            [index, float(index), "task_execution", "loop", None,
             {"ctrl": "c0", "round": "(0, 'c0')", "new_round": False,
              "round_age": index, "iteration": index}]
        )
    rows.append([99, 12.0, "probe", "", None, {"legitimate": False}])
    explanation = explain_payload(
        {"summary": {}, "spans": [],
         "causal": [{"source": "synthetic", "events": rows}],
         "meta": {"trace_schema": 2, "epoch_unix": 0.0}}
    )
    kinds = {a["kind"] for a in explanation.anomalies}
    assert "stuck_round" in kinds


# -- identity replay ---------------------------------------------------------


def test_plan_from_identity_round_trips_the_fingerprint():
    plan = failing_stabilize_plan(seed=7)
    identity = plan.identity()
    rebuilt = plan_from_identity(identity)
    assert fingerprint(rebuilt.identity()) == fingerprint(identity)


def test_plan_from_identity_round_trips_fault_schedules():
    from repro.api import InjectFaults
    from repro.sim.faults import FaultAction, FaultPlan

    plan = (
        RunPlan("ring:6", controllers=2, seed=4)
        .configure(theta=4, task_delay=0.1)
        .then(
            Bootstrap(timeout=120.0),
            InjectFaults(
                plan=FaultPlan(
                    [
                        FaultAction(1.0, "fail_link", ("s0", "s1")),
                        FaultAction(2.0, "recover_link", ("s0", "s1")),
                    ]
                )
            ),
            AwaitLegitimacy(timeout=120.0),
        )
    )
    identity = plan.identity()
    rebuilt = plan_from_identity(identity)
    assert fingerprint(rebuilt.identity()) == fingerprint(identity)


def test_plan_from_identity_rejects_unreplayable_identities():
    with pytest.raises(ValueError):
        plan_from_identity({"kind": "trace"})
    bad = failing_stabilize_plan().identity()
    bad["topology"] = {"nodes": [], "links": []}
    with pytest.raises(ValueError):
        plan_from_identity(bad)
    label_only = failing_stabilize_plan().identity()
    label_only["phases"] = [{"phase": "inject_faults", "faults": "churn"}]
    with pytest.raises(ValueError):
        plan_from_identity(label_only)


# -- store-first explain -----------------------------------------------------


def seeded_failed_store(tmp_path, traced):
    """A store holding one failed run — with its trace when ``traced``."""
    from repro.store.store import use_store

    store = RunStore(tmp_path / "store")
    plan = failing_stabilize_plan()
    with use_store(store):
        if traced:
            with use_telemetry(Telemetry()):
                result = plan.run()
        else:
            result = plan.run()
    assert not result.ok
    return store, fingerprint(plan.identity())


def test_explain_run_uses_the_stored_trace(tmp_path):
    store, run_key = seeded_failed_store(tmp_path, traced=True)
    explanation = explain_run(store, key=run_key)
    assert "stored trace" in explanation.source
    assert explanation.root_cause["id"] == "channel-garbage@seed=3"


def test_explain_run_replays_when_no_trace_exists(tmp_path):
    store, run_key = seeded_failed_store(tmp_path, traced=False)
    explanation = explain_run(store, key=run_key)
    assert "replayed" in explanation.source
    assert explanation.root_cause["id"] == "channel-garbage@seed=3"


def test_explain_run_defaults_to_latest_failed_run(tmp_path):
    store, run_key = seeded_failed_store(tmp_path, traced=True)
    explanation = explain_run(store)
    assert run_key[:12] in explanation.source
    assert not explanation.ok


def test_explain_run_rejects_empty_store(tmp_path):
    with pytest.raises(ValueError):
        explain_run(RunStore(tmp_path / "store"))


# -- campaign stitching ------------------------------------------------------


def stitched_campaign_doc(tmp_path):
    store = RunStore(tmp_path / "store")
    submit_campaign(store, "explain-selftest", reps=2)
    worker = FabricWorker(
        store.root, worker_id="w1", drain=True, poll=0.01, trace=True
    )
    worker.run()
    with use_telemetry(Telemetry()) as aggregator:
        run_fabric_campaign(store, "explain-selftest", reps=2, timeout=10.0)
    save_trace(store, aggregator, label="aggregator")
    entries = []
    for key in find_traces(store):
        record = load_trace(store, key)
        entries.append(
            {
                "label": record["identity"].get("label") or key[:12],
                "payload": record["payload"],
            }
        )
    return stitch_chrome_trace(entries)


def test_stitched_trace_validates_with_tracks_and_flows(tmp_path):
    doc = stitched_campaign_doc(tmp_path)
    assert validate_chrome_trace(doc) == []
    events = doc["traceEvents"]
    names = {
        e["args"]["name"] for e in events if e.get("name") == "process_name"
    }
    assert "aggregator" in names
    assert any(n.startswith("worker:") for n in names)
    starts = {e["id"] for e in events if e["ph"] == "s"}
    finishes = {e["id"] for e in events if e["ph"] == "f"}
    assert starts and starts == finishes
    # dispatch arrows leave the aggregator, task spans live on the worker
    agg_pid = next(
        e["pid"] for e in events
        if e.get("name") == "process_name" and e["args"]["name"] == "aggregator"
    )
    dispatch = [e for e in events if e["ph"] == "s" and e["name"] == "dispatch"]
    assert dispatch and all(e["pid"] == agg_pid for e in dispatch)
    critical = [e for e in events if e["name"] == "campaign_critical_path"]
    assert len(critical) == 1 and critical[0]["pid"] != agg_pid


def test_validator_enforces_flow_ids():
    good = {"traceEvents": [
        {"name": "a", "ph": "s", "id": "k", "ts": 0, "pid": 1, "tid": 1},
    ]}
    assert validate_chrome_trace(good) == []
    bad = {"traceEvents": [
        {"name": "a", "ph": "f", "ts": 0, "pid": 1, "tid": 1},
    ]}
    assert any("flow event needs an id" in p for p in validate_chrome_trace(bad))


# -- CLI surfaces ------------------------------------------------------------


def test_cli_explain_json_names_root_cause(tmp_path, capsys):
    store, _run_key = seeded_failed_store(tmp_path, traced=True)
    code = main(["explain", "--store", str(store.root), "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert code == 1  # forensics confirm a failure
    assert doc["root_cause"]["id"] == "channel-garbage@seed=3"
    assert doc["ok"] is False


def test_cli_explain_renders_chain(tmp_path, capsys):
    store, run_key = seeded_failed_store(tmp_path, traced=True)
    code = main(["explain", run_key, "--store", str(store.root)])
    out = capsys.readouterr().out
    assert code == 1
    assert "root cause: state corruption channel-garbage@seed=3" in out
    assert "causal chain:" in out


def test_cli_explain_errors_cleanly_on_empty_store(tmp_path, capsys):
    code = main(["explain", "--store", str(tmp_path / "empty")])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_cli_trace_summary_json(tmp_path, capsys):
    store, run_key = seeded_failed_store(tmp_path, traced=True)
    code = main(["trace", "summary", "--store", str(store.root), "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert code == 0
    assert doc["run"] == run_key
    assert doc["trace_schema"] == 2
    assert doc["n_causal_events"] > 0
    assert "counters" in doc["summary"]


def test_cli_trace_stitch_writes_valid_doc(tmp_path, capsys):
    store = RunStore(tmp_path / "store")
    submit_campaign(store, "explain-selftest", reps=2)
    FabricWorker(
        store.root, worker_id="w1", drain=True, poll=0.01, trace=True
    ).run()
    with use_telemetry(Telemetry()) as aggregator:
        run_fabric_campaign(store, "explain-selftest", reps=2, timeout=10.0)
    save_trace(store, aggregator, label="aggregator")
    out = tmp_path / "stitched.json"
    code = main(["trace", "stitch", "--store", str(store.root),
                 "--out", str(out)])
    assert code == 0
    assert "stitched 2 trace(s)" in capsys.readouterr().out
    doc = json.loads(out.read_text())
    assert validate_chrome_trace(doc) == []
