"""Tests for the experiment orchestration subsystem (repro.exp)."""

import pytest

from repro.exp.runner import RepetitionTask, _execute_task, default_workers, run_spec
from repro.exp.seeding import derive_seed, fault_rng, rep_rng
from repro.exp.spec import ExperimentSpec, get_spec, list_specs, register


# -- seeding ----------------------------------------------------------------


def test_derive_seed_matches_legacy_serial_seeds():
    assert [derive_seed(0, i) for i in range(5)] == [0, 1, 2, 3, 4]


def test_derive_seed_base_streams_disjoint():
    a = {derive_seed(0, i) for i in range(100)}
    b = {derive_seed(1, i) for i in range(100)}
    assert not a & b


def test_derive_seed_rejects_negative_rep():
    with pytest.raises(ValueError):
        derive_seed(0, -1)


def test_rep_rng_reproducible():
    assert rep_rng(3, 7).random() == rep_rng(3, 7).random()


def test_fault_rng_matches_historical_stream():
    import random

    assert fault_rng(5).random() == random.Random(5 * 7919 + 13).random()


# -- registry ----------------------------------------------------------------


def test_registry_contains_every_figure():
    expected = {
        "table8", "fig5", "fig6", "fig7", "fig9", "fig10", "fig11",
        "fig12", "fig13", "fig14", "fig15", "fig16", "table17",
        "fig18", "fig19", "fig20",
    }
    assert expected <= set(list_specs())


def test_get_spec_unknown_name():
    with pytest.raises(KeyError):
        get_spec("fig99")


def test_register_rejects_duplicates():
    spec = get_spec("fig5")
    with pytest.raises(ValueError):
        register(spec)


def test_spec_case_filtering_by_network():
    cases = get_spec("fig5").cases(networks=("Telstra",))
    assert [c.label for c in cases] == ["Telstra"]


def test_spec_params_forwarded():
    cases = get_spec("fig6").cases(networks=("Telstra",), controller_counts=(1, 7))
    assert [c.label for c in cases] == ["Telstra x1", "Telstra x7"]


# -- runner ------------------------------------------------------------------


def test_runner_serial_matches_parallel():
    """Acceptance: same seed ⇒ bit-identical series, serial vs 4 workers."""
    serial = run_spec("fig5", reps=3, networks=("B4",), workers=1)
    parallel = run_spec("fig5", reps=3, networks=("B4",), workers=4)
    assert serial.series == parallel.series
    assert serial.series["B4"], "no repetitions completed"


def test_runner_seed_changes_series():
    base0 = run_spec("fig5", reps=2, networks=("B4",), workers=1, base_seed=0)
    base1 = run_spec("fig5", reps=2, networks=("B4",), workers=1, base_seed=1)
    assert base0.series != base1.series


def test_runner_series_spec_ignores_reps():
    result = run_spec("table8", reps=7, networks=("B4",), workers=1)
    assert result.series["B4 nodes"] == [12.0]
    assert result.series["B4 diameter"] == [5.0]


def test_runner_network_filter():
    result = run_spec("fig5", reps=1, networks=("Clos",), workers=1)
    assert list(result.series) == ["Clos"]


def test_execute_task_is_pure_and_addressable():
    """A repetition task rebuilt from primitives yields the same value as
    the in-process case call — the property pool workers rely on."""
    task = RepetitionTask(
        spec_name="fig5",
        networks=("B4",),
        params=(),
        case_index=0,
        rep_index=0,
        seed=0,
    )
    case_index, rep_index, value, status = _execute_task(task)
    assert (case_index, rep_index) == (0, 0)
    assert status == "simulated"  # no store: the task always executes
    direct = get_spec("fig5").cases(networks=("B4",))[0].measure(0)
    assert value == direct


def test_default_workers_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert default_workers() == 3
    monkeypatch.setenv("REPRO_WORKERS", "")
    assert default_workers() == 1


def test_wrapper_functions_delegate_to_runner():
    from repro.analysis.experiments import fig5_bootstrap

    wrapped = fig5_bootstrap(reps=2, networks=("B4",))
    direct = run_spec("fig5", reps=2, networks=("B4",))
    assert wrapped.series == direct.series
