"""Unit tests for metrics and fault injection plumbing."""

import random

import pytest

from repro.sim.metrics import (
    MetricsRecorder,
    median,
    quartiles,
    summarize,
    trimmed,
)
from repro.sim.events import EventKind
from repro.sim.faults import (
    EVENT_KIND_OF_FAULT,
    KNOWN_FAULT_KINDS,
    FaultAction,
    FaultInjector,
    FaultPlan,
    random_link,
    random_switch,
)
from repro.net.topology import Topology


def test_median_odd_even():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([1.0, 2.0, 3.0, 4.0]) == 2.5


def test_median_empty_raises():
    with pytest.raises(ValueError):
        median([])


def test_quartiles():
    q1, med, q3 = quartiles([1.0, 2.0, 3.0, 4.0, 5.0])
    assert med == 3.0
    assert q1 == 2.0 and q3 == 4.0


def test_trimmed_drops_extrema_when_enough_data():
    values = [10.0, 1.0, 5.0, 6.0, 7.0, 2.0]
    out = trimmed(values)
    assert 10.0 not in out and 1.0 not in out
    assert len(out) == 4


def test_trimmed_keeps_small_samples():
    assert trimmed([1.0, 2.0, 3.0]) == [1.0, 2.0, 3.0]


def test_summarize_fields():
    s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
    assert s["min"] == 1.0 and s["max"] == 5.0
    assert s["median"] == 3.0 and s["n"] == 5.0


def test_metrics_recovery_time():
    m = MetricsRecorder()
    m.mark_fault(10.0)
    m.mark_convergence(13.5)
    assert m.recovery_time == 3.5


def test_metrics_recovery_time_none_without_fault():
    m = MetricsRecorder()
    m.mark_convergence(5.0)
    assert m.recovery_time is None


def test_recovery_counts_first_convergence_after_the_fault():
    """Documented semantics: the instant legitimacy *returned*, not the
    last re-check — extra convergence marks must not inflate it."""
    m = MetricsRecorder()
    m.mark_fault(10.0)
    m.mark_convergence(12.0)
    m.mark_convergence(20.0)
    assert m.recovery_time == 2.0


def test_refault_restarts_the_recovery_measurement():
    """Documented semantics: each mark_fault restarts the measurement —
    a convergence that preceded the most recent fault never counts."""
    m = MetricsRecorder()
    m.mark_fault(10.0)
    m.mark_convergence(12.0)
    assert m.recovery_time == 2.0
    m.mark_fault(15.0)
    assert m.recovery_time is None  # nothing has followed the new fault
    m.mark_convergence(18.5)
    assert m.recovery_time == 3.5


def test_convergence_before_any_fault_is_never_a_recovery():
    m = MetricsRecorder()
    m.mark_convergence(5.0)
    m.mark_fault(10.0)
    assert m.recovery_time is None
    assert m.convergence_time == 5.0


def test_stabilization_time_is_distinct_from_recovery_time():
    m = MetricsRecorder()
    m.mark_corruption(0.0)
    assert m.stabilization_time is None
    m.mark_convergence(4.0)
    assert m.stabilization_time == 4.0
    assert m.recovery_time is None  # no fault was marked
    m.mark_fault(10.0)
    m.mark_convergence(11.0)
    assert m.recovery_time == 1.0
    assert m.stabilization_time == 4.0  # first convergence after corruption


def test_remark_corruption_restarts_stabilization():
    m = MetricsRecorder()
    m.mark_corruption(0.0)
    m.mark_convergence(2.0)
    m.mark_corruption(5.0)
    assert m.stabilization_time is None
    m.mark_convergence(9.0)
    assert m.stabilization_time == 4.0


# -- observers ---------------------------------------------------------------


class _Recorder:
    def __init__(self, name, log):
        self.name = name
        self.log = log

    def on_event(self, time, name, value=None):
        self.log.append((self.name, time, name))


class _Exploder:
    def __init__(self, log):
        self.log = log

    def on_event(self, time, name, value=None):
        self.log.append(("boom", time, name))
        raise RuntimeError("observer exploded")


def test_observers_notified_in_registration_order():
    log = []
    m = MetricsRecorder()
    m.add_observer(_Recorder("a", log))
    m.add_observer(_Recorder("b", log))
    m.mark_fault(1.0)
    m.mark_convergence(2.0)
    assert log == [
        ("a", 1.0, "fault"),
        ("b", 1.0, "fault"),
        ("a", 2.0, "convergence"),
        ("b", 2.0, "convergence"),
    ]


def test_observer_exception_does_not_starve_later_observers():
    """Documented semantics: every observer is still notified, then the
    first exception re-raises — broken instrumentation stays loud but
    cannot silence other observers or the metric itself."""
    log = []
    m = MetricsRecorder()
    m.add_observer(_Exploder(log))
    m.add_observer(_Recorder("late", log))
    with pytest.raises(RuntimeError, match="observer exploded"):
        m.mark_fault(1.0)
    assert ("late", 1.0, "fault") in log
    assert m.fault_time == 1.0  # the milestone itself was recorded


def test_mark_event_reaches_observers_with_values():
    log = []
    m = MetricsRecorder()

    class Valued:
        def on_event(self, time, name, value=None):
            log.append((time, name, value))

    m.add_observer(Valued())
    m.mark_event(3.0, "custom", {"k": 1})
    assert log == [(3.0, "custom", {"k": 1})]
    assert m.events == [(3.0, "custom", {"k": 1})]


def test_max_load_per_node_per_iteration():
    m = MetricsRecorder()
    m.record_batch("c0", hops=4)
    m.record_reply("c0", hops=4)
    m.record_batch("c1", hops=1)
    load = m.max_load_per_node_per_iteration({"c0": 2, "c1": 2}, n_nodes=2)
    assert load == pytest.approx(8 / 2 / 2)


def test_fault_plan_fluent_builders():
    plan = (
        FaultPlan()
        .fail_link(1.0, "a", "b")
        .recover_link(2.0, "a", "b")
        .remove_link(3.0, "a", "b")
        .fail_node(4.0, "n")
        .recover_node(5.0, "n")
        .corrupt_controller(6.0, "c0")
    )
    kinds = [a.kind for a in plan.actions]
    assert kinds == [
        "fail_link",
        "recover_link",
        "remove_link",
        "fail_node",
        "recover_node",
        "corrupt_controller",
    ]


def test_fault_action_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultAction(1.0, "fail_linkage", ("a", "b"))


def test_event_kind_rejects_unknowns_instead_of_substring_matching():
    """Regression: the old substring matcher ('fail' in kind) silently
    classified e.g. 'prefail_link_audit' as a LINK_FAILURE event; the
    explicit mapping must raise on anything it does not know."""
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultInjector._event_kind("prefail_link_audit")


def test_event_kind_mapping_is_total_and_matches_legacy_classes():
    assert set(EVENT_KIND_OF_FAULT) == KNOWN_FAULT_KINDS
    assert FaultInjector._event_kind("fail_link") is EventKind.LINK_FAILURE
    assert FaultInjector._event_kind("remove_link") is EventKind.LINK_FAILURE
    assert FaultInjector._event_kind("recover_link") is EventKind.LINK_RECOVERY
    assert FaultInjector._event_kind("fail_node") is EventKind.NODE_FAILURE
    assert FaultInjector._event_kind("remove_node") is EventKind.NODE_FAILURE
    assert FaultInjector._event_kind("recover_node") is EventKind.NODE_RECOVERY
    assert FaultInjector._event_kind("add_switch") is EventKind.NODE_RECOVERY
    assert FaultInjector._event_kind("add_controller") is EventKind.NODE_RECOVERY
    assert FaultInjector._event_kind("corrupt_switch") is EventKind.STATE_CORRUPTION
    assert FaultInjector._event_kind("corrupt_controller") is EventKind.STATE_CORRUPTION


def test_fault_plan_remove_node_builder():
    plan = FaultPlan().remove_node(2.0, "s1")
    assert plan.actions[0].kind == "remove_node"
    assert plan.actions[0].target == ("s1",)


def test_fault_plan_shifted_and_last_at():
    plan = FaultPlan().fail_link(1.0, "a", "b").recover_link(2.5, "a", "b")
    shifted = plan.shifted(10.0)
    assert [a.at for a in shifted.actions] == [11.0, 12.5]
    assert [a.at for a in plan.actions] == [1.0, 2.5], "shifted must not mutate"
    assert shifted.last_at() == 12.5
    assert FaultPlan().last_at() == 0.0


def test_fault_plan_shifted_preserves_kinds_and_targets():
    plan = FaultPlan().fail_node(1.0, "n").corrupt_controller(2.0, "c0")
    shifted = plan.shifted(5.0)
    assert [(a.kind, a.target) for a in shifted.actions] == [
        (a.kind, a.target) for a in plan.actions
    ]
    assert shifted.last_at() == plan.last_at() + 5.0


def ring(n=6):
    topo = Topology()
    names = [f"s{i}" for i in range(n)]
    for name in names:
        topo.add_switch(name)
    for i in range(n):
        topo.add_link(names[i], names[(i + 1) % n])
    return topo


def test_random_link_protects_connectivity():
    topo = ring()
    u, v = random_link(topo, random.Random(1), protect_connectivity=True)
    probe = topo.copy()
    probe.remove_link(u, v)
    assert probe.connected()


def test_random_link_raises_on_tree():
    topo = Topology()
    for name in "abc":
        topo.add_switch(name)
    topo.add_link("a", "b")
    topo.add_link("b", "c")
    with pytest.raises(ValueError):
        random_link(topo, random.Random(1), protect_connectivity=True)


def test_random_switch_picks_switch():
    topo = ring()
    assert random_switch(topo, random.Random(0)).startswith("s")
