"""SimulationConfig must reject nonsense knobs at construction time.

Before the guard, a zero task delay or κ = 0 surfaced minutes later as a
wedged event loop or a silently non-resilient run."""

import pytest

from repro.core.config import RenaissanceConfig
from repro.sim.network_sim import SimulationConfig


@pytest.mark.parametrize("knob", ["task_delay", "discovery_delay", "link_latency",
                                  "convergence_interval"])
@pytest.mark.parametrize("bad", [0.0, -0.5])
def test_non_positive_delays_rejected(knob, bad):
    with pytest.raises(ValueError, match=knob):
        SimulationConfig(**{knob: bad})


@pytest.mark.parametrize("bad", [0, -1])
def test_kappa_below_one_rejected(bad):
    with pytest.raises(ValueError, match="kappa"):
        SimulationConfig(kappa=bad)


def test_theta_below_one_rejected():
    with pytest.raises(ValueError, match="theta"):
        SimulationConfig(theta=0)


def test_kappa_zero_ablation_still_reachable_via_renaissance_config():
    rena = RenaissanceConfig.for_network(2, 12, kappa=0, theta=10)
    config = SimulationConfig(renaissance=rena)
    assert config.renaissance.kappa == 0


def test_defaults_are_valid():
    SimulationConfig()  # must not raise
