"""Tests for the adversarial self-stabilization subsystem."""

import random

import pytest

from repro.adversary.corruptions import (
    CORRUPTIONS,
    apply_corruption,
    clogged_memory,
)
from repro.adversary.schedulers import (
    SCHEDULERS,
    ExtremesScheduler,
    MaxDelayScheduler,
    ReorderScheduler,
    make_scheduler,
)
from repro.adversary.spec import (
    measure_stabilization,
    run_stabilize,
    stabilize_run_plan,
)
from repro.api import AwaitLegitimacy, Bootstrap, CorruptState, RunPlan, build_simulation
from repro.exp.runner import run_spec
from repro.sim.network_sim import SimulationConfig
from repro.store.store import RunStore

FAST = dict(n_controllers=2, task_delay=0.1, theta=4, timeout=120.0)


def _sim(topology="ring:6", seed=0):
    return build_simulation(topology, controllers=2, seed=seed,
                            task_delay=0.1, theta=4)


# -- corruption registry -----------------------------------------------------


def test_corruption_registry_names():
    assert set(CORRUPTIONS) == {
        "garbage-rules",
        "phantom-replies",
        "desync-views",
        "clogged-memory",
        "channel-garbage",
        "mixed",
    }


def test_apply_corruption_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown corruption"):
        apply_corruption("nope", _sim(), random.Random(0))


def test_garbage_rules_plants_rules():
    sim = _sim()
    accounting = apply_corruption("garbage-rules", sim, random.Random(1))
    assert accounting["rules_planted"] > 0
    assert sum(len(s.table) for s in sim.switches.values()) > 0


def test_phantom_replies_pollute_reply_stores():
    sim = _sim()
    accounting = apply_corruption("phantom-replies", sim, random.Random(1))
    assert accounting["replies_planted"] > 0
    assert any(len(c.replydb) > 0 for c in sim.controllers.values())


def test_desync_views_rewrites_round_tags():
    sim = _sim()
    before = {cid: (c.prev_tag, c.curr_tag) for cid, c in sim.controllers.items()}
    apply_corruption("desync-views", sim, random.Random(1))
    after = {cid: (c.prev_tag, c.curr_tag) for cid, c in sim.controllers.items()}
    assert before != after


def test_clogged_memory_fills_to_max_rules():
    sim = _sim()
    clogged_memory(sim, random.Random(1), fill=1.0)
    for switch in sim.switches.values():
        assert len(switch.table) == sim.rena_config.max_rules


def test_channel_garbage_schedules_in_flight_events():
    sim = _sim()
    accounting = apply_corruption("channel-garbage", sim, random.Random(1))
    assert accounting["packets_in_flight"] > 0
    assert len(sim.sim.queue) > 0  # deliveries pending before the protocol runs


def test_mixed_records_the_sampled_combination():
    sim = _sim()
    accounting = apply_corruption("mixed", sim, random.Random(3))
    assert accounting["applied"], "mixed must apply at least one strategy"
    assert set(accounting["applied"]) <= (set(CORRUPTIONS) - {"mixed"})


def test_corruption_is_pure_in_the_rng_stream():
    """Identical sims + identical seeds must produce identical state."""
    a, b = _sim(seed=5), _sim(seed=5)
    acc_a = apply_corruption("mixed", a, random.Random(99))
    acc_b = apply_corruption("mixed", b, random.Random(99))
    assert acc_a == acc_b
    for sid in a.switches:
        assert sorted(map(repr, a.switches[sid].table.rules())) == sorted(
            map(repr, b.switches[sid].table.rules())
        )


# -- adversarial schedulers --------------------------------------------------


def test_scheduler_registry_names():
    assert set(SCHEDULERS) == {"max-delay", "reorder", "extremes"}


def test_make_scheduler_rejects_unknown_and_bad_bound():
    with pytest.raises(ValueError, match="unknown scheduler"):
        make_scheduler("nope")
    with pytest.raises(ValueError, match="bound"):
        MaxDelayScheduler(0.5)


@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_schedulers_stay_within_fairness_bounds(name):
    scheduler = make_scheduler(name, bound=4.0, rng=random.Random(0))
    for latency in (0.002, 0.01, 0.5):
        for _ in range(32):
            delay = scheduler.delay(latency)
            assert latency <= delay <= latency * 4.0 + 1e-12


def test_max_delay_always_takes_the_full_bound():
    assert MaxDelayScheduler(3.0).delay(0.01) == pytest.approx(0.03)


def test_reorder_alternates_floor_and_bound():
    scheduler = ReorderScheduler(4.0)
    delays = [scheduler.delay(0.01) for _ in range(4)]
    assert delays == pytest.approx([0.04, 0.01, 0.04, 0.01])


def test_extremes_is_seeded_and_two_valued():
    a = ExtremesScheduler(4.0, random.Random(7))
    b = ExtremesScheduler(4.0, random.Random(7))
    da = [a.delay(0.01) for _ in range(16)]
    assert da == [b.delay(0.01) for _ in range(16)]
    assert set(round(d, 6) for d in da) <= {0.01, 0.04}


def test_simulation_config_validates_scheduler():
    with pytest.raises(ValueError, match="unknown scheduler"):
        SimulationConfig(scheduler="nope")
    with pytest.raises(ValueError, match="scheduler_bound"):
        SimulationConfig(scheduler="reorder", scheduler_bound=0.5)
    SimulationConfig(scheduler="reorder")  # valid


# -- CorruptState phase ------------------------------------------------------


def test_corrupt_state_is_addressable_and_described():
    phase = CorruptState(corruption="clogged-memory")
    assert phase.addressable()
    assert phase.describe() == {
        "phase": "corrupt_state",
        "corruption": "clogged-memory",
    }


def test_corrupted_plans_are_cacheable_and_distinct():
    def plan(corruption):
        return (
            RunPlan("ring:6", controllers=2, seed=0)
            .then(CorruptState(corruption=corruption), AwaitLegitimacy(timeout=60.0))
        )

    assert plan("mixed").cacheable()
    assert plan("mixed").identity() != plan("desync-views").identity()


def test_scheduler_is_part_of_the_plan_identity():
    base = RunPlan("ring:6", controllers=2, seed=0).then(Bootstrap())
    scheduled = (
        RunPlan("ring:6", controllers=2, seed=0)
        .configure(scheduler="max-delay")
        .then(Bootstrap())
    )
    assert base.identity() != scheduled.identity()


def test_corrupt_state_marks_corruption_and_surfaces_accounting():
    result = run_stabilize("ring:6", "mixed", seed=0, **FAST)
    assert result.ok
    corrupt = result.phase("corrupt_state")
    assert corrupt is not None and corrupt.details["accounting"]["applied"]
    assert result.metrics["corruption_time"] == 0.0
    assert result.stabilization_time is not None
    assert result.stabilization_time > 0.0
    # No fault was injected: the post-fault metric stays undefined.
    assert result.metrics["fault_time"] is None
    assert result.metrics["recovery_time"] is None


def test_stabilization_and_recovery_metrics_are_distinct():
    """A fault campaign sets recovery_time but not stabilization_time;
    a corruption run does the reverse (previous test)."""
    from repro.scenarios.spec import run_campaign

    result = run_campaign("ring:6", "flapping", seed=0, n_controllers=2,
                          task_delay=0.1, theta=4, timeout=120.0)
    assert result.metrics["recovery_time"] is not None
    assert result.metrics["stabilization_time"] is None


# -- the stabilize spec ------------------------------------------------------


def test_measure_stabilization_is_deterministic():
    a = measure_stabilization("ring:6", "mixed", 3, **FAST)
    b = measure_stabilization("ring:6", "mixed", 3, **FAST)
    assert a is not None and a == b


def test_stabilize_run_plan_enables_robust_views():
    plan = stabilize_run_plan("ring:6", "mixed", 0, **FAST)
    assert plan.identity()["config"]["robust_views"] is True


def test_stabilize_spec_serial_equals_parallel():
    params = dict(topology="ring:6", corruption="mixed", scheduler="reorder", **FAST)
    serial = run_spec("stabilize", reps=2, workers=1, params=params)
    parallel = run_spec("stabilize", reps=2, workers=2, params=params)
    assert serial.series == parallel.series
    assert serial.series["ring:6 mixed reorder"], "no repetition stabilized"


def test_stabilize_spec_resumes_from_the_store(tmp_path):
    params = dict(topology="ring:6", corruption="mixed", scheduler="none", **FAST)
    cold = run_spec("stabilize", reps=2, params=params, store=tmp_path / "s")
    assert cold.cache_stats == {"hit": 0, "derived": 0, "simulated": 2}
    warm = run_spec("stabilize", reps=2, params=params, store=tmp_path / "s")
    assert warm.cache_stats == {"hit": 2, "derived": 0, "simulated": 0}
    assert warm.to_json() == cold.to_json()


def test_stabilize_converges_under_every_scheduler():
    for scheduler in ("none",) + tuple(sorted(SCHEDULERS)):
        assert (
            measure_stabilization("ring:8", "mixed", 1, scheduler=scheduler, **FAST)
            is not None
        ), scheduler


def test_warm_store_rerun_performs_zero_simulator_steps(tmp_path):
    """The acceptance property, at the library level: a warm re-run never
    constructs a simulation at all (the measurement record hits)."""
    import repro.sim.network_sim as ns

    params = dict(topology="ring:6", corruption="mixed", scheduler="none", **FAST)
    run_spec("stabilize", reps=2, params=params, store=tmp_path / "s")

    built = []
    original = ns.NetworkSimulation.__init__

    def counting(self, *args, **kwargs):
        built.append(1)
        return original(self, *args, **kwargs)

    ns.NetworkSimulation.__init__ = counting
    try:
        warm = run_spec("stabilize", reps=2, params=params, store=tmp_path / "s")
    finally:
        ns.NetworkSimulation.__init__ = original
    assert warm.cache_stats["hit"] == 2
    assert not built, "warm rerun built a simulation"
