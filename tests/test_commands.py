"""Unit tests for the command protocol data types."""

import pytest

from repro.switch.commands import (
    AddManager,
    CommandBatch,
    DelAllRules,
    DelManager,
    NewRound,
    Query,
    QueryReply,
    UpdateRules,
    make_batch,
)
from repro.switch.flow_table import Rule, META_PRIORITY


def test_query_tag_extraction():
    batch = CommandBatch("c0", (NewRound("t"), Query("q")))
    assert batch.query_tag == "q"


def test_query_tag_none_without_query():
    batch = CommandBatch("c0", (NewRound("t"),))
    assert batch.query_tag is None


def test_commands_are_hashable_values():
    assert NewRound("t") == NewRound("t")
    assert AddManager("c1") == AddManager("c1")
    assert DelManager("c1") != DelManager("c2")
    assert len({NewRound("t"), NewRound("t"), Query("t")}) == 2


def test_update_rules_carries_tuple():
    rule = Rule(cid="c0", sid="s0", src="c0", dst="d", priority=1, forward_to="x")
    update = UpdateRules((rule,))
    assert update.rules == (rule,)


def test_query_reply_tags_of():
    meta = Rule(
        cid="c0", sid="s0", src="⊥", dst="⊥",
        priority=META_PRIORITY, forward_to=None, tag="t7",
    )
    other = Rule(cid="c1", sid="s0", src="c1", dst="d", priority=1, forward_to="x", tag="t9")
    reply = QueryReply(node="s0", neighbors=("a",), managers=("c0",), rules=(meta, other))
    assert reply.tags_of("c0") == ["t7"]
    assert reply.tags_of("c1") == ["t9"]
    assert reply.tags_of("c2") == []


def test_query_reply_default_kind_is_switch():
    reply = QueryReply(node="s0", neighbors=(), managers=(), rules=())
    assert reply.kind == "switch"


def test_make_batch_without_deletions():
    batch = make_batch("c0", "t", query_tag="t")
    kinds = [type(c).__name__ for c in batch.commands]
    assert kinds == ["NewRound", "AddManager", "UpdateRules", "Query"]


def test_make_batch_query_defaults_to_round_tag():
    batch = make_batch("c0", "round-tag")
    assert batch.query_tag == "round-tag"
