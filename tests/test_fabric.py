"""Tests for the distributed sweep fabric (ISSUE 8).

Three layers:

- **Lease protocol units** — atomic claim exclusivity, heartbeat renewal,
  expiry-based reclamation with carried attempt counts, exponential
  cooldown after failures, and poison-task quarantine.
- **Worker/campaign integration** — an in-process drain worker fills a
  store whose aggregate is bit-identical to a serial ``run_spec``; a
  2-worker local fleet matches the serial golden; poison tasks quarantine
  and fail the aggregator loudly.
- **Crash recovery** — a real worker process is SIGKILLed mid-task and
  the campaign still completes: the orphaned unit is re-claimed exactly
  once after lease expiry, and every repetition is present exactly once.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exp.runner import expand_tasks, measurement_identity, run_spec
from repro.exp.spec import CaseSpec, ExperimentSpec, SPECS, register
from repro.fabric import (
    CampaignRequest,
    FabricError,
    FabricWorker,
    LeaseLost,
    WorkQueue,
    run_fabric_campaign,
    run_local_campaign,
    submit_campaign,
    wait_for_campaign,
)
from repro.fabric.campaign import aggregate_campaign
from repro.store import RunStore, aggregate, fingerprint

SRC = str(Path(__file__).resolve().parent.parent / "src")


# -- test-only specs ---------------------------------------------------------

if "fabric-selftest" not in SPECS:
    register(
        ExperimentSpec(
            name="fabric-selftest",
            title="fabric selftest",
            build_cases=lambda networks=None, **_: [
                CaseSpec(
                    label="selftest",
                    network=None,
                    measure=lambda seed: float(seed % 97),
                    trim=False,
                )
            ],
            default_reps=4,
        )
    )

if "fabric-poison" not in SPECS:
    def _poison_cases(networks=None, **_):
        def explode(seed):
            raise ValueError(f"poison task (seed {seed})")

        return [CaseSpec(label="poison", network=None, measure=explode,
                         trim=False)]

    register(
        ExperimentSpec(
            name="fabric-poison",
            title="fabric poison selftest",
            build_cases=_poison_cases,
            default_reps=1,
        )
    )


def make_queue(tmp_path, **kwargs):
    return WorkQueue(RunStore(tmp_path / "store"), **kwargs)


def one_unit(queue, reps=1):
    request = submit_campaign(queue.store, "fabric-selftest", reps=reps,
                              queue=queue)
    return request, queue.units_of(request)


# -- lease protocol ----------------------------------------------------------


def test_unit_keys_match_runner_addressing(tmp_path):
    """The queue's unit keys are exactly the measurement keys the serial
    runner and ``repro report`` address — the property that makes the
    store the coordination substrate."""
    queue = make_queue(tmp_path)
    request, units = one_unit(queue, reps=3)
    _spec, cases, _reps, tasks = expand_tasks(
        "fabric-selftest", reps=3, store_dir=str(queue.store.root)
    )
    expected = {
        fingerprint(measurement_identity(t, cases[t.case_index].label))
        for t in tasks
    }
    assert {u.key for u in units} == expected
    assert len(units) == 3


def test_submit_is_idempotent(tmp_path):
    queue = make_queue(tmp_path)
    request, _units = one_unit(queue)
    again = submit_campaign(queue.store, "fabric-selftest", reps=1,
                            queue=queue)
    assert again.campaign_id == request.campaign_id
    assert len(queue.campaigns()) == 1
    assert sum(1 for e in queue.events() if e["kind"] == "submit") == 1


def test_campaign_request_round_trips_through_disk(tmp_path):
    queue = make_queue(tmp_path)
    request = submit_campaign(
        queue.store, "fabric-selftest", reps=2, base_seed=7,
        params={"knob": 1.5}, queue=queue,
    )
    loaded = queue.campaigns()[0]
    assert loaded == request
    assert loaded.campaign_id == request.campaign_id


def test_claim_is_exclusive(tmp_path):
    queue = make_queue(tmp_path)
    _request, units = one_unit(queue)
    lease = queue.claim(units[0], "worker-a")
    assert lease is not None and lease.attempts == 1
    assert queue.claim(units[0], "worker-b") is None


def test_concurrent_claims_single_winner(tmp_path):
    """N threads racing on one unit: exactly one acquisition succeeds
    (the O_CREAT|O_EXCL-equivalent link arbitration)."""
    queue = make_queue(tmp_path)
    _request, units = one_unit(queue)
    barrier = threading.Barrier(8)
    wins = []

    def contender(name):
        barrier.wait()
        lease = queue.claim(units[0], name)
        if lease is not None:
            wins.append(lease)

    threads = [threading.Thread(target=contender, args=(f"w{i}",))
               for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(wins) == 1


def test_done_unit_is_not_claimable_or_pending(tmp_path):
    queue = make_queue(tmp_path)
    request, units = one_unit(queue)
    worker = FabricWorker(queue.store.root, drain=True, poll=0.01)
    worker.run()
    assert queue.is_done(units[0].key)
    assert queue.claim(units[0], "late-worker") is None
    assert queue.pending_units([request]) == []


def test_renew_extends_expiry(tmp_path):
    queue = make_queue(tmp_path, ttl=5.0)
    _request, units = one_unit(queue)
    lease = queue.claim(units[0], "worker-a")
    before = lease.expires_at
    time.sleep(0.05)
    queue.renew(lease)
    assert lease.expires_at > before
    on_disk = queue._read_lease(queue._lease_path(lease.key))
    assert on_disk.expires_at == pytest.approx(lease.expires_at)


def test_expired_lease_is_reclaimed_with_attempts_carried(tmp_path):
    queue = make_queue(tmp_path, ttl=0.05)
    _request, units = one_unit(queue)
    first = queue.claim(units[0], "doomed")
    assert first.attempts == 1
    time.sleep(0.1)  # let the lease expire (no heartbeat)
    second = queue.claim(units[0], "rescuer")
    assert second is not None
    assert second.attempts == 2
    assert any(e["kind"] == "reclaim" and e["prior_worker"] == "doomed"
               for e in queue.events())


def test_renew_after_reclaim_raises_lease_lost(tmp_path):
    queue = make_queue(tmp_path, ttl=0.05)
    _request, units = one_unit(queue)
    stale = queue.claim(units[0], "doomed")
    time.sleep(0.1)
    assert queue.claim(units[0], "rescuer") is not None
    with pytest.raises(LeaseLost):
        queue.renew(stale)


def test_concurrent_reclaims_single_winner(tmp_path):
    """Racing reclaimers of one expired lease: the atomic rename-aside
    arbitration lets exactly one of them carry the claim forward.

    The victim lease is force-expired by rewriting its ``expires_at``
    rather than by waiting out a tiny TTL — with a tiny TTL the *winner's*
    lease can legitimately expire while slower racer threads are still
    scheduled, turning a second reclaim into a correct (but test-breaking)
    outcome."""
    queue = make_queue(tmp_path, ttl=60.0)
    _request, units = one_unit(queue)
    doomed = queue.claim(units[0], "doomed")
    doomed.expires_at = time.time() - 1.0
    queue._replace(queue._lease_path(doomed.key), doomed.to_dict())
    barrier = threading.Barrier(6)
    wins = []

    def reclaimer(name):
        barrier.wait()
        lease = queue.claim(units[0], name)
        if lease is not None:
            wins.append(lease)

    threads = [threading.Thread(target=reclaimer, args=(f"r{i}",))
               for i in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(wins) == 1
    assert wins[0].attempts == 2


def test_failed_unit_cools_down_then_retries(tmp_path):
    queue = make_queue(tmp_path, ttl=5.0, max_attempts=3, backoff=0.1)
    _request, units = one_unit(queue)
    lease = queue.claim(units[0], "worker-a")
    assert queue.fail(lease, "transient") is False
    # During the cooldown nobody can claim it, after it anyone can —
    # that is the exponential backoff.
    assert queue.claim(units[0], "worker-b") is None
    time.sleep(0.15)
    retry = queue.claim(units[0], "worker-b")
    assert retry is not None and retry.attempts == 2


def test_poison_task_quarantines_after_max_attempts(tmp_path):
    queue = make_queue(tmp_path, ttl=5.0, max_attempts=2, backoff=0.01)
    request, units = one_unit(queue)
    lease = queue.claim(units[0], "worker-a")
    assert queue.fail(lease, "boom 1") is False
    time.sleep(0.05)
    lease = queue.claim(units[0], "worker-a")
    assert lease.attempts == 2
    assert queue.fail(lease, "boom 2") is True
    assert queue.is_quarantined(units[0].key)
    assert queue.pending_units([request]) == []
    with pytest.raises(FabricError, match="quarantined"):
        wait_for_campaign(queue, request, poll=0.01)


def test_gc_prunes_expired_leases_only(tmp_path):
    queue = make_queue(tmp_path, ttl=0.05)
    _request, units = one_unit(queue, reps=2)
    queue.claim(units[0], "doomed")
    time.sleep(0.1)
    live_queue = WorkQueue(queue.store, ttl=60.0)
    live = live_queue.claim(units[1], "alive")
    assert live is not None
    removed = queue.gc()
    assert removed["leases"] == 1
    remaining = queue.leases()
    assert len(remaining) == 1 and remaining[0].worker == "alive"


def test_store_prune_tmp_is_age_gated(tmp_path):
    store = RunStore(tmp_path / "store")
    store.objects_dir.mkdir(parents=True)
    (store.objects_dir / "ab").mkdir()
    old = store.objects_dir / "ab" / ".deadbeef.123.0.tmp"
    old.write_text("{}")
    os.utime(old, (time.time() - 7200, time.time() - 7200))
    fresh = store.root / ".manifest.123.0.tmp"
    fresh.write_text("{}")
    assert store.prune_tmp(max_age=3600) == 1
    assert not old.exists() and fresh.exists()


# -- worker / campaign integration ------------------------------------------


def test_drain_worker_fills_store_to_serial_golden(tmp_path):
    """One in-process drain worker executes a fig5 campaign whose
    aggregate is bit-identical to a serial storeless ``run_spec``."""
    store = RunStore(tmp_path / "store")
    request = submit_campaign(store, "fig5", reps=3, networks=("B4",))
    worker = FabricWorker(store.root, drain=True, poll=0.01)
    stats = worker.run()
    assert stats.get("simulated") == 3
    fabric_result = aggregate_campaign(store, request)
    serial = run_spec("fig5", reps=3, networks=("B4",), base_seed=0)
    assert fabric_result.to_dict() == serial.to_dict()


def test_two_worker_fleet_matches_serial_golden(tmp_path):
    """The acceptance golden: >=2 independent worker processes sharing
    one store produce output byte-identical to a serial sweep."""
    result = run_local_campaign(
        tmp_path / "store", "fig5", reps=3, networks=("B4",),
        workers=2, poll=0.02, ttl=10.0,
    )
    serial = run_spec("fig5", reps=3, networks=("B4",), base_seed=0)
    assert json.dumps(result.to_dict(), sort_keys=True) == json.dumps(
        serial.to_dict(), sort_keys=True
    )


def test_fabric_campaign_resumes_warm_store(tmp_path):
    """Re-running a completed campaign needs no workers at all: every
    unit is already done, the aggregator returns immediately."""
    store = RunStore(tmp_path / "store")
    request = submit_campaign(store, "fabric-selftest", reps=4)
    FabricWorker(store.root, drain=True, poll=0.01).run()
    result = run_fabric_campaign(store, "fabric-selftest", reps=4,
                                 timeout=5.0)
    assert result.series["selftest"] == [
        float(task.seed % 97)
        for task in expand_tasks("fabric-selftest", reps=4)[3]
    ]
    assert request.campaign_id in {
        r.campaign_id for r in WorkQueue(store).campaigns()
    }


def test_worker_quarantines_poison_and_aggregator_fails(tmp_path):
    store = RunStore(tmp_path / "store")
    request = submit_campaign(store, "fabric-poison", reps=1)
    worker = FabricWorker(store.root, drain=True, poll=0.01,
                          max_attempts=2, backoff=0.01)
    stats = worker.run()
    assert stats == {"failed": 1, "quarantined": 1}
    queue = WorkQueue(store)
    entries = queue.quarantine_entries()
    assert len(entries) == 1 and "poison task" in entries[0]["error"]
    with pytest.raises(FabricError, match="poison task"):
        wait_for_campaign(queue, request, poll=0.01)


def test_wait_for_campaign_times_out_without_workers(tmp_path):
    store = RunStore(tmp_path / "store")
    queue = WorkQueue(store)
    request = submit_campaign(store, "fabric-selftest", reps=1, queue=queue)
    with pytest.raises(FabricError, match="timed out"):
        wait_for_campaign(queue, request, poll=0.01, timeout=0.1)


def test_fabric_status_and_gc_cli(tmp_path, capsys):
    from repro.cli import main

    store_dir = str(tmp_path / "store")
    store = RunStore(store_dir)
    submit_campaign(store, "fabric-selftest", reps=2)
    FabricWorker(store_dir, drain=True, poll=0.01).run()
    assert main(["fabric", "status", "--store", store_dir]) == 0
    out = capsys.readouterr().out
    assert "spec=fabric-selftest" in out
    assert "done=2/2" in out
    assert main(["store", "gc", "--store", store_dir]) == 0
    out = capsys.readouterr().out
    assert "gc removed" in out


def test_dashboard_digests_the_journal(tmp_path):
    """`repro fabric top` state is a pure function of the journal: a
    drained campaign shows its worker as inactive with its claim and
    completion counts, and the rendered screen carries the campaign."""
    from repro.obs.dashboard import completion_rate, render_fabric_top, worker_stats

    store_dir = str(tmp_path / "store")
    store = RunStore(store_dir)
    submit_campaign(store, "fabric-selftest", reps=2)
    FabricWorker(store_dir, worker_id="digger", drain=True, poll=0.01).run()

    queue = WorkQueue(store)
    now = time.time()
    stats = worker_stats(queue.events(), now=now)
    assert "digger" in stats
    digger = stats["digger"]
    assert digger["claims"] == 2 and digger["completes"] == 2
    assert digger["failures"] == 0
    assert not digger["active"], "drained worker still marked active"
    assert digger["heartbeat_age"] >= 0
    assert completion_rate(queue.events(), now=now) > 0

    screen = render_fabric_top(queue, now=now)
    assert "fabric-selftest" in screen
    assert "2/2" in screen
    assert "digger" in screen


# -- crash recovery ----------------------------------------------------------

SLOW_SPEC_MODULE = """\
import time

from repro.exp.spec import CaseSpec, ExperimentSpec, SPECS, register


def _cases(networks=None, sleep=1.5, **_):
    def measure(seed, _sleep=float(sleep)):
        time.sleep(_sleep)
        return float(seed % 97)

    return [CaseSpec(label="slow", network=None, measure=measure,
                     trim=False)]


if "fabric-slow" not in SPECS:
    register(ExperimentSpec(name="fabric-slow", title="fabric slow selftest",
                            build_cases=_cases, default_reps=2))
"""


def _start_worker(store_dir, extra_path, *flags):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [extra_path, SRC] + env.get("PYTHONPATH", "").split(os.pathsep)
    ).rstrip(os.pathsep)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "fabric", "start",
         "--store", store_dir, "--workers", "1", "--preload", "fabric_slow",
         "--poll", "0.05", *flags],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for(predicate, timeout, message):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(message)


def test_sigkill_mid_task_unit_reclaimed_exactly_once(tmp_path):
    """The crash-recovery acceptance property: SIGKILL a worker while it
    holds a lease mid-task; the campaign still completes, the orphaned
    unit is re-claimed exactly once after lease expiry, and every
    repetition is present exactly once — no losses, no duplicates."""
    module_dir = tmp_path / "modules"
    module_dir.mkdir()
    (module_dir / "fabric_slow.py").write_text(SLOW_SPEC_MODULE)
    sys.path.insert(0, str(module_dir))
    try:
        import fabric_slow  # noqa: F401  — registers the spec here too
    finally:
        sys.path.remove(str(module_dir))

    store_dir = str(tmp_path / "store")
    store = RunStore(store_dir)
    queue = WorkQueue(store, ttl=1.0)
    request = submit_campaign(store, "fabric-slow", reps=2,
                              params={"sleep": 1.5}, queue=queue)
    units = queue.units_of(request)
    assert len(units) == 2

    victim = _start_worker(store_dir, str(module_dir), "--ttl", "1.0")
    try:
        _wait_for(
            lambda: any(e["kind"] == "claim" for e in queue.events()),
            timeout=30.0,
            message="worker never claimed a unit",
        )
        first_claim = next(e for e in queue.events() if e["kind"] == "claim")
        time.sleep(0.3)  # well inside the 1.5 s task, lease held
        victim.kill()  # SIGKILL: no release, no further heartbeats
        victim.wait(timeout=10.0)
        assert not queue.is_done(first_claim["key"])

        rescuer = _start_worker(store_dir, str(module_dir),
                                "--ttl", "1.0", "--drain")
        assert rescuer.wait(timeout=60.0) == 0
    finally:
        if victim.poll() is None:
            victim.kill()

    # Every repetition present exactly once, values correct.
    result, missing = aggregate(store, "fabric-slow", reps=2,
                                params={"sleep": 1.5})
    assert not missing
    expected = [
        float(task.seed % 97)
        for task in expand_tasks("fabric-slow", reps=2,
                                 params={"sleep": 1.5})[3]
    ]
    assert result.series["slow"] == expected

    events = queue.events()
    killed_key = first_claim["key"]
    claims = [e for e in events
              if e["kind"] == "claim" and e["key"] == killed_key]
    reclaims = [e for e in events
                if e["kind"] == "reclaim" and e["key"] == killed_key]
    completes = [e for e in events
                 if e["kind"] == "complete" and e["key"] == killed_key]
    assert len(reclaims) == 1, "orphaned unit must be re-claimed exactly once"
    assert len(claims) == 2, "one claim by the victim, one by the rescuer"
    assert len(completes) == 1, "re-claimed unit completes exactly once"
    assert completes[0]["attempts"] == 2
    # The untouched unit went through the ordinary single-claim path.
    for unit in units:
        done_events = [e for e in events
                       if e["kind"] == "complete" and e["key"] == unit.key]
        assert len(done_events) == 1
