"""Unit tests for the per-second traffic statistics."""

import pytest

from repro.transport.stats import SecondStats, TrafficStats


def test_bucket_by_second():
    stats = TrafficStats(mbits_per_segment=0.01)
    stats.bucket(1.2).segments_delivered += 5
    stats.bucket(1.9).segments_delivered += 5
    stats.bucket(2.1).segments_delivered += 7
    seconds = stats.seconds()
    assert [s.second for s in seconds] == [1, 2]
    assert seconds[0].segments_delivered == 10


def test_throughput_series_scales_by_segment_size():
    stats = TrafficStats(mbits_per_segment=0.5)
    stats.bucket(0.0).segments_delivered = 100
    assert stats.throughput_series() == [50.0]


def test_percentages_guard_division_by_zero():
    second = SecondStats(second=0)
    assert second.pct(5) == 0.0


def test_bad_tcp_is_retrans_plus_dupacks():
    second = SecondStats(second=0, retransmissions=7, duplicate_acks=3)
    assert second.bad_tcp == 10


def test_series_alignment():
    stats = TrafficStats(mbits_per_segment=0.01)
    for t in range(5):
        bucket = stats.bucket(float(t))
        bucket.segments_sent = 100
        bucket.retransmissions = t
        bucket.out_of_order = 2 * t
    assert stats.retransmission_series() == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert stats.out_of_order_series() == [0.0, 2.0, 4.0, 6.0, 8.0]
    assert len(stats.bad_tcp_series()) == 5


def test_sparse_seconds_sorted():
    stats = TrafficStats(mbits_per_segment=0.01)
    stats.bucket(9.0)
    stats.bucket(3.0)
    assert [s.second for s in stats.seconds()] == [3, 9]
