"""Property harness: the incremental checker must be indistinguishable
from a freshly-constructed one.

The route cache invalidates per entry (dirty nodes × visited sets, rule
events × per-node sensitivity) and the checker carries per-flow verdicts
across probes.  Both optimizations claim *exact* coherence: after any
sequence of topology mutations, rule churn, link flaps, node removals and
runtime additions, every cached path and every carried verdict must equal
what a cache-less evaluation of the same ground truth computes.  These
tests drive seeded random mutation sequences through a live simulation and
assert exactly that at multiple points per sequence.
"""

from __future__ import annotations

import random

import pytest

from repro.core.legitimacy import LegitimacyChecker, forwarding_path
from repro.net.topologies import attach_controllers
from repro.scenarios.generators import parse_topology
from repro.sim.faults import FaultAction
from repro.sim.network_sim import NetworkSimulation, SimulationConfig
from repro.switch.flow_table import Rule

SPECS = ["ring:6", "grid:3x3", "fattree:4", "jellyfish:10"]

#: ≥ 25 seeded sequences (ISSUE 6 acceptance criterion).
SEEDS = range(28)


def _fresh_checker(sim: NetworkSimulation) -> LegitimacyChecker:
    """A from-scratch checker over the same ground truth: no route cache,
    no carried verdicts, no memoized κ/live-subgraph state."""
    return LegitimacyChecker(
        sim.topology,
        sim.switches,
        sim.controllers,
        kappa=sim.checker.kappa,
        route_cache=None,
    )


def _assert_equivalent(sim: NetworkSimulation, rng: random.Random) -> None:
    fresh = _fresh_checker(sim)
    incremental = sim.checker

    assert incremental.flows_operational() == fresh.flows_operational()
    assert incremental.flows_resilient() == fresh.flows_resilient()
    assert incremental.is_legitimate(full=True) == fresh.is_legitimate(full=True)

    # Sampled cached paths must equal an uncached walk of the same pair.
    nodes = sim.topology.nodes
    endpoints = list(sim.controllers) + nodes
    for _ in range(10):
        a, b = rng.choice(endpoints), rng.choice(endpoints)
        if a not in sim.topology or b not in sim.topology:
            continue
        assert sim.route_cache.path(a, b) == forwarding_path(
            sim.topology, sim.switches, a, b
        ), f"cached path diverged for ({a}, {b})"


def _random_mutation(sim: NetworkSimulation, rng: random.Random, fresh_id: int) -> None:
    topology = sim.topology
    choices = ["fail_link", "install_rule", "clear_table", "add_switch"]
    if topology.failed_links():
        choices += ["recover_link", "recover_link"]
    switch_ids = [s for s in topology.switches if s in sim.switches]
    up_switches = [s for s in switch_ids if topology.node_is_up(s)]
    if up_switches:
        choices.append("fail_switch")
    down = [s for s in switch_ids if not topology.node_is_up(s)]
    if down:
        choices += ["recover_switch", "recover_switch"]
    if len(switch_ids) > 3:
        choices += ["remove_link", "remove_switch"]

    kind = rng.choice(choices)
    if kind == "fail_link":
        u, v = rng.choice(topology.links)
        sim.apply_fault(FaultAction(0.0, "fail_link", (u, v)))
    elif kind == "recover_link":
        u, v = rng.choice(topology.failed_links())
        sim.apply_fault(FaultAction(0.0, "recover_link", (u, v)))
    elif kind == "remove_link":
        u, v = rng.choice(topology.links)
        sim.apply_fault(FaultAction(0.0, "remove_link", (u, v)))
    elif kind == "fail_switch":
        sim.apply_fault(FaultAction(0.0, "fail_node", (rng.choice(up_switches),)))
    elif kind == "recover_switch":
        sim.apply_fault(FaultAction(0.0, "recover_node", (rng.choice(down),)))
    elif kind == "remove_switch":
        sim.apply_fault(FaultAction(0.0, "remove_node", (rng.choice(switch_ids),)))
    elif kind == "add_switch":
        peers = rng.sample(topology.nodes, min(2, len(topology.nodes)))
        sim.add_switch_runtime(f"nx{fresh_id}", peers)
    elif kind == "clear_table":
        sim.switches[rng.choice(switch_ids)].table.clear()
    elif kind == "install_rule":
        # Plant an arbitrary (possibly nonsensical) rule, exercising all
        # three event kinds the dirty channel distinguishes.
        sid = rng.choice(switch_ids)
        peers = topology.neighbors(sid)
        if not peers:
            return
        endpoints = list(sim.controllers) + topology.nodes
        detour = rng.choice([None, None, 0, 1])
        sim.switches[sid].table.install(
            Rule(
                cid=rng.choice(list(sim.controllers)),
                sid=sid,
                src=rng.choice(endpoints),
                dst=rng.choice(endpoints),
                priority=rng.randint(1, 1200),
                forward_to=rng.choice(peers),
                tag=None,
                detour=detour,
                detour_start=bool(detour is not None and rng.random() < 0.5),
            )
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_incremental_checker_matches_fresh_checker(seed: int) -> None:
    rng = random.Random(1000 + seed)
    spec = SPECS[seed % len(SPECS)]
    topology = parse_topology(spec, seed=seed)
    attach_controllers(topology, 2, seed=seed)
    sim = NetworkSimulation(topology, SimulationConfig(seed=seed))
    assert sim.route_cache is not None and sim.route_cache.incremental

    sim.run_for(1.0)
    _assert_equivalent(sim, rng)

    # A deterministic link flap first (every sequence must cover one), then
    # random mutations with simulation progress interleaved.
    u, v = topology.links[seed % len(topology.links)]
    sim.apply_fault(FaultAction(0.0, "fail_link", (u, v)))
    _assert_equivalent(sim, rng)
    sim.apply_fault(FaultAction(0.0, "recover_link", (u, v)))
    _assert_equivalent(sim, rng)

    for round_no in range(4):
        for i in range(rng.randint(1, 3)):
            _random_mutation(sim, rng, fresh_id=round_no * 10 + i)
        if rng.random() < 0.7:
            sim.run_for(0.5)
        _assert_equivalent(sim, rng)


@pytest.mark.parametrize("seed", range(4))
def test_incremental_checker_matches_fresh_after_node_removal(seed: int) -> None:
    """Node removal is the harshest mutation (it rewrites adjacency and
    membership at once); cover it explicitly in every run."""
    rng = random.Random(seed)
    topology = parse_topology("grid:3x3", seed=seed)
    attach_controllers(topology, 2, seed=seed)
    sim = NetworkSimulation(topology, SimulationConfig(seed=seed))
    sim.run_for(2.0)
    _assert_equivalent(sim, rng)
    victim = sorted(sim.switches)[seed % len(sim.switches)]
    sim.apply_fault(FaultAction(0.0, "remove_node", (victim,)))
    _assert_equivalent(sim, rng)
    sim.run_for(2.0)
    _assert_equivalent(sim, rng)
