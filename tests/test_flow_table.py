"""Unit tests for the bounded flow table (Section 2.1.1)."""

import pytest

from repro.switch.flow_table import FlowTable, Rule, META_PRIORITY


def rule(cid="c0", sid="s0", src="c0", dst="s9", prt=5, fwd="s1", tag=None, **kw):
    return Rule(
        cid=cid, sid=sid, src=src, dst=dst, priority=prt, forward_to=fwd, tag=tag, **kw
    )


def meta(cid="c0", sid="s0", tag="t1"):
    return Rule(
        cid=cid, sid=sid, src="⊥", dst="⊥", priority=META_PRIORITY, forward_to=None, tag=tag
    )


def test_install_and_lookup():
    table = FlowTable("s0", max_rules=10)
    table.install(rule())
    assert len(table) == 1
    assert table.matching("c0", "s9")[0].forward_to == "s1"


def test_wrong_switch_rejected():
    table = FlowTable("s0", max_rules=10)
    with pytest.raises(ValueError):
        table.install(rule(sid="other"))


def test_reinstall_same_rule_idempotent():
    table = FlowTable("s0", max_rules=10)
    table.install(rule())
    table.install(rule())
    assert len(table) == 1


def test_matching_sorted_by_priority():
    table = FlowTable("s0", max_rules=10)
    table.install(rule(prt=1, fwd="low"))
    table.install(rule(prt=9, fwd="high"))
    hits = table.matching("c0", "s9")
    assert [r.forward_to for r in hits] == ["high", "low"]


def test_meta_rules_not_matched():
    table = FlowTable("s0", max_rules=10)
    table.install(meta())
    assert table.matching("⊥", "⊥") == []


def test_eviction_least_recently_updated():
    table = FlowTable("s0", max_rules=2)
    table.install(rule(dst="d1", fwd="a"))
    table.install(rule(dst="d2", fwd="b"))
    table.install(rule(dst="d1", fwd="a"))  # refresh d1
    table.install(rule(dst="d3", fwd="c"))  # evicts d2 (stalest)
    dsts = {r.dst for r in table.rules()}
    assert dsts == {"d1", "d3"}
    assert table.evictions == 1


def test_refreshing_controller_never_evicted():
    """Lemma 1's premise: a controller that keeps refreshing its rules
    keeps them despite other controllers clogging the table."""
    table = FlowTable("s0", max_rules=4)
    keeper = rule(cid="c0", dst="d0", fwd="x")
    table.install(keeper)
    for i in range(20):
        table.install(keeper)  # c0 refreshes
        table.install(rule(cid="c1", dst=f"d{i}", fwd="y"))
    assert any(r.cid == "c0" for r in table.rules())


def test_replace_rules_of_removes_old():
    table = FlowTable("s0", max_rules=10)
    table.install(rule(dst="d1", fwd="a"))
    table.install(meta())
    table.replace_rules_of("c0", [rule(dst="d2", fwd="b")])
    dsts = {r.dst for r in table.rules() if not r.is_meta}
    assert dsts == {"d2"}
    # Meta rule survives replacement (newRound manages it).
    assert any(r.is_meta for r in table.rules())


def test_replace_rejects_foreign_rules():
    table = FlowTable("s0", max_rules=10)
    with pytest.raises(ValueError):
        table.replace_rules_of("c0", [rule(cid="c1")])


def test_delete_rules_of():
    table = FlowTable("s0", max_rules=10)
    table.install(rule(cid="c0", dst="d1"))
    table.install(rule(cid="c1", dst="d1", fwd="z"))
    table.install(meta(cid="c0"))
    removed = table.delete_rules_of("c0")
    assert removed == 2
    assert table.controllers_present() == ["c1"]


def test_delete_rules_keep_meta():
    table = FlowTable("s0", max_rules=10)
    table.install(rule(cid="c0", dst="d1"))
    table.install(meta(cid="c0"))
    table.delete_rules_of("c0", include_meta=False)
    assert [r.is_meta for r in table.rules_of("c0")] == [True]


def test_match_index_consistent_after_mutations():
    table = FlowTable("s0", max_rules=10)
    table.install(rule(dst="d1", fwd="a", prt=5))
    table.install(rule(dst="d1", fwd="b", prt=4))
    table.delete_rules_of("c0")
    assert table.matching("c0", "d1") == []
    table.install(rule(dst="d1", fwd="c", prt=3))
    assert [r.forward_to for r in table.matching("c0", "d1")] == ["c"]


def test_unambiguous_single_rule_per_match():
    table = FlowTable("s0", max_rules=10)
    table.install(rule(prt=5, fwd="a"))
    table.install(rule(prt=4, fwd="b"))
    assert table.is_unambiguous()


def test_ambiguous_same_priority_different_action():
    table = FlowTable("s0", max_rules=10)
    table.install(rule(cid="c0", prt=5, fwd="a"))
    table.install(rule(cid="c1", prt=5, fwd="b"))
    assert not table.is_unambiguous()


def test_unambiguous_with_operational_filter():
    table = FlowTable("s0", max_rules=10)
    table.install(rule(cid="c0", prt=5, fwd="a"))
    table.install(rule(cid="c1", prt=5, fwd="b"))
    # Only one of the conflicting out-ports is usable.
    assert table.is_unambiguous(operational=["a"])


def test_detour_rules_have_distinct_keys():
    table = FlowTable("s0", max_rules=10)
    table.install(rule(prt=5, fwd="a", detour=None))
    table.install(rule(prt=5, fwd="a", detour=1))
    assert len(table) == 2


def test_clear():
    table = FlowTable("s0", max_rules=10)
    table.install(rule())
    table.clear()
    assert len(table) == 0
    assert table.matching("c0", "s9") == []


def test_corrupt_with_respects_bound():
    table = FlowTable("s0", max_rules=3)
    table.corrupt_with([rule(dst=f"d{i}") for i in range(10)])
    assert len(table) <= 3
