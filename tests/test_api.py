"""Tests for the unified public run API (``repro.api``)."""

import json

import pytest

from repro.api import (
    AwaitLegitimacy,
    Bootstrap,
    InjectFaults,
    PhaseResult,
    RunFor,
    RunObserver,
    RunPlan,
    RunResult,
    build_simulation,
    place_controllers,
    resolve_topology,
    validate_topology_spec,
)
from repro.net.topology import Topology
from repro.sim.faults import FaultPlan

FAST = dict(task_delay=0.1, theta=4)


# ---------------------------------------------------------------------------
# resolve_topology
# ---------------------------------------------------------------------------


def test_resolve_topology_accepts_named_networks():
    topo = resolve_topology("B4", controllers=3, seed=0)
    assert len(topo.switches) == 12
    assert len(topo.controllers) == 3


def test_resolve_topology_accepts_generator_specs():
    topo = resolve_topology("ring:8", controllers=2, seed=1)
    assert len(topo.switches) == 8
    assert len(topo.controllers) == 2
    jelly = resolve_topology("jellyfish:10x4", controllers=3, seed=5)
    assert len(jelly.switches) == 10


def test_resolve_topology_generated_matches_legacy_construction():
    """The facade must reproduce the historical parse+attach path exactly
    (the scenario subsystem's determinism depends on it)."""
    from repro.net.topologies import attach_controllers
    from repro.scenarios.generators import parse_topology

    legacy = parse_topology("jellyfish:10", seed=3)
    attach_controllers(legacy, 2, seed=3)
    facade = resolve_topology("jellyfish:10", seed=3, controllers=2)
    assert sorted(legacy.nodes) == sorted(facade.nodes)
    assert sorted(map(tuple, legacy.links)) == sorted(map(tuple, facade.links))


def test_resolve_topology_passes_prebuilt_topology_through():
    topo = resolve_topology("grid:3x3", controllers=2, seed=0)
    again = resolve_topology(topo, controllers=5)
    assert again is topo
    assert len(again.controllers) == 2  # existing placement untouched


def test_resolve_topology_rejects_unknown_spec():
    with pytest.raises(ValueError, match="unknown topology"):
        resolve_topology("gird:3x3")


def test_validate_topology_spec_syntax_only():
    assert validate_topology_spec("B4") == "B4"
    assert validate_topology_spec("fattree:4") == "fattree:4"
    assert validate_topology_spec("harary:10x3") == "harary:10x3"
    for bad in ("nope", "ring:", "ring:x", "gird:3x3", "fattree:4.5"):
        with pytest.raises(ValueError):
            validate_topology_spec(bad)


def test_placement_strategies_are_pluggable():
    topo = resolve_topology("grid:3x4")
    ids = place_controllers(topo, 3, seed=0, placement="spread")
    assert ids == ["c0", "c1", "c2"]
    assert len(topo.controllers) == 3
    # spread is deterministic and seed-independent
    other = resolve_topology("grid:3x4")
    place_controllers(other, 3, seed=99, placement="spread")
    assert sorted(map(tuple, topo.links)) == sorted(map(tuple, other.links))
    with pytest.raises(ValueError, match="unknown placement"):
        place_controllers(resolve_topology("grid:3x4"), 2, placement="nope")


# ---------------------------------------------------------------------------
# RunPlan / phases
# ---------------------------------------------------------------------------


def test_run_plan_bootstrap_phase():
    result = (
        RunPlan("ring:6", controllers=2, seed=0)
        .configure(**FAST)
        .then(Bootstrap(timeout=60.0))
        .run()
    )
    assert result.ok
    assert result.bootstrap_time is not None and result.bootstrap_time > 0
    assert result.metrics["rules_installed"] > 0
    assert result.phases[0].phase == "bootstrap"


def test_run_plan_matches_direct_simulation():
    """The facade must produce exactly the measurement the hand-rolled
    construction path produced before the migration."""
    sim = build_simulation("ring:6", controllers=2, seed=0, **FAST)
    direct = sim.run_until_legitimate(timeout=60.0)
    via_plan = (
        RunPlan("ring:6", controllers=2, seed=0)
        .configure(**FAST)
        .then(Bootstrap(timeout=60.0))
        .run()
    )
    assert via_plan.bootstrap_time == direct


def test_recovery_phases_measure_from_last_fault():
    builder = lambda sim, rng: FaultPlan().fail_link(
        sim.sim.now + 0.05, *next(iter(sorted(map(tuple, sim.topology.links))))
    ).recover_link(sim.sim.now + 0.6, *next(iter(sorted(map(tuple, sim.topology.links)))))
    result = (
        RunPlan("grid:3x3", controllers=2, seed=1)
        .configure(**FAST)
        .then(
            Bootstrap(timeout=60.0),
            InjectFaults(builder=builder),
            AwaitLegitimacy(timeout=60.0),
        )
        .run()
    )
    assert result.ok
    inject = result.phase("inject_faults")
    assert inject.details["n_actions"] == 2
    assert result.recovery_time is not None and result.recovery_time >= 0


def test_metrics_snapshot_recovery_matches_phase_measurement():
    """metrics['recovery_time'] must agree with the await phase (it used
    to go negative: the recorder only kept the *first* convergence)."""
    builder = lambda sim, rng: FaultPlan().fail_node(
        sim.sim.now + 0.05, sim.topology.controllers[0]
    )
    result = (
        RunPlan("ring:6", controllers=2, seed=0)
        .configure(**FAST)
        .then(Bootstrap(timeout=60.0), InjectFaults(builder=builder),
              AwaitLegitimacy(timeout=60.0))
        .run()
    )
    assert result.ok
    assert result.metrics["recovery_time"] == pytest.approx(result.recovery_time)
    assert result.metrics["recovery_time"] >= 0
    assert result.metrics["last_convergence_time"] > result.metrics["convergence_time"]


def test_fault_stream_advances_across_inject_phases():
    """Consecutive InjectFaults phases share one advancing rng, so two
    identical builders draw *different* randomness."""
    draws = []

    def spy_builder(sim, rng):
        draws.append(rng.random())
        return FaultPlan().fail_link(
            sim.sim.now + 0.05, *sorted(map(tuple, sim.topology.links))[0]
        ).recover_link(sim.sim.now + 0.3, *sorted(map(tuple, sim.topology.links))[0])

    (
        RunPlan("ring:6", controllers=2, seed=0)
        .configure(**FAST)
        .then(
            Bootstrap(timeout=60.0),
            InjectFaults(builder=spy_builder), AwaitLegitimacy(timeout=60.0),
            InjectFaults(builder=spy_builder), AwaitLegitimacy(timeout=60.0),
        )
        .run()
    )
    assert len(draws) == 2 and draws[0] != draws[1]


def test_inject_faults_rejects_plan_and_builder_together():
    phase = InjectFaults(plan=FaultPlan(), builder=lambda sim, rng: FaultPlan())
    session = (
        RunPlan("ring:6", controllers=2, seed=0).configure(**FAST).session()
    )
    with pytest.raises(ValueError, match="exactly one"):
        phase.execute(session)
    with pytest.raises(ValueError, match="exactly one"):
        InjectFaults().execute(session)


def test_empty_fault_plan_yields_zero_recovery():
    result = (
        RunPlan("ring:6", controllers=2, seed=0)
        .configure(**FAST)
        .then(
            Bootstrap(timeout=60.0),
            InjectFaults(plan=FaultPlan(), relative=True),
            AwaitLegitimacy(timeout=60.0, clamp_zero=True),
        )
        .run()
    )
    assert result.ok
    assert result.recovery_time == 0.0


def test_failed_phase_aborts_the_rest():
    result = (
        RunPlan("ring:6", controllers=2, seed=0)
        .configure(**FAST)
        .then(Bootstrap(timeout=0.2), RunFor(1.0), AwaitLegitimacy(timeout=1.0))
        .run()
    )
    assert not result.ok
    assert result.bootstrap_time is None
    assert result.recovery_time is None
    assert [p.skipped for p in result.phases] == [False, True, True]


def test_run_for_phase_advances_clock():
    result = (
        RunPlan("ring:6", controllers=2, seed=0)
        .configure(**FAST)
        .then(RunFor(2.5))
        .run()
    )
    phase = result.phase("run_for")
    assert phase.ok
    assert phase.t_end - phase.t_start == pytest.approx(2.5)


def test_observer_receives_events_and_phase_ends():
    seen = {"events": [], "phases": []}

    class Spy(RunObserver):
        def on_event(self, time, name, value=None):
            seen["events"].append((time, name))

        def on_phase_end(self, result):
            seen["phases"].append(result.phase)

    builder = lambda sim, rng: FaultPlan().fail_node(
        sim.sim.now + 0.05, sim.topology.controllers[0]
    )
    (
        RunPlan("ring:6", controllers=2, seed=0)
        .configure(**FAST)
        .then(Bootstrap(timeout=60.0), InjectFaults(builder=builder),
              AwaitLegitimacy(timeout=60.0))
        .run(observer=Spy())
    )
    assert seen["phases"] == ["bootstrap", "inject_faults", "await_legitimacy"]
    names = [name for _, name in seen["events"]]
    assert "convergence" in names  # bootstrap milestone
    assert "fault" in names  # injection milestone
    assert "fail_node" in names  # the fault action itself


def test_configure_task_delay_pulls_discovery_delay_along():
    sim = build_simulation("ring:6", controllers=2, seed=0, task_delay=0.2)
    assert sim.config.discovery_delay == 0.2
    explicit = build_simulation(
        "ring:6", controllers=2, seed=0, task_delay=0.2, discovery_delay=0.4
    )
    assert explicit.config.discovery_delay == 0.4


# ---------------------------------------------------------------------------
# serialization round-trips
# ---------------------------------------------------------------------------


def test_run_result_json_round_trip():
    result = (
        RunPlan("ring:6", controllers=2, seed=7)
        .configure(**FAST)
        .then(Bootstrap(timeout=60.0))
        .run()
    )
    loaded = RunResult.from_json(result.to_json())
    assert loaded == result
    assert loaded.summary() == result.summary()
    # the JSON itself is plain data
    doc = json.loads(result.to_json(indent=2))
    assert doc["summary"]["ok"] is True


def test_phase_result_round_trip_preserves_failure_details():
    phase = PhaseResult(
        phase="await_legitimacy", ok=False, t_start=1.0, t_end=3.0,
        details={"timeout": 2.0},
    )
    assert PhaseResult.from_dict(phase.to_dict()) == phase


def test_experiment_result_json_round_trip():
    from repro.exp.runner import run_spec
    from repro.exp.spec import ExperimentResult

    result = run_spec("table8", networks=("B4",))
    loaded = ExperimentResult.from_json(result.to_json())
    assert loaded == result
    assert loaded.summary() == result.summary()


# -- memoized topology resolution (the fabric/pool worker cache) -------------


@pytest.fixture
def resolution_cache():
    from repro.api.topology import (
        disable_resolution_cache,
        enable_resolution_cache,
    )

    enable_resolution_cache()
    yield
    disable_resolution_cache()


def test_resolution_cache_returns_fresh_equal_copies(resolution_cache):
    from repro.api.topology import resolution_cache_stats

    first = resolve_topology("fattree:4", seed=0, controllers=3)
    second = resolve_topology("fattree:4", seed=0, controllers=3)
    assert first is not second
    assert resolution_cache_stats() == {"entries": 1}
    assert sorted(first.nodes) == sorted(second.nodes)
    assert sorted(first.links) == sorted(second.links)
    assert first.controllers == second.controllers
    # Mutating one copy must not leak into the next resolution.
    victim = sorted(first.switches)[0]
    first.remove_node(victim)
    third = resolve_topology("fattree:4", seed=0, controllers=3)
    assert victim in third.nodes


def test_resolution_cache_matches_uncached_build(resolution_cache):
    from repro.api.topology import disable_resolution_cache

    resolve_topology("jellyfish:20", seed=3, controllers=3)  # warm the cache
    cached = resolve_topology("jellyfish:20", seed=3, controllers=3)
    disable_resolution_cache()
    fresh = resolve_topology("jellyfish:20", seed=3, controllers=3)
    assert sorted(cached.nodes) == sorted(fresh.nodes)
    assert sorted(cached.links) == sorted(fresh.links)
    assert cached.controllers == fresh.controllers


def test_resolution_cache_keys_on_all_resolution_inputs(resolution_cache):
    from repro.api.topology import resolution_cache_stats

    resolve_topology("ring:8", seed=0, controllers=2)
    resolve_topology("ring:8", seed=1, controllers=2)
    resolve_topology("ring:8", seed=0, controllers=3)
    assert resolution_cache_stats() == {"entries": 3}


def test_resolution_cache_off_by_default():
    from repro.api.topology import resolution_cache_stats

    assert resolution_cache_stats() is None


def test_run_spec_identical_with_and_without_resolution_cache():
    """The cache must be invisible to results: a sweep over cached
    resolutions is bit-identical to the uncached baseline."""
    from repro.api.topology import (
        disable_resolution_cache,
        enable_resolution_cache,
    )
    from repro.exp.runner import run_spec

    baseline = run_spec("fig5", reps=2, networks=("B4",), base_seed=0)
    enable_resolution_cache()
    try:
        cached = run_spec("fig5", reps=2, networks=("B4",), base_seed=0)
    finally:
        disable_resolution_cache()
    assert cached.to_dict() == baseline.to_dict()
