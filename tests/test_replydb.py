"""Unit tests for the controller's bounded reply store (Algorithm 2)."""

import pytest

from repro.core.replydb import ReplyDB
from repro.core.tags import Tag
from repro.switch.commands import QueryReply


def reply(node, neighbors=("x",)):
    return QueryReply(node=node, neighbors=tuple(neighbors), managers=(), rules=())


T1 = Tag("c0", 1)
T2 = Tag("c0", 2)
T3 = Tag("c0", 3)


def test_store_with_matching_tag():
    db = ReplyDB("c0", max_replies=8)
    assert not db.store(reply("s1"), T1, current_tag=T1)
    assert "s1" in db
    assert db.get("s1").tag == T1


def test_store_with_stale_tag_discarded():
    db = ReplyDB("c0", max_replies=8)
    db.store(reply("s1"), T1, current_tag=T2)
    assert "s1" not in db


def test_store_replaces_previous_from_same_node():
    db = ReplyDB("c0", max_replies=8)
    db.store(reply("s1", ["a"]), T1, current_tag=T1)
    db.store(reply("s1", ["b"]), T1, current_tag=T1)
    assert len(db) == 1
    assert db.get("s1").reply.neighbors == ("b",)


def test_c_reset_on_overflow():
    db = ReplyDB("c0", max_replies=2)
    db.store(reply("s1"), T1, current_tag=T1)
    db.store(reply("s2"), T1, current_tag=T1)
    was_reset = db.store(reply("s3"), T1, current_tag=T1)
    assert was_reset
    assert db.c_resets == 1
    # After the reset only the new arrival is present.
    assert db.nodes() == ["s3"]


def test_no_reset_when_replacing_existing():
    db = ReplyDB("c0", max_replies=2)
    db.store(reply("s1"), T1, current_tag=T1)
    db.store(reply("s2"), T1, current_tag=T1)
    was_reset = db.store(reply("s1"), T1, current_tag=T1)
    assert not was_reset


def test_res_filters_by_tag():
    db = ReplyDB("c0", max_replies=8)
    db.store(reply("s1"), T1, current_tag=T1)
    db.store(reply("s2"), T2, current_tag=T2)
    assert [r.node for r in db.res(T1)] == ["s1"]
    assert [r.node for r in db.res(T2)] == ["s2"]


def test_fusion_prefers_current_round():
    db = ReplyDB("c0", max_replies=8)
    db.store(reply("s1", ["old"]), T1, current_tag=T1)
    db.store(reply("s2", ["only-prev"]), T1, current_tag=T1)
    db.store(reply("s1", ["new"]), T2, current_tag=T2)
    merged = {r.node: r for r in db.fusion(current=T2, previous=T1)}
    assert merged["s1"].neighbors == ("new",)
    assert merged["s2"].neighbors == ("only-prev",)


def test_prune_drops_stale_tags():
    db = ReplyDB("c0", max_replies=8)
    db.store(reply("s1"), T1, current_tag=T1)
    db.prune(keep_tags={T2, T3}, reachable={})
    assert "s1" not in db


def test_prune_drops_unreachable_senders():
    db = ReplyDB("c0", max_replies=8)
    db.store(reply("s1"), T1, current_tag=T1)
    db.store(reply("s2"), T1, current_tag=T1)
    db.prune(keep_tags={T1}, reachable={T1: {"s1"}})
    assert db.nodes() == ["s1"]


def test_drop_tag():
    db = ReplyDB("c0", max_replies=8)
    db.store(reply("s1"), T1, current_tag=T1)
    db.store(reply("s2"), T2, current_tag=T2)
    db.drop_tag(T1)
    assert db.nodes() == ["s2"]


def test_at_most_one_c_reset_under_steady_arrivals():
    """Lemma 2 part 3: after the first C-reset the store never again
    exceeds the bound (arrivals replace, then evict via reset at most
    once)."""
    db = ReplyDB("c0", max_replies=4)
    for i in range(20):
        db.store(reply(f"s{i % 4}"), T1, current_tag=T1)
    assert db.c_resets <= 1


def test_too_small_bound_rejected():
    with pytest.raises(ValueError):
        ReplyDB("c0", max_replies=1)


def test_corrupt_respects_bound():
    db = ReplyDB("c0", max_replies=3)
    db.corrupt([(reply(f"s{i}"), T1) for i in range(10)])
    assert len(db) <= 3
