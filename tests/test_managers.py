"""Unit tests for the bounded manager set (Section 2.1.1)."""

import pytest

from repro.switch.managers import ManagerSet


def test_add_and_membership():
    managers = ManagerSet(max_managers=4)
    managers.add("c0")
    assert "c0" in managers
    assert managers.members() == ["c0"]


def test_remove():
    managers = ManagerSet(max_managers=4)
    managers.add("c0")
    assert managers.remove("c0")
    assert not managers.remove("c0")
    assert len(managers) == 0


def test_eviction_of_stalest():
    managers = ManagerSet(max_managers=2)
    managers.add("c0")
    managers.add("c1")
    managers.add("c0")  # refresh c0
    managers.add("c2")  # evicts c1
    assert managers.members() == ["c0", "c2"]
    assert managers.evictions == 1


def test_refreshing_manager_survives_clogging():
    managers = ManagerSet(max_managers=2)
    managers.add("keeper")
    for i in range(10):
        managers.add("keeper")
        managers.add(f"noise{i}")
    assert "keeper" in managers


def test_add_existing_refreshes_without_eviction():
    managers = ManagerSet(max_managers=2)
    managers.add("c0")
    managers.add("c1")
    managers.add("c1")
    assert managers.evictions == 0
    assert len(managers) == 2


def test_clear():
    managers = ManagerSet(max_managers=2)
    managers.add("c0")
    managers.clear()
    assert len(managers) == 0


def test_corrupt_with_respects_bound():
    managers = ManagerSet(max_managers=3)
    managers.corrupt_with([f"g{i}" for i in range(10)])
    assert len(managers) <= 3


def test_invalid_bound_rejected():
    with pytest.raises(ValueError):
        ManagerSet(max_managers=0)
