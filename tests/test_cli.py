"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import FIGURES, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "B4" in out and "fig5" in out


def test_bootstrap_command(capsys):
    assert main(["bootstrap", "--network", "Clos", "--reps", "1"]) == 0
    out = capsys.readouterr().out
    assert "bootstrapped" in out
    assert "median" in out


def test_recover_command(capsys):
    assert main(["recover", "--network", "B4", "--fault", "link"]) == 0
    out = capsys.readouterr().out
    assert "recovered in" in out


def test_iperf_command(capsys):
    assert main(["iperf", "--network", "B4"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out


TRAFFIC_FAST = ["--topology", "jellyfish:12", "--flows", "2000",
                "--pairs", "16", "--duration", "6"]

from repro.traffic import HAVE_NUMPY

requires_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="traffic engine needs numpy"
)


@requires_numpy
def test_traffic_command(capsys):
    assert main(["traffic", *TRAFFIC_FAST, "--reps", "1"]) == 0
    out = capsys.readouterr().out
    for metric in ("goodput", "disrupted", "fct-p99"):
        assert f"jellyfish:12 churn {metric}" in out


@requires_numpy
def test_traffic_serial_and_parallel_rows_match(capsys):
    base = ["traffic", *TRAFFIC_FAST, "--reps", "2", "--seed", "0"]
    assert main(base + ["--workers", "1"]) == 0
    serial = capsys.readouterr().out.splitlines()
    assert main(base + ["--workers", "3"]) == 0
    parallel = capsys.readouterr().out.splitlines()
    strip = lambda lines: [l for l in lines if not l.startswith("-- traffic")]
    assert strip(serial) == strip(parallel)


@requires_numpy
def test_traffic_store_cold_then_warm(tmp_path, capsys):
    """One simulation serves all three metrics (DERIVED), and a second
    invocation resumes entirely from the store (HIT) with byte-identical
    stdout."""
    store = str(tmp_path / "runs")
    base = ["traffic", *TRAFFIC_FAST, "--reps", "1", "--store", store]
    assert main(base) == 0
    cold = capsys.readouterr()
    assert "store: hits=0 derived=2 simulated=1" in cold.err
    assert main(base) == 0
    warm = capsys.readouterr()
    assert "store: hits=3 derived=0 simulated=0" in warm.err
    strip = lambda text: [l for l in text.splitlines()
                          if not l.startswith("-- traffic")]
    assert strip(cold.out) == strip(warm.out)


@requires_numpy
def test_traffic_json_output(capsys):
    assert main(["traffic", *TRAFFIC_FAST, "--reps", "1", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert "jellyfish:12 churn goodput" in doc["series"]


def test_figure_command_table8(capsys):
    assert main(["figure", "table8"]) == 0
    out = capsys.readouterr().out
    assert "Table 8" in out


def test_all_figures_registered():
    expected = {
        "table8", "fig5", "fig6", "fig7", "fig9", "fig10", "fig11",
        "fig12", "fig13", "fig14", "fig15", "fig16", "table17",
        "fig18", "fig19", "fig20",
    }
    assert set(FIGURES) == expected


def test_parser_rejects_unknown_network():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bootstrap", "--network", "nope"])


def test_sweep_command(capsys):
    assert main([
        "sweep", "--figure", "fig5", "--network", "B4", "--reps", "2", "--workers", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "workers=2" in out


def test_sweep_serial_and_parallel_rows_match(capsys):
    main(["sweep", "--figure", "fig5", "--network", "Clos", "--reps", "2", "--workers", "1"])
    serial = capsys.readouterr().out.splitlines()
    main(["sweep", "--figure", "fig5", "--network", "Clos", "--reps", "2", "--workers", "3"])
    parallel = capsys.readouterr().out.splitlines()
    strip = lambda lines: [l for l in lines if not l.startswith("-- sweep")]
    assert strip(serial) == strip(parallel)


def test_sweep_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "--figure", "fig99"])


SCENARIO_FAST = ["--task-delay", "0.1", "--theta", "4", "--controllers", "2"]


def test_scenario_command(capsys):
    assert main([
        "scenario", "--topology", "ring:8", "--campaign", "flapping",
        "--reps", "2", "--workers", "2", "--seed", "0", *SCENARIO_FAST,
    ]) == 0
    out = capsys.readouterr().out
    assert "ring:8 flapping" in out
    assert "workers=2" in out


def test_scenario_serial_and_parallel_rows_match(capsys):
    base = ["scenario", "--topology", "jellyfish:8", "--campaign", "churn",
            "--reps", "2", "--seed", "0", *SCENARIO_FAST]
    main(base + ["--workers", "1"])
    serial = capsys.readouterr().out.splitlines()
    main(base + ["--workers", "3"])
    parallel = capsys.readouterr().out.splitlines()
    strip = lambda lines: [l for l in lines if not l.startswith("-- scenario")]
    assert strip(serial) == strip(parallel)


def test_scenario_rejects_unknown_campaign():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["scenario", "--campaign", "tsunami"])


def test_scenario_reports_non_convergent_repetitions(capsys):
    """Repetitions the runner drops (None measurements) must be counted
    and fail the command, not silently vanish from the series."""
    assert main([
        "scenario", "--topology", "ring:6", "--campaign", "churn",
        "--reps", "2", "--timeout", "0.4", *SCENARIO_FAST,
    ]) == 1
    out = capsys.readouterr().out
    assert "2/2 repetitions never reached a legitimate configuration" in out


def test_scenario_rejects_malformed_topology_before_running(capsys):
    assert main(["scenario", "--topology", "gird:3x3", "--campaign", "churn"]) == 2
    err = capsys.readouterr().err
    assert "unknown topology" in err


def test_list_shows_scenario_families_and_campaigns(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "jellyfish" in out and "churn" in out


def test_bootstrap_accepts_generated_topology_spec(capsys):
    """The unified spec syntax: generator specs work on every command."""
    assert main(["bootstrap", "--network", "ring:6", "--controllers", "2",
                 "--reps", "1"]) == 0
    out = capsys.readouterr().out
    assert "bootstrapped" in out


def test_bootstrap_json_output_parses(capsys):
    assert main(["bootstrap", "--network", "fattree:4", "--reps", "1", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["command"] == "bootstrap"
    assert doc["network"] == "fattree:4"
    run = doc["runs"][0]
    assert run["summary"]["ok"] is True
    assert run["summary"]["bootstrap_time"] > 0
    assert run["phases"][0]["phase"] == "bootstrap"


def test_recover_json_round_trips_to_run_result(capsys):
    from repro.api import RunResult

    assert main(["recover", "--network", "B4", "--fault", "link", "--json"]) == 0
    result = RunResult.from_json(capsys.readouterr().out)
    assert result.ok
    assert result.recovery_time is not None
    assert [p.phase for p in result.phases] == [
        "bootstrap", "inject_faults", "await_legitimacy",
    ]


def test_sweep_json_and_out_file(tmp_path, capsys):
    from repro.exp.spec import ExperimentResult

    artifact = tmp_path / "sweep.json"
    assert main(["sweep", "--figure", "fig5", "--network", "B4", "--reps", "2",
                 "--json", "--out", str(artifact)]) == 0
    stdout_doc = json.loads(capsys.readouterr().out)
    file_doc = json.loads(artifact.read_text())
    assert stdout_doc == file_doc
    result = ExperimentResult.from_dict(file_doc)
    assert result.series["B4"] == [5.0, 4.5]


def test_scenario_json_output(capsys):
    assert main([
        "scenario", "--topology", "ring:8", "--campaign", "flapping",
        "--reps", "1", "--seed", "0", "--json", *SCENARIO_FAST,
    ]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert "ring:8 flapping" in doc["series"]


def test_out_file_without_json_keeps_human_rows(tmp_path, capsys):
    artifact = tmp_path / "boot.json"
    assert main(["bootstrap", "--network", "Clos", "--reps", "1",
                 "--out", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "bootstrapped" in out  # human rows still printed
    doc = json.loads(artifact.read_text())
    assert doc["runs"][0]["summary"]["ok"] is True


# -- stabilize ---------------------------------------------------------------


def test_stabilize_command(capsys):
    assert main([
        "stabilize", "--topology", "ring:8", "--corruption", "mixed",
        "--reps", "2", "--workers", "2", "--seed", "0", *SCENARIO_FAST,
    ]) == 0
    out = capsys.readouterr().out
    assert "ring:8 mixed none" in out
    assert "workers=2" in out


def test_stabilize_serial_and_parallel_rows_match(capsys):
    base = ["stabilize", "--topology", "ring:6", "--corruption", "mixed",
            "--scheduler", "reorder", "--reps", "2", "--seed", "0",
            *SCENARIO_FAST]
    # == 0, not just output equality: two identically *failing* runs would
    # also print matching rows, masking a stabilization regression.
    assert main(base + ["--workers", "1"]) == 0
    serial = capsys.readouterr().out.splitlines()
    assert main(base + ["--workers", "3"]) == 0
    parallel = capsys.readouterr().out.splitlines()
    strip = lambda lines: [l for l in lines if not l.startswith("-- stabilize")]
    assert strip(serial) == strip(parallel)


def test_stabilize_json_output(capsys):
    assert main([
        "stabilize", "--topology", "ring:6", "--corruption", "desync-views",
        "--reps", "1", "--json", *SCENARIO_FAST,
    ]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert "ring:6 desync-views none" in doc["series"]


def test_stabilize_rejects_unknown_corruption_and_scheduler():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["stabilize", "--corruption", "gremlins"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["stabilize", "--scheduler", "chaotic"])


def test_stabilize_rejects_malformed_topology_before_running(capsys):
    assert main(["stabilize", "--topology", "gird:3x3"]) == 2
    assert "unknown topology" in capsys.readouterr().err


def test_list_shows_corruptions_and_schedulers(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "corruptions:" in out and "clogged-memory" in out
    assert "schedulers:" in out and "max-delay" in out


# -- parse-time knob validation (shared parent parsers) ----------------------


@pytest.mark.parametrize("argv", [
    ["scenario", "--theta", "0"],
    ["stabilize", "--theta", "-3"],
    ["report", "--figure", "scenario", "--store", "x", "--theta", "0"],
    ["scenario", "--timeout", "0"],
    ["stabilize", "--timeout", "-1"],
    ["scenario", "--task-delay", "0"],
    ["bootstrap", "--task-delay", "-0.5"],
])
def test_bad_knobs_rejected_at_parse_time(argv):
    with pytest.raises(SystemExit):
        build_parser().parse_args(argv)


def test_shared_knob_defaults_are_consistent():
    """The dedup contract: every command carrying the shared knobs parses
    the same defaults (previously `common` and `scenario_knobs` each
    defined their own copies)."""
    parser = build_parser()
    boot = parser.parse_args(["bootstrap"])
    scen = parser.parse_args(["scenario"])
    stab = parser.parse_args(["stabilize"])
    rep = parser.parse_args(["report", "--figure", "scenario", "--store", "x"])
    for args in (boot, scen, stab, rep):
        assert args.controllers == 3
        assert args.seed == 0
        assert args.task_delay == 0.5
    for args in (scen, stab, rep):
        assert args.theta == 10
        assert args.timeout == 240.0
        assert args.topology == "jellyfish:20"
