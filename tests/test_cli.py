"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "B4" in out and "fig5" in out


def test_bootstrap_command(capsys):
    assert main(["bootstrap", "--network", "Clos", "--reps", "1"]) == 0
    out = capsys.readouterr().out
    assert "bootstrapped" in out
    assert "median" in out


def test_recover_command(capsys):
    assert main(["recover", "--network", "B4", "--fault", "link"]) == 0
    out = capsys.readouterr().out
    assert "recovered in" in out


def test_traffic_command(capsys):
    assert main(["traffic", "--network", "B4"]) == 0
    out = capsys.readouterr().out
    assert "throughput" in out


def test_figure_command_table8(capsys):
    assert main(["figure", "table8"]) == 0
    out = capsys.readouterr().out
    assert "Table 8" in out


def test_all_figures_registered():
    expected = {
        "table8", "fig5", "fig6", "fig7", "fig9", "fig10", "fig11",
        "fig12", "fig13", "fig14", "fig15", "fig16", "table17",
        "fig18", "fig19", "fig20",
    }
    assert set(FIGURES) == expected


def test_parser_rejects_unknown_network():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bootstrap", "--network", "nope"])
