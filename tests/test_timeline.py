"""Tests for the convergence timeline sampler."""

import pytest

from repro import build_network, NetworkSimulation, SimulationConfig
from repro.sim.timeline import ConvergenceTimeline


def make():
    topo = build_network("B4", n_controllers=2, seed=3)
    sim = NetworkSimulation(topo, SimulationConfig(seed=3))
    timeline = ConvergenceTimeline(sim, interval=1.0)
    timeline.attach()
    return sim, timeline


def test_samples_accumulate():
    sim, timeline = make()
    sim.run_for(5.0)
    assert len(timeline.samples) >= 4
    assert timeline.samples[0].time <= timeline.samples[-1].time


def test_discovery_grows_monotonically_during_bootstrap():
    sim, timeline = make()
    sim.run_for(6.0)
    for cid in sim.controllers:
        counts = [c for _, c in timeline.discovery_series(cid)]
        assert counts[-1] >= counts[0]
        assert counts[-1] == len(sim.topology.nodes)  # full discovery


def test_first_legitimate_at_matches_convergence():
    sim, timeline = make()
    t = sim.run_until_legitimate(timeout=120.0)
    sim.run_for(2.0)  # take a couple more samples
    legit_at = timeline.first_legitimate_at()
    assert legit_at is not None
    assert legit_at >= t - 1.5  # within one sampling interval


def test_rules_series_grows():
    sim, timeline = make()
    sim.run_for(6.0)
    rules = [r for _, r in timeline.rules_series()]
    assert rules[-1] > 0


def test_render_produces_chart():
    sim, timeline = make()
    sim.run_until_legitimate(timeout=120.0)
    sim.run_for(1.5)
    chart = timeline.render()
    assert "c0" in chart and "|" in chart


def test_attach_idempotent():
    sim, timeline = make()
    timeline.attach()
    sim.run_for(3.0)
    times = [s.time for s in timeline.samples]
    assert len(times) == len(set(times))  # no double sampling


def test_invalid_interval():
    topo = build_network("B4", n_controllers=2, seed=1)
    sim = NetworkSimulation(topo, SimulationConfig(seed=1))
    with pytest.raises(ValueError):
        ConvergenceTimeline(sim, interval=0)
