"""Tests for the experiment-harness utilities (repro.analysis)."""

import pytest

from repro.analysis.experiments import (
    ALL_NETWORKS,
    TABLE17_NETWORKS,
    THETA,
    TIMEOUT,
    ExperimentResult,
    table8_topologies,
    fig15_throughput_with_recovery,
    table17_correlation,
)


def test_theta_matches_paper_settings():
    """Section 6.3: Θ=10 for B4/Clos, Θ=30 for the Rocketfuel networks."""
    assert THETA["B4"] == 10 and THETA["Clos"] == 10
    assert THETA["Telstra"] == 30 and THETA["AT&T"] == 30 and THETA["EBONE"] == 30


def test_every_network_has_timeout():
    for network in ALL_NETWORKS + TABLE17_NETWORKS:
        assert network in TIMEOUT


def test_experiment_result_rows_render():
    result = ExperimentResult(name="Demo", series={"a": [1.0, 2.0, 3.0]}, notes="n")
    rows = result.rows()
    assert rows[0] == "== Demo =="
    assert any("median" in row for row in rows)
    assert rows[-1].strip().startswith("note:")


def test_experiment_result_handles_empty_series():
    result = ExperimentResult(name="Demo", series={"a": []})
    assert "(no data)" in "\n".join(result.rows())
    assert result.summary() == {}


def test_table8_experiment_runs():
    result = table8_topologies()
    assert "B4 nodes" in result.series
    assert result.series["EBONE diameter"] == [11.0]


def test_fig15_series_are_thirty_seconds():
    result = fig15_throughput_with_recovery(networks=("B4",))
    assert len(result.series["B4"]) == 30


def test_table17_uses_papers_network_list():
    assert set(TABLE17_NETWORKS) == {"Clos", "B4", "Telstra", "EBONE", "Exodus"}


def test_table17_single_network():
    result = table17_correlation(networks=("B4",))
    (r,) = result.series["B4"]
    assert -1.0 <= r <= 1.0
