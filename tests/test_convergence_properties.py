"""Property-based convergence tests (seeded generate-and-shrink).

The paper's Theorem 1 claims convergence to a legitimate configuration
from *any* fault sequence.  The harness in
:mod:`repro.scenarios.harness` generates random
``(topology, campaign, seed)`` triples across every scenario family and
campaign, checks that each re-converges within the bounded horizon, and
on failure shrinks to (and prints) a minimal reproducing triple.
"""

import pytest

from repro.scenarios import harness
from repro.scenarios.campaigns import CAMPAIGNS
from repro.scenarios.generators import parse_topology
from repro.scenarios.harness import (
    ConvergenceCase,
    TOPOLOGY_POOL,
    campaign_plan,
    check_case,
    generate_cases,
    plan_is_transient,
    run_convergence_property,
    shrink_case,
)


def test_generate_cases_deterministic_and_diverse():
    a = generate_cases(64, base_seed=0)
    assert a == generate_cases(64, base_seed=0)
    assert a != generate_cases(64, base_seed=1)
    families = {case.topology.split(":")[0] for case in a}
    assert families == {"ring", "grid", "jellyfish", "harary", "fattree"}
    assert {case.campaign for case in a} == set(CAMPAIGNS)


def test_topology_pool_is_all_parseable_and_resilient():
    for family in TOPOLOGY_POOL:
        for spec in family:
            assert parse_topology(spec, seed=0).two_edge_connected(), spec


def test_convergence_property_50_cases():
    """Acceptance: ≥ 50 generated convergence cases in tier-1.  Any
    failure prints the reproducing (topology, campaign, seed) triple."""
    report = run_convergence_property(50, base_seed=0)
    assert report.ok, f"non-convergent cases: {report.failures}"
    assert len(report.recovery_times) == 50
    assert all(t >= 0.0 for t in report.recovery_times)


def test_campaign_plan_matches_what_the_measurement_injects():
    case = ConvergenceCase("ring:6", "churn", seed=4)
    plan = campaign_plan(case)
    assert plan.actions == campaign_plan(case).actions
    assert check_case(case, plan=plan) == check_case(case)


def test_shrink_finds_minimal_failing_prefix(monkeypatch):
    """With a fake oracle that fails whenever a plan carries > 2 trigger
    (fail/corrupt) actions, the shrinker must return a transient prefix
    with exactly 3 of them."""
    case = ConvergenceCase("ring:10", "mixed", seed=1)
    real_plan = campaign_plan(case)
    triggers = lambda p: [
        a for a in p.actions if a.kind.startswith(("fail", "corrupt"))
    ]
    assert len(triggers(real_plan)) > 3

    def fake_check(c, plan=None):
        if c.topology != "ring:10":
            return 0.5  # smaller topologies pass, so only the plan shrinks
        actual = plan if plan is not None else real_plan
        return None if len(triggers(actual)) > 2 else 0.5

    monkeypatch.setattr(harness, "check_case", fake_check)
    shrunk, shrunk_plan = shrink_case(case)
    assert shrunk.topology == "ring:10"
    assert shrunk_plan is not None
    assert len(triggers(shrunk_plan)) == 3
    assert len(shrunk_plan.actions) < len(real_plan.actions)
    assert plan_is_transient(shrunk_plan), "shrunk schedules must stay transient"


def test_shrunk_prefixes_keep_matching_recovers():
    """Regression: a raw prefix cut between a fail and its recover leaves
    the network permanently degraded; _transient_prefix must append the
    missing recovers from the remainder."""
    case = ConvergenceCase("ring:8", "churn", seed=3)
    plan = campaign_plan(case)
    assert plan.actions, "churn produced no schedule"
    for cut in range(1, len(plan.actions)):
        assert plan_is_transient(harness._transient_prefix(plan, cut)), cut


def test_plan_with_permanent_removal_is_not_transient():
    from repro.sim.faults import FaultPlan

    assert not plan_is_transient(FaultPlan().remove_link(1.0, "a", "b"))
    assert not plan_is_transient(FaultPlan().remove_node(1.0, "a"))
    assert plan_is_transient(
        FaultPlan().fail_link(1.0, "a", "b").recover_link(2.0, "a", "b")
    )


def test_shrink_prefers_smaller_topologies(monkeypatch):
    """With an oracle that fails on every ring, the shrinker must walk
    down to the smallest ring in the pool."""
    case = ConvergenceCase("ring:10", "flapping", seed=2)

    def fake_check(c, plan=None):
        return None if c.topology.startswith("ring") else 0.5

    monkeypatch.setattr(harness, "check_case", fake_check)
    shrunk, _ = shrink_case(case)
    assert shrunk.topology == "ring:5"


def test_repro_line_is_copy_pastable():
    case = ConvergenceCase("grid:2x3", "corruption", seed=77)
    line = case.repro_line()
    assert "grid:2x3" in line and "corruption" in line and "77" in line
    assert eval(line, {"check_case": check_case, "ConvergenceCase": ConvergenceCase}) is not None


def test_failing_case_reports_triple(monkeypatch, capsys):
    """A non-convergent case must print its reproducing triple."""
    cases = [ConvergenceCase("ring:5", "churn", seed=9)]
    monkeypatch.setattr(harness, "generate_cases", lambda n, base_seed=0: cases)
    monkeypatch.setattr(harness, "check_case", lambda c, plan=None: None)
    monkeypatch.setattr(
        harness, "shrink_case", lambda c: (c, None)
    )
    report = run_convergence_property(1)
    assert not report.ok
    out = capsys.readouterr().out
    assert "ring:5" in out and "churn" in out and "seed=9" in out
    assert "reproduce:" in out


@pytest.mark.parametrize("campaign", sorted(CAMPAIGNS))
def test_each_campaign_converges_on_a_fixed_small_case(campaign):
    assert check_case(ConvergenceCase("grid:2x3", campaign, seed=13)) is not None
