"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator, EventQueue
from repro.sim.events import EventKind


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_fifo():
    sim = Simulator()
    order = []
    for tag in "abcde":
        sim.schedule(1.0, lambda t=tag: order.append(t))
    sim.run()
    assert order == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    # The later event still fires on a subsequent run.
    sim.run()
    assert fired == [1, 5]


def test_nested_scheduling():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(1.0, lambda: fired.append("inner"))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == ["outer", "inner"]
    assert sim.now == 2.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_skipped():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    sim.run()
    assert fired == []


def test_stop_requested_mid_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]


def test_stop_when_condition():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(stop_when=lambda: len(fired) >= 3)
    assert fired == [0, 1, 2]


def test_max_steps():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(max_steps=4)
    assert len(fired) == 4


def test_trace_records_kind_and_note():
    sim = Simulator()
    sim.enable_trace()
    sim.schedule(1.0, lambda: None, kind=EventKind.PROBE, note="hello")
    sim.run()
    assert sim.trace == [(1.0, EventKind.PROBE, "hello")]


def test_trace_requires_enable():
    sim = Simulator()
    with pytest.raises(RuntimeError):
        _ = sim.trace


def test_event_queue_peek_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    first.cancel()
    assert queue.peek_time() == 2.0


def test_event_queue_pop_skips_cancelled():
    """Regression: pop() without a preceding peek_time() must never
    surface a cancelled event."""
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    second = queue.push(2.0, lambda: None)
    first.cancel()
    assert queue.pop() is second


def test_event_queue_pop_cancel_then_pop_ordering():
    queue = EventQueue()
    events = [queue.push(float(t), lambda: None, note=str(t)) for t in (1, 2, 3, 4)]
    events[0].cancel()
    events[2].cancel()
    assert [queue.pop().time for _ in range(2)] == [2.0, 4.0]
    assert len(queue) == 0


def test_event_queue_pop_empty_after_cancellations_raises():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    event.cancel()
    with pytest.raises(IndexError):
        queue.pop()
