"""Unit tests for the Renaissance controller (Algorithm 2), driven
directly — no simulator — through its message-level interface."""

from repro.core.config import RenaissanceConfig
from repro.core.controller import RenaissanceController
from repro.core.tags import Tag
from repro.switch.abstract_switch import AbstractSwitch
from repro.switch.commands import (
    CommandBatch,
    NewRound,
    Query,
    QueryReply,
)


def make_controller(cid="c0", neighbors=("s1",), kappa=1):
    config = RenaissanceConfig.for_network(2, 4, kappa=kappa)
    return RenaissanceController(cid, config, alive_neighbors=lambda: list(neighbors))


class MiniFabric:
    """A line c0 - s1 - s2 driven synchronously: every batch the controller
    emits is executed on the target switch immediately and the reply fed
    back.  Distance-2 reachability mimics the neighbour relay."""

    def __init__(self):
        self.s1 = AbstractSwitch("s1", alive_neighbors=lambda: ["c0", "s2"])
        self.s2 = AbstractSwitch("s2", alive_neighbors=lambda: ["s1"])
        self.controller = make_controller("c0", neighbors=("s1",))

    def step(self):
        for dst, batch in self.controller.iterate():
            switch = {"s1": self.s1, "s2": self.s2}.get(dst)
            if switch is None:
                continue
            reply = switch.handle_batch(batch)
            if reply is not None:
                self.controller.on_reply(reply)


def test_first_iteration_queries_direct_neighbors():
    controller = make_controller(neighbors=("s1", "s2"))
    batches = controller.iterate()
    assert {dst for dst, _ in batches} == {"s1", "s2"}
    for _, batch in batches:
        assert isinstance(batch.commands[0], NewRound)
        assert isinstance(batch.commands[-1], Query)


def test_round_advances_when_all_replied():
    fabric = MiniFabric()
    before = fabric.controller.rounds_completed
    # Step 1 queries s1; step 2 learns of s2 and queries it; step 3 sees
    # every reachable node answered and closes the round.
    for _ in range(3):
        fabric.step()
    assert fabric.controller.rounds_completed > before


def test_discovery_expands_to_distance_two():
    fabric = MiniFabric()
    for _ in range(6):
        fabric.step()
    view = fabric.controller.current_view()
    assert "s2" in view.nodes


def test_rules_installed_on_discovered_switches():
    fabric = MiniFabric()
    for _ in range(8):
        fabric.step()
    assert fabric.s1.table.rules_of("c0")
    assert "c0" in fabric.s1.managers.members()
    assert "c0" in fabric.s2.managers.members()


def test_meta_rule_tracks_current_round():
    fabric = MiniFabric()
    for _ in range(4):
        fabric.step()
    assert fabric.s1.meta_tag_of("c0") == fabric.controller.curr_tag


def test_reply_with_wrong_tag_ignored():
    controller = make_controller()
    stale = QueryReply(node="s1", neighbors=("c0",), managers=(), rules=())
    controller.on_reply(stale)  # no echo of our tag at all
    assert "s1" not in controller.replydb


def test_on_query_echoes_tag():
    controller = make_controller("c0")
    reply = controller.on_query("c9", Tag("c9", 7))
    assert reply.kind == "controller"
    assert reply.node == "c0"
    echoes = [r for r in reply.rules if r.cid == "c9"]
    assert len(echoes) == 1 and echoes[0].tag == Tag("c9", 7)


def test_on_batch_answers_query_only():
    controller = make_controller("c0")
    batch = CommandBatch("c1", (NewRound(Tag("c1", 1)), Query(Tag("c1", 1))))
    reply = controller.on_batch(batch)
    assert reply is not None and reply.node == "c0"
    no_query = CommandBatch("c1", (NewRound(Tag("c1", 2)),))
    assert controller.on_batch(no_query) is None


def test_failed_controller_is_silent():
    controller = make_controller()
    controller.fail_stop()
    assert controller.iterate() == []
    assert controller.on_reply(
        QueryReply(node="s1", neighbors=(), managers=(), rules=())
    ) is False


def test_recover_resets_volatile_state():
    fabric = MiniFabric()
    for _ in range(4):
        fabric.step()
    fabric.controller.fail_stop()
    fabric.controller.recover()
    assert len(fabric.controller.replydb) == 0
    assert not fabric.controller.failed
    # And it can bootstrap again.
    for _ in range(6):
        fabric.step()
    assert "s2" in fabric.controller.current_view().nodes


def test_tags_advance_monotonically_per_round():
    fabric = MiniFabric()
    seen = set()
    for _ in range(10):
        fabric.step()
        seen.add(fabric.controller.curr_tag)
    assert len(seen) >= 5  # a fresh tag per completed round


def test_stale_rule_cleanup_of_unreachable_controller():
    """A dead controller's rules and manager entry on a switch are removed
    once the topology view is quiescent (Section 4.1.2)."""
    fabric = MiniFabric()
    # Plant a ghost controller's state on s1.
    from repro.switch.flow_table import Rule

    ghost_rule = Rule(
        cid="ghost", sid="s1", src="ghost", dst="s2", priority=5, forward_to="s2"
    )
    fabric.s1.corrupt(rules=(ghost_rule,), managers=("ghost",))
    assert "ghost" in fabric.s1.managers.members()
    for _ in range(10):
        fabric.step()
    assert "ghost" not in fabric.s1.managers.members()
    assert fabric.s1.table.rules_of("ghost") == []


def test_live_peer_never_deleted():
    """Two live controllers must not erase each other (the oscillation
    regression)."""
    s1 = AbstractSwitch("s1", alive_neighbors=lambda: ["c0", "c1", "s2"])
    s2 = AbstractSwitch("s2", alive_neighbors=lambda: ["s1", "c0", "c1"])
    c0 = make_controller("c0", neighbors=("s1", "s2"))
    c1 = make_controller("c1", neighbors=("s1", "s2"))
    switches = {"s1": s1, "s2": s2}
    controllers = {"c0": c0, "c1": c1}

    def step(ctrl):
        for dst, batch in ctrl.iterate():
            if dst in switches:
                reply = switches[dst].handle_batch(batch)
            else:
                reply = controllers[dst].on_batch(batch)
            if reply is not None:
                ctrl.on_reply(reply)

    for _ in range(12):
        step(c0)
        step(c1)
    assert {"c0", "c1"} <= set(s1.managers.members())
    assert {"c0", "c1"} <= set(s2.managers.members())
    assert s1.table.rules_of("c0") and s1.table.rules_of("c1")
