"""Unit tests for data-plane forwarding and detour stamping."""

from repro.switch.flow_table import FlowTable, Rule
from repro.switch.forwarding import next_hop, select_rule


def rule(fwd, prt=5, detour=None, start=False, src="a", dst="z"):
    return Rule(
        cid="c0",
        sid="s0",
        src=src,
        dst=dst,
        priority=prt,
        forward_to=fwd,
        detour=detour,
        detour_start=start,
    )


def table_with(*rules):
    table = FlowTable("s0", max_rules=50)
    for r in rules:
        table.install(r)
    return table


def test_direct_neighbor_relay_beats_rules():
    table = table_with(rule("s1"))
    hop, stamp = next_hop(table, "a", "z", operational_neighbors=["z", "s1"])
    assert hop == "z"


def test_primary_rule_applies_when_link_up():
    table = table_with(rule("s1", prt=10), rule("s2", prt=9, detour=0, start=True))
    hop, stamp = next_hop(table, "a", "z", ["s1", "s2"])
    assert hop == "s1"
    assert stamp is None


def test_failover_to_detour_stamps_packet():
    table = table_with(rule("s1", prt=10), rule("s2", prt=9, detour=0, start=True))
    hop, stamp = next_hop(table, "a", "z", ["s2"])  # s1 link down
    assert hop == "s2"
    assert stamp == 0


def test_stamped_packet_prefers_own_detour():
    table = table_with(
        rule("s1", prt=10),  # primary points elsewhere
        rule("s3", prt=8, detour=1),
        rule("s4", prt=9, detour=0),
    )
    hop, stamp = next_hop(table, "a", "z", ["s1", "s3", "s4"], stamp=1)
    assert hop == "s3"
    assert stamp == 1


def test_stamped_packet_ignores_foreign_detour():
    """A stamped packet must not follow another detour's higher-priority
    rule (the bouncing bug this scheme exists to prevent)."""
    table = table_with(rule("s4", prt=9, detour=0))  # foreign detour only
    hop, stamp = next_hop(table, "a", "z", ["s4"], stamp=1)
    assert hop is None  # drop rather than bounce


def test_stamped_packet_rejoins_primary_and_unstamps():
    table = table_with(rule("s1", prt=10))
    hop, stamp = next_hop(table, "a", "z", ["s1"], stamp=2)
    assert hop == "s1"
    assert stamp is None


def test_stamped_packet_restamps_at_detour_start_as_last_resort():
    table = table_with(rule("s2", prt=7, detour=3, start=True))
    hop, stamp = next_hop(table, "a", "z", ["s2"], stamp=0)
    assert hop == "s2"
    assert stamp == 3


def test_no_applicable_rule_drops():
    table = table_with(rule("s1"))
    hop, stamp = next_hop(table, "a", "z", ["s9"])  # s1 down, no backup
    assert hop is None


def test_unstamped_ignores_non_start_detour_rules():
    table = table_with(rule("s3", prt=9, detour=0, start=False))
    hop, stamp = next_hop(table, "a", "z", ["s3"])
    assert hop is None


def test_select_rule_priority_order():
    table = table_with(rule("low", prt=1), rule("high", prt=9))
    chosen = select_rule(table, "a", "z", ["low", "high"])
    assert chosen.forward_to == "high"


def test_select_rule_conditional_on_operational():
    table = table_with(rule("low", prt=1), rule("high", prt=9))
    chosen = select_rule(table, "a", "z", ["low"])
    assert chosen.forward_to == "low"


def test_select_rule_none_for_unknown_header():
    table = table_with(rule("s1"))
    assert select_rule(table, "x", "y", ["s1"]) is None
