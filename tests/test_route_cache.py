"""Tests for the dependency-tracked in-band route cache.

The cache must be *observationally invisible*: every path it returns must
equal what a direct :func:`forwarding_path` walk computes at that instant,
across rule-table rewrites, link failures/recoveries, and node faults.
On top of that, invalidation must be *fine-grained*: mutations may only
evict entries whose walk actually depended on the touched state.
"""

import pytest

from repro.core.legitimacy import RouteCache, forwarding_path
from repro.net.topologies import TOPOLOGY_BUILDERS, attach_controllers
from repro.net.topology import Topology
from repro.sim.network_sim import NetworkSimulation, SimulationConfig
from repro.switch.flow_table import (
    EVENT_DETOUR,
    EVENT_PRIMARY,
    EVENT_START,
    FlowTable,
    Rule,
)


def _bootstrap(network="B4", cache=True, seed=0):
    topology = TOPOLOGY_BUILDERS[network]()
    attach_controllers(topology, 3, seed=seed)
    config = SimulationConfig(seed=seed, theta=10, route_cache=cache)
    sim = NetworkSimulation(topology, config)
    t = sim.run_until_legitimate(timeout=120.0)
    assert t is not None, "bootstrap timed out"
    return sim


def _all_pairs(sim):
    nodes = sim.topology.nodes
    return [(a, b) for a in nodes for b in nodes if a != b]


def _assert_cache_transparent(sim):
    """Every cached path equals a fresh uncached walk."""
    for src, dst in _all_pairs(sim):
        cached = sim.route_cache.path(src, dst)
        direct = forwarding_path(sim.topology, sim.switches, src, dst)
        assert cached == direct, (src, dst, cached, direct)


def test_cache_transparent_after_bootstrap():
    sim = _bootstrap()
    _assert_cache_transparent(sim)


def test_cache_transparent_across_link_failure_and_recovery():
    sim = _bootstrap()
    u, v = next(iter(sim.topology.links))
    sim.topology.set_link_up(u, v, up=False)
    _assert_cache_transparent(sim)
    sim.topology.set_link_up(u, v, up=True)
    _assert_cache_transparent(sim)


def test_cache_transparent_across_rule_table_rewrite():
    sim = _bootstrap()
    # Warm the cache, then rewrite one switch's table out from under it.
    _assert_cache_transparent(sim)
    sid = sim.topology.switches[0]
    sim.switches[sid].table.clear()
    _assert_cache_transparent(sim)


def test_cache_on_off_runs_converge_identically():
    """The simulation-level check: identical convergence instants and rule
    counts with the cache enabled and disabled."""
    on = _bootstrap(cache=True)
    off = _bootstrap(cache=False)
    assert on.sim.now == off.sim.now
    assert on.total_rules_installed() == off.total_rules_installed()
    for src, dst in _all_pairs(on):
        assert on.route_cache.path(src, dst) == forwarding_path(
            off.topology, off.switches, src, dst
        )


def test_cache_hit_returns_same_object_until_mutation():
    sim = _bootstrap()
    cid = sim.topology.controllers[0]
    sid = sim.topology.switches[-1]
    first = sim.route_cache.path(cid, sid)
    hits_before = sim.route_cache.hits
    again = sim.route_cache.path(cid, sid)
    assert again is first
    assert sim.route_cache.hits == hits_before + 1


def test_epoch_bumps_on_operational_and_table_mutations():
    sim = _bootstrap()
    cache = sim.route_cache
    epoch = cache.epoch()
    u, v = next(iter(sim.topology.links))
    sim.topology.set_link_up(u, v, up=False)
    assert cache.epoch() > epoch
    epoch = cache.epoch()
    sid = sim.topology.switches[0]
    sim.switches[sid].table.clear()
    assert cache.epoch() > epoch


def test_idempotent_refresh_does_not_invalidate():
    """Re-installing an identical rule (an LRU refresh) must not flush the
    cache — only forwarding-relevant changes may."""
    table = FlowTable("s1", max_rules=8)
    rule = Rule(cid="c0", sid="s1", src="a", dst="b", priority=2, forward_to="s2")
    table.install(rule)
    version = table.version
    table.install(rule)  # idempotent refresh
    assert table.version == version
    table.install(Rule(cid="c0", sid="s1", src="a", dst="b", priority=2, forward_to="s3"))
    assert table.version > version


def test_delta_replace_preserves_semantics_and_version():
    table = FlowTable("s1", max_rules=8)
    keep = Rule(cid="c0", sid="s1", src="a", dst="b", priority=2, forward_to="s2")
    drop = Rule(cid="c0", sid="s1", src="a", dst="c", priority=2, forward_to="s3")
    table.replace_rules_of("c0", [keep, drop])
    version = table.version
    # Idempotent periodic update: same rule set, no version change.
    table.replace_rules_of("c0", [keep, drop])
    assert table.version == version
    assert {r.key() for r in table.rules_of("c0")} == {keep.key(), drop.key()}
    # Real update: one rule dropped.
    table.replace_rules_of("c0", [keep])
    assert table.version > version
    assert [r.key() for r in table.rules_of("c0")] == [keep.key()]


def test_cache_respects_extra_failed_key():
    sim = _bootstrap()
    cid = sim.topology.controllers[0]
    sid = sim.topology.switches[-1]
    plain = sim.route_cache.path(cid, sid)
    assert plain is not None
    failed_edge = frozenset(plain[:2])
    detoured = sim.route_cache.path(cid, sid, extra_failed={failed_edge})
    direct = forwarding_path(
        sim.topology, sim.switches, cid, sid, extra_failed={failed_edge}
    )
    assert detoured == direct
    # The hypothetical failure must not pollute the plain entry.
    assert sim.route_cache.path(cid, sid) == plain

# -- fine-grained invalidation ------------------------------------------------


class _TableOnlySwitch:
    """Minimal stand-in: the walk only touches ``switches[sid].table``."""

    def __init__(self, sid):
        self.table = FlowTable(sid, max_rules=16)


def _two_arm_world():
    """c0 with two disjoint arms: s1-s2-s3 and t1-t2-t3, with primary
    rules installed for the flows c0→s3 and c0→t3."""
    topology = Topology()
    topology.add_controller("c0")
    for sid in ("s1", "s2", "s3", "t1", "t2", "t3"):
        topology.add_switch(sid)
    for u, v in (
        ("c0", "s1"), ("s1", "s2"), ("s2", "s3"),
        ("c0", "t1"), ("t1", "t2"), ("t2", "t3"),
    ):
        topology.add_link(u, v)
    switches = {sid: _TableOnlySwitch(sid) for sid in topology.switches}
    switches["s1"].table.install(
        Rule(cid="c0", sid="s1", src="c0", dst="s3", priority=1000, forward_to="s2")
    )
    switches["t1"].table.install(
        Rule(cid="c0", sid="t1", src="c0", dst="t3", priority=1000, forward_to="t2")
    )
    return topology, switches


def test_per_key_invalidation_spares_unrelated_flows():
    topology, switches = _two_arm_world()
    cache = RouteCache(topology, switches)
    assert cache.path("c0", "s3") == ["c0", "s1", "s2", "s3"]
    assert cache.path("c0", "t3") == ["c0", "t1", "t2", "t3"]
    misses = cache.misses

    # A rule change for the flow c0→s3 at a switch its walk consulted must
    # evict only that entry; the disjoint flow stays cached.
    switches["s1"].table.install(
        Rule(cid="c0", sid="s1", src="c0", dst="s3", priority=1100, forward_to="s2")
    )
    assert cache.path("c0", "t3") == ["c0", "t1", "t2", "t3"]
    assert cache.misses == misses  # untouched flow: still a hit
    assert cache.path("c0", "s3") == ["c0", "s1", "s2", "s3"]
    assert cache.misses == misses + 1  # touched flow: re-walked


def test_unrelated_header_mutation_spares_other_flows_at_same_switch():
    topology, switches = _two_arm_world()
    cache = RouteCache(topology, switches)
    cache.path("c0", "s3")
    cache.path("c0", "t3")
    misses = cache.misses
    # s1 is consulted by BOTH walks (it is c0's first port, so the c0→t3
    # walk tries and abandons it), but this mutation is for header
    # (c0, s3) only — the c0→t3 entry must survive.
    switches["s1"].table.install(
        Rule(cid="c0", sid="s1", src="c0", dst="s3", priority=900, forward_to="s2")
    )
    assert cache.path("c0", "t3") == ["c0", "t1", "t2", "t3"]
    assert cache.misses == misses


def test_operational_mutation_invalidates_only_touched_paths():
    topology, switches = _two_arm_world()
    cache = RouteCache(topology, switches)
    cache.path("c0", "s3")
    cache.path("c0", "t3")
    misses = cache.misses
    topology.set_link_up("t2", "t3", False)
    # The s-arm entry depends on no dirtied node: still cached.
    assert cache.path("c0", "s3") == ["c0", "s1", "s2", "s3"]
    assert cache.misses == misses
    # The t-arm entry is re-walked against the new operational state.
    assert cache.path("c0", "t3") == forwarding_path(
        topology, switches, "c0", "t3"
    )
    assert cache.misses == misses + 1


def test_shadowed_detour_install_does_not_evict_primary_walk():
    topology, switches = _two_arm_world()
    cache = RouteCache(topology, switches)
    assert cache.path("c0", "s3") == ["c0", "s1", "s2", "s3"]
    misses = cache.misses
    # A detour hop rule for the same header at a consulted switch is
    # invisible to the unstamped zero-failure walk: no eviction.
    switches["s1"].table.install(
        Rule(
            cid="c0", sid="s1", src="c0", dst="s3", priority=999,
            forward_to="s2", detour=0,
        )
    )
    assert cache.path("c0", "s3") == ["c0", "s1", "s2", "s3"]
    assert cache.misses == misses
    # ...but a hypothetical-failure walk of that header does consult
    # detours, so those entries go through the full event surface.
    e = frozenset(("s1", "s2"))
    assert cache.path("c0", "s3", extra_failed={e}) == forwarding_path(
        topology, switches, "c0", "s3", extra_failed={e}
    )


# -- dirty-set publication ----------------------------------------------------


def test_topology_publishes_dirty_nodes_per_mutation():
    topology = Topology()
    events = []
    topology.add_dirty_listener(lambda nodes: events.append(tuple(sorted(nodes))))
    topology.add_controller("c0")
    topology.add_switch("s1")
    topology.add_switch("s2")
    topology.add_link("c0", "s1")
    topology.add_link("s1", "s2")
    assert events == [("c0",), ("s1",), ("s2",), ("c0", "s1"), ("s1", "s2")]

    events.clear()
    topology.set_link_up("s1", "s2", False)
    assert events == [("s1", "s2")]

    events.clear()
    # A node flip changes the operational neighbourhood of every
    # neighbour, so they are published too.
    topology.set_node_up("s1", False)
    assert events == [("c0", "s1", "s2")]

    events.clear()
    topology.remove_node("s1")
    assert events[-1] == ("s1",)  # final membership event
    dirtied = {n for ev in events for n in ev}
    assert dirtied == {"c0", "s1", "s2"}  # incident links dirtied both ends


def test_flow_table_publishes_header_events_per_kind():
    table = FlowTable("s1", max_rules=16)
    events = []
    table.add_version_listener(lambda sid, evs: events.append((sid, evs)))

    primary = Rule(cid="c0", sid="s1", src="a", dst="b", priority=10, forward_to="x")
    table.install(primary)
    assert events == [("s1", (("a", "b", EVENT_PRIMARY),))]

    events.clear()
    table.install(primary)  # idempotent LRU refresh: silent
    assert events == []

    table.install(
        Rule(cid="c0", sid="s1", src="a", dst="b", priority=9, forward_to="x", detour=0)
    )
    assert events == [("s1", (("a", "b", EVENT_DETOUR),))]

    events.clear()
    table.install(
        Rule(
            cid="c0", sid="s1", src="a", dst="b", priority=9, forward_to="x",
            detour=0, detour_start=True,
        )
    )
    # detour_start flip on an existing key: published at the stronger kind.
    assert events == [("s1", (("a", "b", EVENT_START),))]

    events.clear()
    table.delete_rules_of("c0", include_meta=True)
    kinds = {ev for _, evs in events for ev in evs}
    assert ("a", "b", EVENT_PRIMARY) in kinds
    assert ("a", "b", EVENT_START) in kinds

    events.clear()
    table.install(primary)
    events.clear()
    table.clear()
    assert events == [("s1", (("a", "b", EVENT_PRIMARY),))]
