"""Tests for the epoch-based in-band route cache.

The cache must be *observationally invisible*: every path it returns must
equal what a direct :func:`forwarding_path` walk computes at that instant,
across rule-table rewrites, link failures/recoveries, and node faults.
"""

import pytest

from repro.core.legitimacy import RouteCache, forwarding_path
from repro.net.topologies import TOPOLOGY_BUILDERS, attach_controllers
from repro.sim.network_sim import NetworkSimulation, SimulationConfig
from repro.switch.flow_table import FlowTable, Rule


def _bootstrap(network="B4", cache=True, seed=0):
    topology = TOPOLOGY_BUILDERS[network]()
    attach_controllers(topology, 3, seed=seed)
    config = SimulationConfig(seed=seed, theta=10, route_cache=cache)
    sim = NetworkSimulation(topology, config)
    t = sim.run_until_legitimate(timeout=120.0)
    assert t is not None, "bootstrap timed out"
    return sim


def _all_pairs(sim):
    nodes = sim.topology.nodes
    return [(a, b) for a in nodes for b in nodes if a != b]


def _assert_cache_transparent(sim):
    """Every cached path equals a fresh uncached walk."""
    for src, dst in _all_pairs(sim):
        cached = sim.route_cache.path(src, dst)
        direct = forwarding_path(sim.topology, sim.switches, src, dst)
        assert cached == direct, (src, dst, cached, direct)


def test_cache_transparent_after_bootstrap():
    sim = _bootstrap()
    _assert_cache_transparent(sim)


def test_cache_transparent_across_link_failure_and_recovery():
    sim = _bootstrap()
    u, v = next(iter(sim.topology.links))
    sim.topology.set_link_up(u, v, up=False)
    _assert_cache_transparent(sim)
    sim.topology.set_link_up(u, v, up=True)
    _assert_cache_transparent(sim)


def test_cache_transparent_across_rule_table_rewrite():
    sim = _bootstrap()
    # Warm the cache, then rewrite one switch's table out from under it.
    _assert_cache_transparent(sim)
    sid = sim.topology.switches[0]
    sim.switches[sid].table.clear()
    _assert_cache_transparent(sim)


def test_cache_on_off_runs_converge_identically():
    """The simulation-level check: identical convergence instants and rule
    counts with the cache enabled and disabled."""
    on = _bootstrap(cache=True)
    off = _bootstrap(cache=False)
    assert on.sim.now == off.sim.now
    assert on.total_rules_installed() == off.total_rules_installed()
    for src, dst in _all_pairs(on):
        assert on.route_cache.path(src, dst) == forwarding_path(
            off.topology, off.switches, src, dst
        )


def test_cache_hit_returns_same_object_until_mutation():
    sim = _bootstrap()
    cid = sim.topology.controllers[0]
    sid = sim.topology.switches[-1]
    first = sim.route_cache.path(cid, sid)
    hits_before = sim.route_cache.hits
    again = sim.route_cache.path(cid, sid)
    assert again is first
    assert sim.route_cache.hits == hits_before + 1


def test_epoch_bumps_on_operational_and_table_mutations():
    sim = _bootstrap()
    cache = sim.route_cache
    epoch = cache.epoch()
    u, v = next(iter(sim.topology.links))
    sim.topology.set_link_up(u, v, up=False)
    assert cache.epoch() > epoch
    epoch = cache.epoch()
    sid = sim.topology.switches[0]
    sim.switches[sid].table.clear()
    assert cache.epoch() > epoch


def test_idempotent_refresh_does_not_invalidate():
    """Re-installing an identical rule (an LRU refresh) must not flush the
    cache — only forwarding-relevant changes may."""
    table = FlowTable("s1", max_rules=8)
    rule = Rule(cid="c0", sid="s1", src="a", dst="b", priority=2, forward_to="s2")
    table.install(rule)
    version = table.version
    table.install(rule)  # idempotent refresh
    assert table.version == version
    table.install(Rule(cid="c0", sid="s1", src="a", dst="b", priority=2, forward_to="s3"))
    assert table.version > version


def test_delta_replace_preserves_semantics_and_version():
    table = FlowTable("s1", max_rules=8)
    keep = Rule(cid="c0", sid="s1", src="a", dst="b", priority=2, forward_to="s2")
    drop = Rule(cid="c0", sid="s1", src="a", dst="c", priority=2, forward_to="s3")
    table.replace_rules_of("c0", [keep, drop])
    version = table.version
    # Idempotent periodic update: same rule set, no version change.
    table.replace_rules_of("c0", [keep, drop])
    assert table.version == version
    assert {r.key() for r in table.rules_of("c0")} == {keep.key(), drop.key()}
    # Real update: one rule dropped.
    table.replace_rules_of("c0", [keep])
    assert table.version > version
    assert [r.key() for r in table.rules_of("c0")] == [keep.key()]


def test_cache_respects_extra_failed_key():
    sim = _bootstrap()
    cid = sim.topology.controllers[0]
    sid = sim.topology.switches[-1]
    plain = sim.route_cache.path(cid, sid)
    assert plain is not None
    failed_edge = frozenset(plain[:2])
    detoured = sim.route_cache.path(cid, sid, extra_failed={failed_edge})
    direct = forwarding_path(
        sim.topology, sim.switches, cid, sid, extra_failed={failed_edge}
    )
    assert detoured == direct
    # The hypothetical failure must not pollute the plain entry.
    assert sim.route_cache.path(cid, sid) == plain
