"""Coverage for small helpers plus whole-run invariants."""

import pytest

from repro import build_network, NetworkSimulation, SimulationConfig
from repro.net.topology import Topology, subgraph_reachable
from repro.net.topologies import b4
from repro.flows.resilient import compute_resilient_flow
from repro.sim.events import EventKind


def test_subgraph_reachable():
    topo = Topology()
    for name in "abcd":
        topo.add_switch(name)
    topo.add_link("a", "b")
    topo.add_link("c", "d")
    assert subgraph_reachable(topo, "a") == {"a", "b"}


def test_eccentricity():
    topo = b4()
    some = topo.switches[0]
    assert 1 <= topo.eccentricity(some) <= topo.diameter()


def test_resilient_flow_all_edges():
    topo = b4()
    flow = compute_resilient_flow(topo, topo.switches[0], topo.switches[-1], kappa=1)
    edges = flow.all_edges()
    assert edges
    for path in flow.paths:
        for u, v in zip(path, path[1:]):
            assert frozenset((u, v)) in edges


def test_event_kinds_are_distinct():
    values = [kind.value for kind in EventKind]
    assert len(values) == len(set(values))


def test_switch_invariants_hold_throughout_bootstrap():
    """Whole-run invariant: at every sampled instant of a bootstrap, every
    switch's table is within bounds and unambiguous w.r.t. its operational
    ports, and its manager set is within bounds."""
    topo = build_network("B4", n_controllers=3, seed=17)
    sim = NetworkSimulation(topo, SimulationConfig(seed=17))
    sim.start()
    for _ in range(14):
        sim.run_for(0.5)
        for sid, switch in sim.switches.items():
            assert len(switch.table) <= sim.rena_config.max_rules
            assert len(switch.managers) <= sim.rena_config.max_managers
            usable = sim.topology.operational_neighbors(sid)
            assert switch.table.is_unambiguous(operational=usable), sid


def test_controller_memory_invariant_throughout_bootstrap():
    """Lemma 2: the reply store never exceeds maxReplies at any instant."""
    topo = build_network("Clos", n_controllers=2, seed=19)
    sim = NetworkSimulation(topo, SimulationConfig(seed=19))
    sim.start()
    for _ in range(14):
        sim.run_for(0.5)
        for controller in sim.controllers.values():
            assert len(controller.replydb) <= sim.rena_config.max_replies


def test_tag_uniqueness_invariant_throughout_bootstrap():
    """Section 4.2: a controller's current tag is fresh — it never equals
    its previous tag, and round tags advance on every completed round."""
    topo = build_network("B4", n_controllers=2, seed=23)
    sim = NetworkSimulation(topo, SimulationConfig(seed=23))
    sim.start()
    seen_per_controller = {cid: set() for cid in sim.controllers}
    last_rounds = {cid: 0 for cid in sim.controllers}
    for _ in range(14):
        sim.run_for(0.5)
        for cid, controller in sim.controllers.items():
            assert controller.curr_tag != controller.prev_tag
            if controller.rounds_completed > last_rounds[cid]:
                assert controller.curr_tag not in seen_per_controller[cid]
                seen_per_controller[cid].add(controller.curr_tag)
                last_rounds[cid] = controller.rounds_completed
