"""Unit tests for local topology discovery (Section 2.2.1)."""

from repro.net.discovery import LocalDiscovery


class Wire:
    """Two discoveries joined by a scriptable wire."""

    def __init__(self, theta=3):
        self.cut = False
        self.a = LocalDiscovery("a", ["b"], send_probe=self._from_a, theta=theta)
        self.b = LocalDiscovery("b", ["a"], send_probe=self._from_b, theta=theta)

    def _from_a(self, neighbor, payload):
        if self.cut:
            return
        if payload == LocalDiscovery.PROBE:
            self.b.on_probe("a")
        else:
            self.a.on_probe_reply(neighbor)

    def _from_b(self, neighbor, payload):
        if self.cut:
            return
        if payload == LocalDiscovery.PROBE:
            self.a.on_probe("b")
        else:
            self.b.on_probe_reply(neighbor)


def test_alive_while_link_up():
    wire = Wire()
    for _ in range(10):
        wire.a.probe_round()
        wire.b.probe_round()
    assert wire.a.alive_neighbors() == ["b"]
    assert wire.b.alive_neighbors() == ["a"]


def test_cut_link_detected():
    wire = Wire(theta=3)
    for _ in range(5):
        wire.a.probe_round()
        wire.b.probe_round()
    wire.cut = True
    for _ in range(10):
        wire.a.probe_round()
        wire.b.probe_round()
    # With a single monitored neighbour there is no 'other responsive
    # neighbour' to compare against, so suspicion needs a second neighbour;
    # the three-node test below covers actual detection.
    assert wire.a.probes_sent > 0


def test_dead_neighbor_detected_with_live_reference():
    """A node with one live and one dead neighbour suspects the dead one."""
    sent = []

    state = {"b_alive": True}
    disc = LocalDiscovery(
        "x", ["a", "b"], send_probe=lambda n, p: sent.append((n, p)), theta=3
    )

    def run_round():
        disc.probe_round()
        disc.on_probe_reply("a")
        if state["b_alive"]:
            disc.on_probe_reply("b")

    for _ in range(5):
        run_round()
    assert disc.alive_neighbors() == ["a", "b"]
    state["b_alive"] = False
    for _ in range(10):
        run_round()
    assert disc.alive_neighbors() == ["a"]


def test_set_neighbors_updates_probe_targets():
    sent = []
    disc = LocalDiscovery("x", ["a"], send_probe=lambda n, p: sent.append(n), theta=3)
    disc.set_neighbors(["a", "b"])
    disc.probe_round()
    assert set(sent) == {"a", "b"}


def test_probe_reply_counts():
    disc = LocalDiscovery("x", ["a"], send_probe=lambda n, p: None, theta=3)
    disc.on_probe_reply("a")
    assert disc.replies_received == 1


def test_on_probe_answers_immediately():
    sent = []
    disc = LocalDiscovery("x", ["a"], send_probe=lambda n, p: sent.append((n, p)), theta=3)
    disc.on_probe("a")
    assert sent == [("a", LocalDiscovery.REPLY)]
