"""Regression tests for the transport-series timing fixes.

Three bugs corrupted the per-second series feeding Figures 15/16/18-20
and Table 17:

* ``TrafficStats.seconds()`` was sparse, so a second skipped by a
  reroute/blackhole time jump shifted every later point one position
  left (series/second misalignment);
* ``RenoConnection.run`` stepped while ``now < end`` and overshot the
  horizon by up to one RTT, reporting partial trailing buckets as full
  seconds and injecting the failure late;
* ``pearson`` raised ``ValueError`` on flatline series, aborting the
  Table 17 sweep.
"""

from __future__ import annotations

import math

from repro.transport.stats import TrafficStats, pearson
from repro.transport.tcp import RenoConnection, RenoParams
from repro.transport.traffic import (
    HostPair,
    TrafficRun,
    place_hosts_at_max_distance,
    standalone_switches,
)
from repro.net.topologies import TOPOLOGY_BUILDERS

PATH_A = ["s1", "s2", "s3", "s4"]
PATH_B = ["s1", "s5", "s6", "s4"]


def test_run_clamps_exactly_to_duration():
    conn = RenoConnection(lambda: PATH_A)
    conn.stats.duration = 5.3
    conn.run(5.3)
    assert conn.now == 5.3
    # No bucket may sit past the horizon.
    assert all(s.second < math.ceil(5.3) for s in conn.stats.seconds())


def test_run_boundary_split_is_consistent():
    """Advancing in two segments lands on the same clock as one run and
    carries a comparable amount of traffic (the clamped partial steps
    scale their budget instead of sending a full window)."""
    whole = RenoConnection(lambda: PATH_A)
    whole.run(2.0)
    split = RenoConnection(lambda: PATH_A)
    split.run(0.7)
    assert split.now == 0.7
    split.run(1.3)
    assert split.now == 2.0
    sent_whole = sum(s.segments_sent for s in whole.stats.seconds())
    sent_split = sum(s.segments_sent for s in split.stats.seconds())
    assert abs(sent_whole - sent_split) <= 0.02 * sent_whole


def test_dense_series_keeps_skipped_second_aligned():
    """A failover latency above one second jumps the connection clock
    across a whole wall-clock second; the dense series must keep that
    second as a zero bucket at its own index instead of shifting every
    later point left."""
    conn = RenoConnection(
        lambda: PATH_A if conn.now < 3.0 else PATH_B,
        params=RenoParams(failover_latency=2.3),
    )
    conn.stats.duration = 10.0
    conn.run(10.0)
    seconds = conn.stats.seconds()
    assert [s.second for s in seconds] == list(range(10))
    series = conn.stats.throughput_series()
    assert len(series) == 10
    # The reroute at ~3.0 jumps the clock to ~5.3: second 3 keeps only
    # the reroute counters (nothing delivered) and second 4 is skipped
    # entirely — it must stay a zero bucket at index 4.
    assert series[3] == 0.0 and series[4] == 0.0
    assert series[2] > 0.0 and series[6] > 0.0
    assert seconds[3].segments_sent > 0  # the void-sent failover burst
    assert seconds[4].segments_sent == 0  # truly skipped, zero-filled
    # The sparse fallback (no duration) would have misaligned exactly here.
    assert len([s for s in conn.stats._seconds]) < 10


def test_blackhole_step_uses_last_known_path_length():
    calls = []
    long_path = ["s%d" % i for i in range(9)]  # 8 hops

    def provider():
        calls.append(conn.now)
        return long_path if conn.now < 2.0 else None

    conn = RenoConnection(provider)
    conn.run(2.0)
    assert conn._last_hops == len(long_path) - 1
    # While blackholed, the RTO step is one RTT of the *last* path
    # (0.004 + 2*0.001*8 = 0.02 s), not the old hardcoded 4-hop step.
    del calls[:]
    conn.run(0.1)
    assert len(calls) == 5
    assert conn.now == 2.1


def test_failure_lands_in_second_ten():
    topology = TOPOLOGY_BUILDERS["B4"]()
    switches = standalone_switches(topology)
    pair = place_hosts_at_max_distance(topology)
    stats = TrafficRun(topology, switches, pair).run()
    series = stats.throughput_series()
    assert len(series) == 30
    assert [s.second for s in stats.seconds()] == list(range(30))
    # The valley sits exactly in the advertised failure second.
    window = series[8:14]
    assert 8 + window.index(min(window)) == 10


def test_pearson_flatline_returns_nan():
    assert math.isnan(pearson([1.0] * 10, [float(i) for i in range(10)]))
    assert math.isnan(pearson([float(i) for i in range(10)], [0.0] * 10))
    assert math.isnan(pearson([2.0] * 5, [2.0] * 5))


def test_pearson_still_requires_two_points():
    try:
        pearson([1.0], [2.0])
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected ValueError for a single point")


def test_traffic_stats_sparse_fallback_without_duration():
    stats = TrafficStats(0.012)
    stats.bucket(3.5).segments_delivered = 7
    stats.bucket(9.1).segments_delivered = 2
    assert [s.second for s in stats.seconds()] == [3, 9]
    stats.duration = 10.0
    assert [s.second for s in stats.seconds()] == list(range(10))
    dense = stats.throughput_series()
    assert dense[3] == 7 * 0.012
    assert dense[9] == 2 * 0.012
    assert sum(dense) == dense[3] + dense[9]
