"""Unit tests for κ-fault-resilient flow computation."""

import pytest

from repro.net.topology import Topology, edge
from repro.net.topologies import random_k_connected, b4
from repro.flows.paths import (
    edge_disjoint_paths,
    first_shortest_path,
    is_simple_path,
    path_edges,
)
from repro.flows.resilient import ResilientFlow, compute_resilient_flow
from repro.flows.failover import (
    PRIMARY_PRIORITY,
    plan_flow_rules,
    rules_by_switch,
)


def ring(n=6):
    topo = Topology()
    names = [f"s{i}" for i in range(n)]
    for name in names:
        topo.add_switch(name)
    for i in range(n):
        topo.add_link(names[i], names[(i + 1) % n])
    return topo, names


def test_edge_disjoint_paths_on_ring():
    topo, names = ring(6)
    paths = edge_disjoint_paths(topo, names[0], names[3], 2)
    assert len(paths) == 2
    edges0 = set(path_edges(paths[0]))
    edges1 = set(path_edges(paths[1]))
    assert edges0.isdisjoint(edges1)
    assert all(p[0] == names[0] and p[-1] == names[3] for p in paths)
    assert all(is_simple_path(p) for p in paths)


def test_edge_disjoint_paths_shortest_first():
    topo, names = ring(6)
    paths = edge_disjoint_paths(topo, names[0], names[2], 2)
    assert len(paths[0]) <= len(paths[1])
    assert len(paths[0]) == 3  # s0-s1-s2


def test_edge_disjoint_respects_connectivity_limit():
    topo, names = ring(6)
    paths = edge_disjoint_paths(topo, names[0], names[3], 5)
    assert len(paths) == 2  # ring is only 2-edge-connected


def test_edge_disjoint_requires_distinct_endpoints():
    topo, names = ring()
    with pytest.raises(ValueError):
        edge_disjoint_paths(topo, names[0], names[0], 1)


def test_edge_disjoint_none_when_disconnected():
    topo = Topology()
    topo.add_switch("a")
    topo.add_switch("b")
    assert edge_disjoint_paths(topo, "a", "b", 1) == []


def test_edge_disjoint_paths_avoid_controller_relays():
    """Controllers cannot forward packets, so paths may not run through
    them (except as endpoints)."""
    topo = Topology()
    for s in ("s1", "s2", "s3"):
        topo.add_switch(s)
    topo.add_controller("c0")
    # s1-c0-s2 would be a shortcut; the legal path is s1-s3-s2.
    topo.add_link("s1", "c0")
    topo.add_link("c0", "s2")
    topo.add_link("s1", "s3")
    topo.add_link("s3", "s2")
    paths = edge_disjoint_paths(topo, "s1", "s2", 1)
    assert paths == [["s1", "s3", "s2"]]


def test_compute_resilient_flow_kappa1_on_harary():
    topo = random_k_connected(12, 2, seed=3)
    nodes = topo.switches
    flow = compute_resilient_flow(topo, nodes[0], nodes[5], kappa=1)
    assert flow.resilience >= 1
    assert flow.primary[0] == nodes[0] and flow.primary[-1] == nodes[5]


def test_resilient_flow_surviving_path():
    topo, names = ring(6)
    flow = compute_resilient_flow(topo, names[0], names[3], kappa=1)
    primary_edges = path_edges(list(flow.primary))
    survivor = flow.surviving_path({primary_edges[0]})
    assert survivor is not None
    assert primary_edges[0] not in path_edges(list(survivor))


def test_resilient_flow_raises_when_disconnected():
    topo = Topology()
    topo.add_switch("a")
    topo.add_switch("b")
    with pytest.raises(ValueError):
        compute_resilient_flow(topo, "a", "b", kappa=1)


# -- failover rule planning -------------------------------------------------


def test_plan_primary_rules_both_directions():
    topo, names = ring(4)
    rules = plan_flow_rules(topo, names[0], names[2], kappa=0)
    primaries = [r for r in rules if r.priority == PRIMARY_PRIORITY]
    # Forward: s0->s1->s2 needs rules at s0, s1; reverse at s2, s1.
    forward = [r for r in primaries if r.dst == names[2]]
    backward = [r for r in primaries if r.dst == names[0]]
    assert {r.switch for r in forward} == {names[0], names[1]}
    assert {r.switch for r in backward} == {names[2], names[1]}


def test_plan_detours_exist_for_every_primary_edge():
    topo, names = ring(6)
    rules = plan_flow_rules(topo, names[0], names[3], kappa=1)
    forward_detours = {
        r.detour for r in rules if r.dst == names[3] and r.detour is not None
    }
    # Primary s0..s3 has 3 edges -> detour ids 0, 1, 2.
    assert forward_detours == {0, 1, 2}


def test_detour_priorities_descend_from_primary():
    topo, names = ring(6)
    rules = plan_flow_rules(topo, names[0], names[3], kappa=1)
    for r in rules:
        if r.detour is not None:
            assert r.priority == PRIMARY_PRIORITY - 1 - r.detour


def test_each_detour_has_exactly_one_start():
    topo, names = ring(6)
    rules = plan_flow_rules(topo, names[0], names[3], kappa=1)
    for direction_dst in (names[3], names[0]):
        per_detour = {}
        for r in rules:
            if r.dst == direction_dst and r.detour is not None and r.detour_start:
                per_detour.setdefault(r.detour, []).append(r.switch)
        for detour, starts in per_detour.items():
            assert len(set(starts)) == 1


def test_kappa0_plans_no_detours():
    topo, names = ring(6)
    rules = plan_flow_rules(topo, names[0], names[3], kappa=0)
    assert all(r.detour is None for r in rules)


def test_rules_by_switch_groups():
    topo, names = ring(6)
    rules = plan_flow_rules(topo, names[0], names[3], kappa=1)
    grouped = rules_by_switch(rules)
    assert set(grouped) <= set(names)
    assert sum(len(v) for v in grouped.values()) == len(rules)


def test_plan_empty_when_no_path():
    topo = Topology()
    topo.add_switch("a")
    topo.add_switch("b")
    assert plan_flow_rules(topo, "a", "b", kappa=1) == []


def test_first_shortest_path_deterministic():
    topo = b4()
    switches = topo.switches
    p1 = first_shortest_path(topo, switches[0], switches[-1])
    p2 = first_shortest_path(topo, switches[0], switches[-1])
    assert p1 == p2
