"""Unit tests for the Θ failure detector (Sections 2.2.1, 6.3)."""

import pytest

from repro.net.failure_detector import ThetaFailureDetector


def probe_rounds(detector, alive, rounds):
    for _ in range(rounds):
        for neighbor in alive:
            detector.record_reply(neighbor)


def test_no_suspicion_when_all_reply():
    detector = ThetaFailureDetector(theta=3, neighbors=["a", "b", "c"])
    probe_rounds(detector, ["a", "b", "c"], rounds=50)
    assert detector.suspected() == set()
    assert detector.alive() == ["a", "b", "c"]


def test_dead_neighbor_suspected_after_theta_rounds():
    detector = ThetaFailureDetector(theta=3, neighbors=["a", "b"])
    probe_rounds(detector, ["a", "b"], rounds=5)
    # b dies: only a keeps replying.
    probe_rounds(detector, ["a"], rounds=3)
    assert detector.suspected() == set()  # lag == theta, not yet over
    probe_rounds(detector, ["a"], rounds=1)
    assert detector.suspected() == {"b"}


def test_high_degree_node_does_not_self_suspect():
    """Regression: sequential processing within a round must not create
    degree-proportional lag (this bug froze discovery on AT&T/EBONE)."""
    neighbors = [f"n{i:02d}" for i in range(40)]
    detector = ThetaFailureDetector(theta=10, neighbors=neighbors)
    probe_rounds(detector, neighbors, rounds=100)
    assert detector.suspected() == set()


def test_recovered_neighbor_unsuspected():
    detector = ThetaFailureDetector(theta=2, neighbors=["a", "b"])
    probe_rounds(detector, ["a"], rounds=10)
    assert "b" in detector.suspected()
    detector.record_reply("b")  # b answers again
    assert "b" not in detector.suspected()


def test_set_neighbors_reconciles():
    detector = ThetaFailureDetector(theta=2, neighbors=["a", "b"])
    probe_rounds(detector, ["a", "b"], rounds=5)
    detector.set_neighbors(["a", "c"])  # b removed, c added
    assert detector.suspected() == set()
    assert set(detector.alive()) == {"a", "c"}


def test_new_neighbor_starts_unsuspected():
    detector = ThetaFailureDetector(theta=2, neighbors=["a"])
    probe_rounds(detector, ["a"], rounds=50)
    detector.set_neighbors(["a", "b"])
    assert "b" not in detector.suspected()


def test_unknown_responder_tracked():
    detector = ThetaFailureDetector(theta=2, neighbors=["a"])
    detector.record_reply("mystery")
    assert "mystery" in detector.alive()


def test_corruption_recovers_via_ongoing_probes():
    """Self-stabilization: arbitrary counter corruption washes out."""
    detector = ThetaFailureDetector(theta=3, neighbors=["a", "b"])
    detector.corrupt({"a": 10_000, "b": 0})
    assert "b" in detector.suspected()  # transiently wrong
    probe_rounds(detector, ["a", "b"], rounds=10_001)
    assert detector.suspected() == set()


def test_invalid_theta_rejected():
    with pytest.raises(ValueError):
        ThetaFailureDetector(theta=0, neighbors=[])


def test_reply_lag():
    detector = ThetaFailureDetector(theta=5, neighbors=["a", "b"])
    probe_rounds(detector, ["a"], rounds=4)
    assert detector.reply_lag("a") == 0
    assert detector.reply_lag("b") == 4
