"""The unified telemetry subsystem: registry, spans, flight recorder,
Chrome trace-event export, TRACE store records, and the two invariants
the whole design hangs on — the disabled path is byte-identical, and the
enabled counters agree with the benchmark suite's committed numbers."""

import json
from pathlib import Path

import pytest

from repro.api import AwaitLegitimacy, Bootstrap, RunPlan
from repro.obs import Counter, Gauge, Histogram, Telemetry, active, use_telemetry
from repro.obs.export import (
    chrome_trace_from_payload,
    find_traces,
    load_trace,
    save_trace,
    to_chrome_trace,
    trace_identity,
    validate_chrome_trace,
)
from repro.sim.engine import Simulator
from repro.sim.events import EventKind
from repro.store.hashing import fingerprint
from repro.store.store import RunStore, use_store


def fattree4_plan():
    return (
        RunPlan("fattree:4", controllers=3, seed=0)
        .configure(theta=10)
        .then(Bootstrap(timeout=240.0))
    )


# -- registry primitives ----------------------------------------------------


def test_counter_gauge_histogram():
    t = Telemetry()
    t.counter("a").inc()
    t.counter("a").inc(4)
    t.gauge("g").set(2.5)
    h = t.histogram("h")
    for v in (0.001, 0.002, 0.004):
        h.observe(v)
    assert t.counters()["a"] == 5
    snap = t.snapshot()
    assert snap["gauges"]["g"] == 2.5
    assert snap["histograms"]["h"]["count"] == 3
    assert snap["histograms"]["h"]["min"] == 0.001
    assert snap["histograms"]["h"]["max"] == 0.004
    assert snap["histograms"]["h"]["mean"] == pytest.approx(0.007 / 3)


def test_histogram_buckets_are_monotone_powers_of_two():
    h = Histogram(scale=1.0)
    h.observe(0.5)   # bucket 0 (<= 1.0)
    h.observe(1.5)   # bucket 1 (<= 2.0)
    h.observe(3.0)   # bucket 2 (<= 4.0)
    assert h.as_dict()["buckets"] == {"0": 1, "1": 1, "2": 1}


def test_provider_counters_merge_and_sum():
    t = Telemetry()
    t.counter("x").inc(2)
    t.add_provider(lambda: {"x": 3, "y": 7})
    t.add_provider(lambda: {"y": 1})
    assert t.counters() == {"x": 5, "y": 8}


def test_flight_capacity_validation():
    with pytest.raises(ValueError):
        Telemetry(flight_capacity=0)


# -- active-handle context --------------------------------------------------


def test_use_telemetry_scopes_and_restores():
    assert active() is None
    with use_telemetry(Telemetry()) as outer:
        assert active() is outer
        with use_telemetry(Telemetry()) as inner:
            assert active() is inner
        assert active() is outer
    assert active() is None


def test_spans_and_marks_serialize():
    t = Telemetry()
    with t.span("work", cat="phase", detail=1):
        pass
    t.mark(3.5, "convergence", value={"k": (1, 2)})
    records = t.span_records()
    assert records[0]["name"] == "work"
    assert records[0]["cat"] == "phase"
    assert records[0]["dur_wall"] >= 0
    snap = t.snapshot()
    assert snap["marks"][0]["name"] == "convergence"
    assert snap["marks"][0]["value"] == {"k": [1, 2]}
    json.dumps(snap)  # everything must be plain JSON


# -- engine ring + kind counts ----------------------------------------------


def test_enable_trace_default_stays_unbounded_list():
    sim = Simulator()
    sim.enable_trace()
    sim.schedule(1.0, lambda: None, kind=EventKind.PROBE, note="hello")
    sim.run()
    assert sim.trace == [(1.0, EventKind.PROBE, "hello")]


def test_enable_trace_capacity_keeps_only_the_tail():
    sim = Simulator()
    sim.enable_trace(capacity=3)
    for i in range(10):
        sim.schedule(float(i + 1), lambda: None, note=f"e{i}")
    sim.run()
    assert [note for _, _, note in sim.trace] == ["e7", "e8", "e9"]
    with pytest.raises(ValueError):
        Simulator().enable_trace(capacity=0)


def test_kind_counts_tally_executed_events():
    sim = Simulator()
    sim.enable_kind_counts()
    sim.schedule(1.0, lambda: None, kind=EventKind.PROBE)
    sim.schedule(2.0, lambda: None, kind=EventKind.PROBE)
    sim.schedule(3.0, lambda: None, kind=EventKind.GENERIC)
    sim.run()
    assert sim.kind_counts[EventKind.PROBE] == 2
    assert sim.kind_counts[EventKind.GENERIC] == 1
    with pytest.raises(RuntimeError):
        Simulator().kind_counts


# -- the two load-bearing invariants ----------------------------------------


def test_disabled_path_is_byte_identical():
    """A run without telemetry serializes byte-for-byte the same whether
    or not a traced run happened in between — the store-stability
    acceptance criterion."""
    baseline = fattree4_plan().run().to_json()
    with use_telemetry(Telemetry()):
        fattree4_plan().run()
    again = fattree4_plan().run().to_json()
    assert again == baseline
    assert '"timings"' not in baseline


def test_traced_run_has_identical_measurements():
    """Telemetry must never perturb the simulation: same convergence
    instant, same metrics, with or without a handle."""
    plain = fattree4_plan().run()
    with use_telemetry(Telemetry()):
        traced = fattree4_plan().run()
    assert traced.bootstrap_time == plain.bootstrap_time
    assert traced.metrics == plain.metrics
    assert traced.timings and traced.timings[0]["phase"] == "bootstrap"
    # timings carry host cost only; the serialized record differs ONLY
    # by the timings key.
    traced_doc = traced.to_dict()
    traced_doc.pop("timings")
    assert traced_doc == plain.to_dict()


def test_route_cache_counters_match_probe_scaling_benchmark():
    """The registry's RouteCache numbers must equal the committed
    benchmark results (benchmarks/results/probe-scaling.json, fattree:4
    incremental: hits=720, walks(misses)=266, invalidations=140) — the
    cross-consistency acceptance criterion."""
    committed = json.loads(
        (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "results"
            / "probe-scaling.json"
        ).read_text()
    )
    expected = committed["specs"]["fattree:4"]["incremental"]
    with use_telemetry(Telemetry()) as t:
        fattree4_plan().run()
    counters = t.counters()
    assert counters["route_cache.hits"] == expected["cache_hits"]
    assert counters["route_cache.misses"] == expected["total_walks"]
    assert counters["route_cache.invalidations"] == expected["invalidations"]


# -- flight recorder --------------------------------------------------------


def test_flight_dump_on_non_convergence():
    """A run that cannot converge within its timeout ships the event
    ring's tail automatically."""
    with use_telemetry(Telemetry(flight_capacity=16)) as t:
        result = (
            RunPlan("ring:5", controllers=2, seed=0)
            .configure(theta=4, task_delay=0.1)
            # Timeout far below any possible bootstrap: deterministic
            # non-convergence without simulating pathology.
            .then(Bootstrap(timeout=0.05))
            .run()
        )
    assert not result.ok
    assert len(t.flight_dumps) == 1
    dump = t.flight_dumps[0]
    assert dump["reason"] == "non-convergence"
    assert 0 < dump["n_events"] <= 16
    for t_sim, kind, note in dump["events"]:
        assert isinstance(t_sim, float) and isinstance(kind, str)
    json.dumps(dump)


def test_no_flight_dump_on_success():
    with use_telemetry(Telemetry()) as t:
        assert fattree4_plan().run().ok
    assert t.flight_dumps == []


# -- Chrome trace-event export ----------------------------------------------


def test_export_validates_and_carries_spans_counters_marks():
    with use_telemetry(Telemetry()) as t:
        fattree4_plan().run()
    doc = to_chrome_trace(t)
    assert validate_chrome_trace(doc) == []
    events = doc["traceEvents"]
    phases = {e["ph"] for e in events}
    assert {"M", "X", "C", "i"} <= phases
    names = {e["name"] for e in events if e["ph"] == "X"}
    assert "phase:bootstrap" in names
    assert "legitimacy_probe" in names
    counters = {e["name"] for e in events if e["ph"] == "C"}
    assert "route_cache.hits" in counters
    # the convergence mark lands on the virtual-time track
    marks = [e for e in events if e["ph"] == "i" and e["name"] == "convergence"]
    assert marks and marks[0]["ts"] == 3_500_000  # t=3.5s in µs


def test_validate_rejects_malformed_documents():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": [{"ph": "Z", "name": "x"}]}) != []
    bad_dur = {
        "traceEvents": [
            {"name": "s", "ph": "X", "ts": 0, "pid": 1, "dur": 0}
        ]
    }
    assert any("dur" in p for p in validate_chrome_trace(bad_dur))
    assert validate_chrome_trace({"traceEvents": []}) == []


def test_flight_dump_events_export_as_instants():
    t = Telemetry()
    t.record_flight_dump(
        "non-convergence",
        [(1.0, EventKind.PROBE, "p"), (2.0, EventKind.GENERIC, "")],
        t_sim=2.0,
    )
    doc = to_chrome_trace(t)
    assert validate_chrome_trace(doc) == []
    flights = [e for e in doc["traceEvents"] if e.get("cat", "").startswith("flight:")]
    assert len(flights) == 2
    assert flights[0]["ts"] == 1_000_000


# -- TRACE records in the run store -----------------------------------------


def test_trace_record_round_trip(tmp_path):
    store = RunStore(tmp_path / "store")
    with use_telemetry(Telemetry()) as t:
        fattree4_plan().run()
    key = save_trace(store, t, run_key="abc123", label="unit")
    assert key == fingerprint(trace_identity(run_key="abc123", label="unit"))
    record = load_trace(store, key)
    assert record is not None and record["kind"] == "trace"
    payload = record["payload"]
    assert payload["summary"]["counters"]["route_cache.hits"] == 720
    doc = chrome_trace_from_payload(payload)
    assert validate_chrome_trace(doc) == []
    assert find_traces(store) == [key]
    # a run record is not a trace
    assert load_trace(store, "0" * 64) is None


def test_store_instrumentation_counts_hits_and_misses(tmp_path):
    store = RunStore(tmp_path / "store")
    with use_telemetry(Telemetry()) as t:
        with use_store(store):
            fattree4_plan().run()  # cold: store miss, then put
            fattree4_plan().run()  # warm: store hit
    counters = t.counters()
    assert counters["store.misses"] >= 1
    assert counters["store.hits"] >= 1
    assert counters["store.puts"] >= 1
    cats = {s.cat for s in t.spans}
    assert "store" in cats


def test_cached_and_fresh_results_identical_under_telemetry(tmp_path):
    store = RunStore(tmp_path / "store")
    with use_store(store):
        cold = fattree4_plan().run()
        with use_telemetry(Telemetry()):
            warm = fattree4_plan().run()
    assert warm.to_json() == cold.to_json()


# -- RunResult.timings serialization ----------------------------------------


def test_timings_round_trip_and_conditional_key():
    from repro.api.results import RunResult

    with use_telemetry(Telemetry()):
        traced = fattree4_plan().run()
    doc = traced.to_dict()
    assert doc["timings"][0]["wall_seconds"] > 0
    assert RunResult.from_dict(doc).timings == traced.timings
    untimed = fattree4_plan().run()
    assert "timings" not in untimed.to_dict()
    assert RunResult.from_dict(untimed.to_dict()) == untimed
