"""Unit tests for the algorithm variants (Sections 6.2 and 8.1)."""

from repro.core.config import RenaissanceConfig
from repro.core.tags import Tag
from repro.core.variants import (
    EvictingReplyDB,
    NonAdaptiveController,
    ThreeTagController,
)
from repro.switch.abstract_switch import AbstractSwitch
from repro.switch.commands import QueryReply
from repro.switch.flow_table import Rule


def make(cls, cid="c0", neighbors=("s1",)):
    config = RenaissanceConfig.for_network(2, 4, kappa=1)
    return cls(cid, config, alive_neighbors=lambda: list(neighbors))


T1 = Tag("c0", 1)
T2 = Tag("c0", 2)


def reply(node, neighbors=("x",)):
    return QueryReply(node=node, neighbors=tuple(neighbors), managers=(), rules=())


# -- non-memory-adaptive variant (Section 8.1) ---------------------------------


def test_evicting_replydb_never_c_resets():
    db = EvictingReplyDB("c0", max_replies=2)
    for i in range(10):
        db.store(reply(f"s{i}"), T1, current_tag=T1)
    assert db.c_resets == 0
    assert len(db) <= 2


def test_non_adaptive_sends_no_deletions():
    switch = AbstractSwitch("s1", alive_neighbors=lambda: ["c0"])
    ghost = Rule(cid="ghost", sid="s1", src="ghost", dst="x", priority=5, forward_to="c0")
    switch.corrupt(rules=(ghost,), managers=("ghost",))
    controller = make(NonAdaptiveController)
    for _ in range(10):
        for dst, batch in controller.iterate():
            if dst == "s1":
                r = switch.handle_batch(batch)
                if r is not None:
                    controller.on_reply(r)
    # Stale state is never actively deleted by this variant...
    kinds = {type(c).__name__ for _, b in [("s1", None)] for c in ()}
    assert "ghost" in switch.managers.members()
    # ...and the deletion log shows no deletions at all.
    assert switch.deletion_log == []


def test_non_adaptive_still_installs_rules():
    switch = AbstractSwitch("s1", alive_neighbors=lambda: ["c0", "s2"])
    controller = make(NonAdaptiveController)
    for _ in range(6):
        for dst, batch in controller.iterate():
            if dst == "s1":
                r = switch.handle_batch(batch)
                if r is not None:
                    controller.on_reply(r)
    assert switch.table.rules_of("c0")
    assert "c0" in switch.managers.members()


# -- three-tag variant (Section 6.2) ---------------------------------------------


class Fabric:
    """c0 - s1 - s2 line driven synchronously for a given controller."""

    def __init__(self, cls):
        self.s1 = AbstractSwitch("s1", alive_neighbors=lambda: ["c0", "s2"])
        self.s2 = AbstractSwitch("s2", alive_neighbors=lambda: ["s1"])
        self.controller = make(cls, neighbors=("s1",))

    def step(self):
        for dst, batch in self.controller.iterate():
            switch = {"s1": self.s1, "s2": self.s2}.get(dst)
            if switch is None:
                continue
            r = switch.handle_batch(batch)
            if r is not None:
                self.controller.on_reply(r)


def test_three_tag_retains_previous_round_rules():
    fabric = Fabric(ThreeTagController)
    for _ in range(8):
        fabric.step()
    tags = {r.tag for r in fabric.s1.table.rules_of("c0") if not r.is_meta}
    # Both the current and the previous round's tags are present...
    assert fabric.controller.curr_tag in tags or fabric.controller.prev_tag in tags
    # ...but nothing older than the previous round survives.
    live = {fabric.controller.curr_tag, fabric.controller.prev_tag}
    assert tags <= live


def test_three_tag_converges_like_base():
    fabric = Fabric(ThreeTagController)
    for _ in range(8):
        fabric.step()
    assert "s2" in fabric.controller.current_view().nodes
    assert fabric.s2.table.rules_of("c0")


def test_three_tag_no_duplicate_keys():
    fabric = Fabric(ThreeTagController)
    for _ in range(8):
        fabric.step()
    keys = [r.key() for r in fabric.s1.table.rules_of("c0")]
    assert len(keys) == len(set(keys))
