"""Unit/integration tests for the simulation harness itself."""

import pytest

from repro import build_network, NetworkSimulation, SimulationConfig, FaultPlan
from repro.net.link import LinkFaultModel
from repro.net.topology import Topology


def test_data_plane_only_simulation_allowed():
    """A controller-less topology is a legal data-plane-only fabric (the
    traffic axis installs tenant rules directly): construction succeeds,
    no controller loops exist, and time advances without crashing."""
    topo = Topology()
    topo.add_switch("s0")
    topo.add_switch("s1")
    topo.add_link("s0", "s1")
    sim = NetworkSimulation(topo, SimulationConfig())
    assert sim.controllers == {}
    sim.run_for(1.0)
    assert sim.sim.now >= 1.0


def test_renaissance_config_derived_from_network():
    topo = build_network("B4", n_controllers=3, seed=0)
    sim = NetworkSimulation(topo, SimulationConfig(theta=30))
    assert sim.rena_config.max_managers >= 3
    assert sim.rena_config.max_replies >= 2 * len(topo.nodes)
    assert sim.rena_config.theta == 30


def test_out_of_band_bootstrap_faster_than_in_band():
    """Section 8.2: a dedicated management network removes the in-band
    bootstrap constraint; convergence cannot be slower."""
    topo1 = build_network("B4", n_controllers=2, seed=4)
    in_band = NetworkSimulation(topo1, SimulationConfig(seed=4))
    t_in = in_band.run_until_legitimate(timeout=120.0)
    topo2 = build_network("B4", n_controllers=2, seed=4)
    oob = NetworkSimulation(topo2, SimulationConfig(seed=4, out_of_band=True))
    t_oob = oob.run_until_legitimate(timeout=120.0)
    assert t_in is not None and t_oob is not None
    assert t_oob <= t_in + 0.5


def test_bootstrap_with_reliable_channels():
    topo = build_network("B4", n_controllers=2, seed=5)
    sim = NetworkSimulation(topo, SimulationConfig(seed=5, reliable_channels=True))
    assert sim.run_until_legitimate(timeout=240.0) is not None


def test_bootstrap_under_packet_faults():
    """Communication fairness (Section 3.3.1): omission, duplication and
    reordering do not prevent convergence — the do-forever loop is its own
    retransmission layer."""
    topo = build_network("B4", n_controllers=2, seed=6)
    fault_model = LinkFaultModel(
        omission_prob=0.2, duplication_prob=0.15, reorder_prob=0.2, seed=6
    )
    sim = NetworkSimulation(topo, SimulationConfig(seed=6, fault_model=fault_model))
    assert sim.run_until_legitimate(timeout=300.0) is not None


def test_bootstrap_with_channels_over_lossy_links():
    topo = build_network("B4", n_controllers=2, seed=7)
    fault_model = LinkFaultModel(omission_prob=0.15, duplication_prob=0.1, seed=7)
    sim = NetworkSimulation(
        topo,
        SimulationConfig(seed=7, reliable_channels=True, fault_model=fault_model),
    )
    assert sim.run_until_legitimate(timeout=300.0) is not None


def test_deterministic_given_seed():
    results = []
    for _ in range(2):
        topo = build_network("B4", n_controllers=2, seed=9)
        sim = NetworkSimulation(topo, SimulationConfig(seed=9))
        results.append(sim.run_until_legitimate(timeout=120.0))
    assert results[0] == results[1]


def test_metrics_track_traffic():
    topo = build_network("B4", n_controllers=2, seed=1)
    sim = NetworkSimulation(topo, SimulationConfig(seed=1))
    sim.run_for(5.0)
    assert sim.metrics.loads  # controllers sent traffic
    for load in sim.metrics.loads.values():
        assert load.link_transmissions >= load.batches_sent


def test_run_until_legitimate_timeout_returns_none():
    topo = build_network("B4", n_controllers=2, seed=1)
    sim = NetworkSimulation(topo, SimulationConfig(seed=1))
    # 0.1 s is far too short to bootstrap.
    assert sim.run_until_legitimate(timeout=0.1) is None


def test_fault_injection_marks_time():
    topo = build_network("B4", n_controllers=2, seed=1)
    sim = NetworkSimulation(topo, SimulationConfig(seed=1))
    sim.run_until_legitimate(timeout=120.0)
    victim = topo.controllers[0]
    sim.inject(FaultPlan().fail_node(sim.sim.now + 0.2, victim))
    sim.run_for(0.5)
    assert sim.metrics.fault_time is not None
    assert sim.controllers[victim].failed


def test_unknown_fault_kind_rejected():
    from repro.sim.faults import FaultAction

    topo = build_network("B4", n_controllers=2, seed=1)
    sim = NetworkSimulation(topo, SimulationConfig(seed=1))
    with pytest.raises(ValueError):
        sim.apply_fault(FaultAction(0.0, "explode", ("b4-u0",)))
