"""The causal-provenance layer: engine happens-before recording, typed
provenance tags from the network layer, and the two invariants the
forensics design hangs on — the disabled path records nothing and stays
byte-identical, and a seeded run produces the same DAG on every rerun."""

import json

import pytest

from repro.adversary.spec import measure_stabilization
from repro.api import Bootstrap, CorruptState, RunPlan
from repro.obs import ProvenanceDAG, Telemetry, use_telemetry
from repro.obs.causality import CausalEvent
from repro.obs.export import trace_payload
from repro.sim.engine import Simulator


# -- engine semantics --------------------------------------------------------


def test_cause_defaults_to_currently_executing_event():
    sim = Simulator()
    sim.enable_causality()

    def outer():
        sim.schedule(1.0, lambda: None, note="inner")

    root_event = sim.schedule(1.0, outer, note="outer")
    sim.run()
    rows = sim.causal_events()
    by_note = {note: (eid, cause) for eid, _t, _k, note, cause, _tags in rows}
    assert by_note["outer"][1] is None  # scheduled outside any event
    assert by_note["inner"][1] == root_event.seq


def test_explicit_cause_wins_over_default():
    sim = Simulator()
    sim.enable_causality()

    def outer():
        sim.schedule(1.0, lambda: None, note="inner", cause=123)

    sim.schedule(1.0, outer)
    sim.run()
    inner = [r for r in sim.causal_events() if r[3] == "inner"]
    assert inner[0][4] == 123


def test_disabled_engine_records_nothing():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.causal_events() is None
    assert event.cause is None and event.tags is None


def test_provenance_roots_are_negative_and_do_not_disturb_seq():
    sim = Simulator()
    sim.enable_causality()
    r1 = sim.provenance_root(note="a")
    r2 = sim.provenance_root(note="b")
    assert (r1, r2) == (-1, -2)
    # The heap's FIFO seq counter is a separate stream: the next real
    # event still gets seq 0.
    event = sim.schedule(1.0, lambda: None)
    assert event.seq == 0


def test_provenance_root_returns_none_when_disabled():
    assert Simulator().provenance_root(note="x") is None


def test_annotate_merges_into_current_event():
    sim = Simulator()
    sim.enable_causality()

    def work():
        sim.annotate(a=1)
        sim.annotate(b=2)

    sim.schedule(1.0, work, note="work")
    sim.annotate(outside=True)  # no current event: must be a no-op
    sim.run()
    row = [r for r in sim.causal_events() if r[3] == "work"][0]
    assert row[5] == {"a": 1, "b": 2}


def test_cause_scope_attributes_and_restores():
    sim = Simulator()
    sim.enable_causality()
    root = sim.provenance_root(note="intervention")
    with sim.cause_scope(root):
        scoped = sim.schedule(1.0, lambda: None, note="scoped")
    after = sim.schedule(1.0, lambda: None, note="after")
    assert scoped.cause == root
    assert after.cause is None


def test_cause_scope_none_suppresses_implicit_edge():
    sim = Simulator()
    sim.enable_causality()

    def outer():
        with sim.cause_scope(None):
            sim.schedule(1.0, lambda: None, note="detached")

    sim.schedule(1.0, outer)
    sim.run()
    detached = [r for r in sim.causal_events() if r[3] == "detached"][0]
    assert detached[4] is None


def test_cause_scope_is_transparent_when_disabled():
    sim = Simulator()
    with sim.cause_scope(5):
        event = sim.schedule(1.0, lambda: None)
    assert event.cause is None


# -- network-layer provenance tags -------------------------------------------


def bootstrap_payload(seed=0):
    plan = (
        RunPlan("jellyfish:8", controllers=2, seed=seed)
        .configure(theta=4, task_delay=0.1)
        .then(Bootstrap(timeout=120.0))
    )
    with use_telemetry(Telemetry()) as telemetry:
        result = plan.session().run()
    assert result.ok
    return trace_payload(telemetry)


def test_bootstrap_trace_carries_typed_provenance():
    dag = ProvenanceDAG.from_payload(bootstrap_payload())
    assert dag is not None and len(dag)
    batches = dag.find(msg="batch")
    assert batches, "control batches must be tagged"
    assert all("src" in e.tags and "dst" in e.tags for e in batches)
    replies = dag.find(msg="reply")
    assert replies, "query replies must be tagged"
    iterations = dag.find(ctrl=...)
    assert iterations, "controller iterations must be annotated"
    sample = iterations[-1].tags
    assert {"round", "new_round", "round_age", "iteration"} <= set(sample)
    probes = dag.find(legitimate=...)
    assert probes and probes[-1].tags["legitimate"] is True


def test_batch_events_link_back_to_controller_iteration():
    dag = ProvenanceDAG.from_payload(bootstrap_payload())
    linked = 0
    for batch in dag.find(msg="batch"):
        ancestry = dag.ancestry(batch.eid)
        if any("ctrl" in a.tags for a in ancestry[1:]):
            linked += 1
    assert linked, "batches must be caused by a controller iteration"


def test_fault_actions_carry_fault_ids():
    from repro.scenarios.spec import measure_campaign_recovery

    with use_telemetry(Telemetry()) as telemetry:
        recovery = measure_campaign_recovery(
            "ring:6", "churn", 7, n_controllers=2, task_delay=0.1,
            theta=4, timeout=120.0,
        )
    assert recovery is not None
    dag = ProvenanceDAG.from_payload(trace_payload(telemetry))
    faults = dag.find(fault_id=...)
    assert faults
    assert all("target" in f.tags and "fault" in f.tags for f in faults)
    # Ids are unique and name the action kind.
    ids = [f.tags["fault_id"] for f in faults]
    assert len(set(ids)) == len(ids)
    assert all(str(f.tags["fault"]) in str(f.tags["fault_id"]) for f in faults)


def test_corruption_root_causes_adversary_events():
    with use_telemetry(Telemetry()) as telemetry:
        measure_stabilization(
            "jellyfish:8", "channel-garbage", 3, n_controllers=2,
            task_delay=0.1, theta=4, timeout=120.0,
        )
    dag = ProvenanceDAG.from_payload(trace_payload(telemetry))
    roots = dag.roots()
    assert len(roots) == 1
    root = roots[0]
    assert root.tags["corruption_id"] == "channel-garbage@seed=3"
    children = dag.children.get(root.eid, [])
    assert children, "garbage deliveries must be caused by the root"
    for eid in children:
        assert dag.by_id[eid].cause == root.eid


# -- DAG queries -------------------------------------------------------------


def toy_dag():
    rows = [
        [-1, 0.0, "provenance_root", "corrupt", None, {"corruption_id": "x"}],
        [0, 1.0, "generic", "a", -1, None],
        [1, 2.0, "generic", "b", 0, None],
        [2, 9.0, "generic", "deep", 0, None],
        [3, 3.0, "generic", "c", 1, None],
    ]
    return ProvenanceDAG.from_rows(rows)


def test_dag_queries():
    dag = toy_dag()
    assert len(dag) == 5
    assert [r.eid for r in dag.roots()] == [-1]
    assert [e.eid for e in dag.find(corruption_id="x")] == [-1]
    assert [e.eid for e in dag.ancestry(3)] == [3, 1, 0, -1]
    assert sorted(e.eid for e in dag.descendants(-1)) == [0, 1, 2, 3]


def test_causal_chain_follows_deepest_reach():
    # From the root, eid 0 has two children: 1 (subtree reach t=3) and
    # 2 (reach t=9) — the chain must take the deeper branch.
    chain = [e.eid for e in toy_dag().causal_chain(-1)]
    assert chain == [-1, 0, 2]


def test_causal_event_label_renders_interesting_tags():
    event = CausalEvent(
        eid=1, t_sim=2.5, kind="packet_delivery", note="x->y",
        tags={"fault_id": "fail_link@1#0", "boring": 1},
    )
    label = event.label()
    assert "t=2.500" in label and "fault_id=fail_link@1#0" in label
    assert "boring" not in label


# -- determinism -------------------------------------------------------------


def stabilize_signature(seed):
    with use_telemetry(Telemetry()) as telemetry:
        measure_stabilization(
            "jellyfish:8", "mixed", seed, n_controllers=2,
            task_delay=0.1, theta=4, timeout=120.0,
        )
    dag = ProvenanceDAG.from_payload(trace_payload(telemetry))
    return dag.signature()


def test_causal_dag_is_deterministic_across_reruns():
    assert stabilize_signature(11) == stabilize_signature(11)


def test_causal_dag_depends_on_seed():
    assert stabilize_signature(11) != stabilize_signature(12)


def test_causal_dag_identical_serial_vs_parallel():
    """The DAG is a property of the seeded run, not of where it executes:
    a pool worker produces the same signature as this process."""
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(2) as pool:
        parallel = pool.map(stabilize_signature, [11, 12])
    assert parallel == [stabilize_signature(11), stabilize_signature(12)]


def test_causal_log_survives_json_round_trip():
    payload = bootstrap_payload()
    clone = json.loads(json.dumps(payload, sort_keys=True))
    original = ProvenanceDAG.from_payload(payload)
    restored = ProvenanceDAG.from_payload(clone)
    assert original.signature() == restored.signature()


def test_telemetry_off_run_is_byte_identical_and_causality_free():
    """With causality merged into the engine, the untraced path still
    serializes byte-for-byte identically across runs and records no
    causal rows."""

    def run():
        plan = (
            RunPlan("jellyfish:8", controllers=2, seed=5)
            .configure(theta=4, task_delay=0.1)
            .then(Bootstrap(timeout=120.0))
        )
        session = plan.session()
        result = session.run()
        assert session.sim.sim.causal_events() is None
        return json.dumps(result.to_dict(), sort_keys=True)

    assert run() == run()


def test_traced_and_untraced_runs_measure_identically():
    plan_args = dict(controllers=2, seed=9)

    def run(traced):
        plan = (
            RunPlan("jellyfish:8", **plan_args)
            .configure(theta=4, task_delay=0.1)
            .then(Bootstrap(timeout=120.0), CorruptState("desync-views"))
        )
        if traced:
            with use_telemetry(Telemetry()):
                doc = plan.session().run().to_dict()
        else:
            doc = plan.session().run().to_dict()
        doc.pop("timings", None)  # wall-clock, present only when traced
        return doc

    assert run(True) == run(False)
