"""Unit tests for the unreliable link layer and its fault model."""

import pytest

from repro.net.link import LinkLayer, LinkFaultModel
from repro.sim.engine import Simulator


def make_link(fault_model=None, link_up=None):
    sim = Simulator()
    delivered = []
    up = {"value": True} if link_up is None else link_up

    layer = LinkLayer(
        sim,
        deliver=lambda receiver, sender, payload: delivered.append(
            (receiver, sender, payload)
        ),
        is_link_usable=lambda u, v: up["value"],
        latency=0.001,
        fault_model=fault_model,
    )
    return sim, layer, delivered, up


def test_basic_transmission():
    sim, layer, delivered, _ = make_link()
    layer.transmit("a", "b", "hello")
    sim.run()
    assert delivered == [("b", "a", "hello")]
    assert layer.delivered_count == 1


def test_down_link_drops():
    sim, layer, delivered, up = make_link()
    up["value"] = False
    layer.transmit("a", "b", "x")
    sim.run()
    assert delivered == []
    assert layer.dropped_count == 1


def test_mid_flight_failure_drops():
    sim, layer, delivered, up = make_link()
    layer.transmit("a", "b", "x")
    up["value"] = False  # link dies while the datagram is in flight
    sim.run()
    assert delivered == []


def test_omission_probability_one_drops_everything():
    model = LinkFaultModel(omission_prob=1.0)
    sim, layer, delivered, _ = make_link(fault_model=model)
    for _ in range(10):
        layer.transmit("a", "b", "x")
    sim.run()
    assert delivered == []
    assert layer.dropped_count == 10


def test_duplication_probability_one_duplicates():
    model = LinkFaultModel(duplication_prob=1.0)
    sim, layer, delivered, _ = make_link(fault_model=model)
    layer.transmit("a", "b", "x")
    sim.run()
    assert len(delivered) == 2


def test_reordering_changes_delivery_order():
    model = LinkFaultModel(reorder_prob=1.0, reorder_extra_latency=0.5, seed=3)
    sim, layer, delivered, _ = make_link(fault_model=model)
    for i in range(20):
        layer.transmit("a", "b", i)
    sim.run()
    payloads = [p for _, _, p in delivered]
    assert sorted(payloads) == list(range(20))
    assert payloads != list(range(20))  # at least one overtake


def test_invalid_probability_rejected():
    with pytest.raises(ValueError):
        LinkFaultModel(omission_prob=1.5)


def test_invalid_latency_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        LinkLayer(sim, deliver=lambda *a: None, is_link_usable=lambda u, v: True, latency=0)


def test_fault_model_deterministic_per_seed():
    a = LinkFaultModel(omission_prob=0.5, seed=1)
    b = LinkFaultModel(omission_prob=0.5, seed=1)
    fates_a = [len(a.copies_and_delays(0.001)) for _ in range(50)]
    fates_b = [len(b.copies_and_delays(0.001)) for _ in range(50)]
    assert fates_a == fates_b
