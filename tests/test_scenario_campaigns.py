"""Tests for the composable fault-campaign generators."""

import random
from collections import defaultdict

import pytest

from repro.net.topologies import attach_controllers
from repro.scenarios.campaigns import (
    CAMPAIGNS,
    build_campaign,
    compose,
    controller_churn,
    flapping_links,
    poisson_churn,
    regional_failure,
    state_corruption,
)
from repro.scenarios.generators import jellyfish, ring
from repro.sim.faults import FaultPlan


def _topo(n=8):
    topo = ring(n)
    attach_controllers(topo, 2, seed=0)
    return topo


def test_campaigns_are_pure_functions_of_the_rng():
    topo = _topo()
    for name in CAMPAIGNS:
        a = build_campaign(name, topo, random.Random(42))
        b = build_campaign(name, topo, random.Random(42))
        assert a.actions == b.actions, name
        c = build_campaign(name, topo, random.Random(43))
        assert a.actions != c.actions or not a.actions, name


def test_every_campaign_is_transient():
    """Each failed link/node has a recover no earlier than the fail, so
    the operational topology at plan.last_at() equals the initial one."""
    from repro.scenarios.harness import plan_is_transient

    topo = _topo()
    for name in CAMPAIGNS:
        plan = build_campaign(name, topo, random.Random(7))
        assert plan_is_transient(plan), name


def test_campaign_actions_on_relative_clock():
    topo = _topo()
    for name in CAMPAIGNS:
        plan = build_campaign(name, topo, random.Random(3))
        assert all(a.at >= 0.0 for a in plan.actions), name


def test_poisson_churn_respects_horizon():
    plan = poisson_churn(_topo(), random.Random(0), horizon=6.0)
    assert plan.last_at() <= 6.0
    kinds = {a.kind for a in plan.actions}
    assert kinds <= {"fail_link", "recover_link", "fail_node", "recover_node"}


def test_regional_failure_takes_down_a_neighbourhood():
    topo = _topo()
    plan = regional_failure(topo, random.Random(1), radius=1, at=1.0, outage=2.0)
    failed = {a.target[0] for a in plan.actions if a.kind == "fail_node"}
    recovered = {a.target[0] for a in plan.actions if a.kind == "recover_node"}
    assert failed == recovered
    assert len(failed) >= 3  # epicenter + its ring neighbours at least


def test_flapping_links_end_up_restored():
    topo = _topo()
    plan = flapping_links(topo, random.Random(2), n_links=2, cycles=3)
    per_link = defaultdict(int)
    for action in plan.actions:
        per_link[action.target] += 1 if action.kind == "recover_link" else -1
    assert all(balance == 0 for balance in per_link.values())


def _outage_windows_disjoint(plan):
    windows = defaultdict(list)
    for action in plan.actions:
        if action.kind in ("fail_link", "fail_node"):
            windows[action.target].append([action.at, None])
        elif action.kind in ("recover_link", "recover_node"):
            windows[action.target][-1][1] = action.at
    for spans in windows.values():
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            if end is None or start < end:
                return False
    return True


def test_churn_outage_windows_never_overlap_per_victim():
    """Regression: re-failing a still-down victim would let its earlier
    pending recover revive it mid-outage, silently shortening the second
    outage.  Both churn builders must keep per-victim windows disjoint."""
    topo = _topo()
    for seed in range(10):
        assert _outage_windows_disjoint(
            poisson_churn(topo, random.Random(seed), mtbf=0.3, mttr=1.5)
        ), f"poisson_churn seed {seed}"
        assert _outage_windows_disjoint(
            controller_churn(topo, random.Random(seed), events=6, spacing=0.5)
        ), f"controller_churn seed {seed}"


def test_controller_churn_only_touches_controllers():
    topo = _topo()
    controllers = set(topo.controllers)
    plan = controller_churn(topo, random.Random(5))
    assert plan.actions
    assert all(a.target[0] in controllers for a in plan.actions)


def test_controller_churn_requires_controllers():
    with pytest.raises(ValueError):
        controller_churn(ring(6), random.Random(0))


def test_state_corruption_mixes_switch_and_controller_faults():
    topo = _topo(12)
    plan = state_corruption(topo, random.Random(11), events=12)
    kinds = {a.kind for a in plan.actions}
    assert kinds <= {"corrupt_switch", "corrupt_controller"}
    assert len(plan.actions) == 12


def test_compose_merges_and_orders_by_time():
    topo = _topo()
    a = FaultPlan().fail_link(2.0, "r0", "r1").recover_link(3.0, "r0", "r1")
    b = FaultPlan().fail_node(1.0, "r2").recover_node(2.5, "r2")
    merged = compose(a, b)
    assert [x.at for x in merged.actions] == [1.0, 2.0, 2.5, 3.0]
    assert len(merged.actions) == 4


def test_compose_handles_same_instant_unorderable_targets():
    """Regression: corruption targets carry Rule payloads that do not
    support '<'; composing same-instant corruptions must not try to order
    them by target."""
    from repro.switch.flow_table import Rule

    r1 = Rule(cid="c0", sid="r0", src="c0", dst="d0", priority=1, forward_to="r1")
    r2 = Rule(cid="c1", sid="r0", src="c1", dst="d1", priority=1, forward_to="r5")
    a = FaultPlan().corrupt_switch(1.0, "r0", rules=(r1,))
    b = FaultPlan().corrupt_switch(1.0, "r0", rules=(r2,))
    merged = compose(a, b)
    assert [x.target[1] for x in merged.actions] == [(r1,), (r2,)]


def test_build_campaign_unknown_name():
    with pytest.raises(ValueError):
        build_campaign("tsunami", _topo(), random.Random(0))


def test_campaigns_work_on_every_generator_family():
    topo = jellyfish(10, 3, seed=0)
    attach_controllers(topo, 2, seed=0)
    for name in CAMPAIGNS:
        plan = build_campaign(name, topo, random.Random(9))
        assert isinstance(plan, FaultPlan)
