"""Tests for the topology zoo against the paper's Table 8."""

import pytest

from repro.net.topologies import (
    EXODUS_EXPECTED,
    TABLE8_EXPECTED,
    TOPOLOGY_BUILDERS,
    attach_controllers,
    exodus,
    random_k_connected,
)


def test_exodus_standin_statistics():
    """Table 17 evaluates throughput on Exodus (Rocketfuel 3967)."""
    topo = exodus()
    nodes, diameter = EXODUS_EXPECTED
    assert len(topo.switches) == nodes
    assert topo.diameter() == diameter
    assert topo.edge_connectivity() >= 2


@pytest.mark.parametrize("name", sorted(TABLE8_EXPECTED))
def test_table8_node_counts(name):
    nodes, _ = TABLE8_EXPECTED[name]
    topo = TOPOLOGY_BUILDERS[name]()
    assert len(topo.switches) == nodes


@pytest.mark.parametrize("name", sorted(TABLE8_EXPECTED))
def test_table8_diameters(name):
    _, diameter = TABLE8_EXPECTED[name]
    topo = TOPOLOGY_BUILDERS[name]()
    assert topo.diameter() == diameter


@pytest.mark.parametrize("name", sorted(TABLE8_EXPECTED))
def test_evaluation_networks_support_kappa1(name):
    """κ=1 fault-resilient flows need 2-edge-connectivity (Section 2.2.2)."""
    topo = TOPOLOGY_BUILDERS[name]()
    assert topo.edge_connectivity() >= 2


@pytest.mark.parametrize("name", sorted(TABLE8_EXPECTED))
def test_builders_are_deterministic(name):
    a = TOPOLOGY_BUILDERS[name]()
    b = TOPOLOGY_BUILDERS[name]()
    assert a.nodes == b.nodes
    assert a.links == b.links


def test_attach_controllers_preserves_connectivity():
    """Dual-homed controllers keep λ >= 2 and add at most one hop to the
    diameter (Table 8's diameters count the switch network only)."""
    topo = TOPOLOGY_BUILDERS["Telstra"]()
    diameter = topo.diameter()
    attach_controllers(topo, 7, seed=3)
    assert len(topo.controllers) == 7
    assert diameter <= topo.diameter() <= diameter + 1
    assert topo.edge_connectivity() >= 2


def test_attach_controllers_dual_homed():
    topo = TOPOLOGY_BUILDERS["B4"]()
    cids = attach_controllers(topo, 3, seed=0)
    for cid in cids:
        assert topo.degree(cid) == 2


def test_attach_controllers_deterministic_per_seed():
    t1 = TOPOLOGY_BUILDERS["B4"]()
    t2 = TOPOLOGY_BUILDERS["B4"]()
    attach_controllers(t1, 3, seed=5)
    attach_controllers(t2, 3, seed=5)
    assert t1.links == t2.links


def test_attach_zero_controllers_rejected():
    topo = TOPOLOGY_BUILDERS["B4"]()
    with pytest.raises(ValueError):
        attach_controllers(topo, 0)


@pytest.mark.parametrize("n,k", [(8, 2), (11, 2), (12, 4), (15, 3)])
def test_random_k_connected_connectivity(n, k):
    topo = random_k_connected(n, k, seed=1)
    assert len(topo.switches) == n
    assert topo.edge_connectivity() >= k


def test_random_k_connected_extra_edges():
    sparse = random_k_connected(12, 2, seed=1)
    dense = random_k_connected(12, 2, seed=1, extra_edge_prob=0.3)
    assert len(dense.links) > len(sparse.links)


def test_random_k_connected_validates_input():
    with pytest.raises(ValueError):
        random_k_connected(3, 4)
    with pytest.raises(ValueError):
        random_k_connected(10, 1)
