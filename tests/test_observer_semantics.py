"""Observer-semantics gaps pinned down: ConvergenceTimeline
attach/detach idempotency, exception isolation across the observer list
when telemetry fans out through it, and the flight recorder firing on a
phase timeout inside a full phased run."""

import pytest

from repro.api import AwaitLegitimacy, Bootstrap, InjectFaults, RunPlan
from repro.obs import Telemetry, use_telemetry
from repro.sim.faults import FaultPlan
from repro.sim.metrics import MetricsRecorder
from repro.sim.timeline import ConvergenceTimeline


def small_session():
    return (
        RunPlan("ring:5", controllers=2, seed=0)
        .configure(theta=4, task_delay=0.1)
        .then(Bootstrap(timeout=120.0))
        .session()
    )


# -- timeline attach/detach -------------------------------------------------


def test_attach_is_idempotent():
    session = small_session()
    timeline = ConvergenceTimeline(session.sim, interval=0.1)
    timeline.attach()
    timeline.attach()  # second attach must not double the sampling rate
    session.run()
    times = [s.time for s in timeline.samples]
    assert times == sorted(set(times)), "duplicate sampling instants"
    assert len(times) > 1


def test_detach_stops_sampling_and_is_idempotent():
    session = small_session()
    timeline = ConvergenceTimeline(session.sim, interval=0.5)
    timeline.attach()
    session.sim.sim.run(until=2.0)
    collected = len(timeline.samples)
    assert collected >= 3
    timeline.detach()
    timeline.detach()  # no-op, no error
    session.sim.sim.run(until=5.0)
    assert len(timeline.samples) == collected, "detached timeline kept sampling"


def test_detach_then_reattach_resumes():
    session = small_session()
    timeline = ConvergenceTimeline(session.sim, interval=0.5)
    timeline.attach()
    session.sim.sim.run(until=1.2)
    timeline.detach()
    session.sim.sim.run(until=3.0)
    timeline.attach()
    session.sim.sim.run(until=4.2)
    times = [s.time for s in timeline.samples]
    # nothing sampled in the detached window (1.2, 3.0]
    assert not [t for t in times if 1.2 < t <= 3.0]
    assert [t for t in times if t > 3.0], "re-attach never resumed"


def test_detach_before_attach_is_a_noop():
    session = small_session()
    timeline = ConvergenceTimeline(session.sim, interval=0.5)
    timeline.detach()  # never attached: silently fine
    assert timeline.samples == []


# -- observer exception isolation under telemetry fan-out -------------------


class _Boom:
    def on_event(self, time, name, value=None):
        raise RuntimeError("observer exploded")


class _Tally:
    def __init__(self):
        self.seen = []

    def on_event(self, time, name, value=None):
        self.seen.append(name)


def test_exception_does_not_starve_later_observers():
    recorder = MetricsRecorder()
    tally = _Tally()
    recorder.add_observer(_Boom())
    recorder.add_observer(tally)
    with pytest.raises(RuntimeError, match="observer exploded"):
        recorder.mark_event(1.0, "milestone")
    assert tally.seen == ["milestone"], "observer after the raiser was starved"


def test_broken_observer_does_not_lose_telemetry_marks():
    """Telemetry joins the metrics observer list like any client; a
    broken sibling observer must not cost it events (whichever side of
    the raiser it landed on)."""
    with use_telemetry(Telemetry()) as telemetry:
        session = small_session()
        session.sim.metrics.add_observer(_Boom())
        with pytest.raises(RuntimeError, match="observer exploded"):
            session.run()
    names = [m[2] for m in telemetry.marks]
    assert "convergence" in names


def test_telemetry_exception_still_reaches_user_observers():
    class _BrokenTelemetry(Telemetry):
        def mark(self, t_sim, name, value=None):
            raise RuntimeError("telemetry sink broke")

    tally = _Tally()
    with use_telemetry(_BrokenTelemetry()):
        session = small_session()
        session.sim.metrics.add_observer(tally)
        with pytest.raises(RuntimeError, match="telemetry sink broke"):
            session.run()
    assert "convergence" in tally.seen


# -- flight recorder on phase timeout ---------------------------------------


def test_flight_dump_fires_on_await_legitimacy_timeout():
    """A recovery phase that times out (not just bootstrap) ships the
    event tail, and the dump's source names the failing wait."""

    def sever(sim, rng):
        plan = FaultPlan()
        # Remove every link of one switch: permanently partitioned, so
        # AwaitLegitimacy can never succeed.
        victim = sim.topology.switches[0]
        for neighbor in list(sim.topology.neighbors(victim)):
            plan.remove_link(sim.sim.now + 0.05, victim, neighbor)
        return plan

    with use_telemetry(Telemetry(flight_capacity=32)) as telemetry:
        result = (
            RunPlan("ring:5", controllers=2, seed=0)
            .configure(theta=4, task_delay=0.1)
            .then(
                Bootstrap(timeout=120.0),
                InjectFaults(builder=sever),
                AwaitLegitimacy(timeout=5.0),
            )
            .run()
        )
    assert not result.ok
    assert telemetry.flight_dumps, "timeout produced no flight dump"
    dump = telemetry.flight_dumps[-1]
    assert dump["reason"] == "non-convergence"
    assert "run_until_legitimate" in dump["source"]
    assert 0 < dump["n_events"] <= 32
