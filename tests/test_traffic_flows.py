"""Tests for the flow-level traffic subsystem (:mod:`repro.traffic`):
workload generation, ECMP route enumeration, the fluid max-min engine,
and the end-to-end ``Traffic`` phase."""

import json
import math

import pytest

np = pytest.importorskip("numpy")

from repro.api import RunPlan, RunResult, Traffic
from repro.net.topology import Topology
from repro.traffic import (
    FluidTrafficEngine,
    TenantFlows,
    WorkloadSpec,
    equal_cost_paths,
)
from repro.traffic.spec import run_traffic


# -- workload ----------------------------------------------------------------


def test_workload_spec_json_round_trip():
    spec = WorkloadSpec(flows=5000, pairs=64, arrival="poisson",
                        arrival_rate=250.0, size_mbits=20.0,
                        size_dist="fixed", peak_rate_mbps=50.0)
    clone = WorkloadSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert clone == spec


def test_workload_spec_rejects_bad_values():
    with pytest.raises(ValueError):
        WorkloadSpec(flows=0)
    with pytest.raises(ValueError):
        WorkloadSpec(arrival="bursty")
    with pytest.raises(ValueError):
        WorkloadSpec(size_dist="pareto")


def test_workload_generation_is_deterministic():
    spec = WorkloadSpec(flows=10_000, pairs=32)
    hosts = [f"s{i}" for i in range(40)]
    a = spec.generate(hosts, seed=7, duration=10.0)
    b = spec.generate(hosts, seed=7, duration=10.0)
    assert a.pairs == b.pairs
    assert np.array_equal(a.flow_pair, b.flow_pair)
    assert np.array_equal(a.size_mbits, b.size_mbits)
    assert np.array_equal(a.arrival, b.arrival)


def test_workload_generation_varies_with_seed():
    spec = WorkloadSpec(flows=10_000, pairs=32)
    hosts = [f"s{i}" for i in range(40)]
    a = spec.generate(hosts, seed=7, duration=10.0)
    b = spec.generate(hosts, seed=8, duration=10.0)
    assert not np.array_equal(a.size_mbits, b.size_mbits)


def test_workload_pairs_never_self():
    spec = WorkloadSpec(flows=1000, pairs=200)
    workload = spec.generate([f"s{i}" for i in range(12)], seed=0, duration=5.0)
    assert all(src != dst for src, dst in workload.pairs)


# -- engine ------------------------------------------------------------------


def _line_topology(n=4):
    """s0 - s1 - ... - s(n-1), one path per pair."""
    topo = Topology()
    for i in range(n):
        topo.add_switch(f"s{i}")
    for i in range(n - 1):
        topo.add_link(f"s{i}", f"s{i+1}")
    return topo


def _diamond_topology():
    """Two equal-cost 2-hop paths s0->s3 (via s1 or s2)."""
    topo = Topology()
    for i in range(4):
        topo.add_switch(f"s{i}")
    topo.add_link("s0", "s1")
    topo.add_link("s0", "s2")
    topo.add_link("s1", "s3")
    topo.add_link("s2", "s3")
    return topo


def _engine_for(topo, pairs, flows, *, capacity=100.0, peak=1000.0,
                size=1000.0, ecmp=4):
    from repro.sim.network_sim import NetworkSimulation, SimulationConfig

    sim = NetworkSimulation(topo, SimulationConfig())
    tenant = TenantFlows(topo, sim.switches, pairs, ecmp=ecmp)
    tenant.plan()
    tenant.install()
    from repro.traffic.workload import Workload

    spec = WorkloadSpec(flows=flows, pairs=len(pairs), size_mbits=size,
                        size_dist="fixed", peak_rate_mbps=peak)
    # Hand-built workload: the declared pairs exactly, fixed sizes, all
    # flows arriving at t=0 (generate() would sample its own pairs).
    workload = Workload(
        spec=spec,
        hosts=list(topo.switches),
        pairs=list(pairs),
        flow_pair=(np.arange(flows, dtype=np.int64) % len(pairs)),
        size_mbits=np.full(flows, size),
        arrival=np.zeros(flows),
    )
    engine = FluidTrafficEngine(
        topo, sim.switches, workload, capacity_mbps=capacity,
        link_latency=0.001, max_paths=ecmp,
    )
    return sim, tenant, engine


def test_engine_single_bottleneck_max_min_share():
    """10 identical flows across one 100 Mbit/s line each get 10 Mbit/s."""
    topo = _line_topology(3)
    sim, _, engine = _engine_for(topo, [("s0", "s2")], flows=10)
    engine.advance(1e-3)  # admit the flows
    counts = engine._group_counts()
    rates = engine.solve_rates(counts)
    total = float((counts * rates).sum())
    assert total == pytest.approx(100.0, rel=1e-6)


def test_engine_peak_rate_caps_unloaded_flows():
    """One flow on a 1000 Mbit/s line is limited by its own 100 Mbit/s
    peak, not the link."""
    topo = _line_topology(3)
    sim, _, engine = _engine_for(topo, [("s0", "s2")], flows=1,
                                 capacity=1000.0, peak=100.0)
    engine.advance(1e-3)
    rates = engine.solve_rates(engine._group_counts())
    assert float(rates.max()) == pytest.approx(100.0, rel=1e-6)


def test_engine_ecmp_splits_across_equal_paths():
    """On the diamond, the hash split spreads flows over both 2-hop paths
    so aggregate goodput exceeds a single path's capacity."""
    topo = _diamond_topology()
    sim, _, engine = _engine_for(topo, [("s0", "s3")], flows=64)
    engine.advance(1e-3)
    counts = engine._group_counts()
    # Both paths got a non-empty share of the 64 flows.
    assert (counts > 0).sum() == 2
    rates = engine.solve_rates(counts)
    total = float((counts * rates).sum())
    assert total == pytest.approx(200.0, rel=1e-6)


def test_engine_advance_completes_flows():
    topo = _line_topology(3)
    sim, _, engine = _engine_for(topo, [("s0", "s2")], flows=4, size=10.0)
    for _ in range(20):
        engine.advance(0.1)
    assert int(engine.done.sum()) == 4
    assert float(engine.completion.min()) >= 0.0


def test_engine_reroute_counts_only_broken_paths():
    """Failing one diamond arm disrupts exactly the flows hashed onto it;
    the other arm's flows keep their path identity."""
    topo = _diamond_topology()
    sim, tenant, engine = _engine_for(topo, [("s0", "s3")], flows=64)
    engine.advance(1e-3)
    counts_before = engine._group_counts()
    on_arm_one = int(counts_before[0])
    topo.set_link_up("s0", "s1", False)
    tenant.install()
    disrupted = engine.reroute(now=1.0)
    assert disrupted in (on_arm_one, 64 - on_arm_one)
    # Survivors were not reassigned: everything now rides the live arm.
    counts_after = engine._group_counts()
    assert int(counts_after.sum()) == 64


def test_equal_cost_paths_on_diamond():
    topo = _diamond_topology()
    view = topo
    paths = equal_cost_paths(view, "s0", "s3", k=4)
    assert sorted(paths) == [("s0", "s1", "s3"), ("s0", "s2", "s3")]


def test_engine_is_deterministic():
    topo = _diamond_topology()
    summaries = []
    for _ in range(2):
        sim, tenant, engine = _engine_for(topo, [("s0", "s3")], flows=32,
                                          size=20.0)
        for _ in range(10):
            engine.advance(0.1)
        summaries.append(engine.summary())
    assert summaries[0] == summaries[1]


# -- phase + spec ------------------------------------------------------------


def test_traffic_phase_end_to_end_records_metrics():
    result = run_traffic("jellyfish:16", seed=3, flows=2000, pairs=16,
                         duration=6.0)
    assert result.ok
    block = result.traffic
    assert block is not None
    assert block["flows"] == 2000
    assert block["completed"] + block["active"] == 2000
    assert block["stalled"] <= block["active"]  # stalled ⊆ active
    assert block["goodput_mbps"] > 0
    assert block["n_faults"] >= 1
    assert block["disrupted_per_fault"] is not None
    # Serialized metrics must be valid JSON (no NaN/inf leak).
    json.loads(result.to_json())


def test_traffic_run_result_round_trips():
    result = run_traffic("jellyfish:12", seed=1, flows=500, pairs=8,
                         duration=4.0)
    clone = RunResult.from_json(result.to_json())
    assert clone.to_json() == result.to_json()
    assert clone.traffic == result.traffic


def test_traffic_phase_is_deterministic():
    a = run_traffic("jellyfish:12", seed=5, flows=1000, pairs=8, duration=5.0)
    b = run_traffic("jellyfish:12", seed=5, flows=1000, pairs=8, duration=5.0)
    assert a.to_json() == b.to_json()


def test_traffic_without_campaign_sees_no_disruptions():
    plan = RunPlan("jellyfish:12", controllers=0, seed=2).then(
        Traffic(workload=WorkloadSpec(flows=500, pairs=8), duration=4.0,
                campaign=None)
    )
    result = plan.run()
    assert result.ok
    assert result.traffic["n_faults"] == 0
    assert result.traffic["disrupted_total"] == 0
    assert result.traffic["disrupted_per_fault"] is None


def test_traffic_composes_with_control_plane():
    """controllers>0: the workload rides a bootstrapped in-band fabric."""
    result = run_traffic("jellyfish:12", seed=0, flows=300, pairs=6,
                         duration=4.0, n_controllers=2)
    assert result.ok
    assert [p.phase for p in result.phases] == ["bootstrap", "traffic"]
    assert result.traffic["goodput_mbps"] > 0
