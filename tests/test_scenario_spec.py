"""Tests for the scenario experiment spec and its runner integration."""

from repro.exp.runner import run_spec
from repro.exp.spec import get_spec, list_specs
from repro.scenarios.spec import build_scenario_simulation, measure_campaign_recovery
from repro.sim.faults import FaultPlan

FAST = {"task_delay": 0.1, "theta": 4, "n_controllers": 2}


def test_scenario_spec_registered():
    assert "scenario" in list_specs()
    assert get_spec("scenario").name == "scenario"


def test_scenario_cases_default_and_filtered():
    spec = get_spec("scenario")
    cases = spec.cases(networks=None, topology="ring:8", campaign="flapping")
    assert [c.label for c in cases] == ["ring:8 flapping"]
    assert cases[0].network == "ring:8"
    assert spec.cases(networks=("grid:3x3",), topology="ring:8", campaign="churn") == []
    assert len(spec.cases(networks=("ring:8",), topology="ring:8", campaign="churn")) == 1


def test_build_scenario_simulation_is_seed_deterministic():
    a = build_scenario_simulation("jellyfish:10", seed=3, **FAST)
    b = build_scenario_simulation("jellyfish:10", seed=3, **FAST)
    assert a.topology.links == b.topology.links
    assert a.topology.controllers == b.topology.controllers


def test_measure_campaign_recovery_converges():
    recovery = measure_campaign_recovery("ring:6", "churn", seed=0, **FAST)
    assert recovery is not None and recovery >= 0.0


def test_measure_with_empty_plan_is_zero():
    recovery = measure_campaign_recovery(
        "ring:6", "churn", seed=0, plan=FaultPlan(), **FAST
    )
    assert recovery == 0.0


def test_scenario_serial_matches_parallel():
    """Satellite: serial vs workers=4 scenario campaigns are bit-identical,
    mirroring test_exp_runner.test_runner_serial_matches_parallel."""
    params = {"topology": "ring:8", "campaign": "mixed", **FAST}
    serial = run_spec("scenario", reps=4, workers=1, params=params)
    parallel = run_spec("scenario", reps=4, workers=4, params=params)
    assert serial.series == parallel.series
    assert serial.series["ring:8 mixed"], "no repetitions completed"


def test_scenario_seed_changes_series():
    params = {"topology": "jellyfish:8", "campaign": "churn", **FAST}
    s0 = run_spec("scenario", reps=2, workers=1, base_seed=0, params=params)
    s1 = run_spec("scenario", reps=2, workers=1, base_seed=1, params=params)
    # Different base seeds derive different topologies AND campaigns; the
    # series only collide if every repetition recovers in the same probe
    # interval, so compare the underlying campaign schedules instead.
    from repro.exp.seeding import derive_seed, fault_rng
    from repro.scenarios.campaigns import build_campaign
    from repro.scenarios.spec import build_scenario_simulation

    def plan_of(base):
        sim = build_scenario_simulation("jellyfish:8", derive_seed(base, 0), **FAST)
        return build_campaign("churn", sim.topology, fault_rng(derive_seed(base, 0)))

    assert plan_of(0).actions != plan_of(1).actions
    assert len(s0.series) == len(s1.series) == 1
