"""Unit tests for the legitimate-state checker and forwarding walks."""

from repro.core.legitimacy import flow_is_resilient, forwarding_path
from repro.net.topology import Topology, edge
from repro.switch.abstract_switch import AbstractSwitch
from repro.switch.flow_table import Rule


def ring_fabric():
    """s0..s3 ring with rules for flow (a := s0) -> (z := s2) both ways."""
    topo = Topology()
    names = [f"s{i}" for i in range(4)]
    for name in names:
        topo.add_switch(name)
    for i in range(4):
        topo.add_link(names[i], names[(i + 1) % 4])
    switches = {
        s: AbstractSwitch(s, alive_neighbors=(lambda n: (lambda: topo.operational_neighbors(n)))(s))
        for s in names
    }
    return topo, switches


def install(switches, sid, src, dst, fwd, prt=10, detour=None, start=False):
    switches[sid].table.install(
        Rule(
            cid="c", sid=sid, src=src, dst=dst, priority=prt, forward_to=fwd,
            detour=detour, detour_start=start,
        )
    )


def test_walk_direct_neighbor_needs_no_rules():
    topo, switches = ring_fabric()
    assert forwarding_path(topo, switches, "s0", "s1") == ["s0", "s1"]


def test_walk_follows_rules():
    topo, switches = ring_fabric()
    install(switches, "s0", "s0", "s3", fwd="s1")  # forced long way
    install(switches, "s1", "s0", "s3", fwd="s2")
    install(switches, "s2", "s0", "s3", fwd="s3")
    # Direct neighbour relay wins at s0 (s3 is adjacent)...
    assert forwarding_path(topo, switches, "s0", "s3") == ["s0", "s3"]
    # ...until the direct link dies; then the rule path carries traffic.
    topo.set_link_up("s0", "s3", False)
    assert forwarding_path(topo, switches, "s0", "s3") == ["s0", "s1", "s2", "s3"]


def test_rule_less_switch_reaches_distance_two_via_relay():
    """Query-by-neighbour (Section 2.1.1): a switch with no rules can
    still exchange packets with nodes two hops away, because the shared
    neighbour relays."""
    topo, switches = ring_fabric()
    path = forwarding_path(topo, switches, "s0", "s2")
    assert path is not None and len(path) == 3


def test_rule_less_switch_cannot_pass_distance_two():
    """Beyond the relay horizon, in-band reachability requires rules."""
    topo = Topology()
    for name in ("s0", "s1", "s2", "s3"):
        topo.add_switch(name)
    topo.add_link("s0", "s1")
    topo.add_link("s1", "s2")
    topo.add_link("s2", "s3")
    switches = {
        s: AbstractSwitch(s, alive_neighbors=(lambda n: (lambda: topo.operational_neighbors(n)))(s))
        for s in topo.switches
    }
    assert forwarding_path(topo, switches, "s0", "s3") is None
    # Installing the flow fixes it.
    install(switches, "s0", "s0", "s3", fwd="s1")
    install(switches, "s1", "s0", "s3", fwd="s2")
    assert forwarding_path(topo, switches, "s0", "s3") == ["s0", "s1", "s2", "s3"]


def test_walk_ttl_stops_loops():
    topo, switches = ring_fabric()
    # Corrupted rules form a loop s1 <-> s2 toward a destination that no
    # switch is adjacent to; the TTL must kill the walk.
    install(switches, "s1", "s0", "zz", fwd="s2")
    install(switches, "s2", "s0", "zz", fwd="s1")
    assert forwarding_path(topo, switches, "s0", "zz", ttl=10) is None


def test_self_path():
    topo, switches = ring_fabric()
    assert forwarding_path(topo, switches, "s0", "s0") == ["s0"]


def test_hypothetical_failures_do_not_mutate_topology():
    topo, switches = ring_fabric()
    e = edge("s0", "s1")
    forwarding_path(topo, switches, "s0", "s2", extra_failed={e})
    assert topo.link_operational("s0", "s1")


def test_flow_resilient_kappa0_is_plain_reachability():
    topo, switches = ring_fabric()
    assert flow_is_resilient(topo, switches, "s0", "s1", kappa=0)


def test_flow_resilient_kappa1_via_ring_relay():
    topo, switches = ring_fabric()
    # s0 -> s1: direct, and if (s0,s1) fails the walk must survive via
    # the ring s0-s3-s2-s1, which needs rules at s0, s3 and s2.
    install(switches, "s0", "s0", "s1", fwd="s3", prt=9)
    install(switches, "s3", "s0", "s1", fwd="s2", prt=9)
    install(switches, "s2", "s0", "s1", fwd="s1", prt=9)
    assert flow_is_resilient(topo, switches, "s0", "s1", kappa=1)


def test_flow_not_resilient_without_backup():
    topo, switches = ring_fabric()
    topo.remove_link("s0", "s3")  # make the ring a line s3-s2-s1-s0... wait
    # s0 -> s1 has only the direct link now (no rules anywhere).
    assert not flow_is_resilient(topo, switches, "s0", "s1", kappa=1)
