"""Golden pins for the transport figures after the timing fixes.

Re-pinned after making the per-second series dense and clamping
``RenoConnection.run`` to the horizon (the failure now lands exactly in
second 10).  Any change to the Reno model, the failover construction, or
the series bucketing shows up here as a diff against these literals.
"""

from __future__ import annotations

from repro.exp.spec import _table17_measure, _traffic_stats

GOLDEN_FIG15_B4 = [
    461.196, 505.8, 512.964, 505.812, 512.964, 505.8, 505.836, 512.964,
    505.872, 507.82800000000003, 409.596, 505.368, 513.0, 505.728,
    512.976, 505.884, 505.824, 512.928, 505.704, 513.0840000000001,
    505.74, 513.024, 505.848, 505.728, 512.892, 505.8, 513.0120000000001,
    505.728, 512.88, 501.75600000000003,
]

GOLDEN_FIG16_B4 = [
    461.196, 505.8, 512.964, 505.812, 512.964, 505.8, 505.836, 512.964,
    505.872, 507.82800000000003, 409.596, 506.688, 503.48400000000004,
    511.452, 503.46000000000004, 511.596, 511.548, 503.41200000000003,
    511.416, 503.556, 511.476, 503.50800000000004, 511.548,
    503.32800000000003, 511.488, 503.40000000000003, 511.62,
    503.34000000000003, 511.464, 499.38,
]

GOLDEN_TABLE17_B4 = 0.9716898298400357


def test_golden_fig15_series():
    series = _traffic_stats("B4", recovery=True).throughput_series()
    assert series == GOLDEN_FIG15_B4


def test_golden_fig16_series():
    series = _traffic_stats("B4", recovery=False).throughput_series()
    assert series == GOLDEN_FIG16_B4


def test_golden_table17_pearson():
    assert _table17_measure("B4", seed=0) == [GOLDEN_TABLE17_B4]


def test_recovery_and_norecovery_share_prefix():
    """Both runs are identical until the repair second: same seed, same
    failure instant, dense series — the first 11 seconds must match."""
    assert GOLDEN_FIG15_B4[:11] == GOLDEN_FIG16_B4[:11]
