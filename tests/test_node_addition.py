"""Integration tests for runtime node additions (Lemma 8, ℓ > 0 cases)."""

from repro import build_network, NetworkSimulation, SimulationConfig, FaultPlan


def bootstrapped(n_controllers=2, seed=8):
    topo = build_network("B4", n_controllers=n_controllers, seed=seed)
    sim = NetworkSimulation(topo, SimulationConfig(seed=seed))
    assert sim.run_until_legitimate(timeout=120.0) is not None
    return sim


def test_switch_addition_reaches_management():
    """A new switch, attached dual-homed with empty memory, is discovered,
    managed by every controller, and woven into the resilient flows."""
    sim = bootstrapped()
    anchors = sim.topology.switches[:2]
    sim.inject(
        FaultPlan().add_switch(sim.sim.now + 0.1, "newbie", tuple(anchors)),
        mark_fault_time=True,
    )
    sim.run_for(0.2)
    t = sim.run_until_legitimate(timeout=120.0)
    assert t is not None
    assert set(sim.switches["newbie"].managers.members()) == set(
        sim.topology.controllers
    )
    assert len(sim.switches["newbie"].table) > 0
    for cid in sim.topology.controllers:
        assert "newbie" in sim.controllers[cid].current_view().nodes


def test_controller_addition_bootstraps_itself():
    """A new controller starting from an empty reply store discovers the
    network and becomes a manager of every switch."""
    sim = bootstrapped()
    anchors = sim.topology.switches[:2]
    sim.inject(
        FaultPlan().add_controller(sim.sim.now + 0.1, "c-new", tuple(anchors)),
        mark_fault_time=True,
    )
    sim.run_for(0.2)
    t = sim.run_until_legitimate(timeout=120.0)
    assert t is not None
    for switch in sim.switches.values():
        assert "c-new" in switch.managers.members()
    assert len(sim.controllers["c-new"].current_view().nodes) == len(
        sim.topology.nodes
    )


def test_simultaneous_addition_and_removal():
    """Lemma 8's r > 0 ∧ ℓ > 0 case: a controller dies while a new one
    joins; the system settles with the new membership."""
    sim = bootstrapped(n_controllers=3)
    victim = sim.topology.controllers[0]
    anchors = sim.topology.switches[:2]
    plan = (
        FaultPlan()
        .fail_node(sim.sim.now + 0.1, victim)
        .add_controller(sim.sim.now + 0.1, "c-new", tuple(anchors))
    )
    sim.inject(plan)
    sim.run_for(0.2)
    t = sim.run_until_legitimate(timeout=120.0)
    assert t is not None
    for switch in sim.switches.values():
        members = set(switch.managers.members())
        assert "c-new" in members
        assert victim not in members
