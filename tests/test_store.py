"""Tests for the content-addressed run store (repro.store)."""

import json
import subprocess
import sys

import pytest

from repro.api import Bootstrap, RunPlan
from repro.exp.runner import expand_tasks, measurement_identity, run_spec
from repro.store import (
    RunStore,
    SCHEMA_VERSION,
    aggregate,
    canonical_json,
    fingerprint,
    store_summary,
    use_store,
)


# -- hashing -----------------------------------------------------------------


def test_canonical_json_is_order_insensitive():
    a = {"b": 1, "a": [1.5, {"y": 2, "x": 3}]}
    b = {"a": [1.5, {"x": 3, "y": 2}], "b": 1}
    assert canonical_json(a) == canonical_json(b)
    assert fingerprint(a) == fingerprint(b)


def test_canonical_json_rejects_non_json_values():
    with pytest.raises(TypeError):
        canonical_json({"fn": object()})


def test_fingerprint_stable_across_processes():
    """The same identity must hash identically in a fresh interpreter —
    the property that lets worker processes and later invocations address
    records a different process wrote."""
    identity = {
        "kind": "run",
        "schema": SCHEMA_VERSION,
        "topology": "ring:16",
        "seed": 3,
        "config": {"task_delay": 0.5, "theta": 10},
        "phases": [{"phase": "bootstrap", "timeout": 60.0, "full": False}],
    }
    here = fingerprint(identity)
    code = (
        "import json, sys\n"
        "from repro.store import fingerprint\n"
        "print(fingerprint(json.load(sys.stdin)))\n"
    )
    there = subprocess.run(
        [sys.executable, "-c", code],
        input=json.dumps(identity),
        capture_output=True,
        text=True,
        check=True,
    ).stdout.strip()
    assert here == there


def test_plan_identity_fingerprint_matches_fresh_process():
    """End-to-end hash stability: the full RunPlan identity — phases,
    config snapshot, everything — built independently in a subprocess
    addresses the same record."""
    plan = (
        RunPlan("ring:8", controllers=2, seed=1)
        .configure(theta=4, task_delay=0.1)
        .then(Bootstrap(timeout=30.0))
    )
    here = fingerprint(plan.identity())
    code = (
        "from repro.api import Bootstrap, RunPlan\n"
        "from repro.store import fingerprint\n"
        "plan = (RunPlan('ring:8', controllers=2, seed=1)\n"
        "        .configure(theta=4, task_delay=0.1)\n"
        "        .then(Bootstrap(timeout=30.0)))\n"
        "print(fingerprint(plan.identity()))\n"
    )
    there = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=True
    ).stdout.strip()
    assert here == there


# -- record round-trips ------------------------------------------------------


def test_put_get_round_trip(tmp_path):
    store = RunStore(tmp_path / "s")
    identity = {"kind": "measurement", "schema": SCHEMA_VERSION, "x": 1}
    key = fingerprint(identity)
    store.put(key, identity, {"value": 4.5}, tags={"spec": "t"})
    record = store.get(key)
    assert record["payload"] == {"value": 4.5}
    assert record["tags"] == {"spec": "t"}
    assert store.stats.hits == 1 and store.stats.stores == 1


def test_get_absent_is_a_miss(tmp_path):
    store = RunStore(tmp_path / "s")
    assert store.get("0" * 64) is None
    assert store.stats.misses == 1
    assert store.stats.corrupt == 0


def test_run_record_round_trips_run_result(tmp_path):
    store = RunStore(tmp_path / "s")
    plan = RunPlan("B4", controllers=3, seed=0).then(Bootstrap(timeout=120.0))
    result = plan.run()
    identity = plan.identity()
    key = fingerprint(identity)
    store.save_run(key, identity, result)
    loaded = store.load_run(key)
    assert loaded == result
    assert loaded.to_json() == result.to_json()


def test_plan_run_uses_active_store(tmp_path):
    store = RunStore(tmp_path / "s")
    plan = RunPlan("B4", controllers=3, seed=0).then(Bootstrap(timeout=120.0))
    with use_store(store):
        first = plan.run()
        second = plan.run()
    assert store.stats.runs_stored == 1
    assert store.stats.runs_loaded == 1
    assert first.to_json() == second.to_json()


def test_unlabeled_fault_builder_makes_plan_uncacheable(tmp_path):
    """A parametrized closure builder without a label would collapse
    distinct parametrizations onto one key; the plan must bypass the
    store rather than risk a wrong cache hit."""
    from repro.api import AwaitLegitimacy, InjectFaults
    from repro.sim.faults import FaultPlan

    def make_fault(k):
        def build(sim, rng):
            plan = FaultPlan()
            for victim in sim.topology.controllers[:k]:
                plan.fail_node(sim.sim.now + 0.05, victim)
            return plan

        return build

    store = RunStore(tmp_path / "s")
    plan = RunPlan("B4", controllers=3, seed=0).then(
        Bootstrap(timeout=120.0),
        InjectFaults(builder=make_fault(1)),
        AwaitLegitimacy(timeout=120.0),
    )
    assert not plan.cacheable()
    with use_store(store):
        plan.run()
    assert store.stats.stores == 0
    # The same plan with a parameter-carrying label is addressable.
    labeled = RunPlan("B4", controllers=3, seed=0).then(
        Bootstrap(timeout=120.0),
        InjectFaults(builder=make_fault(1), label="make_fault:1"),
        AwaitLegitimacy(timeout=120.0),
    )
    assert labeled.cacheable()


def test_run_spec_honours_store_handle_refresh(tmp_path):
    """run_spec(store=RunStore(dir, refresh=True)) must carry the
    handle's --no-cache semantics, not silently serve hits."""
    store_dir = tmp_path / "s"
    run_spec("fig5", reps=1, networks=("B4",), store=store_dir)
    refreshed = run_spec(
        "fig5", reps=1, networks=("B4",), store=RunStore(store_dir, refresh=True)
    )
    assert refreshed.cache_stats == {"hit": 0, "derived": 0, "simulated": 1}


def test_stale_schema_record_is_miss_not_corruption(tmp_path):
    """An intact record of another schema version is stale — a plain
    miss for get(), not a verification failure, and reindex keeps it."""
    store = RunStore(tmp_path / "s")
    identity = {"kind": "measurement", "schema": SCHEMA_VERSION + 1, "x": 1}
    key = fingerprint(identity)
    store.put(key, identity, {"value": 1.0})
    # Rewrite the envelope schema to the foreign version, keeping the
    # content hashes intact (put() stamps the current SCHEMA_VERSION).
    path = store.object_path(key)
    record = json.loads(path.read_text())
    record["schema"] = SCHEMA_VERSION + 1
    path.write_text(canonical_json(record))
    assert store.get(key) is None
    assert store.stats.corrupt == 0  # stale, not corrupt
    assert store.verify() == []
    assert store.reindex() == 1  # still indexed store content


def test_uncacheable_plan_bypasses_store(tmp_path):
    from repro.core.config import RenaissanceConfig

    store = RunStore(tmp_path / "s")
    rena = RenaissanceConfig.for_network(3, 12)
    plan = (
        RunPlan("B4", controllers=3, seed=0)
        .configure(renaissance=rena)
        .then(Bootstrap(timeout=120.0))
    )
    assert not plan.cacheable()
    with use_store(store):
        plan.run()
    assert store.stats.runs_stored == 0 and store.stats.stores == 0


# -- corruption --------------------------------------------------------------


def _corrupt_one_object(store, kind="measurement"):
    """Truncate the first stored record of the given kind (a torn write).

    Kind-targeted, not just sorted-first: the sort order of content hashes
    shifts whenever the identity schema evolves, and corrupting a *run*
    record would not force a measurement re-run (measurement hits
    short-circuit before run lookups)."""
    for path in sorted(store.objects_dir.glob("*/*.json")):
        text = path.read_text()
        if json.loads(text).get("kind") == kind:
            path.write_text(text[: len(text) // 2])
            return path.stem
    raise AssertionError(f"no {kind!r} record in store")


def test_corrupt_record_is_detected_and_rerun(tmp_path):
    store_dir = tmp_path / "s"
    cold = run_spec("fig5", reps=2, networks=("B4",), store=store_dir)
    store = RunStore(store_dir)
    key = _corrupt_one_object(store)
    assert store.get(key) is None
    assert store.stats.corrupt == 1

    rerun = run_spec("fig5", reps=2, networks=("B4",), store=store_dir)
    assert rerun.to_json() == cold.to_json()
    assert rerun.cache_stats["hit"] < 2  # the corrupted repetition re-ran
    # ...and the store healed: everything hits now.
    warm = run_spec("fig5", reps=2, networks=("B4",), store=store_dir)
    assert warm.cache_stats == {"hit": 2, "derived": 0, "simulated": 0}


def test_tampered_payload_fails_checksum(tmp_path):
    store = RunStore(tmp_path / "s")
    identity = {"kind": "measurement", "schema": SCHEMA_VERSION, "x": 1}
    key = fingerprint(identity)
    store.put(key, identity, {"value": 1.0})
    path = store.object_path(key)
    record = json.loads(path.read_text())
    record["payload"]["value"] = 99.0  # silent tamper, checksum left stale
    path.write_text(json.dumps(record))
    assert store.get(key) is None
    assert store.stats.corrupt == 1


def test_verify_reports_corruption_and_reindex_heals_manifest(tmp_path):
    store_dir = tmp_path / "s"
    run_spec("fig5", reps=1, networks=("B4",), store=store_dir)
    store = RunStore(store_dir)
    assert store.verify() == []
    key = _corrupt_one_object(store)
    problems = store.verify()
    assert any(key in p for p in problems)
    # Remove the corpse; the manifest now points at a missing object...
    store.object_path(key).unlink()
    assert any("manifest entry without object" in p for p in store.verify())
    # ...until reindex rebuilds it from the objects directory.
    store.reindex()
    assert store.verify() == []


# -- sweep caching -----------------------------------------------------------


def test_warm_sweep_is_byte_identical_and_simulation_free(tmp_path):
    store_dir = tmp_path / "s"
    cold = run_spec("fig5", reps=3, networks=("B4",), store=store_dir)
    assert cold.cache_stats == {"hit": 0, "derived": 0, "simulated": 3}
    warm = run_spec("fig5", reps=3, networks=("B4",), store=store_dir)
    assert warm.cache_stats == {"hit": 3, "derived": 0, "simulated": 0}
    assert warm.to_json() == cold.to_json()
    assert warm == cold  # cache_stats excluded from equality


def test_warm_sweep_matches_storeless_run(tmp_path):
    plain = run_spec("fig5", reps=2, networks=("Clos",))
    stored = run_spec("fig5", reps=2, networks=("Clos",), store=tmp_path / "s")
    warm = run_spec("fig5", reps=2, networks=("Clos",), store=tmp_path / "s")
    assert plain.to_json() == stored.to_json() == warm.to_json()


def test_no_cache_bypasses_lookups_but_writes_through(tmp_path):
    store_dir = tmp_path / "s"
    run_spec("fig5", reps=2, networks=("B4",), store=store_dir)
    refreshed = run_spec("fig5", reps=2, networks=("B4",), store=store_dir, refresh=True)
    assert refreshed.cache_stats == {"hit": 0, "derived": 0, "simulated": 2}
    # The refresh left the store warm for the next cached invocation.
    warm = run_spec("fig5", reps=2, networks=("B4",), store=store_dir)
    assert warm.cache_stats == {"hit": 2, "derived": 0, "simulated": 0}


def test_parallel_workers_write_through_and_resume(tmp_path):
    store_dir = tmp_path / "s"
    cold = run_spec("fig5", reps=3, networks=("B4",), workers=3, store=store_dir)
    warm = run_spec("fig5", reps=3, networks=("B4",), workers=3, store=store_dir)
    assert warm.cache_stats == {"hit": 3, "derived": 0, "simulated": 0}
    assert warm.to_json() == cold.to_json()


def test_network_refilter_derives_from_cached_runs(tmp_path):
    """A sweep re-filtered to a wider network list reuses every simulation
    the narrow sweep persisted: run records are content-addressed below
    the measurement layer."""
    store_dir = tmp_path / "s"
    run_spec("fig5", reps=2, networks=("B4",), store=store_dir)
    widened = run_spec("fig5", reps=2, networks=("B4", "Clos"), store=store_dir)
    assert widened.cache_stats["hit"] == 0
    assert widened.cache_stats["derived"] == 2  # B4 reps: no new simulation
    assert widened.cache_stats["simulated"] == 2  # Clos reps


def test_series_spec_measurements_are_cached(tmp_path):
    store_dir = tmp_path / "s"
    cold = run_spec("table8", networks=("B4",), store=store_dir)
    warm = run_spec("table8", networks=("B4",), store=store_dir)
    assert warm.cache_stats == {"hit": 3, "derived": 0, "simulated": 0}
    assert warm.to_json() == cold.to_json()


# -- report aggregation ------------------------------------------------------


def test_report_rebuilds_sweep_from_store_alone(tmp_path):
    store_dir = tmp_path / "s"
    cold = run_spec("fig5", reps=3, networks=("B4",), store=store_dir)
    result, missing = aggregate(
        RunStore(store_dir), "fig5", reps=3, networks=("B4",)
    )
    assert missing == []
    assert result.to_json() == cold.to_json()


def test_report_names_missing_repetitions(tmp_path):
    store_dir = tmp_path / "s"
    run_spec("fig5", reps=1, networks=("B4",), store=store_dir)
    result, missing = aggregate(RunStore(store_dir), "fig5", reps=3, networks=("B4",))
    assert missing == ["'B4' rep 1 (seed 1)", "'B4' rep 2 (seed 2)"]
    assert result.series["B4"]  # what exists still aggregates


def test_report_addresses_exact_sweep_coordinates(tmp_path):
    """Measurement records are addressed under the sweep's full
    coordinates — a report over a different network filter has nothing to
    load (the run records below still spare the re-simulation)."""
    store_dir = tmp_path / "s"
    run_spec("fig5", reps=1, networks=("B4",), store=store_dir)
    _, missing = aggregate(RunStore(store_dir), "fig5", reps=1, networks=("B4", "Clos"))
    assert len(missing) == 2


def test_measurement_identity_is_task_addressable():
    """Report-side lookups reconstruct the exact keys the runner wrote:
    identity is a pure function of the expanded task."""
    _, cases, _, tasks = expand_tasks("fig5", reps=2, networks=("B4",))
    identities = [
        measurement_identity(t, cases[t.case_index].label) for t in tasks
    ]
    assert len({fingerprint(i) for i in identities}) == len(tasks)
    again = [
        measurement_identity(t, cases[t.case_index].label)
        for t in expand_tasks("fig5", reps=2, networks=("B4",))[3]
    ]
    assert [fingerprint(i) for i in identities] == [fingerprint(i) for i in again]


def test_store_summary_counts_records(tmp_path):
    store_dir = tmp_path / "s"
    run_spec("fig5", reps=2, networks=("B4",), store=store_dir)
    summary = store_summary(RunStore(store_dir))
    assert summary["by_kind"] == {"measurement": 2, "run": 2}
    assert summary["records"] == 4


# -- CLI ---------------------------------------------------------------------


def test_cli_sweep_report_store_round_trip(tmp_path, capsys):
    from repro.cli import main

    store_dir = str(tmp_path / "s")
    base = ["--figure", "fig5", "--network", "B4", "--reps", "2",
            "--seed", "0", "--store", store_dir, "--json"]
    assert main(["sweep", *base]) == 0
    captured = capsys.readouterr()
    cold_doc = json.loads(captured.out)
    assert "simulated=2" in captured.err

    assert main(["sweep", *base]) == 0
    captured = capsys.readouterr()
    assert json.loads(captured.out) == cold_doc
    assert "hits=2" in captured.err and "simulated=0" in captured.err

    assert main(["report", *base]) == 0
    assert json.loads(capsys.readouterr().out) == cold_doc

    assert main(["store", "verify", "--store", store_dir]) == 0
    assert main(["store", "ls", "--store", store_dir]) == 0
    out = capsys.readouterr().out
    assert "measurement" in out and "run" in out


def test_cli_report_on_incomplete_store_fails(tmp_path, capsys):
    from repro.cli import main

    store_dir = str(tmp_path / "s")
    assert main(["sweep", "--figure", "fig5", "--network", "B4", "--reps", "1",
                 "--store", store_dir]) == 0
    capsys.readouterr()
    assert main(["report", "--figure", "fig5", "--network", "Clos", "--reps", "1",
                 "--store", store_dir]) == 1
    captured = capsys.readouterr()
    assert "missing 1 repetition" in captured.err


def test_cli_store_verify_fails_on_corruption(tmp_path, capsys):
    from repro.cli import main

    store_dir = str(tmp_path / "s")
    assert main(["sweep", "--figure", "fig5", "--network", "B4", "--reps", "1",
                 "--store", store_dir]) == 0
    capsys.readouterr()
    _corrupt_one_object(RunStore(store_dir))
    assert main(["store", "verify", "--store", store_dir]) == 1


def test_concurrent_manifest_appends_never_tear(tmp_path):
    """Eight threads writing records at once: every manifest line stays
    intact (single O_APPEND writes cannot interleave) and the store
    verifies clean — the multi-process-writer hardening property."""
    import threading

    store = RunStore(tmp_path / "s")
    per_thread = 25

    def writer(tid):
        for i in range(per_thread):
            identity = {"kind": "record", "schema": SCHEMA_VERSION,
                        "thread": tid, "i": i}
            store.put(fingerprint(identity), identity, {"v": i})

    threads = [threading.Thread(target=writer, args=(t,)) for t in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(store.manifest()) == 8 * per_thread
    assert store.verify() == []


def test_double_write_same_key_is_benign(tmp_path):
    """Two workers racing on one object key produce the same bytes; the
    store stays valid and the record stays readable."""
    store = RunStore(tmp_path / "s")
    identity = {"kind": "record", "schema": SCHEMA_VERSION, "x": 1}
    key = fingerprint(identity)
    store.put(key, identity, {"v": 42})
    store.put(key, identity, {"v": 42})
    assert store.get(key)["payload"] == {"v": 42}
    assert store.verify() == []
    # The manifest deduplicates by key even though both writers appended.
    assert len(store.manifest()) == 1
