"""Unit tests for the abstract switch control module (Section 2.1.1)."""

import pytest

from repro.switch.abstract_switch import AbstractSwitch, BOTTOM
from repro.switch.flow_table import Rule, META_PRIORITY
from repro.switch.commands import (
    AddManager,
    CommandBatch,
    DelAllRules,
    DelManager,
    NewRound,
    Query,
    UpdateRules,
    make_batch,
)


def make_switch(sid="s0", neighbors=("s1", "s2")):
    return AbstractSwitch(sid, alive_neighbors=lambda: list(neighbors))


def flow_rule(cid="c0", sid="s0", dst="s9", fwd="s1", prt=5):
    return Rule(cid=cid, sid=sid, src=cid, dst=dst, priority=prt, forward_to=fwd)


def test_new_round_installs_meta_rule():
    switch = make_switch()
    switch.handle_batch(CommandBatch("c0", (NewRound("t1"),)))
    assert switch.meta_tag_of("c0") == "t1"


def test_new_round_replaces_meta_tag():
    switch = make_switch()
    switch.handle_batch(CommandBatch("c0", (NewRound("t1"),)))
    switch.handle_batch(CommandBatch("c0", (NewRound("t2"),)))
    assert switch.meta_tag_of("c0") == "t2"
    metas = [r for r in switch.table.rules_of("c0") if r.is_meta]
    assert len(metas) == 1


def test_add_and_del_manager():
    switch = make_switch()
    switch.handle_batch(CommandBatch("c0", (AddManager("c0"), AddManager("c1"))))
    assert switch.managers.members() == ["c0", "c1"]
    switch.handle_batch(CommandBatch("c0", (DelManager("c1"),)))
    assert switch.managers.members() == ["c0"]


def test_update_rules_replaces_senders_rules_only():
    switch = make_switch()
    switch.handle_batch(
        CommandBatch("c0", (UpdateRules((flow_rule(cid="c0", dst="d1"),)),))
    )
    switch.handle_batch(
        CommandBatch("c1", (UpdateRules((flow_rule(cid="c1", dst="d2", fwd="s2"),)),))
    )
    switch.handle_batch(
        CommandBatch("c0", (UpdateRules((flow_rule(cid="c0", dst="d3"),)),))
    )
    dsts = {(r.cid, r.dst) for r in switch.table.rules()}
    assert dsts == {("c0", "d3"), ("c1", "d2")}


def test_del_all_rules():
    switch = make_switch()
    switch.handle_batch(
        CommandBatch(
            "c0", (NewRound("t"), UpdateRules((flow_rule(cid="c0"),)))
        )
    )
    switch.handle_batch(CommandBatch("c1", (DelAllRules("c0"),)))
    assert switch.table.rules_of("c0") == []


def test_query_returns_snapshot():
    switch = make_switch(neighbors=("n1", "n2"))
    reply = switch.handle_batch(
        CommandBatch(
            "c0",
            (
                NewRound("t1"),
                AddManager("c0"),
                UpdateRules((flow_rule(),)),
                Query("t1"),
            ),
        )
    )
    assert reply is not None
    assert reply.node == "s0"
    assert reply.neighbors == ("n1", "n2")
    assert reply.managers == ("c0",)
    assert any(r.is_meta and r.tag == "t1" for r in reply.rules)
    assert reply.kind == "switch"


def test_batch_without_query_returns_none():
    switch = make_switch()
    assert switch.handle_batch(CommandBatch("c0", (NewRound("t"),))) is None


def test_batch_atomicity_order():
    """Deletions execute before the update and the query reflects the
    final state (the paper's canonical batch order)."""
    switch = make_switch()
    switch.handle_batch(
        CommandBatch("c1", (AddManager("c1"), UpdateRules((flow_rule(cid="c1", fwd="s2"),))))
    )
    batch = make_batch(
        sender="c0",
        round_tag="t9",
        manager_dels=["c1"],
        rule_dels=["c1"],
        new_rules=[flow_rule(cid="c0")],
        query_tag="t9",
    )
    reply = switch.handle_batch(batch)
    assert "c1" not in reply.managers
    assert all(r.cid != "c1" for r in reply.rules)
    assert any(r.cid == "c0" and not r.is_meta for r in reply.rules)


def test_deletion_log_records_victims():
    switch = make_switch()
    switch.handle_batch(CommandBatch("c1", (AddManager("c1"),)))
    switch.handle_batch(CommandBatch("c0", (DelManager("c1"),)))
    assert switch.deletion_log[-1].issuer == "c0"
    assert switch.deletion_log[-1].managers_removed == ["c1"]


def test_no_deletion_log_for_noop_deletes():
    switch = make_switch()
    switch.handle_batch(CommandBatch("c0", (DelManager("ghost"), DelAllRules("ghost"))))
    assert switch.deletion_log == []


def test_corrupt_plants_state():
    switch = make_switch()
    switch.corrupt(rules=(flow_rule(cid="evil"),), managers=("evil",))
    assert "evil" in switch.managers.members()
    assert switch.table.rules_of("evil")


def test_corrupt_clear_first():
    switch = make_switch()
    switch.handle_batch(CommandBatch("c0", (AddManager("c0"),)))
    switch.corrupt(clear_first=True)
    assert len(switch.table) == 0
    assert switch.managers.members() == []


def test_make_batch_canonical_order():
    batch = make_batch("c0", "t", manager_dels=["x"], rule_dels=["y"],
                       new_rules=[flow_rule()], query_tag="t")
    kinds = [type(c).__name__ for c in batch.commands]
    assert kinds == [
        "NewRound", "DelManager", "AddManager", "DelAllRules", "UpdateRules", "Query",
    ]
    assert batch.query_tag == "t"


def test_empty_batch_rejected():
    with pytest.raises(ValueError):
        CommandBatch("c0", ())
