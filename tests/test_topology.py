"""Unit tests for the topology model (Gc / Go separation, algorithms)."""

import pytest

from repro.net.topology import Topology, NodeKind, edge


def ring(n=6):
    topo = Topology()
    names = [f"s{i}" for i in range(n)]
    for name in names:
        topo.add_switch(name)
    for i in range(n):
        topo.add_link(names[i], names[(i + 1) % n])
    return topo, names


def test_add_and_query_nodes():
    topo = Topology()
    topo.add_controller("c0")
    topo.add_switch("s0")
    assert topo.controllers == ["c0"]
    assert topo.switches == ["s0"]
    assert topo.is_controller("c0") and topo.is_switch("s0")
    assert "c0" in topo and "missing" not in topo


def test_duplicate_node_rejected():
    topo = Topology()
    topo.add_switch("s0")
    with pytest.raises(ValueError):
        topo.add_switch("s0")


def test_self_loop_rejected():
    topo = Topology()
    topo.add_switch("s0")
    with pytest.raises(ValueError):
        topo.add_link("s0", "s0")


def test_duplicate_link_rejected():
    topo, names = ring()
    with pytest.raises(ValueError):
        topo.add_link(names[0], names[1])


def test_link_to_unknown_node_rejected():
    topo = Topology()
    topo.add_switch("s0")
    with pytest.raises(KeyError):
        topo.add_link("s0", "ghost")


def test_neighbors_sorted_and_cached():
    topo = Topology()
    for name in ("s2", "s0", "s1"):
        topo.add_switch(name)
    topo.add_link("s1", "s0")
    topo.add_link("s1", "s2")
    assert topo.neighbors("s1") == ["s0", "s2"]
    # Mutation invalidates the cache.
    topo.remove_link("s1", "s0")
    assert topo.neighbors("s1") == ["s2"]


def test_operational_vs_communication_neighborhood():
    topo, names = ring()
    topo.set_link_up(names[0], names[1], False)
    assert names[1] in topo.neighbors(names[0])  # still in Gc
    assert names[1] not in topo.operational_neighbors(names[0])  # not in Go


def test_node_down_blocks_links():
    topo, names = ring()
    topo.set_node_up(names[1], False)
    assert not topo.link_operational(names[0], names[1])
    assert topo.operational_neighbors(names[1]) == []


def test_remove_link_permanent():
    topo, names = ring()
    topo.remove_link(names[0], names[1])
    assert not topo.has_link(names[0], names[1])
    assert names[1] not in topo.neighbors(names[0])


def test_remove_node_removes_links():
    topo, names = ring()
    topo.remove_node(names[0])
    assert names[0] not in topo
    assert names[0] not in topo.neighbors(names[1])


def test_bfs_distances_on_ring():
    topo, names = ring(6)
    dist = topo.bfs_layers(names[0])
    assert dist[names[3]] == 3
    assert dist[names[1]] == 1 and dist[names[5]] == 1


def test_bfs_operational_only_respects_failures():
    topo, names = ring(6)
    topo.set_link_up(names[0], names[1], False)
    dist = topo.bfs_layers(names[0], operational_only=True)
    assert dist[names[1]] == 5  # the long way round


def test_shortest_path_first_shortest_tiebreak():
    # Diamond: a-b-d and a-c-d; 'b' < 'c' so the b-route wins.
    topo = Topology()
    for name in "abcd":
        topo.add_switch(name)
    topo.add_link("a", "b")
    topo.add_link("a", "c")
    topo.add_link("b", "d")
    topo.add_link("c", "d")
    assert topo.shortest_path("a", "d") == ["a", "b", "d"]


def test_shortest_path_none_when_disconnected():
    topo = Topology()
    topo.add_switch("a")
    topo.add_switch("b")
    assert topo.shortest_path("a", "b") is None


def test_diameter_of_ring():
    topo, _ = ring(6)
    assert topo.diameter() == 3


def test_diameter_raises_when_disconnected():
    topo = Topology()
    topo.add_switch("a")
    topo.add_switch("b")
    with pytest.raises(ValueError):
        topo.diameter()


def test_edge_connectivity_ring_is_two():
    topo, _ = ring(6)
    assert topo.edge_connectivity() == 2


def test_edge_connectivity_tree_is_one():
    topo = Topology()
    for name in "abc":
        topo.add_switch(name)
    topo.add_link("a", "b")
    topo.add_link("b", "c")
    assert topo.edge_connectivity() == 1


def test_edge_connectivity_disconnected_is_zero():
    topo = Topology()
    topo.add_switch("a")
    topo.add_switch("b")
    assert topo.edge_connectivity() == 0


def test_copy_is_independent():
    topo, names = ring()
    clone = topo.copy()
    clone.remove_link(names[0], names[1])
    assert topo.has_link(names[0], names[1])
    assert not clone.has_link(names[0], names[1])


def test_edge_key_is_unordered():
    assert edge("a", "b") == edge("b", "a")
