"""Unit tests for the self-stabilizing end-to-end channel (Section 3.1)."""

import random

import pytest

from repro.net.channel import (
    ChannelPair,
    Datagram,
    SelfStabilizingChannel,
    DELTA_COMM,
    LABEL_DOMAIN,
)


def test_basic_delivery():
    pair = ChannelPair("a", "b")
    pair.a.offer("hello")
    pair.pump(rounds=3)
    assert pair.delivered_at_b == ["hello"]


def test_fifo_order_preserved():
    pair = ChannelPair("a", "b")
    for i in range(5):
        pair.a.offer(f"m{i}")
    pair.pump(rounds=20)
    assert pair.delivered_at_b == [f"m{i}" for i in range(5)]


def test_bidirectional_traffic():
    pair = ChannelPair("a", "b")
    pair.a.offer("ping")
    pair.b.offer("pong")
    pair.pump(rounds=5)
    assert pair.delivered_at_b == ["ping"]
    assert pair.delivered_at_a == ["pong"]


def test_omission_recovered_by_retransmission():
    rng = random.Random(7)

    def lossy(datagram):
        return [] if rng.random() < 0.5 else [datagram]

    pair = ChannelPair("a", "b", wire_a_to_b=lossy, wire_b_to_a=lossy)
    for i in range(5):
        pair.a.offer(f"m{i}")
    pair.pump(rounds=200)
    assert pair.delivered_at_b == [f"m{i}" for i in range(5)]


def test_duplication_suppressed():
    def duplicating(datagram):
        return [datagram, datagram, datagram]

    pair = ChannelPair("a", "b", wire_a_to_b=duplicating, wire_b_to_a=duplicating)
    for i in range(4):
        pair.a.offer(f"m{i}")
    pair.pump(rounds=50)
    assert pair.delivered_at_b == [f"m{i}" for i in range(4)]
    assert pair.b.duplicates_suppressed > 0


def test_omission_and_duplication_combined():
    rng = random.Random(42)

    def chaotic(datagram):
        roll = rng.random()
        if roll < 0.3:
            return []
        if roll < 0.5:
            return [datagram, datagram]
        return [datagram]

    pair = ChannelPair("a", "b", wire_a_to_b=chaotic, wire_b_to_a=chaotic)
    for i in range(8):
        pair.a.offer(f"m{i}")
    pair.pump(rounds=400)
    assert pair.delivered_at_b == [f"m{i}" for i in range(8)]


def test_outbox_bound_respected():
    sent = []
    channel = SelfStabilizingChannel(
        "a", "b", send_datagram=sent.append, on_deliver=lambda p: None, max_outbox=2
    )
    assert channel.offer("x")
    assert channel.offer("y")
    assert not channel.offer("z")  # full: caller retries later
    assert channel.pending() == 2


def test_tick_retransmits_in_flight():
    sent = []
    channel = SelfStabilizingChannel(
        "a", "b", send_datagram=sent.append, on_deliver=lambda p: None
    )
    channel.offer("m")
    channel.tick()
    channel.tick()
    channel.tick()
    acts = [d for d in sent if d.kind == "act"]
    assert len(acts) == 3
    assert all(d.payload == "m" and d.label == acts[0].label for d in acts)


def test_stale_ack_ignored():
    sent = []
    channel = SelfStabilizingChannel(
        "a", "b", send_datagram=sent.append, on_deliver=lambda p: None
    )
    channel.offer("m")
    channel.tick()
    label = sent[-1].label
    wrong = (label + 1) % LABEL_DOMAIN
    channel.on_datagram(Datagram(kind="ack", label=wrong))
    assert channel.pending() == 1  # still in flight
    channel.on_datagram(Datagram(kind="ack", label=label))
    assert channel.pending() == 0


def test_corrupted_label_coerced_into_domain():
    datagram = Datagram(kind="act", label=999, payload="x")
    assert 0 <= datagram.label < LABEL_DOMAIN


def test_bad_kind_rejected():
    with pytest.raises(ValueError):
        Datagram(kind="nack", label=0)


def test_recovery_from_corrupted_receiver_state():
    """A transient fault scrambles the receiver's label; at most a bounded
    number of deliveries are wrong/lost before resynchronization."""
    pair = ChannelPair("a", "b")
    pair.b._recv_label = 2  # arbitrary corruption
    pair.a._send_label = 1
    for i in range(6):
        pair.a.offer(f"m{i}")
    pair.pump(rounds=60)
    delivered = pair.delivered_at_b
    # The corruption may swallow up to DELTA_COMM leading messages (false
    # round-trips), but afterwards delivery is reliable and in order.
    assert len(delivered) >= 6 - DELTA_COMM
    assert delivered == [f"m{i}" for i in range(6)][-len(delivered):]


def test_reset_clears_state():
    sent = []
    channel = SelfStabilizingChannel(
        "a", "b", send_datagram=sent.append, on_deliver=lambda p: None
    )
    channel.offer("m")
    channel.tick()
    channel.reset()
    assert channel.pending() == 0


def test_delta_comm_constant_matches_paper():
    assert DELTA_COMM == 3
