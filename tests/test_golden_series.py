"""Golden-series regression tests.

Pin the exact repetition series of fig5 (bootstrap) and fig12 (switch
failure) on B4 at base seed 0, so route-cache or engine refactors cannot
silently drift regenerated results.  The values are the runner's output
at the time this file was written; an intentional engine change that
shifts them must update these constants *and say so in the PR*.
"""

import pytest

from repro.exp.runner import run_spec

#: run_spec("fig5", reps=3, networks=("B4",), base_seed=0).series
GOLDEN_FIG5_B4 = [5.0, 4.5, 5.0]

#: run_spec("fig12", reps=3, networks=("B4",), base_seed=0).series
GOLDEN_FIG12_B4 = [2.01, 5.009999999999999, 3.509999999999999]


def test_fig5_bootstrap_series_pinned_on_b4_seed0():
    result = run_spec("fig5", reps=3, networks=("B4",), workers=1, base_seed=0)
    assert result.series["B4"] == GOLDEN_FIG5_B4


def test_fig12_switch_failure_series_pinned_on_b4_seed0():
    result = run_spec("fig12", reps=3, networks=("B4",), workers=1, base_seed=0)
    assert result.series["B4"] == pytest.approx(GOLDEN_FIG12_B4, abs=1e-9)


def test_golden_series_stable_across_worker_counts():
    """The pinned values must not depend on the executing pool size."""
    parallel = run_spec("fig5", reps=3, networks=("B4",), workers=3, base_seed=0)
    assert parallel.series["B4"] == GOLDEN_FIG5_B4
