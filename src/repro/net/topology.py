"""Communication and operational topology model.

The paper distinguishes the *communication* topology ``Gc`` — which links
physically exist — from the *operational* topology ``Go`` — which links are
currently usable for forwarding (Section 2).  ``Topology`` stores ``Gc`` and
an operational flag per link and per node, so ``Go`` is always derivable.

Graph algorithms (BFS, diameter, edge connectivity) are implemented from
scratch: the simulator and flow computation call them on every topology, and
keeping them local removes any dependency beyond the standard library.

Two mechanisms keep the hot paths cheap on datacenter-scale graphs:

* **Interned integer index** (:meth:`Topology.index`): node ids are mapped
  to dense integers in sorted-name order and adjacency is materialized as
  per-node bitmasks, so the BFS inner loops of :meth:`bfs_layers`,
  :meth:`shortest_path`, :meth:`bridges` and :meth:`edge_connectivity` run
  on machine integers instead of dict-of-set scans over string keys.  The
  index is rebuilt lazily when graph *structure* (membership) changes;
  operational flips reuse it.
* **Dirty-node tracking** (:meth:`add_dirty_listener`): every mutation
  publishes the set of nodes whose adjacency or operational neighbourhood
  it may have changed.  Derived caches (the in-band route cache, the
  per-node operational-neighbour memo) invalidate only what was touched
  instead of flushing wholesale on each of the thousands of mutations a
  convergence run performs.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

NodeId = str
EdgeId = FrozenSet[NodeId]

DirtyListener = Callable[[Tuple[NodeId, ...]], None]


def edge(u: NodeId, v: NodeId) -> EdgeId:
    """Canonical undirected edge key."""
    if u == v:
        raise ValueError(f"self-loop not allowed: {u}")
    return frozenset((u, v))


class NodeKind(enum.Enum):
    """Role of a node: an SDN controller or a packet-forwarding switch."""

    CONTROLLER = "controller"
    SWITCH = "switch"


class TopologyIndex:
    """Dense-integer view of a topology's structure (``Gc``).

    ``names[i]`` is the node at index ``i`` (sorted-name order, so index
    order *is* the paper's fixed neighbour ordering), ``idx`` the inverse
    map, ``adj_masks[i]`` the bitmask of ``i``'s neighbours, ``adj_lists``
    the same as ascending int lists, and ``switch_mask`` the bitmask of
    switch nodes.  Instances are immutable snapshots: any membership or
    link mutation makes :meth:`Topology.index` hand out a fresh one.
    """

    __slots__ = ("names", "idx", "adj_masks", "adj_lists", "switch_mask")

    def __init__(self, topology: "Topology") -> None:
        self.names: List[NodeId] = sorted(topology._kind)
        self.idx: Dict[NodeId, int] = {n: i for i, n in enumerate(self.names)}
        idx = self.idx
        self.adj_lists: List[List[int]] = []
        self.adj_masks: List[int] = []
        switch_mask = 0
        for i, name in enumerate(self.names):
            nbrs = sorted(idx[v] for v in topology._adj[name])
            mask = 0
            for j in nbrs:
                mask |= 1 << j
            self.adj_lists.append(nbrs)
            self.adj_masks.append(mask)
            if topology._kind[name] is NodeKind.SWITCH:
                switch_mask |= 1 << i
        self.switch_mask = switch_mask

    def __len__(self) -> int:
        return len(self.names)


def _bits(mask: int):
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class Topology:
    """An undirected multigraph-free network of controllers and switches.

    Mutation methods keep ``Gc`` (membership) separate from operational
    status; failing a link or node never removes it from ``Gc`` — that
    mirrors the paper's fault model where a permanent removal is modelled
    as an explicit topology change, while temporary unavailability only
    affects ``Go``.
    """

    def __init__(self) -> None:
        self._kind: Dict[NodeId, NodeKind] = {}
        self._adj: Dict[NodeId, Set[NodeId]] = {}
        self._link_up: Dict[EdgeId, bool] = {}
        self._node_up: Dict[NodeId, bool] = {}
        # Cache of sorted adjacency lists: neighbours() sits on the hot path
        # of every BFS and every forwarding walk.
        self._sorted_adj: Dict[NodeId, List[NodeId]] = {}
        # Monotone mutation counter: bumped on every change to Gc or Go so
        # derived caches (e.g. the in-band route cache) can validate
        # themselves with one integer comparison.
        self._version = 0
        # Structure (membership/link existence) version: the interned index
        # and the sorted links list only depend on Gc, not on Go, so they
        # survive operational flips.
        self._structure_version = 0
        # Operational-neighbour caches (forwarding walks query No(node)
        # thousands of times between mutations), invalidated per dirty node
        # rather than wholesale.
        self._op_adj: Dict[NodeId, List[NodeId]] = {}
        self._op_set: Dict[NodeId, FrozenSet[NodeId]] = {}
        # Interned index and per-node operational bitmasks (index space).
        self._index: Optional[TopologyIndex] = None
        self._index_version = -1
        self._op_mask: Dict[int, int] = {}
        self._links_cache: Optional[List[Tuple[NodeId, NodeId]]] = None
        # Consumers notified with the node set each mutation touched.
        self._dirty_listeners: List[DirtyListener] = []

    @property
    def version(self) -> int:
        """Monotone counter of membership and operational-state mutations."""
        return self._version

    # -- dirty tracking ------------------------------------------------------

    def add_dirty_listener(self, listener: DirtyListener) -> None:
        """Subscribe to mutation notifications.

        The listener is called with the tuple of nodes whose adjacency or
        operational neighbourhood the mutation may have changed — exactly
        the nodes whose cached ``operational_neighbors``/walk results a
        derived cache must drop.
        """
        self._dirty_listeners.append(listener)

    def remove_dirty_listener(self, listener: DirtyListener) -> None:
        """Unsubscribe; unknown listeners are ignored."""
        try:
            self._dirty_listeners.remove(listener)
        except ValueError:
            pass

    def _mark_dirty(self, nodes: Tuple[NodeId, ...], structural: bool = False) -> None:
        self._version += 1
        if structural:
            self._structure_version += 1
            self._op_mask.clear()
            self._links_cache = None
        index_fresh = self._index_version == self._structure_version
        for node in nodes:
            self._sorted_adj.pop(node, None)
            self._op_adj.pop(node, None)
            self._op_set.pop(node, None)
            if index_fresh:
                i = self._index.idx.get(node)
                if i is not None:
                    self._op_mask.pop(i, None)
        for listener in self._dirty_listeners:
            listener(nodes)

    # -- construction -------------------------------------------------------

    def add_node(self, node: NodeId, kind: NodeKind) -> None:
        if node in self._kind:
            raise ValueError(f"duplicate node: {node}")
        self._kind[node] = kind
        self._adj[node] = set()
        self._node_up[node] = True
        self._mark_dirty((node,), structural=True)

    def add_controller(self, node: NodeId) -> None:
        self.add_node(node, NodeKind.CONTROLLER)

    def add_switch(self, node: NodeId) -> None:
        self.add_node(node, NodeKind.SWITCH)

    def add_link(self, u: NodeId, v: NodeId) -> None:
        if u not in self._kind or v not in self._kind:
            raise KeyError(f"unknown endpoint in link ({u}, {v})")
        e = edge(u, v)
        if e in self._link_up:
            raise ValueError(f"duplicate link: {u}-{v}")
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._link_up[e] = True
        self._mark_dirty((u, v), structural=True)

    def remove_link(self, u: NodeId, v: NodeId) -> None:
        """Permanently remove a link from ``Gc`` (a topology change)."""
        e = edge(u, v)
        if e not in self._link_up:
            raise KeyError(f"no such link: {u}-{v}")
        del self._link_up[e]
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._mark_dirty((u, v), structural=True)

    def remove_node(self, node: NodeId) -> None:
        """Permanently remove a node and all its links from ``Gc``."""
        if node not in self._kind:
            raise KeyError(f"no such node: {node}")
        for neighbor in list(self._adj[node]):
            self.remove_link(node, neighbor)
        del self._kind[node]
        del self._adj[node]
        del self._node_up[node]
        self._mark_dirty((node,), structural=True)

    # -- queries ------------------------------------------------------------

    @property
    def nodes(self) -> List[NodeId]:
        if self._index_version == self._structure_version:
            return list(self._index.names)
        return sorted(self._kind)

    @property
    def controllers(self) -> List[NodeId]:
        return sorted(n for n, k in self._kind.items() if k is NodeKind.CONTROLLER)

    @property
    def switches(self) -> List[NodeId]:
        return sorted(n for n, k in self._kind.items() if k is NodeKind.SWITCH)

    @property
    def links(self) -> List[Tuple[NodeId, NodeId]]:
        if self._links_cache is None:
            self._links_cache = sorted(tuple(sorted(e)) for e in self._link_up)
        return list(self._links_cache)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._kind

    def kind(self, node: NodeId) -> NodeKind:
        return self._kind[node]

    def is_controller(self, node: NodeId) -> bool:
        return self._kind[node] is NodeKind.CONTROLLER

    def is_switch(self, node: NodeId) -> bool:
        return self._kind[node] is NodeKind.SWITCH

    def has_link(self, u: NodeId, v: NodeId) -> bool:
        try:
            return edge(u, v) in self._link_up
        except ValueError:
            return False

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """``Nc(node)``: communication neighbourhood, sorted for the paper's
        fixed neighbour ordering (used by first-shortest-path)."""
        cached = self._sorted_adj.get(node)
        if cached is None:
            cached = sorted(self._adj[node])
            self._sorted_adj[node] = cached
        return cached

    def degree(self, node: NodeId) -> int:
        return len(self._adj[node])

    # -- interned index ------------------------------------------------------

    def index(self) -> TopologyIndex:
        """The dense-integer structure snapshot, rebuilt lazily after
        membership/link mutations.  Callers must not mutate it."""
        if self._index_version != self._structure_version:
            self._index = TopologyIndex(self)
            self._index_version = self._structure_version
            self._op_mask.clear()
        return self._index

    def _op_mask_of(self, i: int) -> int:
        """Operational-neighbour bitmask of node index ``i`` (valid for the
        current :meth:`index` snapshot; invalidated per dirty node)."""
        mask = self._op_mask.get(i)
        if mask is None:
            index = self._index
            idx = index.idx
            mask = 0
            for v in self.operational_neighbors(index.names[i]):
                mask |= 1 << idx[v]
            self._op_mask[i] = mask
        return mask

    # -- operational status (Go) ---------------------------------------------

    def set_link_up(self, u: NodeId, v: NodeId, up: bool) -> None:
        e = edge(u, v)
        if e not in self._link_up:
            raise KeyError(f"no such link: {u}-{v}")
        self._link_up[e] = up
        self._mark_dirty((u, v))

    def set_node_up(self, node: NodeId, up: bool) -> None:
        if node not in self._node_up:
            raise KeyError(f"no such node: {node}")
        self._node_up[node] = up
        # A node's up-state feeds link_operational() of every incident
        # link, so the operational neighbourhoods of all its neighbours
        # change with it.
        self._mark_dirty((node, *self._adj[node]))

    def link_is_up(self, u: NodeId, v: NodeId) -> bool:
        return self._link_up.get(edge(u, v), False)

    def node_is_up(self, node: NodeId) -> bool:
        return self._node_up.get(node, False)

    def link_operational(self, u: NodeId, v: NodeId) -> bool:
        """A link is usable only if itself and both endpoints are up."""
        return (
            self.link_is_up(u, v)
            and self.node_is_up(u)
            and self.node_is_up(v)
        )

    def operational_neighbors(self, node: NodeId) -> List[NodeId]:
        """``No(node)``: neighbours reachable over currently-usable links.

        Cached per node until a mutation touches that node; callers must
        not mutate the returned list.
        """
        cached = self._op_adj.get(node)
        if cached is None:
            if not self.node_is_up(node):
                cached = []
            else:
                cached = [
                    v for v in self.neighbors(node) if self.link_operational(node, v)
                ]
            self._op_adj[node] = cached
        return cached

    def operational_neighbor_set(self, node: NodeId) -> FrozenSet[NodeId]:
        """``No(node)`` as a cached frozenset, for membership-heavy callers
        (the per-hop rule applicability checks of the forwarding walk)."""
        cached = self._op_set.get(node)
        if cached is None:
            cached = frozenset(self.operational_neighbors(node))
            self._op_set[node] = cached
        return cached

    def failed_links(self) -> List[Tuple[NodeId, NodeId]]:
        return sorted(tuple(sorted(e)) for e, up in self._link_up.items() if not up)

    # -- graph algorithms (over Gc restricted to up nodes unless noted) ------

    def bfs_layers(
        self,
        source: NodeId,
        operational_only: bool = False,
        excluded_edges: Optional[Set[EdgeId]] = None,
    ) -> Dict[NodeId, int]:
        """Breadth-first distances from ``source``.

        ``operational_only`` restricts traversal to ``Go``;
        ``excluded_edges`` additionally removes specific edges (used for
        edge-disjoint path computation).  Distances are exact; iteration
        order of the returned dict is layer-by-layer in index order.
        """
        if source not in self._kind:
            raise KeyError(f"no such node: {source}")
        index = self.index()
        idx = index.idx
        names = index.names
        excluded_masks = self._excluded_masks(index, excluded_edges)
        if operational_only:
            mask_of = self._op_mask_of
        else:
            adj_masks = index.adj_masks
            mask_of = adj_masks.__getitem__
        src_i = idx[source]
        dist = {source: 0}
        frontier = 1 << src_i
        seen = frontier
        depth = 0
        while frontier:
            reach = 0
            for i in _bits(frontier):
                mask = mask_of(i)
                if excluded_masks is not None and i in excluded_masks:
                    mask &= ~excluded_masks[i]
                reach |= mask
            frontier = reach & ~seen
            seen |= frontier
            depth += 1
            for i in _bits(frontier):
                dist[names[i]] = depth
        return dist

    @staticmethod
    def _excluded_masks(
        index: TopologyIndex, excluded_edges: Optional[Set[EdgeId]]
    ) -> Optional[Dict[int, int]]:
        """Per-node bitmasks of excluded neighbours, or ``None``."""
        if not excluded_edges:
            return None
        masks: Dict[int, int] = {}
        for e in excluded_edges:
            u, v = tuple(e)
            iu, iv = index.idx.get(u), index.idx.get(v)
            if iu is None or iv is None:
                continue
            masks[iu] = masks.get(iu, 0) | (1 << iv)
            masks[iv] = masks.get(iv, 0) | (1 << iu)
        return masks or None

    def shortest_path(
        self,
        source: NodeId,
        target: NodeId,
        operational_only: bool = False,
        excluded_edges: Optional[Set[EdgeId]] = None,
    ) -> Optional[List[NodeId]]:
        """First shortest path (ties broken by sorted neighbour order).

        This implements the paper's *first shortest path* definition
        (Section 5.4): among all shortest paths the one whose nodes have
        the minimum indices according to the neighbourhood ordering.  The
        BFS runs on the interned bitmask adjacency; parents are assigned
        in discovery order, which reproduces the legacy FIFO/sorted-
        neighbour tie-breaking exactly.
        """
        if source == target:
            return [source]
        if source not in self._kind or target not in self._kind:
            raise KeyError(f"no such node: {source if source not in self._kind else target}")
        index = self.index()
        idx = index.idx
        names = index.names
        excluded_masks = self._excluded_masks(index, excluded_edges)
        if operational_only:
            mask_of = self._op_mask_of
        else:
            adj_masks = index.adj_masks
            mask_of = adj_masks.__getitem__
        src_i, dst_i = idx[source], idx[target]
        parent = {src_i: src_i}
        frontier = [src_i]
        seen = 1 << src_i
        found = False
        while frontier and not found:
            next_frontier: List[int] = []
            for u in frontier:
                mask = mask_of(u)
                if excluded_masks is not None and u in excluded_masks:
                    mask &= ~excluded_masks[u]
                for v in _bits(mask & ~seen):
                    seen |= 1 << v
                    parent[v] = u
                    next_frontier.append(v)
                    if v == dst_i:
                        found = True
            frontier = next_frontier
        if dst_i not in parent:
            return None
        path_i = [dst_i]
        while path_i[-1] != src_i:
            path_i.append(parent[path_i[-1]])
        path_i.reverse()
        return [names[i] for i in path_i]

    def connected(self, operational_only: bool = False) -> bool:
        nodes = [n for n in self.nodes if not operational_only or self.node_is_up(n)]
        if not nodes:
            return True
        reached = self.bfs_layers(nodes[0], operational_only=operational_only)
        return all(n in reached for n in nodes)

    def diameter(self) -> int:
        """Hop diameter of ``Gc``; raises if disconnected."""
        best = 0
        for n in self.nodes:
            dist = self.bfs_layers(n)
            if len(dist) != len(self.nodes):
                raise ValueError("graph is disconnected; diameter undefined")
            best = max(best, max(dist.values()))
        return best

    def eccentricity(self, node: NodeId) -> int:
        dist = self.bfs_layers(node)
        if len(dist) != len(self.nodes):
            raise ValueError("graph is disconnected; eccentricity undefined")
        return max(dist.values())

    def bridges(self) -> List[Tuple[NodeId, NodeId]]:
        """All bridge edges of ``Gc`` (edges whose removal disconnects their
        component), via the iterative Tarjan low-link algorithm.

        Linear in ``|V| + |E|`` — unlike :meth:`edge_connectivity`'s max-flow
        reduction — so generators can afford it inside rejection-sampling
        loops on networks of hundreds of switches.  Runs on the interned
        integer adjacency.
        """
        index = self.index()
        adj = index.adj_lists
        names = index.names
        n = len(names)
        order = [-1] * n
        low = [0] * n
        found: List[Tuple[NodeId, NodeId]] = []
        counter = 0
        for root in range(n):
            if order[root] != -1:
                continue
            # Stack frames: (node, parent, iterator over neighbours).
            stack = [(root, -1, iter(adj[root]))]
            order[root] = low[root] = counter
            counter += 1
            while stack:
                node, parent, it = stack[-1]
                advanced = False
                for child in it:
                    if child == parent:
                        # Skip the tree edge back to the parent once; a
                        # parallel edge would clear bridge status, but the
                        # graph is multigraph-free by construction.
                        parent = -1
                        stack[-1] = (node, parent, it)
                        continue
                    if order[child] != -1:
                        if order[child] < low[node]:
                            low[node] = order[child]
                        continue
                    order[child] = low[child] = counter
                    counter += 1
                    stack.append((child, node, iter(adj[child])))
                    advanced = True
                    break
                if not advanced:
                    stack.pop()
                    if stack:
                        up = stack[-1][0]
                        if low[node] < low[up]:
                            low[up] = low[node]
                        if low[node] > order[up]:
                            found.append(tuple(sorted((names[up], names[node]))))
        return sorted(found)

    def two_edge_connected(self) -> bool:
        """True iff ``Gc`` is connected and bridgeless — the resilience
        floor κ = 1 fault-resilient flows require (Section 2.2.2)."""
        if len(self.nodes) < 2:
            return False
        return self.connected() and not self.bridges()

    # -- edge connectivity ----------------------------------------------------

    def _max_edge_disjoint_paths(self, source: NodeId, target: NodeId) -> int:
        """Max number of edge-disjoint s-t paths via unit-capacity max flow.

        Edmonds-Karp on an implicit residual graph over the interned index:
        every undirected edge is two opposite unit arcs.  The max-flow
        value is unique, so the integer reformulation is exact.
        """
        index = self.index()
        adj = index.adj_lists
        n = len(index)
        src_i, dst_i = index.idx[source], index.idx[target]
        residual = [dict.fromkeys(nbrs, 1) for nbrs in adj]
        flow = 0
        while True:
            parent = [-1] * n
            parent[src_i] = src_i
            queue: deque = deque([src_i])
            while queue and parent[dst_i] == -1:
                u = queue.popleft()
                res_u = residual[u]
                for v, cap in res_u.items():
                    if cap > 0 and parent[v] == -1:
                        parent[v] = u
                        queue.append(v)
            if parent[dst_i] == -1:
                return flow
            node = dst_i
            while node != src_i:
                prev = parent[node]
                residual[prev][node] -= 1
                residual[node][prev] = residual[node].get(prev, 0) + 1
                node = prev
            flow += 1

    def edge_connectivity(self) -> int:
        """λ(Gc): minimum edges whose removal disconnects the graph.

        Uses the standard reduction: λ = min over v≠s of maxflow(s, v) for a
        fixed s.  κ-fault-resilient flows exist iff κ < λ (Section 2.2.2).
        """
        nodes = self.nodes
        if len(nodes) < 2:
            return 0
        if not self.connected():
            return 0
        source = nodes[0]
        best: Optional[int] = None
        for v in nodes[1:]:
            flow = self._max_edge_disjoint_paths(source, v)
            if best is None or flow < best:
                best = flow
                if best == 0:
                    break
        return best

    # -- copy -----------------------------------------------------------------

    def copy(self) -> "Topology":
        clone = Topology()
        clone._kind = dict(self._kind)
        clone._adj = {n: set(a) for n, a in self._adj.items()}
        clone._link_up = dict(self._link_up)
        clone._node_up = dict(self._node_up)
        clone._version = self._version
        # Caches, index, and dirty listeners deliberately start fresh: the
        # clone diverges from the original immediately.
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(controllers={len(self.controllers)}, "
            f"switches={len(self.switches)}, links={len(self._link_up)})"
        )


def subgraph_reachable(topology: Topology, source: NodeId) -> Set[NodeId]:
    """Nodes reachable from ``source`` in ``Gc``."""
    return set(topology.bfs_layers(source))


__all__ = [
    "Topology",
    "TopologyIndex",
    "NodeKind",
    "NodeId",
    "EdgeId",
    "edge",
    "subgraph_reachable",
]
