"""Communication and operational topology model.

The paper distinguishes the *communication* topology ``Gc`` — which links
physically exist — from the *operational* topology ``Go`` — which links are
currently usable for forwarding (Section 2).  ``Topology`` stores ``Gc`` and
an operational flag per link and per node, so ``Go`` is always derivable.

Graph algorithms (BFS, diameter, edge connectivity) are implemented from
scratch: the simulator and flow computation call them on every topology, and
keeping them local removes any dependency beyond the standard library.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

NodeId = str
EdgeId = FrozenSet[NodeId]


def edge(u: NodeId, v: NodeId) -> EdgeId:
    """Canonical undirected edge key."""
    if u == v:
        raise ValueError(f"self-loop not allowed: {u}")
    return frozenset((u, v))


class NodeKind(enum.Enum):
    """Role of a node: an SDN controller or a packet-forwarding switch."""

    CONTROLLER = "controller"
    SWITCH = "switch"


class Topology:
    """An undirected multigraph-free network of controllers and switches.

    Mutation methods keep ``Gc`` (membership) separate from operational
    status; failing a link or node never removes it from ``Gc`` — that
    mirrors the paper's fault model where a permanent removal is modelled
    as an explicit topology change, while temporary unavailability only
    affects ``Go``.
    """

    def __init__(self) -> None:
        self._kind: Dict[NodeId, NodeKind] = {}
        self._adj: Dict[NodeId, Set[NodeId]] = {}
        self._link_up: Dict[EdgeId, bool] = {}
        self._node_up: Dict[NodeId, bool] = {}
        # Cache of sorted adjacency lists: neighbours() sits on the hot path
        # of every BFS and every forwarding walk.
        self._sorted_adj: Dict[NodeId, List[NodeId]] = {}
        # Monotone mutation counter: bumped on every change to Gc or Go so
        # derived caches (e.g. the in-band route cache) can validate
        # themselves with one integer comparison.
        self._version = 0
        # Operational-neighbour cache (forwarding walks query No(node)
        # thousands of times between mutations), validated by _version.
        self._op_adj: Dict[NodeId, List[NodeId]] = {}
        self._op_adj_version = -1

    @property
    def version(self) -> int:
        """Monotone counter of membership and operational-state mutations."""
        return self._version

    def _invalidate(self, *nodes: NodeId) -> None:
        self._version += 1
        for node in nodes:
            self._sorted_adj.pop(node, None)

    # -- construction -------------------------------------------------------

    def add_node(self, node: NodeId, kind: NodeKind) -> None:
        if node in self._kind:
            raise ValueError(f"duplicate node: {node}")
        self._kind[node] = kind
        self._adj[node] = set()
        self._node_up[node] = True
        self._version += 1

    def add_controller(self, node: NodeId) -> None:
        self.add_node(node, NodeKind.CONTROLLER)

    def add_switch(self, node: NodeId) -> None:
        self.add_node(node, NodeKind.SWITCH)

    def add_link(self, u: NodeId, v: NodeId) -> None:
        if u not in self._kind or v not in self._kind:
            raise KeyError(f"unknown endpoint in link ({u}, {v})")
        e = edge(u, v)
        if e in self._link_up:
            raise ValueError(f"duplicate link: {u}-{v}")
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._link_up[e] = True
        self._invalidate(u, v)

    def remove_link(self, u: NodeId, v: NodeId) -> None:
        """Permanently remove a link from ``Gc`` (a topology change)."""
        e = edge(u, v)
        if e not in self._link_up:
            raise KeyError(f"no such link: {u}-{v}")
        del self._link_up[e]
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._invalidate(u, v)

    def remove_node(self, node: NodeId) -> None:
        """Permanently remove a node and all its links from ``Gc``."""
        if node not in self._kind:
            raise KeyError(f"no such node: {node}")
        for neighbor in list(self._adj[node]):
            self.remove_link(node, neighbor)
        del self._kind[node]
        del self._adj[node]
        del self._node_up[node]
        self._invalidate(node)

    # -- queries ------------------------------------------------------------

    @property
    def nodes(self) -> List[NodeId]:
        return sorted(self._kind)

    @property
    def controllers(self) -> List[NodeId]:
        return sorted(n for n, k in self._kind.items() if k is NodeKind.CONTROLLER)

    @property
    def switches(self) -> List[NodeId]:
        return sorted(n for n, k in self._kind.items() if k is NodeKind.SWITCH)

    @property
    def links(self) -> List[Tuple[NodeId, NodeId]]:
        return sorted(tuple(sorted(e)) for e in self._link_up)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._kind

    def kind(self, node: NodeId) -> NodeKind:
        return self._kind[node]

    def is_controller(self, node: NodeId) -> bool:
        return self._kind[node] is NodeKind.CONTROLLER

    def is_switch(self, node: NodeId) -> bool:
        return self._kind[node] is NodeKind.SWITCH

    def has_link(self, u: NodeId, v: NodeId) -> bool:
        try:
            return edge(u, v) in self._link_up
        except ValueError:
            return False

    def neighbors(self, node: NodeId) -> List[NodeId]:
        """``Nc(node)``: communication neighbourhood, sorted for the paper's
        fixed neighbour ordering (used by first-shortest-path)."""
        cached = self._sorted_adj.get(node)
        if cached is None:
            cached = sorted(self._adj[node])
            self._sorted_adj[node] = cached
        return cached

    def degree(self, node: NodeId) -> int:
        return len(self._adj[node])

    # -- operational status (Go) ---------------------------------------------

    def set_link_up(self, u: NodeId, v: NodeId, up: bool) -> None:
        e = edge(u, v)
        if e not in self._link_up:
            raise KeyError(f"no such link: {u}-{v}")
        self._link_up[e] = up
        self._version += 1

    def set_node_up(self, node: NodeId, up: bool) -> None:
        if node not in self._node_up:
            raise KeyError(f"no such node: {node}")
        self._node_up[node] = up
        self._version += 1

    def link_is_up(self, u: NodeId, v: NodeId) -> bool:
        return self._link_up.get(edge(u, v), False)

    def node_is_up(self, node: NodeId) -> bool:
        return self._node_up.get(node, False)

    def link_operational(self, u: NodeId, v: NodeId) -> bool:
        """A link is usable only if itself and both endpoints are up."""
        return (
            self.link_is_up(u, v)
            and self.node_is_up(u)
            and self.node_is_up(v)
        )

    def operational_neighbors(self, node: NodeId) -> List[NodeId]:
        """``No(node)``: neighbours reachable over currently-usable links.

        Cached per node until the next mutation; callers must not mutate
        the returned list.
        """
        if self._op_adj_version != self._version:
            self._op_adj.clear()
            self._op_adj_version = self._version
        cached = self._op_adj.get(node)
        if cached is None:
            if not self.node_is_up(node):
                cached = []
            else:
                cached = sorted(
                    v for v in self._adj[node] if self.link_operational(node, v)
                )
            self._op_adj[node] = cached
        return cached

    def failed_links(self) -> List[Tuple[NodeId, NodeId]]:
        return sorted(tuple(sorted(e)) for e, up in self._link_up.items() if not up)

    # -- graph algorithms (over Gc restricted to up nodes unless noted) ------

    def bfs_layers(
        self,
        source: NodeId,
        operational_only: bool = False,
        excluded_edges: Optional[Set[EdgeId]] = None,
    ) -> Dict[NodeId, int]:
        """Breadth-first distances from ``source``.

        ``operational_only`` restricts traversal to ``Go``;
        ``excluded_edges`` additionally removes specific edges (used for
        edge-disjoint path computation).
        """
        if source not in self._kind:
            raise KeyError(f"no such node: {source}")
        excluded = excluded_edges or set()
        dist = {source: 0}
        queue: deque[NodeId] = deque([source])
        while queue:
            u = queue.popleft()
            for v in self.neighbors(u):
                if v in dist:
                    continue
                if edge(u, v) in excluded:
                    continue
                if operational_only and not self.link_operational(u, v):
                    continue
                dist[v] = dist[u] + 1
                queue.append(v)
        return dist

    def shortest_path(
        self,
        source: NodeId,
        target: NodeId,
        operational_only: bool = False,
        excluded_edges: Optional[Set[EdgeId]] = None,
    ) -> Optional[List[NodeId]]:
        """First shortest path (ties broken by sorted neighbour order).

        This implements the paper's *first shortest path* definition
        (Section 5.4): among all shortest paths the one whose nodes have
        the minimum indices according to the neighbourhood ordering.
        """
        if source == target:
            return [source]
        excluded = excluded_edges or set()
        parent: Dict[NodeId, NodeId] = {}
        dist = {source: 0}
        queue: deque[NodeId] = deque([source])
        while queue:
            u = queue.popleft()
            if u == target:
                break
            for v in self.neighbors(u):
                if v in dist:
                    continue
                if edge(u, v) in excluded:
                    continue
                if operational_only and not self.link_operational(u, v):
                    continue
                dist[v] = dist[u] + 1
                parent[v] = u
                queue.append(v)
        if target not in dist:
            return None
        path = [target]
        while path[-1] != source:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    def connected(self, operational_only: bool = False) -> bool:
        nodes = [n for n in self.nodes if not operational_only or self.node_is_up(n)]
        if not nodes:
            return True
        reached = self.bfs_layers(nodes[0], operational_only=operational_only)
        return all(n in reached for n in nodes)

    def diameter(self) -> int:
        """Hop diameter of ``Gc``; raises if disconnected."""
        best = 0
        for n in self.nodes:
            dist = self.bfs_layers(n)
            if len(dist) != len(self.nodes):
                raise ValueError("graph is disconnected; diameter undefined")
            best = max(best, max(dist.values()))
        return best

    def eccentricity(self, node: NodeId) -> int:
        dist = self.bfs_layers(node)
        if len(dist) != len(self.nodes):
            raise ValueError("graph is disconnected; eccentricity undefined")
        return max(dist.values())

    def bridges(self) -> List[Tuple[NodeId, NodeId]]:
        """All bridge edges of ``Gc`` (edges whose removal disconnects their
        component), via the iterative Tarjan low-link algorithm.

        Linear in ``|V| + |E|`` — unlike :meth:`edge_connectivity`'s max-flow
        reduction — so generators can afford it inside rejection-sampling
        loops on networks of hundreds of switches.
        """
        index: Dict[NodeId, int] = {}
        low: Dict[NodeId, int] = {}
        found: List[Tuple[NodeId, NodeId]] = []
        counter = 0
        for root in self.nodes:
            if root in index:
                continue
            # Stack frames: (node, parent, iterator over neighbours).
            stack = [(root, None, iter(self.neighbors(root)))]
            index[root] = low[root] = counter
            counter += 1
            while stack:
                node, parent, it = stack[-1]
                advanced = False
                for child in it:
                    if child == parent:
                        # Skip the tree edge back to the parent once; a
                        # parallel edge would clear bridge status, but the
                        # graph is multigraph-free by construction.
                        parent = None
                        stack[-1] = (node, parent, it)
                        continue
                    if child in index:
                        low[node] = min(low[node], index[child])
                        continue
                    index[child] = low[child] = counter
                    counter += 1
                    stack.append((child, node, iter(self.neighbors(child))))
                    advanced = True
                    break
                if not advanced:
                    stack.pop()
                    if stack:
                        up, _, _ = stack[-1]
                        low[up] = min(low[up], low[node])
                        if low[node] > index[up]:
                            found.append(tuple(sorted((up, node))))
        return sorted(found)

    def two_edge_connected(self) -> bool:
        """True iff ``Gc`` is connected and bridgeless — the resilience
        floor κ = 1 fault-resilient flows require (Section 2.2.2)."""
        if len(self.nodes) < 2:
            return False
        return self.connected() and not self.bridges()

    # -- edge connectivity ----------------------------------------------------

    def _max_edge_disjoint_paths(self, source: NodeId, target: NodeId) -> int:
        """Max number of edge-disjoint s-t paths via unit-capacity max flow.

        Edmonds-Karp on an implicit residual graph: every undirected edge is
        two opposite unit arcs.  Complexity is fine for the paper's network
        sizes (≤ ~250 nodes).
        """
        residual: Dict[Tuple[NodeId, NodeId], int] = {}
        for u, v in self.links:
            residual[(u, v)] = 1
            residual[(v, u)] = 1
        flow = 0
        while True:
            parent: Dict[NodeId, NodeId] = {source: source}
            queue: deque[NodeId] = deque([source])
            while queue and target not in parent:
                u = queue.popleft()
                for v in self.neighbors(u):
                    if v not in parent and residual.get((u, v), 0) > 0:
                        parent[v] = u
                        queue.append(v)
            if target not in parent:
                return flow
            node = target
            while node != source:
                prev = parent[node]
                residual[(prev, node)] -= 1
                residual[(node, prev)] = residual.get((node, prev), 0) + 1
                node = prev
            flow += 1

    def edge_connectivity(self) -> int:
        """λ(Gc): minimum edges whose removal disconnects the graph.

        Uses the standard reduction: λ = min over v≠s of maxflow(s, v) for a
        fixed s.  κ-fault-resilient flows exist iff κ < λ (Section 2.2.2).
        """
        nodes = self.nodes
        if len(nodes) < 2:
            return 0
        if not self.connected():
            return 0
        source = nodes[0]
        return min(self._max_edge_disjoint_paths(source, v) for v in nodes[1:])

    # -- copy -----------------------------------------------------------------

    def copy(self) -> "Topology":
        clone = Topology()
        clone._kind = dict(self._kind)
        clone._adj = {n: set(a) for n, a in self._adj.items()}
        clone._link_up = dict(self._link_up)
        clone._node_up = dict(self._node_up)
        clone._sorted_adj = {}
        clone._version = self._version
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(controllers={len(self.controllers)}, "
            f"switches={len(self.switches)}, links={len(self._link_up)})"
        )


def subgraph_reachable(topology: Topology, source: NodeId) -> Set[NodeId]:
    """Nodes reachable from ``source`` in ``Gc``."""
    return set(topology.bfs_layers(source))


__all__ = ["Topology", "NodeKind", "NodeId", "EdgeId", "edge", "subgraph_reachable"]
