"""Local topology discovery (paper Section 2.2.1).

Every node — switch or controller — periodically probes its directly
attached neighbours and, through the Θ failure detector, maintains its view
of which neighbours are currently alive.  The result is the node-local
``Nc`` report that query replies carry back to the controllers, from which
each controller accumulates the global topology.

The discovery module is transport-agnostic: the owning node wires
``send_probe`` to the link layer and calls :meth:`on_probe` /
:meth:`on_probe_reply` when probe traffic arrives.
"""

from __future__ import annotations

from typing import Callable, Iterable, List

from repro.net.failure_detector import ThetaFailureDetector


class LocalDiscovery:
    """Neighbour liveness tracking for one node.

    Each :meth:`probe_round` sends a probe to every physically attached
    neighbour.  Probe replies feed the Θ detector; ``alive_neighbors()`` is
    the node's current report of its usable neighbourhood.
    """

    PROBE = "discovery-probe"
    REPLY = "discovery-reply"

    def __init__(
        self,
        node: str,
        neighbors: Iterable[str],
        send_probe: Callable[[str, str], None],
        theta: int = 10,
    ) -> None:
        self.node = node
        self._neighbors: List[str] = sorted(neighbors)
        self._send = send_probe
        self.detector = ThetaFailureDetector(theta, self._neighbors)
        self.probes_sent = 0
        self.replies_received = 0

    # -- topology maintenance --------------------------------------------------

    def set_neighbors(self, neighbors: Iterable[str]) -> None:
        self._neighbors = sorted(neighbors)
        self.detector.set_neighbors(self._neighbors)

    @property
    def neighbors(self) -> List[str]:
        return list(self._neighbors)

    # -- probing ----------------------------------------------------------------

    def probe_round(self) -> None:
        """Send one probe to every attached neighbour (runs on the node's
        discovery timer; the paper's task delay applies between rounds)."""
        for neighbor in self._neighbors:
            self.probes_sent += 1
            self._send(neighbor, self.PROBE)

    def on_probe(self, sender: str) -> None:
        """A neighbour probed us: answer immediately (one atomic step,
        Section 3.2)."""
        self._send(sender, self.REPLY)

    def on_probe_reply(self, sender: str) -> None:
        self.replies_received += 1
        self.detector.record_reply(sender)

    # -- reports -----------------------------------------------------------------

    def alive_neighbors(self) -> List[str]:
        """Current ``Nc`` report: attached neighbours not suspected failed."""
        suspects = self.detector.suspected()
        return [v for v in self._neighbors if v not in suspects]


__all__ = ["LocalDiscovery"]
