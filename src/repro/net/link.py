"""Unreliable link layer with fault injection.

The paper's channel algorithm (Section 3.1) assumes an underlying medium
that may *omit*, *duplicate*, and *reorder* packets — but, by communication
fairness (Section 3.3.1), a packet sent infinitely often is received
infinitely often.  :class:`LinkLayer` models exactly that medium on top of
the discrete-event engine: per-hop latency, plus a configurable
:class:`LinkFaultModel` that drops, duplicates, or delays datagrams.

The link layer is *hop-local*: it moves a datagram between two directly
connected nodes.  Multi-hop, in-band routing of control traffic lives in
:mod:`repro.sim.network_sim`, which consults the switches' rule tables for
every hop.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim imports net)
    from repro.sim.engine import Simulator


@dataclass
class LinkFaultModel:
    """Probabilities of benign, not-rare packet faults (Section 3.4.1).

    ``reorder_prob`` delays a datagram by an extra random latency, which can
    make it overtake later traffic; combined with duplication this exercises
    the dedup/token logic of the end-to-end channel.
    """

    omission_prob: float = 0.0
    duplication_prob: float = 0.0
    reorder_prob: float = 0.0
    reorder_extra_latency: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("omission_prob", "duplication_prob", "reorder_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        self._rng = random.Random(self.seed)

    def copies_and_delays(self, base_latency: float) -> list[float]:
        """Decide the fate of one datagram: a list of delivery latencies.

        Empty list = omitted.  More than one entry = duplicated.
        """
        if self._rng.random() < self.omission_prob:
            return []
        latencies = [base_latency]
        if self._rng.random() < self.duplication_prob:
            latencies.append(base_latency + self.reorder_extra_latency / 2)
        if self._rng.random() < self.reorder_prob:
            latencies = [lat + self._rng.uniform(0, self.reorder_extra_latency) for lat in latencies]
        return latencies


class LinkLayer:
    """Delivers datagrams between adjacent nodes over the event engine.

    ``deliver`` is a callback ``(receiver, sender, payload)`` installed by
    the network simulation; ``is_link_usable`` lets the simulation gate
    transmissions on the operational topology ``Go``.
    """

    def __init__(
        self,
        sim: "Simulator",
        deliver: Callable[[str, str, Any], None],
        is_link_usable: Callable[[str, str], bool],
        latency: float = 0.001,
        fault_model: Optional[LinkFaultModel] = None,
    ) -> None:
        if latency <= 0:
            raise ValueError("latency must be positive")
        self._sim = sim
        self._deliver = deliver
        self._is_link_usable = is_link_usable
        self.latency = latency
        self.fault_model = fault_model or LinkFaultModel()
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0

    def transmit(self, sender: str, receiver: str, payload: Any) -> None:
        """Send one datagram from ``sender`` to adjacent ``receiver``.

        Silently drops if the link is not operational — exactly how a real
        wire behaves; reliability is the end-to-end channel's job.
        """
        self.sent_count += 1
        if not self._is_link_usable(sender, receiver):
            self.dropped_count += 1
            return
        latencies = self.fault_model.copies_and_delays(self.latency)
        if not latencies:
            self.dropped_count += 1
            return
        from repro.sim.events import EventKind  # deferred: sim imports net

        for latency in latencies:
            self._sim.schedule(
                latency,
                self._make_delivery(sender, receiver, payload),
                kind=EventKind.PACKET_DELIVERY,
                note=f"{sender}->{receiver}",
            )

    def _make_delivery(self, sender: str, receiver: str, payload: Any) -> Callable[[], None]:
        def deliver() -> None:
            # Re-check the link at delivery time: a failure mid-flight kills
            # the datagram (the paper's temporary link unavailability).
            if not self._is_link_usable(sender, receiver):
                self.dropped_count += 1
                return
            self.delivered_count += 1
            self._deliver(receiver, sender, payload)

        return deliver


__all__ = ["LinkLayer", "LinkFaultModel"]
