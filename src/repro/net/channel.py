"""Self-stabilizing end-to-end communication channel (Section 3.1).

The paper assumes reliable FIFO end-to-end channels implemented by a
self-stabilizing token-circulation protocol [Dolev et al.]: at any time
there is exactly one token ``pkt ∈ {act, ack}`` in transit between sender
and receiver.  During recovery from a transient fault the sender may accept
at most ``Δcomm ≤ 3`` *false* acknowledgments before round-trips are
guaranteed genuine.

:class:`SelfStabilizingChannel` implements the sender side as a
stop-and-wait protocol with sequence labels drawn from the bounded domain
``{0, .., LABEL_DOMAIN-1}``.  The standard alternating-bit protocol needs
2 labels over FIFO links; we use 3 so that, even when a transient fault
plants stale packets/acks in the channel, at most ``DELTA_COMM`` false
acknowledgments can occur before the protocol re-synchronizes — matching
the paper's bound.

The channel is transport-agnostic: it emits datagrams through a callback
and is fed incoming datagrams through :meth:`on_datagram`.  Retransmission
happens on :meth:`tick`, which the owning node calls once per do-forever
iteration (the paper's "send infinitely often" fairness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional
from collections import deque

#: Number of sequence labels.  3 labels bound false acknowledgments by
#: DELTA_COMM = 3, the value the paper cites for [9, 10].
LABEL_DOMAIN = 3

#: Paper's Δcomm: max false round-trips after the last transient fault.
DELTA_COMM = 3


@dataclass
class Datagram:
    """Wire format of the channel: either an ``act`` (payload) or ``ack``."""

    kind: str  # "act" | "ack"
    label: int
    payload: Any = None

    def __post_init__(self) -> None:
        if self.kind not in ("act", "ack"):
            raise ValueError(f"bad datagram kind: {self.kind}")
        if not 0 <= self.label < LABEL_DOMAIN:
            # A corrupted label is coerced into the domain rather than
            # crashing: self-stabilizing code must tolerate arbitrary state.
            self.label = self.label % LABEL_DOMAIN


class SelfStabilizingChannel:
    """Reliable FIFO sender/receiver pair endpoint.

    One instance handles *both* directions of a logical pair
    ``(local, remote)``: it sends payloads offered via :meth:`offer` and
    delivers payloads arriving from the remote side via ``on_deliver``.
    """

    def __init__(
        self,
        local: str,
        remote: str,
        send_datagram: Callable[[Datagram], None],
        on_deliver: Callable[[Any], None],
        max_outbox: int = 64,
    ) -> None:
        self.local = local
        self.remote = remote
        self._send = send_datagram
        self._on_deliver = on_deliver
        self._outbox: Deque[Any] = deque()
        self._max_outbox = max_outbox
        # Sender state: label of the in-flight act, or None when idle.
        self._send_label = 0
        self._in_flight: Optional[Any] = None
        # Receiver state: label of the last act we acknowledged/delivered.
        self._recv_label: Optional[int] = None
        # Statistics / stabilization observability.
        self.delivered = 0
        self.acked = 0
        self.retransmissions = 0
        self.duplicates_suppressed = 0

    # -- sender side ---------------------------------------------------------

    def offer(self, payload: Any) -> bool:
        """Queue a payload for reliable delivery.  Returns ``False`` when the
        outbox is full (bounded memory — the caller simply retries on a later
        iteration, which self-stabilizing algorithms do anyway)."""
        if len(self._outbox) >= self._max_outbox:
            return False
        self._outbox.append(payload)
        return True

    def pending(self) -> int:
        return len(self._outbox) + (1 if self._in_flight is not None else 0)

    def tick(self) -> None:
        """One fairness round: (re)transmit the in-flight act if any,
        otherwise promote the next outbox payload."""
        if self._in_flight is None and self._outbox:
            self._send_label = (self._send_label + 1) % LABEL_DOMAIN
            self._in_flight = self._outbox.popleft()
        if self._in_flight is not None:
            self.retransmissions += 1
            self._send(Datagram(kind="act", label=self._send_label, payload=self._in_flight))

    def reset(self) -> None:
        """Transient-fault hook: forget all channel state (used by fault
        injection to model arbitrary corruption)."""
        self._outbox.clear()
        self._in_flight = None
        self._send_label = 0
        self._recv_label = None

    def corrupt(
        self,
        send_label: int = 0,
        recv_label: Optional[int] = None,
        in_flight: Any = None,
        outbox: Optional[List[Any]] = None,
    ) -> None:
        """Transient-fault hook: overwrite channel state *arbitrarily*
        (labels are coerced into the bounded domain, mirroring what a
        corrupted wire value would look like on arrival).  The adversarial
        corruption strategies use this to start a run with garbage already
        owned by the channel — the state from which Section 3.1 bounds
        false acknowledgments by Δcomm."""
        self._send_label = send_label % LABEL_DOMAIN
        self._recv_label = None if recv_label is None else recv_label % LABEL_DOMAIN
        self._in_flight = in_flight
        self._outbox = deque(outbox or [])

    # -- receive path ----------------------------------------------------------

    def on_datagram(self, datagram: Datagram) -> None:
        """Process an incoming datagram from the remote endpoint."""
        if datagram.kind == "ack":
            self._on_ack(datagram.label)
        else:
            self._on_act(datagram)

    def _on_ack(self, label: int) -> None:
        if self._in_flight is None:
            return  # stale ack from a previous incarnation; ignore
        if label != self._send_label:
            return  # ack for a different label; keep retransmitting
        self._in_flight = None
        self.acked += 1

    def _on_act(self, datagram: Datagram) -> None:
        # Always acknowledge: the sender keeps retransmitting until it sees
        # the matching label, so acks must flow even for duplicates.
        self._send(Datagram(kind="ack", label=datagram.label))
        if datagram.label == self._recv_label:
            self.duplicates_suppressed += 1
            return
        self._recv_label = datagram.label
        self.delivered += 1
        self._on_deliver(datagram.payload)


class ChannelPair:
    """A loopback-wired pair of channels for unit tests and for modelling a
    controller's end-to-end session with a remote node.

    The pair exposes the two endpoints and a lossy in-memory wire whose
    behaviour (drop/duplicate/reorder) is scripted by the caller — this is
    how the channel tests inject Section 3.4.1 faults deterministically.
    """

    def __init__(
        self,
        a: str,
        b: str,
        wire_a_to_b: Optional[Callable[[Datagram], List[Datagram]]] = None,
        wire_b_to_a: Optional[Callable[[Datagram], List[Datagram]]] = None,
    ) -> None:
        identity = lambda d: [d]  # noqa: E731 - tiny local default
        self._wire_ab = wire_a_to_b or identity
        self._wire_ba = wire_b_to_a or identity
        self.delivered_at_a: List[Any] = []
        self.delivered_at_b: List[Any] = []
        self._queue_to_a: Deque[Datagram] = deque()
        self._queue_to_b: Deque[Datagram] = deque()
        self.a = SelfStabilizingChannel(
            a, b, send_datagram=self._send_from_a, on_deliver=self.delivered_at_a.append
        )
        self.b = SelfStabilizingChannel(
            b, a, send_datagram=self._send_from_b, on_deliver=self.delivered_at_b.append
        )

    def _send_from_a(self, datagram: Datagram) -> None:
        self._queue_to_b.extend(self._wire_ab(datagram))

    def _send_from_b(self, datagram: Datagram) -> None:
        self._queue_to_a.extend(self._wire_ba(datagram))

    def pump(self, rounds: int = 1) -> None:
        """Deliver queued datagrams and run sender ticks, ``rounds`` times."""
        for _ in range(rounds):
            self.a.tick()
            self.b.tick()
            to_b = list(self._queue_to_b)
            self._queue_to_b.clear()
            to_a = list(self._queue_to_a)
            self._queue_to_a.clear()
            for datagram in to_b:
                self.b.on_datagram(datagram)
            for datagram in to_a:
                self.a.on_datagram(datagram)


__all__ = [
    "Datagram",
    "SelfStabilizingChannel",
    "ChannelPair",
    "LABEL_DOMAIN",
    "DELTA_COMM",
]
