"""Θ failure detector for local link monitoring (paper Sections 2.2.1, 6.3).

The paper borrows from Blanchard et al. [16, Section 6] a detector based on
relative responsiveness: every node can complete at least one round-trip
with any *live* direct neighbour while completing at most Θ round-trips with
any other neighbour.  Concretely: if a node has collected Θ replies from its
most responsive neighbour since the last reply of neighbour ``v``, it flags
``v`` as failed.

The paper's evaluation uses Θ = 10 for B4/Clos and Θ = 30 for the Rocketfuel
networks; those defaults are mirrored by the experiment harness.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set


class ThetaFailureDetector:
    """Per-node detector over its direct communication neighbourhood.

    The owner feeds it: ``record_reply(v)`` whenever a probe round-trip with
    neighbour ``v`` completes.  ``suspected()`` returns the neighbours whose
    reply lag exceeds Θ.  The detector is self-stabilizing by construction:
    all its state is refreshed by ongoing probe traffic, so arbitrary
    corruption of the counters is repaired within Θ probe rounds.
    """

    def __init__(self, theta: int, neighbors: Iterable[str]) -> None:
        if theta < 1:
            raise ValueError(f"theta must be >= 1, got {theta}")
        self.theta = theta
        self._replies: Dict[str, int] = {v: 0 for v in neighbors}

    # -- bookkeeping ---------------------------------------------------------

    def set_neighbors(self, neighbors: Iterable[str]) -> None:
        """Reconcile the monitored set with the current ``Nc`` (topology
        changes add/remove neighbours)."""
        fresh = set(neighbors)
        for gone in set(self._replies) - fresh:
            del self._replies[gone]
        for new in fresh - set(self._replies):
            self._replies[new] = self._max_count()

    def record_reply(self, neighbor: str) -> None:
        """One completed round-trip with ``neighbor``.

        Counters increment by one per reply, so all live neighbours stay
        within one round of the leader regardless of node degree; a dead
        neighbour's lag grows by one per probe round and crosses Θ after
        Θ rounds — the detection latency the paper's Section 6.3 tunes.
        """
        if neighbor not in self._replies:
            # Unknown responder: a neighbour that Nc does not list yet.
            # Track it; discovery will reconcile the neighbour set.
            self._replies[neighbor] = self._max_count()
        # A reply is proof of life: a neighbour that fell behind (it was
        # dead, or a transient fault corrupted its counter) catches up to
        # the leader at once rather than one reply at a time.
        self._replies[neighbor] = max(
            self._replies[neighbor] + 1, self._max_count()
        )

    def corrupt(self, values: Dict[str, int]) -> None:
        """Transient-fault hook for tests: overwrite counters arbitrarily."""
        self._replies.update(values)

    # -- queries --------------------------------------------------------------

    def _max_count(self) -> int:
        return max(self._replies.values(), default=0)

    def reply_lag(self, neighbor: str) -> int:
        return self._max_count() - self._replies.get(neighbor, 0)

    def suspected(self) -> Set[str]:
        """Neighbours lagging more than Θ round-trips behind the leader."""
        leader = self._max_count()
        return {v for v, count in self._replies.items() if leader - count > self.theta}

    def alive(self) -> List[str]:
        suspects = self.suspected()
        return sorted(v for v in self._replies if v not in suspects)


__all__ = ["ThetaFailureDetector"]
