"""Network substrate: topology model, link layer, channels, detectors.

These modules implement everything the paper assumes from layers below the
control plane: the communication topology ``Gc`` and operational topology
``Go`` (Section 2), the self-stabilizing end-to-end channel of Section 3.1,
the Θ failure detector of Section 6.3, and the local topology discovery of
Section 2.2.1.
"""

from repro.net.topology import Topology, NodeKind
from repro.net.topologies import (
    b4,
    clos,
    telstra,
    att,
    ebone,
    exodus,
    random_k_connected,
    TOPOLOGY_BUILDERS,
)
from repro.net.link import LinkLayer, LinkFaultModel
from repro.net.channel import SelfStabilizingChannel, ChannelPair, DELTA_COMM
from repro.net.failure_detector import ThetaFailureDetector
from repro.net.discovery import LocalDiscovery

__all__ = [
    "Topology",
    "NodeKind",
    "b4",
    "clos",
    "telstra",
    "att",
    "ebone",
    "exodus",
    "random_k_connected",
    "TOPOLOGY_BUILDERS",
    "LinkLayer",
    "LinkFaultModel",
    "SelfStabilizingChannel",
    "ChannelPair",
    "DELTA_COMM",
    "ThetaFailureDetector",
    "LocalDiscovery",
]
