"""Topology zoo used by the paper's evaluation (Table 8).

The paper evaluates on five networks::

    Network   Nodes   Diameter
    B4        12      5
    Clos      20      4
    Telstra   57      8
    AT&T      172     10
    EBONE     208     11

B4 and Clos follow their published structure (inter-datacenter WAN and
leaf-spine datacenter).  Telstra, AT&T and EBONE are Rocketfuel-measured ISP
maps that are not redistributable; we substitute deterministic **ISP-like
synthetic topologies** that reproduce the published node count and diameter
(the only statistics the paper reports or relies upon) while guaranteeing
2-edge-connectivity, which the algorithm needs for κ = 1 fault-resilient
flows.  See DESIGN.md, Section 2 for the substitution rationale.

The ISP-like construction is a *core ladder + access layer*: a 2-edge-
connected ladder backbone of ``d - 1`` rungs (hop diameter ``d - 1``
between the rails' far corners) plus access switches dual-homed onto one
rung each, which yields an exact hop diameter of ``d`` between access
switches on the extreme rungs.

Controllers are attached separately with :func:`attach_controllers`: each
controller is dual-homed onto a rung (or two spines for Clos), preserving
both the diameter and the 2-edge-connectivity.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from repro.net.topology import Topology


def _ladder_isp(name: str, n_switches: int, diameter: int) -> Topology:
    """Core-ladder-plus-access topology with exactly ``n_switches`` switches
    and hop diameter exactly ``diameter`` (verified by tests against Table 8).
    """
    rungs = diameter - 1
    core_count = 2 * rungs
    if n_switches < core_count + 2:
        raise ValueError(
            f"{name}: need at least {core_count + 2} switches for diameter {diameter}"
        )
    access_count = n_switches - core_count

    topo = Topology()
    rails: List[Tuple[str, str]] = []
    for i in range(rungs):
        u = f"{name}-u{i}"
        w = f"{name}-w{i}"
        topo.add_switch(u)
        topo.add_switch(w)
        rails.append((u, w))
    for i in range(rungs):
        u, w = rails[i]
        topo.add_link(u, w)
        if i + 1 < rungs:
            topo.add_link(u, rails[i + 1][0])
            topo.add_link(w, rails[i + 1][1])

    # Distribute access switches so the extreme rungs are populated first,
    # which pins the diameter at (rungs - 1) + 2 = diameter.
    order = _rung_fill_order(rungs)
    for idx in range(access_count):
        rung = order[idx % len(order)]
        u, w = rails[rung]
        a = f"{name}-a{idx}"
        topo.add_switch(a)
        topo.add_link(a, u)
        topo.add_link(a, w)
    return topo


def _rung_fill_order(rungs: int) -> List[int]:
    """Fill extreme rungs first (0, last, 1, last-1, ...)."""
    order: List[int] = []
    lo, hi = 0, rungs - 1
    while lo <= hi:
        order.append(lo)
        if hi != lo:
            order.append(hi)
        lo += 1
        hi -= 1
    return order


def b4() -> Topology:
    """Google's B4 inter-datacenter WAN scale: 12 switches, diameter 5."""
    return _ladder_isp("b4", n_switches=12, diameter=5)


def clos() -> Topology:
    """A 20-switch leaf-spine Clos datacenter fabric, diameter 4.

    4 spines and 16 leaves; each leaf is dual-homed to a deterministic pair
    of spines.  Leaves whose spine pairs are disjoint sit at distance 4,
    which is the fabric's diameter.
    """
    topo = Topology()
    spines = [f"clos-s{i}" for i in range(4)]
    for s in spines:
        topo.add_switch(s)
    pairs = [(a, b) for a in range(4) for b in range(a + 1, 4)]
    for idx in range(16):
        leaf = f"clos-l{idx}"
        topo.add_switch(leaf)
        a, b = pairs[idx % len(pairs)]
        topo.add_link(leaf, spines[a])
        topo.add_link(leaf, spines[b])
    return topo


def telstra() -> Topology:
    """Telstra (Rocketfuel 1221) stand-in: 57 switches, diameter 8."""
    return _ladder_isp("telstra", n_switches=57, diameter=8)


def att() -> Topology:
    """AT&T (Rocketfuel 7018) stand-in: 172 switches, diameter 10."""
    return _ladder_isp("att", n_switches=172, diameter=10)


def ebone() -> Topology:
    """EBONE (Rocketfuel 1755) stand-in: 208 switches, diameter 11."""
    return _ladder_isp("ebone", n_switches=208, diameter=11)


def exodus() -> Topology:
    """Exodus (Rocketfuel 3967) stand-in: 79 switches, diameter 9.

    The paper's Table 17 evaluates throughput correlation on Exodus; the
    Rocketfuel measurement of AS 3967 has ~79 backbone routers.
    """
    return _ladder_isp("exodus", n_switches=79, diameter=9)


def attach_controllers(topo: Topology, count: int, seed: int = 0) -> List[str]:
    """Attach ``count`` controllers, each dual-homed to the two endpoints of
    an existing switch-switch link, preserving 2-edge-connectivity and the
    switch-to-switch diameter.  Returns the new controller ids.
    """
    if count < 1:
        raise ValueError("need at least one controller")
    rng = random.Random(seed)
    switch_links = [
        (u, v) for u, v in topo.links if topo.is_switch(u) and topo.is_switch(v)
    ]
    if not switch_links:
        raise ValueError("topology has no switch-switch link to home a controller on")
    anchors = rng.sample(switch_links, min(count, len(switch_links)))
    while len(anchors) < count:
        anchors.append(rng.choice(switch_links))
    ids: List[str] = []
    for i, (u, v) in enumerate(anchors):
        cid = f"c{i}"
        topo.add_controller(cid)
        topo.add_link(cid, u)
        topo.add_link(cid, v)
        ids.append(cid)
    return ids


def random_k_connected(
    n: int, k: int, seed: int = 0, extra_edge_prob: float = 0.0
) -> Topology:
    """Harary graph H(k, n) of switches — exactly k-edge-connected — with
    optional random chords.  Used by property-based tests to exercise
    κ-fault-resilient flows on arbitrary connectivities.
    """
    if n < k + 1:
        raise ValueError(f"need n > k (got n={n}, k={k})")
    if k < 2:
        raise ValueError("k must be >= 2 for a useful SDN substrate")
    topo = Topology()
    names = [f"n{i}" for i in range(n)]
    for name in names:
        topo.add_switch(name)

    half = k // 2
    for i in range(n):
        for offset in range(1, half + 1):
            j = (i + offset) % n
            if not topo.has_link(names[i], names[j]):
                topo.add_link(names[i], names[j])
    if k % 2 == 1:
        # Odd k: add diameters (i, i + n//2); for odd n Harary uses a
        # near-perfect matching which still yields connectivity k.
        for i in range((n + 1) // 2):
            j = (i + n // 2) % n
            if not topo.has_link(names[i], names[j]):
                topo.add_link(names[i], names[j])

    if extra_edge_prob > 0:
        rng = random.Random(seed)
        for i in range(n):
            for j in range(i + 1, n):
                if not topo.has_link(names[i], names[j]) and rng.random() < extra_edge_prob:
                    topo.add_link(names[i], names[j])
    return topo


TOPOLOGY_BUILDERS: Dict[str, Callable[[], Topology]] = {
    "B4": b4,
    "Clos": clos,
    "Telstra": telstra,
    "AT&T": att,
    "EBONE": ebone,
    "Exodus": exodus,
}

# Table 8 of the paper: name -> (switch count, diameter).  Exodus is not
# in Table 8 but appears in Table 17; its stand-in is listed for tests.
TABLE8_EXPECTED: Dict[str, Tuple[int, int]] = {
    "B4": (12, 5),
    "Clos": (20, 4),
    "Telstra": (57, 8),
    "AT&T": (172, 10),
    "EBONE": (208, 11),
}

EXODUS_EXPECTED: Tuple[int, int] = (79, 9)

__all__ = [
    "b4",
    "clos",
    "telstra",
    "att",
    "ebone",
    "exodus",
    "attach_controllers",
    "random_k_connected",
    "TOPOLOGY_BUILDERS",
    "TABLE8_EXPECTED",
    "EXODUS_EXPECTED",
]
