"""Seeded, composable arbitrary-state corruption strategies.

A :class:`StateCorruption` rewrites the state of a freshly constructed
``NetworkSimulation`` — after topology construction, *before* the first
protocol step — so a following bootstrap measures convergence from an
**arbitrary** initial configuration, the paper's actual self-stabilization
claim, rather than from pristine empty state.

Every strategy is a pure function of the injected ``random.Random``
stream: applying the same corruption with the same seed to two identical
simulations produces identical component state.  That purity is what lets
the ``stabilize`` experiment spec re-derive a repetition's corruption in
any worker process from the repetition seed alone, and what makes
corrupted runs content-addressable in the run store (the corruption is
identified by its registry name; the seed is already part of the plan
identity).

The strategies cover the state surfaces the paper's transient-fault model
names (Figure 3, rightmost class):

* ``garbage-rules`` — stale and garbage flow-table rules: ghost owners,
  live owners with wrong round tags, conflicting matches;
* ``phantom-replies`` — reply-store pollution: phantom nodes stamped with
  the controller's *live* round tag, plus conflicting entries for real
  switches reporting wrong adjacencies;
* ``desync-views`` — desynchronized round state: arbitrary ``prevTag``/
  ``currTag`` pairs (including collisions and stolen namespaces), skewed
  tag counters, stale meta-rules on switches;
* ``clogged-memory`` — rule memory pre-filled to ``max_rules`` with
  never-refreshed ghost rules, forcing the LRU-eviction and
  ``delAllRules`` cleanup paths from step one;
* ``channel-garbage`` — in-flight garbage: spurious query replies and
  ghost command batches already travelling when the protocol starts, and
  (under ``reliable_channels``) scrambled end-to-end channel endpoints;
* ``mixed`` — a seeded sampler drawing an arbitrary combination of the
  above, the default for ``repro stabilize`` campaigns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.core.tags import Tag
from repro.net.channel import LABEL_DOMAIN
from repro.switch.abstract_switch import BOTTOM
from repro.switch.commands import (
    AddManager,
    CommandBatch,
    NewRound,
    QueryReply,
    UpdateRules,
)
from repro.switch.flow_table import META_PRIORITY, Rule

#: Ghost identities planted by corruption.  The ``zz-`` prefix keeps them
#: lexicographically after every real node id, so sorted iteration orders
#: stay stable with and without corruption.
GHOST_CONTROLLERS = ("zz-ghost-0", "zz-ghost-1", "zz-ghost-2")
PHANTOM_NODES = tuple(f"zz-phantom-{i}" for i in range(8))

#: Tag values planted by corruption are drawn from this range — small, so
#: collisions with live counters (which start near zero) actually occur.
_TAG_RANGE = 64


def _sample(rng: random.Random, population: List[str], k: int) -> List[str]:
    return rng.sample(population, min(k, len(population)))


def garbage_rules(sim, rng: random.Random, per_switch: int = 3) -> Dict[str, int]:
    """Plant garbage and stale rules in every flow table.

    Half the planted rules belong to ghost controllers (stale state of
    owners that never existed); the rest belong to *live* controllers but
    carry arbitrary round tags and arbitrary matches — the hardest case,
    because the owner must replace rather than merely delete them.
    """
    nodes = list(sim.topology.nodes)
    controllers = list(sim.topology.controllers)
    planted = 0
    for sid, switch in sim.switches.items():
        neighbors = sim.topology.neighbors(sid)
        if not neighbors:
            continue
        rules = []
        for _ in range(per_switch):
            if controllers and rng.random() < 0.5:
                owner = rng.choice(controllers)
            else:
                owner = rng.choice(GHOST_CONTROLLERS)
            rules.append(
                Rule(
                    cid=owner,
                    sid=sid,
                    src=rng.choice(nodes),
                    dst=rng.choice(nodes),
                    priority=rng.randrange(1, 6),
                    forward_to=rng.choice(neighbors),
                    tag=Tag(owner, rng.randrange(_TAG_RANGE)),
                )
            )
        switch.corrupt(rules=tuple(rules), managers=tuple(_sample(rng, list(GHOST_CONTROLLERS), 1)))
        planted += len(rules)
    return {"rules_planted": planted}


def phantom_replies(sim, rng: random.Random, per_controller: int = 2) -> Dict[str, int]:
    """Pollute every reply store with phantom and conflicting entries.

    Phantom nodes are stamped with the controller's *current* round tag so
    they survive the tag-mismatch discard and enter the fused view; a
    conflicting entry for a real switch reports wrong adjacencies the
    protocol must overwrite with a genuine reply before views are accurate.
    """
    switches = list(sim.topology.switches)
    planted = 0
    for cid, controller in sim.controllers.items():
        entries: List[Tuple[QueryReply, Tag]] = []
        for _ in range(per_controller):
            phantom = rng.choice(PHANTOM_NODES)
            entries.append(
                (
                    QueryReply(
                        node=phantom,
                        neighbors=tuple(_sample(rng, switches, 2)),
                        managers=(cid,),
                        rules=(),
                    ),
                    controller.curr_tag,
                )
            )
        if switches and rng.random() < 0.8:
            real = rng.choice(switches)
            wrong = tuple(n for n in _sample(rng, switches, 2) if n != real)
            entries.append(
                (
                    QueryReply(
                        node=real,
                        neighbors=wrong + (rng.choice(PHANTOM_NODES),),
                        managers=(rng.choice(GHOST_CONTROLLERS),),
                        rules=(),
                    ),
                    controller.curr_tag,
                )
            )
        controller.replydb.corrupt(entries)
        planted += len(entries)
    return {"replies_planted": planted}


def desync_views(sim, rng: random.Random) -> Dict[str, int]:
    """Desynchronize round tags, epoch counters, and meta-rules.

    Controllers get arbitrary ``prevTag``/``currTag`` pairs — sometimes
    colliding, sometimes borrowed from another controller's namespace —
    and skewed tag counters; switches get meta-rules claiming rounds that
    never happened.  The tag-synchronization layer (Section 4.2) must
    re-establish uniqueness within its Δsynch bound.
    """
    controllers = list(sim.controllers)
    desynced = 0
    for cid, controller in sim.controllers.items():
        domain = controller.tags.domain
        prev = Tag(cid, rng.randrange(_TAG_RANGE))
        curr = prev if rng.random() < 0.25 else Tag(cid, rng.randrange(_TAG_RANGE))
        if len(controllers) > 1 and rng.random() < 0.3:
            other = rng.choice([c for c in controllers if c != cid])
            prev = Tag(other, rng.randrange(_TAG_RANGE))
        controller.corrupt_tags(prev, curr)
        controller.tags.corrupt(rng.randrange(domain))
        controller.rulegen.invalidate()
        desynced += 1
    stale_meta = 0
    for sid, switch in sim.switches.items():
        if controllers and rng.random() < 0.5:
            owner = rng.choice(controllers)
            switch.corrupt(
                rules=(
                    Rule(
                        cid=owner,
                        sid=sid,
                        src=BOTTOM,
                        dst=BOTTOM,
                        priority=META_PRIORITY,
                        forward_to=None,
                        tag=Tag(owner, rng.randrange(_TAG_RANGE)),
                    ),
                )
            )
            stale_meta += 1
    return {"controllers_desynced": desynced, "stale_meta_rules": stale_meta}


def clogged_memory(sim, rng: random.Random, fill: float = 1.0) -> Dict[str, int]:
    """Pre-fill rule memory with never-refreshed ghost rules.

    ``fill`` is the target occupancy as a fraction of ``max_rules``; the
    default clogs every table completely, so the very first legitimate
    install must go through the LRU-eviction path and cleanup must issue
    ``delAllRules`` for owners that never existed.
    """
    max_rules = sim.rena_config.max_rules
    filled = 0
    for sid, switch in sim.switches.items():
        neighbors = sim.topology.neighbors(sid)
        if not neighbors:
            continue
        target = max(0, int(max_rules * fill))
        rules = []
        index = 0
        while len(switch.table) + len(rules) < target:
            rules.append(
                Rule(
                    cid=GHOST_CONTROLLERS[index % len(GHOST_CONTROLLERS)],
                    sid=sid,
                    src=f"zz-src-{index}",
                    dst=f"zz-dst-{index}",
                    priority=1,
                    forward_to=rng.choice(neighbors),
                )
            )
            index += 1
        switch.corrupt(rules=tuple(rules))
        filled += len(rules)
    return {"rules_planted": filled}


def channel_garbage(sim, rng: random.Random, packets: int = 4) -> Dict[str, int]:
    """Plant garbage already in flight when the protocol starts.

    Schedules spurious deliveries on the event engine: query replies from
    phantom nodes stamped with a live round tag (landing straight in a
    reply store), and ghost command batches materializing at switches.
    Under ``reliable_channels`` one end-to-end channel endpoint is also
    scrambled — arbitrary labels and a ghost batch in flight — exercising
    the Δcomm false-acknowledgment bound of Section 3.1.
    """
    from repro.sim.events import EventKind

    controllers = list(sim.topology.controllers)
    switches = list(sim.topology.switches)
    scheduled = 0
    for _ in range(packets):
        at = rng.uniform(0.01, 0.25)
        if controllers and rng.random() < 0.5:
            cid = rng.choice(controllers)
            controller = sim.controllers[cid]
            phantom = rng.choice(PHANTOM_NODES)
            echo = Rule(
                cid=cid,
                sid=phantom,
                src=BOTTOM,
                dst=BOTTOM,
                priority=META_PRIORITY,
                forward_to=None,
                tag=controller.curr_tag,
            )
            reply = QueryReply(
                node=phantom,
                neighbors=tuple(_sample(rng, switches, 2)),
                managers=(),
                rules=(echo,),
            )
            sim.sim.schedule_at(
                at,
                lambda c=controller, r=reply: c.on_reply(r),
                kind=EventKind.PACKET_DELIVERY,
                note=f"adversary reply ->{cid}",
            )
        elif switches:
            sid = rng.choice(switches)
            neighbors = sim.topology.neighbors(sid)
            if not neighbors:
                continue
            batch = _ghost_batch(sid, neighbors, rng)
            sim.sim.schedule_at(
                at,
                lambda s=sim.switches[sid], b=batch: s.handle_batch(b),
                kind=EventKind.PACKET_DELIVERY,
                note=f"adversary batch ->{sid}",
            )
        scheduled += 1
    if sim.config.reliable_channels and controllers and switches:
        cid = rng.choice(controllers)
        dst = rng.choice(switches)
        channel = sim._tx_channel(cid, dst)
        channel.corrupt(
            send_label=rng.randrange(LABEL_DOMAIN),
            recv_label=rng.randrange(LABEL_DOMAIN),
            in_flight=_ghost_batch(dst, sim.topology.neighbors(dst), rng),
        )
        scheduled += 1
    return {"packets_in_flight": scheduled}


def _ghost_batch(sid: str, neighbors: List[str], rng: random.Random) -> CommandBatch:
    """A syntactically valid batch from a controller that never existed."""
    ghost = rng.choice(GHOST_CONTROLLERS)
    rule = Rule(
        cid=ghost,
        sid=sid,
        src=rng.choice(PHANTOM_NODES),
        dst=rng.choice(PHANTOM_NODES),
        priority=1,
        forward_to=rng.choice(neighbors),
    )
    return CommandBatch(
        sender=ghost,
        commands=(
            NewRound(Tag(ghost, rng.randrange(_TAG_RANGE))),
            AddManager(ghost),
            UpdateRules((rule,)),
        ),
    )


def mixed(sim, rng: random.Random) -> Dict[str, object]:
    """An arbitrary configuration, sampled from the whole registry.

    Each atomic strategy is included independently with a fixed
    probability (clogged memory less often and at a sampled fill level —
    it dominates when present); at least one always applies.  The sampled
    combination and every sub-accounting ride along in the returned dict,
    so a run record shows exactly what state the run started from.
    """
    menu: List[Tuple[str, Callable[[], Dict[str, object]], float]] = [
        ("garbage-rules", lambda: garbage_rules(sim, rng), 0.8),
        ("phantom-replies", lambda: phantom_replies(sim, rng), 0.75),
        ("desync-views", lambda: desync_views(sim, rng), 0.75),
        ("clogged-memory", lambda: clogged_memory(sim, rng, fill=rng.uniform(0.5, 1.0)), 0.35),
        ("channel-garbage", lambda: channel_garbage(sim, rng), 0.6),
    ]
    applied: List[str] = []
    accounting: Dict[str, object] = {}
    for name, strategy, probability in menu:
        if rng.random() < probability:
            accounting[name] = strategy()
            applied.append(name)
    if not applied:
        accounting["desync-views"] = desync_views(sim, rng)
        applied.append("desync-views")
    accounting["applied"] = applied
    return accounting


@dataclass(frozen=True)
class StateCorruption:
    """A named, registry-addressable corruption strategy.

    ``apply`` mutates the simulation's component state in place and
    returns a JSON-able accounting dict (what was planted where) that the
    ``corrupt_state`` phase surfaces in its :class:`PhaseResult` details.
    """

    name: str
    description: str
    strategy: Callable[..., Dict[str, object]]

    def apply(self, sim, rng: random.Random, **params) -> Dict[str, object]:
        return self.strategy(sim, rng, **params)


#: Pluggable corruption registry; register a strategy here to make it
#: addressable from every entry point (``CorruptState(corruption=name)``,
#: ``repro stabilize --corruption name``, the property harness).
CORRUPTIONS: Dict[str, StateCorruption] = {
    corruption.name: corruption
    for corruption in (
        StateCorruption("garbage-rules", "garbage/stale flow-table rules (ghost and live owners)", garbage_rules),
        StateCorruption("phantom-replies", "phantom and conflicting reply-store entries", phantom_replies),
        StateCorruption("desync-views", "desynchronized round tags, epoch counters, stale meta-rules", desync_views),
        StateCorruption("clogged-memory", "rule memory pre-filled to max_rules with ghost rules", clogged_memory),
        StateCorruption("channel-garbage", "garbage replies/batches already in flight at start", channel_garbage),
        StateCorruption("mixed", "an arbitrary seeded combination of all strategies", mixed),
    )
}


def apply_corruption(name: str, sim, rng: random.Random, **params) -> Dict[str, object]:
    """Apply the named corruption; raises on unknown names."""
    try:
        corruption = CORRUPTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown corruption {name!r}; known: {', '.join(sorted(CORRUPTIONS))}"
        ) from None
    return corruption.apply(sim, rng, **params)


__all__ = [
    "CORRUPTIONS",
    "GHOST_CONTROLLERS",
    "PHANTOM_NODES",
    "StateCorruption",
    "apply_corruption",
    "channel_garbage",
    "clogged_memory",
    "desync_views",
    "garbage_rules",
    "mixed",
    "phantom_replies",
]
