"""Seeded generate-and-shrink harness for convergence from arbitrary state.

The paper's Theorem 1 is a *self-stabilization* claim: the control plane
reaches a legitimate configuration from **any** initial state.  The
scenario harness (:mod:`repro.scenarios.harness`) checks the post-fault
half of that claim; this harness checks the arbitrary-initial-state half:

* **generate** — :func:`generate_stabilization_cases` derives ``n`` random
  ``(topology, corruption, scheduler, seed)`` tuples from a base seed,
  drawing topologies from the scenario harness's shared pool, corruptions
  from the full :data:`~repro.adversary.corruptions.CORRUPTIONS` registry,
  and delivery schedulers from ``{"none"} ∪ SCHEDULERS``;
* **check** — :func:`check_stabilization_case` corrupts a freshly built
  network and measures the time to Definition 1; a case *passes* iff the
  network stabilizes within the timeout;
* **shrink** — on failure, :func:`shrink_stabilization_case` first tries
  smaller topologies of the same family, then drops the adversarial
  scheduler, then replaces a composite corruption with each atomic
  strategy — and reports the smallest reproducing tuple.

Failures print a copy-pastable reproduction line; re-running the tuple
through :func:`check_stabilization_case` reproduces the non-convergence
deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.adversary.corruptions import CORRUPTIONS
from repro.adversary.schedulers import SCHEDULERS
from repro.adversary.spec import measure_stabilization
from repro.obs.explain import explain_rerun
from repro.scenarios.harness import TOPOLOGY_POOL

#: Scheduler axis: the benign default plus every registered policy.
SCHEDULER_POOL: Tuple[str, ...] = ("none",) + tuple(sorted(SCHEDULERS))

#: Fast simulation settings shared by every harness run — the scenario
#: harness's settings, so stabilization and recovery cases cost alike.
FAST_SETTINGS = dict(n_controllers=2, task_delay=0.1, theta=4, timeout=120.0)


@dataclass(frozen=True)
class StabilizationCase:
    """One generated property-test case — the reproducing tuple."""

    topology: str
    corruption: str
    scheduler: str
    seed: int

    def repro_line(self) -> str:
        return (
            f"check_stabilization_case(StabilizationCase("
            f"topology={self.topology!r}, corruption={self.corruption!r}, "
            f"scheduler={self.scheduler!r}, seed={self.seed}))"
        )


def generate_stabilization_cases(
    n: int, base_seed: int = 0
) -> List[StabilizationCase]:
    """``n`` deterministic random tuples spanning every topology family,
    corruption strategy, and scheduler policy."""
    rng = random.Random(base_seed * 9_176_263 + 5)
    corruptions = sorted(CORRUPTIONS)
    cases = []
    for _ in range(n):
        family = rng.choice(TOPOLOGY_POOL)
        cases.append(
            StabilizationCase(
                topology=rng.choice(family),
                corruption=rng.choice(corruptions),
                scheduler=rng.choice(SCHEDULER_POOL),
                seed=rng.randrange(1 << 20),
            )
        )
    return cases


def check_stabilization_case(case: StabilizationCase) -> Optional[float]:
    """Stabilization seconds from arbitrary initial state, or ``None`` on
    non-convergence — the property under test is "never ``None``"."""
    return measure_stabilization(
        case.topology,
        case.corruption,
        case.seed,
        scheduler=case.scheduler,
        **FAST_SETTINGS,
    )


def shrink_stabilization_case(case: StabilizationCase) -> StabilizationCase:
    """Smallest reproduction of a failing case.

    Shrinks along three axes in order: the topology within its family
    (each candidate re-checked with its own regenerated corruption — node
    names shift between sizes), then the scheduler down to the benign
    default, then a composite ``mixed`` corruption down to a single
    atomic strategy.
    """
    best = case
    family = next((f for f in TOPOLOGY_POOL if case.topology in f), ())
    start = family.index(case.topology) + 1 if case.topology in family else 0
    for smaller in family[start:]:
        candidate = replace(best, topology=smaller)
        if check_stabilization_case(candidate) is None:
            best = candidate
        else:
            break
    if best.scheduler != "none":
        candidate = replace(best, scheduler="none")
        if check_stabilization_case(candidate) is None:
            best = candidate
    if best.corruption == "mixed":
        for atomic in sorted(CORRUPTIONS):
            if atomic == "mixed":
                continue
            candidate = replace(best, corruption=atomic)
            if check_stabilization_case(candidate) is None:
                best = candidate
                break
    return best


@dataclass
class StabilizationReport:
    """Outcome of one harness run."""

    cases: List[StabilizationCase]
    stabilization_times: List[float]
    failures: List[StabilizationCase]

    @property
    def ok(self) -> bool:
        return not self.failures


def run_stabilization_property(n: int, base_seed: int = 0) -> StabilizationReport:
    """Check ``n`` generated cases; shrink and report every failure."""
    cases = generate_stabilization_cases(n, base_seed=base_seed)
    times: List[float] = []
    failures: List[StabilizationCase] = []
    for case in cases:
        stabilization = check_stabilization_case(case)
        if stabilization is None:
            shrunk = shrink_stabilization_case(case)
            failures.append(shrunk)
            print(
                "stabilization FAILED"
                f" on (topology={shrunk.topology!r}, "
                f"corruption={shrunk.corruption!r}, "
                f"scheduler={shrunk.scheduler!r}, seed={shrunk.seed})\n"
                f"  reproduce: {shrunk.repro_line()}"
            )
            # Convergence forensics: the causal chain from the injected
            # corruption to the probe verdicts that never turned green.
            explanation = explain_rerun(
                lambda c=shrunk: check_stabilization_case(c),
                source=shrunk.repro_line(),
            )
            for line in explanation.render().splitlines():
                print(f"  {line}")
        else:
            times.append(stabilization)
    return StabilizationReport(
        cases=cases, stabilization_times=times, failures=failures
    )


__all__ = [
    "FAST_SETTINGS",
    "SCHEDULER_POOL",
    "StabilizationCase",
    "StabilizationReport",
    "check_stabilization_case",
    "generate_stabilization_cases",
    "run_stabilization_property",
    "shrink_stabilization_case",
]
