"""Bounded adversarial delivery schedulers.

The paper's asynchronous model lets an adversary choose *any* interleaving
subject to communication fairness: a packet sent is eventually delivered,
within bounded time.  The simulation's default scheduler is benign — every
control packet arrives after exactly ``hops × latency``.  The schedulers
here replace that with worst-case-within-bounds policies: each delivery
latency ``l`` may be stretched anywhere inside ``[l, l × bound]``, which
preserves fairness (no packet is lost or starved) while letting the
adversary pick the nastiest arrival order the bound allows.

Schedulers are pluggable through ``SimulationConfig.scheduler`` — a
registry *name*, like controller placements through ``PLACEMENTS`` — so a
scheduled run stays content-addressable in the run store (an injected
object would not be).  The module depends only on the standard library;
:mod:`repro.sim.network_sim` imports it lazily.

* ``max-delay`` — every packet takes the full bound: the slowest fair
  execution, maximizing the window in which state is stale;
* ``reorder`` — alternates between the bound and the floor, so
  consecutively sent packets systematically overtake each other —
  adjacent sends swap arrival order whenever their spacing is below
  ``(bound − 1) × l``;
* ``extremes`` — a seeded coin flip between floor and bound per packet:
  an adversary sampling arbitrary admissible arrival orders.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional


class AdversarialScheduler:
    """Base policy: maps a benign delivery latency to an adversarial one.

    Implementations must stay within ``[latency, latency * bound]`` — the
    bound is the fairness contract; anything outside it would model loss
    or time travel, not scheduling.
    """

    name = "adversary"

    def __init__(self, bound: float, rng: Optional[random.Random] = None) -> None:
        if bound < 1.0:
            raise ValueError(f"scheduler bound must be >= 1 (got {bound})")
        self.bound = bound
        self._rng = rng

    def delay(self, latency: float) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


class MaxDelayScheduler(AdversarialScheduler):
    """Every delivery takes the full bound."""

    name = "max-delay"

    def delay(self, latency: float) -> float:
        return latency * self.bound


class ReorderScheduler(AdversarialScheduler):
    """Alternate floor/bound so consecutive sends invert arrival order."""

    name = "reorder"

    def __init__(self, bound: float, rng: Optional[random.Random] = None) -> None:
        super().__init__(bound, rng)
        self._flip = False

    def delay(self, latency: float) -> float:
        self._flip = not self._flip
        return latency * self.bound if self._flip else latency


class ExtremesScheduler(AdversarialScheduler):
    """Seeded coin flip between floor and bound per packet."""

    name = "extremes"

    def __init__(self, bound: float, rng: Optional[random.Random] = None) -> None:
        super().__init__(bound, rng if rng is not None else random.Random(0))

    def delay(self, latency: float) -> float:
        return latency * self.bound if self._rng.random() < 0.5 else latency


#: Pluggable scheduler registry, keyed by the name ``SimulationConfig.
#: scheduler`` carries; register a policy here to make it addressable from
#: every entry point (plans, specs, ``repro stabilize --scheduler``).
SCHEDULERS: Dict[str, Callable[..., AdversarialScheduler]] = {
    scheduler.name: scheduler
    for scheduler in (MaxDelayScheduler, ReorderScheduler, ExtremesScheduler)
}


def make_scheduler(
    name: str, bound: float = 4.0, rng: Optional[random.Random] = None
) -> AdversarialScheduler:
    """Instantiate the named scheduler; raises on unknown names."""
    try:
        factory = SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; known: {', '.join(sorted(SCHEDULERS))}"
        ) from None
    return factory(bound, rng)


__all__ = [
    "SCHEDULERS",
    "AdversarialScheduler",
    "ExtremesScheduler",
    "MaxDelayScheduler",
    "ReorderScheduler",
    "make_scheduler",
]
