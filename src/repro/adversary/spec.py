"""The ``stabilize`` experiment spec: convergence from arbitrary state.

Registers one :class:`~repro.exp.spec.ExperimentSpec` named ``stabilize``
whose cases measure the paper's *headline* claim — self-stabilization:
corrupt the freshly constructed network to an arbitrary configuration
(flow tables, reply stores, round tags, channel contents), optionally
hand packet delivery to a bounded adversarial scheduler, and measure the
time until Definition 1 holds.

Everything is a pure function of the repetition seed: the topology (for
randomized families), the controller placement, the corruption (its own
decorrelated :func:`~repro.exp.seeding.adversary_rng` stream), the
scheduler's randomness, and the simulation's event interleaving.  The
parallel repetition runner therefore produces bit-identical series at any
worker count, and every repetition is content-addressable in the run
store — a warm re-run performs zero simulator steps.  The module is wired
into the registry lazily through ``repro.exp.spec``'s deferred-module
hook, like the scenario spec.
"""

from __future__ import annotations

from typing import List, Optional

from repro.api import AwaitLegitimacy, CorruptState, RunPlan, RunResult
from repro.exp.spec import CaseSpec, ExperimentSpec, register


def stabilize_run_plan(
    topology: str,
    corruption: str,
    seed: int,
    scheduler: str = "none",
    scheduler_bound: float = 4.0,
    n_controllers: int = 3,
    task_delay: float = 0.5,
    theta: int = 10,
    timeout: float = 240.0,
) -> RunPlan:
    """The facade plan of one stabilization repetition: corrupt the
    initial state, then run until a legitimate configuration is reached.

    ``scheduler`` names a bounded adversarial delivery policy from
    :data:`~repro.adversary.schedulers.SCHEDULERS` (``"none"`` keeps the
    benign default).  There is deliberately no ``Bootstrap`` phase: the
    run *starts* corrupted, so the awaited convergence is the
    stabilization itself.
    """
    # robust_views: the adversarial axis injects pure transient corruption
    # (no permanent removals), so the corroborated-fusion planning view is
    # sound here and prevents the rule-flap limit cycle the bounded-delay
    # schedulers otherwise induce on high-diameter topologies.
    plan = RunPlan(topology, controllers=n_controllers, seed=seed).configure(
        task_delay=task_delay, theta=theta, robust_views=True
    )
    if scheduler != "none":
        plan.configure(scheduler=scheduler, scheduler_bound=scheduler_bound)
    return plan.then(
        CorruptState(corruption=corruption),
        AwaitLegitimacy(timeout=timeout),
    )


def run_stabilize(
    topology: str,
    corruption: str,
    seed: int,
    scheduler: str = "none",
    scheduler_bound: float = 4.0,
    n_controllers: int = 3,
    task_delay: float = 0.5,
    theta: int = 10,
    timeout: float = 240.0,
) -> RunResult:
    """Execute one stabilization repetition; returns its full run record."""
    return stabilize_run_plan(
        topology,
        corruption,
        seed,
        scheduler=scheduler,
        scheduler_bound=scheduler_bound,
        n_controllers=n_controllers,
        task_delay=task_delay,
        theta=theta,
        timeout=timeout,
    ).run()


def measure_stabilization(
    topology: str,
    corruption: str,
    seed: int,
    scheduler: str = "none",
    scheduler_bound: float = 4.0,
    n_controllers: int = 3,
    task_delay: float = 0.5,
    theta: int = 10,
    timeout: float = 240.0,
) -> Optional[float]:
    """Stabilization time from arbitrary initial state to legitimacy, or
    ``None`` if the run never converged within the timeout."""
    return run_stabilize(
        topology,
        corruption,
        seed,
        scheduler=scheduler,
        scheduler_bound=scheduler_bound,
        n_controllers=n_controllers,
        task_delay=task_delay,
        theta=theta,
        timeout=timeout,
    ).stabilization_time


def _stabilize_cases(
    networks=None,
    topology: str = "jellyfish:20",
    corruption: str = "mixed",
    scheduler: str = "none",
    scheduler_bound: float = 4.0,
    n_controllers: int = 3,
    task_delay: float = 0.5,
    theta: int = 10,
    timeout: float = 240.0,
    **_params,
) -> List[CaseSpec]:
    label = f"{topology} {corruption} {scheduler}"
    if networks and topology not in networks and label not in networks:
        return []
    return [
        CaseSpec(
            label=label,
            network=topology,
            measure=lambda s: measure_stabilization(
                topology,
                corruption,
                s,
                scheduler=scheduler,
                scheduler_bound=scheduler_bound,
                n_controllers=n_controllers,
                task_delay=task_delay,
                theta=theta,
                timeout=timeout,
            ),
            # Like the scenario spec: the worst-case tail is the point of
            # an adversarial campaign, so keep every repetition.
            trim=False,
        )
    ]


register(
    ExperimentSpec(
        name="stabilize",
        title="Stabilize: convergence from an arbitrary initial state",
        build_cases=_stabilize_cases,
        notes=(
            "seconds from arbitrary-state corruption (applied before the "
            "first protocol step) to a legitimate configuration "
            "(Definition 1)"
        ),
        default_reps=8,
    )
)


__all__ = [
    "measure_stabilization",
    "run_stabilize",
    "stabilize_run_plan",
]
