"""``repro.adversary`` — convergence from *arbitrary* initial state.

The paper's headline guarantee is self-stabilization: the control plane
reaches a legitimate configuration from **any** starting state, not just
from a pristine bootstrap or after faults injected into a clean run.
This package builds that evaluation axis:

* :mod:`repro.adversary.corruptions` — a seeded registry of composable
  :class:`StateCorruption` strategies that rewrite component state after
  topology construction but *before* the protocol runs (garbage flow
  rules, phantom reply-store entries, desynchronized round tags,
  pre-clogged rule memory, in-flight channel garbage), plus a ``mixed``
  sampler drawing an arbitrary configuration from a seed;
* :mod:`repro.adversary.schedulers` — bounded adversarial delivery
  schedulers (worst-case-within-bounds delay and reorder policies),
  pluggable through ``SimulationConfig.scheduler`` exactly like
  controller placements through ``PLACEMENTS``;
* :mod:`repro.adversary.spec` — the ``stabilize`` experiment spec:
  (topology × corruption × scheduler × seed) campaigns through the
  parallel repetition runner and the run store;
* :mod:`repro.adversary.harness` — the generate-and-shrink property
  harness for the convergence-from-arbitrary-state claim, reporting a
  reproducing ``(topology, corruption, scheduler, seed)`` tuple on
  failure.
"""

from repro.adversary.corruptions import (
    CORRUPTIONS,
    StateCorruption,
    apply_corruption,
)
from repro.adversary.schedulers import (
    SCHEDULERS,
    AdversarialScheduler,
    make_scheduler,
)

__all__ = [
    "CORRUPTIONS",
    "SCHEDULERS",
    "AdversarialScheduler",
    "StateCorruption",
    "apply_corruption",
    "make_scheduler",
]
