"""κ-fault-resilient flows (paper Section 2.2.2).

A :class:`ResilientFlow` between a controller and a node bundles up to
κ+1 edge-disjoint paths: the primary (shortest, highest priority) plus κ
alternates.  A packet traverses the highest-priority path whose links are
currently operational — realized hop-by-hop by the switches' conditional
rules, mirroring OpenFlow fast-failover semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

from repro.net.topology import Topology, NodeId, EdgeId
from repro.flows.paths import edge_disjoint_paths, path_edges


@dataclass(frozen=True)
class ResilientFlow:
    """An ordered set of edge-disjoint paths between two endpoints.

    ``paths[0]`` is the primary path; ``paths[k]`` backs up k failures.
    ``resilience`` is ``len(paths) - 1`` — how many link failures the flow
    provably survives (failures must be link-disjoint across paths, which
    edge-disjointness guarantees).
    """

    source: NodeId
    target: NodeId
    paths: Tuple[Tuple[NodeId, ...], ...]

    @property
    def resilience(self) -> int:
        return len(self.paths) - 1

    @property
    def primary(self) -> Tuple[NodeId, ...]:
        return self.paths[0]

    def surviving_path(self, failed: Set[EdgeId]) -> Optional[Tuple[NodeId, ...]]:
        """Highest-priority path avoiding every failed edge, or ``None``."""
        for path in self.paths:
            if not any(e in failed for e in path_edges(list(path))):
                return path
        return None

    def all_edges(self) -> Set[EdgeId]:
        edges: Set[EdgeId] = set()
        for path in self.paths:
            edges.update(path_edges(list(path)))
        return edges


def compute_resilient_flow(
    topology: Topology,
    source: NodeId,
    target: NodeId,
    kappa: int,
) -> ResilientFlow:
    """Compute a κ-fault-resilient flow (or the best achievable resilience
    if the topology's s-t connectivity is below κ+1).

    Raises ``ValueError`` when no path exists at all — the endpoints are
    disconnected in ``Gc``, which the caller treats as "not reachable".
    """
    if kappa < 0:
        raise ValueError("kappa must be >= 0")
    paths = edge_disjoint_paths(topology, source, target, kappa + 1)
    if not paths:
        raise ValueError(f"no path from {source} to {target}")
    return ResilientFlow(
        source=source,
        target=target,
        paths=tuple(tuple(p) for p in paths),
    )


__all__ = ["ResilientFlow", "compute_resilient_flow"]
