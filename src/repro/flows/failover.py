"""Conditional forwarding plans with local fast failover.

The paper realizes κ-fault-resilient flows with conditional forwarding
rules in the style of OpenFlow fast-failover groups [6]: when a switch's
primary out-link is down it locally falls back to a lower-priority rule,
without waiting for the controller.

For a flow ``src → dst`` we install:

* the **primary** rules along the first shortest path ``P0`` at
  ``PRIMARY_PRIORITY``;
* for each directed edge ``(x, y)`` at index ``i`` of ``P0``, a **detour**
  from the *detecting* switch ``x`` to ``dst``, computed in the graph
  without ``(x, y)`` and (when possible) without the strict prefix
  ``P0[:i]`` — so the detour cannot be hijacked by a pre-failure primary
  rule — at priority ``PRIMARY_PRIORITY - 1 - i``.

A detour may rejoin ``P0`` *after* the failed edge; there the primary
(higher-priority, operational) rules take over, which is sound for a
single failure because the suffix past the failed edge is intact.  This
construction is exact for κ = 1 — the κ the paper's prototype evaluates —
and best-effort beyond (deeper failures fall back through remaining
detour priorities and are ultimately bounded by the packet TTL).

Each direction of a flow is planned independently (``dst → src`` runs the
same construction on swapped endpoints), giving the bidirectional packet
exchange the paper's flow definition requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.net.topology import Topology, NodeId, EdgeId, edge, _bits

#: Priority of primary-path rules; detours descend from it.  Far above the
#: meta-rule's priority 0, leaving room for diameter-many detour levels.
PRIMARY_PRIORITY = 1_000


@dataclass(frozen=True)
class HopRule:
    """One forwarding entry to install at ``switch``: matches header
    ``(src, dst)``, forwards to adjacent ``forward_to`` when that link is
    operational.  Larger ``priority`` wins.

    ``detour`` identifies which per-edge detour the rule belongs to (None
    for primary rules); ``detour_start`` marks the detecting switch where
    packets are stamped onto the detour (see
    :class:`repro.switch.flow_table.Rule`)."""

    switch: NodeId
    src: NodeId
    dst: NodeId
    forward_to: NodeId
    priority: int
    detour: Optional[int] = None
    detour_start: bool = False


def _directed_rules(
    view: Topology, src: NodeId, dst: NodeId, kappa: int
) -> List[HopRule]:
    """Primary + per-edge detour rules for packets ``src → dst``."""
    primary = _bfs_avoiding(view, src, dst, set(), set())
    if primary is None:
        return []
    rules: List[HopRule] = []
    for hop, nxt in zip(primary, primary[1:]):
        rules.append(
            HopRule(switch=hop, src=src, dst=dst, forward_to=nxt, priority=PRIMARY_PRIORITY)
        )
    if kappa < 1:
        return rules

    for idx in range(len(primary) - 1):
        x, y = primary[idx], primary[idx + 1]
        failed = {edge(x, y)}
        prefix = set(primary[:idx])  # strictly before the detecting node
        detour = _detour_path(view, x, dst, failed, prefix)
        if detour is None:
            continue
        priority = PRIMARY_PRIORITY - 1 - idx
        if priority <= 0:
            break
        # The stamping point is the first *switch* of the detour: when the
        # detour starts at the (non-forwarding) source controller, packets
        # are stamped at the first switch they reach instead.
        start_hop = detour[0] if view.is_switch(detour[0]) else (
            detour[1] if len(detour) > 1 else detour[0]
        )
        for hop, nxt in zip(detour, detour[1:]):
            rules.append(
                HopRule(
                    switch=hop,
                    src=src,
                    dst=dst,
                    forward_to=nxt,
                    priority=priority,
                    detour=idx,
                    detour_start=(hop == start_hop),
                )
            )
    return rules


def _detour_path(
    view: Topology,
    start: NodeId,
    dst: NodeId,
    failed_edges: Set[EdgeId],
    avoid_nodes: Set[NodeId],
) -> Optional[List[NodeId]]:
    """Shortest start→dst path avoiding the failed edge(s), preferring one
    that also avoids the primary prefix (hijack-free); falls back to
    edge-avoidance only."""
    strict = _bfs_avoiding(view, start, dst, failed_edges, avoid_nodes)
    if strict is not None:
        return strict
    return _bfs_avoiding(view, start, dst, failed_edges, set())


def _bfs_avoiding(
    view: Topology,
    start: NodeId,
    dst: NodeId,
    failed_edges: Set[EdgeId],
    avoid_nodes: Set[NodeId],
) -> Optional[List[NodeId]]:
    """First shortest start→dst path whose *interior* nodes are switches —
    controllers only forward to/from themselves, never relay (Section 2:
    switches are the packet-forwarding elements).

    Runs on the view's interned bitmask adjacency: the rule planner calls
    this for every primary path *and* every per-edge detour of every flow,
    which makes it the single hottest loop of a bootstrap.  Frontier nodes
    are expanded in discovery order and neighbours visited in ascending
    index (= sorted-name) order, reproducing the legacy FIFO/sorted BFS
    parent assignments exactly.
    """
    if start in avoid_nodes or dst in avoid_nodes:
        return None
    index = view.index()
    idx = index.idx
    names = index.names
    adj_masks = index.adj_masks
    src_i, dst_i = idx[start], idx[dst]
    if src_i == dst_i:
        return [start]
    avoid_mask = 0
    for node in avoid_nodes:
        i = idx.get(node)
        if i is not None:
            avoid_mask |= 1 << i
    excluded = Topology._excluded_masks(index, failed_edges)
    # Only switches relay; the start node forwards its own packets.
    relay_mask = index.switch_mask | (1 << src_i)
    parent: Dict[int, int] = {src_i: src_i}
    seen = (1 << src_i) | avoid_mask
    frontier = [src_i]
    found = False
    while frontier and not found:
        next_frontier: List[int] = []
        for u in frontier:
            if not (relay_mask >> u) & 1:
                continue
            mask = adj_masks[u] & ~seen
            if excluded is not None and u in excluded:
                mask &= ~excluded[u]
            for v in _bits(mask):
                seen |= 1 << v
                parent[v] = u
                next_frontier.append(v)
                if v == dst_i:
                    found = True
        frontier = next_frontier
    if dst_i not in parent:
        return None
    path_i = [dst_i]
    while path_i[-1] != src_i:
        path_i.append(parent[path_i[-1]])
    path_i.reverse()
    return [names[i] for i in path_i]


def plan_flow_rules(
    view: Topology, source: NodeId, target: NodeId, kappa: int
) -> List[HopRule]:
    """Bidirectional κ-fault-resilient rule plan between two endpoints."""
    forward = _directed_rules(view, source, target, kappa)
    backward = _directed_rules(view, target, source, kappa)
    return forward + backward


def rules_by_switch(rules: List[HopRule]) -> Dict[NodeId, List[HopRule]]:
    grouped: Dict[NodeId, List[HopRule]] = {}
    for rule in rules:
        grouped.setdefault(rule.switch, []).append(rule)
    return grouped


__all__ = ["HopRule", "PRIMARY_PRIORITY", "plan_flow_rules", "rules_by_switch"]
