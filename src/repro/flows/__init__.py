"""κ-fault-resilient flow computation (paper Section 2.2.2).

A κ-fault-resilient flow from ``pi`` to ``pj`` survives any ``k ≤ κ`` link
failures: for every failed subset there is still a forwarding path.  On a
(κ+1)-edge-connected ``Gc`` such flows always exist; we realize them as
κ+1 edge-disjoint paths with priority-ordered conditional rules, matching
the paper's use of OpenFlow fast-failover groups.
"""

from repro.flows.paths import (
    first_shortest_path,
    edge_disjoint_paths,
    path_edges,
    is_simple_path,
)
from repro.flows.resilient import ResilientFlow, compute_resilient_flow
from repro.flows.failover import (
    HopRule,
    PRIMARY_PRIORITY,
    plan_flow_rules,
    rules_by_switch,
)

__all__ = [
    "first_shortest_path",
    "edge_disjoint_paths",
    "path_edges",
    "is_simple_path",
    "ResilientFlow",
    "compute_resilient_flow",
    "HopRule",
    "PRIMARY_PRIORITY",
    "plan_flow_rules",
    "rules_by_switch",
]
