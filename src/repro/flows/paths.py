"""Path primitives: first-shortest-path and edge-disjoint path sets.

Edge-disjoint paths are computed with unit-capacity max flow (Edmonds–Karp
with BFS augmentation) followed by flow decomposition.  Max flow — unlike
greedy shortest-path-then-remove — is *guaranteed* to find k disjoint paths
whenever they exist, because augmentation can reroute earlier paths.  This
matters for correctness of κ-fault-resilient flows on arbitrary topologies.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.net.topology import Topology, NodeId, EdgeId, edge


def path_edges(path: List[NodeId]) -> List[EdgeId]:
    """Undirected edge set of a node path."""
    return [edge(u, v) for u, v in zip(path, path[1:])]


def is_simple_path(path: List[NodeId]) -> bool:
    return len(path) == len(set(path))


def first_shortest_path(
    topology: Topology,
    source: NodeId,
    target: NodeId,
    excluded_edges: Optional[Set[EdgeId]] = None,
) -> Optional[List[NodeId]]:
    """The paper's deterministic primary path: BFS with sorted-neighbour tie
    breaking (Section 5.4, "first shortest path")."""
    return topology.shortest_path(source, target, excluded_edges=excluded_edges)


def _bfs_augment(
    topology: Topology,
    residual: Dict[Tuple[NodeId, NodeId], int],
    source: NodeId,
    target: NodeId,
) -> Optional[List[NodeId]]:
    """Shortest augmenting path in the residual graph, or ``None``."""
    parent: Dict[NodeId, NodeId] = {source: source}
    queue: deque[NodeId] = deque([source])
    while queue:
        u = queue.popleft()
        if u == target:
            break
        if u != source and not topology.is_switch(u):
            continue  # controllers cannot relay packets
        for v in topology.neighbors(u):
            if v not in parent and residual.get((u, v), 0) > 0:
                parent[v] = u
                queue.append(v)
    if target not in parent:
        return None
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def edge_disjoint_paths(
    topology: Topology,
    source: NodeId,
    target: NodeId,
    count: int,
) -> List[List[NodeId]]:
    """Up to ``count`` pairwise edge-disjoint simple paths from ``source`` to
    ``target``, shortest-first.

    Returns fewer than ``count`` paths when the graph's s-t edge
    connectivity is smaller — the caller (rule generation) then installs a
    flow with the best achievable resilience, exactly as Lemma 7's
    degraded-κ case describes.
    """
    if source == target:
        raise ValueError("source and target must differ")
    if count < 1:
        raise ValueError("count must be >= 1")

    residual: Dict[Tuple[NodeId, NodeId], int] = {}
    for u, v in topology.links:
        residual[(u, v)] = 1
        residual[(v, u)] = 1

    found = 0
    while found < count:
        augmenting = _bfs_augment(topology, residual, source, target)
        if augmenting is None:
            break
        for u, v in zip(augmenting, augmenting[1:]):
            residual[(u, v)] -= 1
            residual[(v, u)] = residual.get((v, u), 0) + 1
        found += 1

    if found == 0:
        return []
    return _decompose_paths(topology, residual, source, target, found)


def _decompose_paths(
    topology: Topology,
    residual: Dict[Tuple[NodeId, NodeId], int],
    source: NodeId,
    target: NodeId,
    flow_value: int,
) -> List[List[NodeId]]:
    """Extract ``flow_value`` edge-disjoint paths from a unit flow.

    An arc (u, v) carries flow iff residual[(u, v)] == 0 while the original
    capacity was 1.  Opposite saturated arcs cancel out (flow on both
    directions of one undirected edge is a no-op cycle).
    """
    used: Set[Tuple[NodeId, NodeId]] = set()
    for u, v in topology.links:
        forward_sat = residual.get((u, v), 1) == 0
        backward_sat = residual.get((v, u), 1) == 0
        if forward_sat and not backward_sat:
            used.add((u, v))
        elif backward_sat and not forward_sat:
            used.add((v, u))

    out_arcs: Dict[NodeId, List[NodeId]] = {}
    for u, v in used:
        out_arcs.setdefault(u, []).append(v)
    for u in out_arcs:
        out_arcs[u].sort()

    paths: List[List[NodeId]] = []
    for _ in range(flow_value):
        path = [source]
        node = source
        seen = {source}
        while node != target:
            nexts = out_arcs.get(node, [])
            if not nexts:
                raise RuntimeError(
                    f"flow decomposition stuck at {node} (corrupt flow)"
                )
            nxt = nexts.pop(0)
            if nxt in seen:
                # A cycle attached to the path; skip the cycle arc entirely.
                continue
            path.append(nxt)
            seen.add(nxt)
            node = nxt
        paths.append(path)

    paths.sort(key=lambda p: (len(p), p))
    return paths


__all__ = [
    "path_edges",
    "is_simple_path",
    "first_shortest_path",
    "edge_disjoint_paths",
]
