"""Event kinds used by the network simulation.

Only the simulation harness interprets these; the engine treats every event
as an opaque callback.  Keeping the kinds in one place makes traces readable
and lets tests assert on scheduled activity.
"""

from __future__ import annotations

import enum


class EventKind(enum.Enum):
    """Classification tags attached to scheduled events for tracing."""

    CONTROLLER_ITERATION = "controller_iteration"
    SWITCH_DISCOVERY = "switch_discovery"
    PACKET_DELIVERY = "packet_delivery"
    LINK_FAILURE = "link_failure"
    LINK_RECOVERY = "link_recovery"
    NODE_FAILURE = "node_failure"
    NODE_RECOVERY = "node_recovery"
    STATE_CORRUPTION = "state_corruption"
    TRAFFIC = "traffic"
    PROBE = "probe"
    GENERIC = "generic"


__all__ = ["EventKind"]
