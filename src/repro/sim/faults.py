"""Fault injection for the simulation harness.

Covers the paper's entire fault model (Figure 3):

* benign permanent faults — link failures, node (switch/controller)
  fail-stop, link/node additions;
* benign transient faults — handled by the link layer's
  :class:`~repro.net.link.LinkFaultModel` (omission/duplication/reorder);
* rare transient faults — arbitrary state corruption of switch tables,
  manager sets, controller reply stores and round tags.

:class:`FaultPlan` is a declarative schedule of faults; the injector
executes it on the simulation's event queue so experiments are fully
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.sim.events import EventKind
from repro.switch.flow_table import Rule


#: Explicit fault-kind → trace-event classification.  The mapping doubles
#: as the registry of valid kinds: anything outside it is rejected at
#: :class:`FaultAction` construction time rather than silently pattern-
#: matched into the wrong event class.
EVENT_KIND_OF_FAULT: Dict[str, EventKind] = {
    "fail_link": EventKind.LINK_FAILURE,
    "remove_link": EventKind.LINK_FAILURE,
    "recover_link": EventKind.LINK_RECOVERY,
    "fail_node": EventKind.NODE_FAILURE,
    "remove_node": EventKind.NODE_FAILURE,
    "recover_node": EventKind.NODE_RECOVERY,
    "add_switch": EventKind.NODE_RECOVERY,
    "add_controller": EventKind.NODE_RECOVERY,
    "corrupt_switch": EventKind.STATE_CORRUPTION,
    "corrupt_controller": EventKind.STATE_CORRUPTION,
}

KNOWN_FAULT_KINDS = frozenset(EVENT_KIND_OF_FAULT)


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: ``at`` seconds, apply ``kind`` to ``target``."""

    at: float
    kind: str  # one of KNOWN_FAULT_KINDS
    target: Tuple

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: "
                f"{', '.join(sorted(KNOWN_FAULT_KINDS))}"
            )


@dataclass
class FaultPlan:
    """Declarative fault schedule, built fluently::

        plan = FaultPlan().fail_link(10.0, "u", "v").fail_node(12.0, "c1")
    """

    actions: List[FaultAction] = field(default_factory=list)

    def fail_link(self, at: float, u: str, v: str) -> "FaultPlan":
        self.actions.append(FaultAction(at, "fail_link", (u, v)))
        return self

    def recover_link(self, at: float, u: str, v: str) -> "FaultPlan":
        self.actions.append(FaultAction(at, "recover_link", (u, v)))
        return self

    def remove_link(self, at: float, u: str, v: str) -> "FaultPlan":
        self.actions.append(FaultAction(at, "remove_link", (u, v)))
        return self

    def fail_node(self, at: float, node: str) -> "FaultPlan":
        self.actions.append(FaultAction(at, "fail_node", (node,)))
        return self

    def recover_node(self, at: float, node: str) -> "FaultPlan":
        self.actions.append(FaultAction(at, "recover_node", (node,)))
        return self

    def remove_node(self, at: float, node: str) -> "FaultPlan":
        self.actions.append(FaultAction(at, "remove_node", (node,)))
        return self

    def add_switch(self, at: float, sid: str, links: Tuple[str, ...]) -> "FaultPlan":
        self.actions.append(FaultAction(at, "add_switch", (sid, list(links))))
        return self

    def add_controller(self, at: float, cid: str, links: Tuple[str, ...]) -> "FaultPlan":
        self.actions.append(FaultAction(at, "add_controller", (cid, list(links))))
        return self

    def corrupt_switch(self, at: float, sid: str, rules: Tuple[Rule, ...] = (),
                       managers: Tuple[str, ...] = (), clear_first: bool = False) -> "FaultPlan":
        self.actions.append(
            FaultAction(at, "corrupt_switch", (sid, rules, managers, clear_first))
        )
        return self

    def corrupt_controller(self, at: float, cid: str) -> "FaultPlan":
        self.actions.append(FaultAction(at, "corrupt_controller", (cid,)))
        return self

    def shifted(self, offset: float) -> "FaultPlan":
        """A copy of the plan with every action delayed by ``offset``
        seconds — campaigns are built on a relative clock and shifted to
        the simulation's current time at injection."""
        return FaultPlan(
            [FaultAction(a.at + offset, a.kind, a.target) for a in self.actions]
        )

    def last_at(self) -> float:
        """Time of the final scheduled action (0.0 for an empty plan)."""
        return max((a.at for a in self.actions), default=0.0)


def _fold_target(target: Tuple) -> List[str]:
    """Fault target as short strings (Rule objects fold to their repr) —
    provenance tags must stay JSON-serializable."""
    folded: List[str] = []
    for leaf in target:
        if isinstance(leaf, (list, tuple)):
            folded.extend(str(item) for item in leaf)
        else:
            folded.append(str(leaf))
    return folded


class FaultInjector:
    """Executes a :class:`FaultPlan` against a ``NetworkSimulation``."""

    def __init__(self, simulation) -> None:
        self._simulation = simulation

    def install(self, plan: FaultPlan, mark_fault_time: bool = True) -> None:
        sim = self._simulation.sim
        tagged = getattr(self._simulation, "_telemetry", None) is not None
        for index, action in enumerate(plan.actions):
            tags = None
            if tagged:
                # Typed provenance: a stable per-plan fault id the explain
                # layer can name as a root cause.
                tags = {
                    "fault": action.kind,
                    "fault_id": f"{action.kind}@{action.at:g}#{index}",
                    "target": _fold_target(action.target),
                }
            sim.schedule_at(
                action.at,
                self._make_executor(action, mark_fault_time),
                kind=self._event_kind(action.kind),
                note=f"{action.kind}{action.target}",
                tags=tags,
            )

    @staticmethod
    def _event_kind(kind: str) -> EventKind:
        try:
            return EVENT_KIND_OF_FAULT[kind]
        except KeyError:
            raise ValueError(f"unknown fault kind: {kind!r}") from None

    def _make_executor(self, action: FaultAction, mark: bool) -> Callable[[], None]:
        simulation = self._simulation

        def execute() -> None:
            simulation.apply_fault(action)
            if mark:
                simulation.metrics.mark_fault(simulation.sim.now)
            simulation.metrics.mark_event(simulation.sim.now, action.kind, action.target)

        return execute


def random_switch(topology, rng: random.Random) -> str:
    return rng.choice(topology.switches)


def removable_switch(topology, rng: random.Random = None) -> str:
    """First switch whose removal keeps the network connected.  ``rng``
    shuffles the candidate order (the paper's switch-failure experiments
    remove a *random* such switch); without it the pick is deterministic.
    """
    candidates = list(topology.switches)
    if rng is not None:
        rng.shuffle(candidates)
    for victim in candidates:
        probe = topology.copy()
        probe.remove_node(victim)
        if probe.connected():
            return victim
    raise ValueError("no switch removable without disconnection")


def random_link(topology, rng: random.Random, protect_connectivity: bool = True):
    """Pick a random live link; optionally only links whose removal keeps
    the live graph connected (the paper's experiments fail links that leave
    a backup path available)."""
    candidates = list(topology.links)
    rng.shuffle(candidates)
    for u, v in candidates:
        if not protect_connectivity:
            return u, v
        probe = topology.copy()
        probe.remove_link(u, v)
        if probe.connected():
            return u, v
    raise ValueError("no link can fail without disconnecting the network")


__all__ = [
    "EVENT_KIND_OF_FAULT",
    "KNOWN_FAULT_KINDS",
    "FaultAction",
    "FaultPlan",
    "FaultInjector",
    "random_switch",
    "random_link",
    "removable_switch",
]
