"""Fault injection for the simulation harness.

Covers the paper's entire fault model (Figure 3):

* benign permanent faults — link failures, node (switch/controller)
  fail-stop, link/node additions;
* benign transient faults — handled by the link layer's
  :class:`~repro.net.link.LinkFaultModel` (omission/duplication/reorder);
* rare transient faults — arbitrary state corruption of switch tables,
  manager sets, controller reply stores and round tags.

:class:`FaultPlan` is a declarative schedule of faults; the injector
executes it on the simulation's event queue so experiments are fully
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from repro.sim.events import EventKind
from repro.switch.flow_table import Rule


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: ``at`` seconds, apply ``kind`` to ``target``."""

    at: float
    kind: str  # fail_link | recover_link | fail_node | recover_node |
    #            remove_link | remove_node | corrupt_switch | corrupt_controller
    target: Tuple


@dataclass
class FaultPlan:
    """Declarative fault schedule, built fluently::

        plan = FaultPlan().fail_link(10.0, "u", "v").fail_node(12.0, "c1")
    """

    actions: List[FaultAction] = field(default_factory=list)

    def fail_link(self, at: float, u: str, v: str) -> "FaultPlan":
        self.actions.append(FaultAction(at, "fail_link", (u, v)))
        return self

    def recover_link(self, at: float, u: str, v: str) -> "FaultPlan":
        self.actions.append(FaultAction(at, "recover_link", (u, v)))
        return self

    def remove_link(self, at: float, u: str, v: str) -> "FaultPlan":
        self.actions.append(FaultAction(at, "remove_link", (u, v)))
        return self

    def fail_node(self, at: float, node: str) -> "FaultPlan":
        self.actions.append(FaultAction(at, "fail_node", (node,)))
        return self

    def recover_node(self, at: float, node: str) -> "FaultPlan":
        self.actions.append(FaultAction(at, "recover_node", (node,)))
        return self

    def add_switch(self, at: float, sid: str, links: Tuple[str, ...]) -> "FaultPlan":
        self.actions.append(FaultAction(at, "add_switch", (sid, list(links))))
        return self

    def add_controller(self, at: float, cid: str, links: Tuple[str, ...]) -> "FaultPlan":
        self.actions.append(FaultAction(at, "add_controller", (cid, list(links))))
        return self

    def corrupt_switch(self, at: float, sid: str, rules: Tuple[Rule, ...] = (),
                       managers: Tuple[str, ...] = (), clear_first: bool = False) -> "FaultPlan":
        self.actions.append(
            FaultAction(at, "corrupt_switch", (sid, rules, managers, clear_first))
        )
        return self

    def corrupt_controller(self, at: float, cid: str) -> "FaultPlan":
        self.actions.append(FaultAction(at, "corrupt_controller", (cid,)))
        return self


class FaultInjector:
    """Executes a :class:`FaultPlan` against a ``NetworkSimulation``."""

    def __init__(self, simulation) -> None:
        self._simulation = simulation

    def install(self, plan: FaultPlan, mark_fault_time: bool = True) -> None:
        sim = self._simulation.sim
        for action in plan.actions:
            sim.schedule_at(
                action.at,
                self._make_executor(action, mark_fault_time),
                kind=self._event_kind(action.kind),
                note=f"{action.kind}{action.target}",
            )

    @staticmethod
    def _event_kind(kind: str) -> EventKind:
        if "link" in kind:
            return EventKind.LINK_FAILURE if "fail" in kind or "remove" in kind else EventKind.LINK_RECOVERY
        if "corrupt" in kind:
            return EventKind.STATE_CORRUPTION
        return EventKind.NODE_FAILURE if "fail" in kind or "remove" in kind else EventKind.NODE_RECOVERY

    def _make_executor(self, action: FaultAction, mark: bool) -> Callable[[], None]:
        simulation = self._simulation

        def execute() -> None:
            simulation.apply_fault(action)
            if mark:
                simulation.metrics.mark_fault(simulation.sim.now)
            simulation.metrics.mark_event(simulation.sim.now, action.kind, action.target)

        return execute


def random_switch(topology, rng: random.Random) -> str:
    return rng.choice(topology.switches)


def random_link(topology, rng: random.Random, protect_connectivity: bool = True):
    """Pick a random live link; optionally only links whose removal keeps
    the live graph connected (the paper's experiments fail links that leave
    a backup path available)."""
    candidates = list(topology.links)
    rng.shuffle(candidates)
    for u, v in candidates:
        if not protect_connectivity:
            return u, v
        probe = topology.copy()
        probe.remove_link(u, v)
        if probe.connected():
            return u, v
    raise ValueError("no link can fail without disconnecting the network")


__all__ = ["FaultAction", "FaultPlan", "FaultInjector", "random_switch", "random_link"]
