"""The network simulation harness — the testbed substitute.

Wires together the ground-truth :class:`~repro.net.topology.Topology`, one
:class:`~repro.switch.abstract_switch.AbstractSwitch` per switch, one
:class:`~repro.core.controller.RenaissanceController` per controller,
per-node :class:`~repro.net.discovery.LocalDiscovery`, and the discrete
event engine.

**In-band semantics.**  Control traffic is routed hop-by-hop through the
switches' *installed rule tables* (plus the rule-free direct-neighbour
relay of Section 2.1.1) via
:func:`repro.core.legitimacy.forwarding_path`.  A controller physically
cannot talk to a node for which no in-band path exists — exactly the
bootstrapping constraint the paper studies.  For efficiency, the route is
resolved when the packet is sent and the delivery is scheduled as one
event after ``hops × latency``; mid-flight link failures are modelled by
re-validating the route at delivery time.

**Faults.**  :meth:`apply_fault` executes the actions of
:class:`~repro.sim.faults.FaultPlan`: benign permanent faults mutate the
ground truth; transient corruption rewrites component state in place.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.topology import Topology
from repro.net.link import LinkFaultModel
from repro.net.channel import SelfStabilizingChannel, Datagram
from repro.net.discovery import LocalDiscovery
from repro.core.config import RenaissanceConfig
from repro.core.controller import RenaissanceController
from repro.core.legitimacy import LegitimacyChecker, RouteCache, forwarding_path
from repro.switch.abstract_switch import AbstractSwitch
from repro.switch.commands import CommandBatch, DelAllRules, NewRound, QueryReply, UpdateRules
from repro.obs.telemetry import active as active_telemetry
from repro.sim.engine import Simulator
from repro.sim.events import EventKind
from repro.sim.faults import FaultAction, FaultInjector, FaultPlan
from repro.sim.metrics import MetricsRecorder


@dataclass
class SimulationConfig:
    """Knobs of one simulation run (paper Section 6.3 defaults).

    ``out_of_band`` switches to a dedicated management network (the
    paper's Section 8.2 hybrid extension): control packets reach any node
    directly instead of through the switches' rule tables.  ``reliable_
    channels`` layers the self-stabilizing end-to-end channel of Section
    3.1 under the controller→switch command traffic, giving exactly-once
    FIFO batch delivery over the (possibly lossy) in-band substrate.

    Invalid knobs are rejected at construction — a non-positive delay or
    latency would silently wedge the event loop, and κ < 1 removes the
    resilience floor the protocol assumes (the κ = 0 ablation is still
    reachable by injecting an explicit :class:`RenaissanceConfig` through
    ``renaissance``).
    """

    kappa: int = 1
    task_delay: float = 0.5  # seconds between do-forever iterations
    discovery_delay: float = 0.5  # seconds between neighbourhood probes
    link_latency: float = 0.002  # per-hop control-packet latency
    theta: int = 10
    seed: int = 0
    packet_ttl: int = 64
    convergence_interval: float = 0.5
    fault_model: Optional[LinkFaultModel] = None
    controller_factory: Optional[Callable[..., RenaissanceController]] = None
    renaissance: Optional[RenaissanceConfig] = None
    out_of_band: bool = False
    reliable_channels: bool = False
    #: Memoize in-band route resolution behind an epoch-validated cache
    #: (identical routes, large speedup on the bigger networks).
    route_cache: bool = True
    #: Named adversarial delivery scheduler (a registry key of
    #: :data:`repro.adversary.schedulers.SCHEDULERS`), or ``None`` for the
    #: benign default.  A name rather than an object so scheduled runs
    #: stay content-addressable in the run store.
    scheduler: Optional[str] = None
    #: Fairness bound of the adversarial scheduler: every delivery latency
    #: ``l`` stays within ``[l, l * scheduler_bound]``.
    scheduler_bound: float = 4.0
    #: Plan rules from corroborated-fusion views while discovery is
    #: unstable (see :class:`~repro.core.config.RenaissanceConfig`);
    #: enabled by the adversarial stabilization axis, off for the paper's
    #: literal figure experiments.
    robust_views: bool = False
    #: Injected randomness source; ``None`` derives one from ``seed``.
    #: Experiment runners inject a per-repetition instance so repetitions
    #: stay reproducible when fanned out over worker processes.
    rng: Optional[random.Random] = None

    def __post_init__(self) -> None:
        for knob in ("task_delay", "discovery_delay", "link_latency",
                     "convergence_interval"):
            if getattr(self, knob) <= 0:
                raise ValueError(f"{knob} must be positive (got {getattr(self, knob)})")
        if self.kappa < 1:
            raise ValueError(
                f"kappa must be >= 1 (got {self.kappa}); pass an explicit "
                "RenaissanceConfig via 'renaissance' for the kappa=0 ablation"
            )
        if self.theta < 1:
            raise ValueError(f"theta must be >= 1 (got {self.theta})")
        if self.scheduler_bound < 1.0:
            raise ValueError(
                f"scheduler_bound must be >= 1 (got {self.scheduler_bound})"
            )
        if self.scheduler is not None:
            # Lazy: the adversary package is stdlib-only, but importing it
            # at module scope would invert the sim <- adversary layering.
            from repro.adversary.schedulers import SCHEDULERS

            if self.scheduler not in SCHEDULERS:
                raise ValueError(
                    f"unknown scheduler {self.scheduler!r}; known: "
                    f"{', '.join(sorted(SCHEDULERS))}"
                )


class _TelemetryMilestones:
    """Metrics observer forwarding milestones to the telemetry handle.

    Registered through the ordinary :meth:`MetricsRecorder.add_observer`
    machinery, so telemetry fan-out obeys the documented observer
    semantics (registration order, exception isolation) instead of being
    a privileged side channel.
    """

    def __init__(self, telemetry, sim: Simulator) -> None:
        self._telemetry = telemetry
        self._sim = sim

    def on_event(self, time: float, name: str, value: object = None) -> None:
        self._telemetry.mark(time, name, value)


class NetworkSimulation:
    """One emulated network: topology + switches + controllers + engine."""

    def __init__(self, topology: Topology, config: SimulationConfig) -> None:
        # A controller-less topology is a data-plane-only fabric: switches
        # forward over externally installed rules (the traffic axis's
        # default).  Control-plane measurements (bootstrap, legitimacy)
        # are meaningless there but simply never invoked.
        self.topology = topology
        self.config = config
        self.sim = Simulator()
        self.metrics = MetricsRecorder()
        self._rng = config.rng or random.Random(config.seed)
        self._fault_model = config.fault_model
        if config.scheduler is not None:
            from repro.adversary.schedulers import make_scheduler

            # Dedicated stream, decorrelated from the start-offset rng, so
            # enabling a scheduler never perturbs the other seeded draws.
            self._scheduler = make_scheduler(
                config.scheduler,
                bound=config.scheduler_bound,
                rng=random.Random(config.seed * 9_176_263 + 7),
            )
        else:
            self._scheduler = None

        n_controllers = len(topology.controllers)
        n_switches = len(topology.switches)
        if config.renaissance is not None:
            self.rena_config = config.renaissance
        else:
            # Diameter-aware rule bound (an all-pairs BFS, so only paid
            # when the config is actually derived from the network).
            try:
                diameter: Optional[int] = topology.diameter()
            except ValueError:  # disconnected start state: use the floor
                diameter = None
            self.rena_config = RenaissanceConfig.for_network(
                n_controllers,
                n_switches,
                kappa=config.kappa,
                theta=config.theta,
                diameter=diameter,
                robust_views=config.robust_views,
            )

        self.discovery: Dict[str, LocalDiscovery] = {}
        for node in topology.nodes:
            self.discovery[node] = LocalDiscovery(
                node,
                topology.neighbors(node),
                send_probe=self._make_probe_sender(node),
                theta=self.rena_config.theta,
            )

        self.switches: Dict[str, AbstractSwitch] = {}
        for sid in topology.switches:
            self.switches[sid] = AbstractSwitch(
                sid,
                alive_neighbors=self._make_alive_fn(sid),
                max_rules=self.rena_config.max_rules,
                max_managers=self.rena_config.max_managers,
            )

        factory = config.controller_factory or RenaissanceController
        self.controllers: Dict[str, RenaissanceController] = {}
        for cid in topology.controllers:
            self.controllers[cid] = factory(
                cid, self.rena_config, self._make_alive_fn(cid)
            )

        self.route_cache: Optional[RouteCache] = (
            RouteCache(self.topology, self.switches) if config.route_cache else None
        )
        self.checker = LegitimacyChecker(
            self.topology,
            self.switches,
            self.controllers,
            self.rena_config.kappa,
            route_cache=self.route_cache,
        )
        self._started = False
        self._illegit_seen: Dict[str, int] = {sid: 0 for sid in self.switches}
        # Optional Section 3.1 channel endpoints, keyed (controller, node,
        # side) with side in {"tx", "rx"}; built lazily per destination.
        self._channels: Dict[Tuple[str, str, str], SelfStabilizingChannel] = {}

        # Telemetry is captured once at construction: when a handle is
        # active the simulation attaches its flight ring (the engine trace
        # bounded to the handle's capacity), the event-kind tally, a
        # pull-style counter provider, and a milestone-forwarding metrics
        # observer.  When no handle is active every instrumented site below
        # is a single ``is not None`` check — the bit-identical path.
        self._telemetry = active_telemetry()
        if self._telemetry is not None:
            self.sim.enable_trace(capacity=self._telemetry.flight_capacity)
            self.sim.enable_kind_counts()
            self.sim.enable_causality()
            self._telemetry.add_provider(self._telemetry_counters)
            self.metrics.add_observer(_TelemetryMilestones(self._telemetry, self.sim))

    def _telemetry_counters(self) -> Dict[str, int]:
        """Pull-style snapshot of the hot-layer counters (zero per-hit
        cost: values are read from their owners only at snapshot time)."""
        counters: Dict[str, int] = {"sim.steps": self.sim.steps}
        for kind, count in self.sim.kind_counts.items():
            counters[f"sim.events.{kind.value}"] = count
        if self.route_cache is not None:
            counters["route_cache.hits"] = self.route_cache.hits
            counters["route_cache.misses"] = self.route_cache.misses
            counters["route_cache.invalidations"] = self.route_cache.invalidations
        return counters

    # -- wiring helpers -----------------------------------------------------------

    def _make_alive_fn(self, node: str) -> Callable[[], List[str]]:
        discovery = None

        def alive() -> List[str]:
            return self.discovery[node].alive_neighbors()

        return alive

    def _make_probe_sender(self, node: str) -> Callable[[str, str], None]:
        """Probe transport: a synchronous one-hop exchange gated on the
        operational state (probing is cheap relative to the probe period,
        so per-probe events would only slow the engine down)."""

        def send(neighbor: str, payload: str) -> None:
            if neighbor not in self.topology:
                return
            if not self.topology.link_operational(node, neighbor):
                return
            if payload == LocalDiscovery.PROBE:
                self.discovery[neighbor].on_probe(node)
            else:
                self.discovery[node].on_probe_reply(neighbor)

        return send

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> None:
        """Schedule the do-forever loops (staggered to avoid lockstep)."""
        if self._started:
            return
        self._started = True
        for node in self.topology.nodes:
            offset = self._rng.uniform(0, self.config.discovery_delay)
            self.sim.schedule(
                offset, self._make_discovery_loop(node), kind=EventKind.SWITCH_DISCOVERY
            )
        for cid in self.topology.controllers:
            offset = self._rng.uniform(0, self.config.task_delay)
            self.sim.schedule(
                offset,
                self._make_controller_loop(cid),
                kind=EventKind.CONTROLLER_ITERATION,
            )

    def _make_discovery_loop(self, node: str) -> Callable[[], None]:
        def run() -> None:
            if node in self.topology:
                if self.topology.node_is_up(node):
                    discovery = self.discovery[node]
                    discovery.set_neighbors(self.topology.neighbors(node))
                    discovery.probe_round()
                self.sim.schedule(
                    self.config.discovery_delay, run, kind=EventKind.SWITCH_DISCOVERY
                )

        return run

    def _make_controller_loop(self, cid: str) -> Callable[[], None]:
        def run() -> None:
            if cid in self.topology:
                controller = self.controllers[cid]
                if self.topology.node_is_up(cid) and not controller.failed:
                    telemetry = self._telemetry
                    started = telemetry.now() if telemetry is not None else 0.0
                    for dst, batch in controller.iterate():
                        if self.config.reliable_channels:
                            self._offer_via_channel(cid, dst, batch)
                        else:
                            self._send_control(cid, dst, batch)
                    if self.config.reliable_channels:
                        self._tick_channels(cid)
                    if telemetry is not None:
                        telemetry.record_span(
                            f"iterate:{cid}",
                            "sim",
                            started,
                            telemetry.now() - started,
                            t_sim=self.sim.now,
                        )
                        # Provenance: the iteration's round state, so the
                        # forensics DAG can spot stuck rounds and forced
                        # restarts without replaying the run.
                        self.sim.annotate(
                            ctrl=cid,
                            round=str(controller.curr_tag),
                            new_round=controller.last_new_round,
                            round_age=controller.round_age,
                            iteration=controller.iterations,
                        )
                self.sim.schedule(
                    self.config.task_delay, run, kind=EventKind.CONTROLLER_ITERATION
                )

        return run

    # -- optional Section 3.1 channel layer --------------------------------------

    def _offer_via_channel(self, cid: str, dst: str, batch: CommandBatch) -> None:
        """Hand the batch to the per-destination self-stabilizing channel;
        a full outbox simply drops it (the next iteration re-offers)."""
        self._tx_channel(cid, dst).offer(batch)

    def _tick_channels(self, cid: str) -> None:
        for (owner, dst, side), channel in list(self._channels.items()):
            if owner == cid and side == "tx":
                channel.tick()

    def _tx_channel(self, cid: str, dst: str) -> SelfStabilizingChannel:
        key = (cid, dst, "tx")
        if key not in self._channels:
            self._channels[key] = SelfStabilizingChannel(
                cid,
                dst,
                send_datagram=lambda d, c=cid, n=dst: self._route_datagram(c, n, c, d),
                on_deliver=lambda payload: None,  # tx side only sends
                max_outbox=4,
            )
        return self._channels[key]

    def _rx_channel(self, cid: str, dst: str) -> SelfStabilizingChannel:
        key = (cid, dst, "rx")
        if key not in self._channels:
            self._channels[key] = SelfStabilizingChannel(
                dst,
                cid,
                send_datagram=lambda d, c=cid, n=dst: self._route_datagram(n, c, c, d),
                on_deliver=lambda batch, c=cid, n=dst: self._deliver_channel_batch(c, n, batch),
            )
        return self._channels[key]

    def _route_datagram(self, src: str, dst: str, cid: str, datagram: Datagram) -> None:
        """Carry one channel datagram over the in-band substrate."""
        route = self._route(src, dst)
        if route is None:
            self.metrics.record_drop()
            return
        hops = len(route) - 1
        self.metrics.record_batch(cid, hops)
        tagged = self._telemetry is not None
        for latency in self._wire_fates(hops):
            self.sim.schedule(
                latency,
                lambda d=datagram, s=src, t=dst, c=cid: self._deliver_datagram(s, t, c, d),
                kind=EventKind.PACKET_DELIVERY,
                note=f"chan {src}->{dst}",
                tags={"msg": "datagram", "src": src, "dst": dst} if tagged else None,
            )

    def _deliver_datagram(self, src: str, dst: str, cid: str, datagram: Datagram) -> None:
        if dst not in self.topology or not self.topology.node_is_up(dst):
            return
        if dst == cid:
            self._tx_channel(cid, src).on_datagram(datagram)
        else:
            self._rx_channel(cid, dst).on_datagram(datagram)

    def _deliver_channel_batch(self, cid: str, dst: str, batch: CommandBatch) -> None:
        """Exactly-once FIFO delivery point of the channel layer: execute
        the batch and route the reply back as a plain datagram (the query
        tag already dedups replies)."""
        if dst in self.switches:
            reply = self.switches[dst].handle_batch(batch)
            self._account_deletions(dst)
        elif dst in self.controllers:
            reply = self.controllers[dst].on_batch(batch)
        else:
            return
        if reply is not None:
            self._send_reply(dst, cid, reply)

    # -- in-band control transport ---------------------------------------------------

    def _batch_tags(self, src: str, dst: str, batch: CommandBatch) -> Dict[str, object]:
        """Typed provenance for one command batch: the round tag plus the
        rule-mutation profile (healthy steady state installs without
        deleting, so ``dels`` spikes flag flap cycles)."""
        round_tag: Optional[str] = None
        rules = 0
        dels = 0
        for command in batch.commands:
            if isinstance(command, NewRound):
                round_tag = str(command.tag)
            elif isinstance(command, UpdateRules):
                rules += len(command.rules)
            elif isinstance(command, DelAllRules):
                dels += 1
        tags: Dict[str, object] = {
            "msg": "batch", "src": src, "dst": dst, "rules": rules, "dels": dels,
        }
        if round_tag is not None:
            tags["round"] = round_tag
        return tags

    def _send_control(self, cid: str, dst: str, batch: CommandBatch) -> None:
        route = self._route(cid, dst)
        if route is None:
            self.metrics.record_drop()
            return
        hops = len(route) - 1
        self.metrics.record_batch(cid, hops)
        tags = self._batch_tags(cid, dst, batch) if self._telemetry is not None else None
        for latency in self._wire_fates(hops):
            self.sim.schedule(
                latency,
                self._make_batch_delivery(cid, dst, batch),
                kind=EventKind.PACKET_DELIVERY,
                note=f"batch {cid}->{dst}",
                tags=dict(tags) if tags is not None else None,
            )

    def _wire_fates(self, hops: int) -> List[float]:
        base = max(1, hops) * self.config.link_latency
        if self._fault_model is None:
            fates = [base]
        else:
            fates = self._fault_model.copies_and_delays(base)
        if self._scheduler is not None:
            fates = [self._scheduler.delay(latency) for latency in fates]
        return fates

    def _route(self, src: str, dst: str) -> Optional[List[str]]:
        if dst not in self.topology or not self.topology.node_is_up(dst):
            return None
        if src not in self.topology or not self.topology.node_is_up(src):
            return None
        if self.config.out_of_band:
            # Section 8.2's dedicated management network: every control
            # packet is one logical hop, independent of the rule tables.
            return [src, dst]
        if self.route_cache is not None:
            return self.route_cache.path(src, dst, ttl=self.config.packet_ttl)
        return forwarding_path(
            self.topology, self.switches, src, dst, ttl=self.config.packet_ttl
        )

    def _make_batch_delivery(
        self, cid: str, dst: str, batch: CommandBatch
    ) -> Callable[[], None]:
        def deliver() -> None:
            # Re-validate at delivery: the route may have died mid-flight.
            if self._route(cid, dst) is None:
                self.metrics.record_drop()
                return
            if dst in self.switches:
                switch = self.switches[dst]
                reply = switch.handle_batch(batch)
                self._account_deletions(dst)
            else:
                reply = self.controllers[dst].on_batch(batch)
            if reply is not None:
                self._send_reply(dst, cid, reply)

        return deliver

    def _send_reply(self, src: str, cid: str, reply: QueryReply) -> None:
        route = self._route(src, cid)
        if route is None:
            self.metrics.record_drop()
            return
        hops = len(route) - 1
        self.metrics.record_reply(cid, hops)
        tagged = self._telemetry is not None
        for latency in self._wire_fates(hops):
            self.sim.schedule(
                latency,
                self._make_reply_delivery(cid, reply),
                kind=EventKind.PACKET_DELIVERY,
                note=f"reply {src}->{cid}",
                tags={"msg": "reply", "src": src, "dst": cid} if tagged else None,
            )

    def _make_reply_delivery(self, cid: str, reply: QueryReply) -> Callable[[], None]:
        def deliver() -> None:
            controller = self.controllers.get(cid)
            if controller is None or controller.failed:
                return
            if controller.on_reply(reply):
                self.metrics.c_resets += 1

        return deliver

    def _account_deletions(self, sid: str) -> None:
        """Classify fresh deletion records: removing a *live* controller's
        state is an illegitimate deletion (Definition 2)."""
        log = self.switches[sid].deletion_log
        start = self._illegit_seen[sid]
        live = set(self.checker.live_controllers())
        for record in log[start:]:
            for victim in record.managers_removed + record.rule_owners_cleared:
                if victim in live and victim != record.issuer:
                    self.metrics.illegitimate_deletions += 1
        self._illegit_seen[sid] = len(log)

    # -- faults ---------------------------------------------------------------------------

    def inject(self, plan: FaultPlan, mark_fault_time: bool = True) -> None:
        FaultInjector(self).install(plan, mark_fault_time=mark_fault_time)

    def apply_fault(self, action: FaultAction) -> None:
        kind, target = action.kind, action.target
        if kind == "fail_link":
            self.topology.set_link_up(*target, up=False)
        elif kind == "recover_link":
            self.topology.set_link_up(*target, up=True)
        elif kind == "remove_link":
            self.topology.remove_link(*target)
        elif kind == "fail_node":
            (node,) = target
            self.topology.set_node_up(node, False)
            if node in self.controllers:
                self.controllers[node].fail_stop()
        elif kind == "recover_node":
            (node,) = target
            self.topology.set_node_up(node, True)
            if node in self.controllers:
                self.controllers[node].recover()
        elif kind == "remove_node":
            (node,) = target
            self.topology.remove_node(node)
            if node in self.controllers:
                self.controllers[node].fail_stop()
        elif kind == "add_switch":
            sid, links = target
            self.add_switch_runtime(sid, links)
        elif kind == "add_controller":
            cid, links = target
            self.add_controller_runtime(cid, links)
        elif kind == "corrupt_switch":
            sid, rules, managers, clear_first = target
            self.switches[sid].corrupt(
                rules=rules, managers=managers, clear_first=clear_first
            )
        elif kind == "corrupt_controller":
            (cid,) = target
            controller = self.controllers[cid]
            controller.replydb.corrupt([])
            controller.rulegen.invalidate()
        else:
            raise ValueError(f"unknown fault kind: {kind}")

    # -- node additions (Lemma 8, the ℓ > 0 cases) -------------------------------------

    def add_switch_runtime(self, sid: str, links: List[str]) -> None:
        """Attach a brand-new switch with empty configuration (the paper's
        node-addition assumption: new nodes start with empty memory)."""
        self.topology.add_switch(sid)
        for peer in links:
            self.topology.add_link(sid, peer)
        self.discovery[sid] = LocalDiscovery(
            sid,
            self.topology.neighbors(sid),
            send_probe=self._make_probe_sender(sid),
            theta=self.rena_config.theta,
        )
        self.switches[sid] = AbstractSwitch(
            sid,
            alive_neighbors=self._make_alive_fn(sid),
            max_rules=self.rena_config.max_rules,
            max_managers=self.rena_config.max_managers,
        )
        if self.route_cache is not None:
            self.route_cache.watch_switch(sid)
        self._illegit_seen[sid] = 0
        if self._started:
            self.sim.schedule(
                self.config.discovery_delay,
                self._make_discovery_loop(sid),
                kind=EventKind.SWITCH_DISCOVERY,
            )

    def add_controller_runtime(self, cid: str, links: List[str]) -> None:
        """Attach a brand-new controller; it bootstraps itself in-band
        like any controller starting from an empty reply store."""
        self.topology.add_controller(cid)
        for peer in links:
            self.topology.add_link(cid, peer)
        self.discovery[cid] = LocalDiscovery(
            cid,
            self.topology.neighbors(cid),
            send_probe=self._make_probe_sender(cid),
            theta=self.rena_config.theta,
        )
        factory = self.config.controller_factory or RenaissanceController
        self.controllers[cid] = factory(
            cid, self.rena_config, self._make_alive_fn(cid)
        )
        if self._started:
            self.sim.schedule(
                self.config.discovery_delay,
                self._make_discovery_loop(cid),
                kind=EventKind.SWITCH_DISCOVERY,
            )
            self.sim.schedule(
                self.config.task_delay,
                self._make_controller_loop(cid),
                kind=EventKind.CONTROLLER_ITERATION,
            )

    # -- convergence -----------------------------------------------------------------------

    def is_legitimate(self, full: bool = False) -> bool:
        return self.checker.is_legitimate(full=full)

    def run_for(self, duration: float) -> None:
        self.start()
        self.sim.run(until=self.sim.now + duration)

    def run_until_legitimate(
        self,
        timeout: float,
        full: bool = False,
        check_interval: Optional[float] = None,
    ) -> Optional[float]:
        """Run until Definition 1 holds; returns the absolute sim time of
        convergence or ``None`` on timeout.  This is the measurement loop
        behind every bootstrap/recovery figure."""
        self.start()
        interval = check_interval or self.config.convergence_interval
        deadline = self.sim.now + timeout
        converged: List[float] = []

        def probe() -> None:
            telemetry = self._telemetry
            if telemetry is None:
                legitimate = self.is_legitimate(full=full)
            else:
                started = telemetry.now()
                legitimate = self.is_legitimate(full=full)
                elapsed = telemetry.now() - started
                telemetry.histogram("probe.wall_seconds").observe(elapsed)
                telemetry.record_span(
                    "legitimacy_probe",
                    "probe",
                    started,
                    elapsed,
                    t_sim=self.sim.now,
                    args={"legitimate": legitimate},
                )
                self.sim.annotate(probe=True, legitimate=legitimate)
            if legitimate:
                converged.append(self.sim.now)
                self.metrics.mark_convergence(self.sim.now)
                self.sim.stop()
                return
            if self.sim.now + interval <= deadline:
                self.sim.schedule(interval, probe, kind=EventKind.PROBE)

        self.sim.schedule(interval, probe, kind=EventKind.PROBE)
        self.sim.run(until=deadline)
        if converged:
            return converged[0]
        if self._telemetry is not None:
            # Timed out: ship the flight ring's tail so the non-converged
            # run is diagnosable without a re-run.
            self._telemetry.record_flight_dump(
                "non-convergence",
                list(self.sim.trace),
                t_sim=self.sim.now,
                source=f"run_until_legitimate(timeout={timeout})",
            )
        return None

    # -- introspection ------------------------------------------------------------------------

    def controller_iterations(self) -> Dict[str, int]:
        return {cid: ctrl.iterations for cid, ctrl in self.controllers.items()}

    def total_rules_installed(self) -> int:
        return sum(len(switch.table) for switch in self.switches.values())


__all__ = ["NetworkSimulation", "SimulationConfig"]
