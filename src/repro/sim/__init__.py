"""Discrete-event simulation substrate.

The paper evaluates Renaissance on a Mininet/OVS/Floodlight testbed.  This
package replaces that testbed with a deterministic discrete-event simulator:
an event queue with a virtual clock (:mod:`repro.sim.engine`), a network
harness that wires controllers and abstract switches together and routes
control traffic *in-band* through the switches' installed rule tables
(:mod:`repro.sim.network_sim`), fault-injection campaigns
(:mod:`repro.sim.faults`), and measurement utilities
(:mod:`repro.sim.metrics`).
"""

from repro.sim.engine import Event, EventQueue, Simulator
from repro.sim.network_sim import NetworkSimulation, SimulationConfig
from repro.sim.faults import FaultPlan, FaultInjector
from repro.sim.metrics import MetricsRecorder
from repro.sim.timeline import ConvergenceTimeline, TimelineSample

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "NetworkSimulation",
    "SimulationConfig",
    "FaultPlan",
    "FaultInjector",
    "MetricsRecorder",
    "ConvergenceTimeline",
    "TimelineSample",
]
