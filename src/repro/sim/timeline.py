"""Convergence observability: sampled time series of control-plane state.

The paper's figures report only endpoint times (bootstrap, recovery).
For debugging and for the examples it is far more informative to watch
*how* the control plane converges: each controller's discovered-node
count, completed rounds, and the global rule count, sampled on the
simulation clock.  :class:`ConvergenceTimeline` attaches to a
:class:`~repro.sim.network_sim.NetworkSimulation` and records exactly
that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.events import EventKind


@dataclass
class TimelineSample:
    """One sampling instant of the whole control plane."""

    time: float
    discovered: Dict[str, int]  # controller -> nodes in its current view
    rounds: Dict[str, int]  # controller -> completed rounds
    total_rules: int
    legitimate: bool


class ConvergenceTimeline:
    """Periodic sampler over a running simulation.

    Usage::

        session = RunPlan("B4", controllers=3).then(Bootstrap()).session()
        timeline = ConvergenceTimeline(session.sim, interval=1.0)
        timeline.attach()
        session.run()
        for sample in timeline.samples:
            ...
    """

    def __init__(self, simulation, interval: float = 1.0, check_legitimacy: bool = True) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._simulation = simulation
        self.interval = interval
        self.check_legitimacy = check_legitimacy
        self.samples: List[TimelineSample] = []
        self._attached = False
        self._pending = None

    def attach(self) -> None:
        """Start sampling (idempotent)."""
        if self._attached:
            return
        self._attached = True
        self._simulation.start()
        self._schedule_next()

    def detach(self) -> None:
        """Stop sampling (idempotent).

        The pending sample event is cancelled, so a detached timeline adds
        no further engine work; collected :attr:`samples` stay readable.
        Re-attaching resumes sampling from the current simulation time.
        """
        if not self._attached:
            return
        self._attached = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _schedule_next(self) -> None:
        self._pending = self._simulation.sim.schedule(
            self.interval, self._sample, kind=EventKind.PROBE, note="timeline"
        )

    def _sample(self) -> None:
        if not self._attached:
            return  # detached with the event already popped: drop silently
        sim = self._simulation
        discovered = {}
        rounds = {}
        for cid, controller in sim.controllers.items():
            if controller.failed:
                discovered[cid] = 0
                rounds[cid] = controller.rounds_completed
                continue
            discovered[cid] = len(controller.current_view().nodes)
            rounds[cid] = controller.rounds_completed
        self.samples.append(
            TimelineSample(
                time=sim.sim.now,
                discovered=discovered,
                rounds=rounds,
                total_rules=sim.total_rules_installed(),
                legitimate=sim.is_legitimate() if self.check_legitimacy else False,
            )
        )
        self._schedule_next()

    # -- derived series -------------------------------------------------------

    def discovery_series(self, cid: str) -> List[tuple]:
        """(time, discovered-node-count) for one controller."""
        return [(s.time, s.discovered.get(cid, 0)) for s in self.samples]

    def rules_series(self) -> List[tuple]:
        return [(s.time, s.total_rules) for s in self.samples]

    def first_legitimate_at(self) -> Optional[float]:
        for sample in self.samples:
            if sample.legitimate:
                return sample.time
        return None

    def render(self, width: int = 50) -> str:
        """A small ASCII convergence chart (discovered nodes over time)."""
        if not self.samples:
            return "(no samples)"
        lines = []
        n_nodes = len(self._simulation.topology.nodes)
        for cid in sorted(self._simulation.controllers):
            series = self.discovery_series(cid)
            points = series[:width]
            bar = "".join(
                "#" if count >= n_nodes else str(min(9, count * 10 // max(1, n_nodes)))
                for _, count in points
            )
            lines.append(f"{cid:>6} |{bar}|")
        legit_at = self.first_legitimate_at()
        lines.append(
            f"legitimate at t={legit_at:.1f}s" if legit_at is not None else "not yet legitimate"
        )
        return "\n".join(lines)


__all__ = ["ConvergenceTimeline", "TimelineSample"]
