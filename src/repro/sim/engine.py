"""A deterministic discrete-event simulation engine.

The engine is intentionally small: a priority queue of timestamped events, a
virtual clock, and a run loop.  Determinism matters for a reproduction — the
paper's violin plots come from 20 repetitions, which we emulate by seeding
the random source per repetition, so every figure is exactly regenerable.

Events scheduled at the same timestamp are executed in insertion order
(FIFO), which models the paper's interleaving semantics: one atomic step at
a time (Section 3.2 of the paper).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, MutableSequence, Optional

from repro.sim.events import EventKind

#: Sentinel distinguishing "no scope installed" from a scope whose cause is
#: legitimately ``None`` (``cause_scope(None)`` suppresses the implicit
#: currently-executing-event edge).
_NO_SCOPE = object()


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is (time, sequence-number); the callback and metadata do not
    participate in comparisons.  ``cause`` is the seq of the event whose
    execution scheduled this one (the happens-before edge of the provenance
    DAG); ``tags`` carries typed provenance (round tag, fault id, message
    header) attached at the scheduling site or via
    :meth:`Simulator.annotate` while the event executes.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    kind: EventKind = field(compare=False, default=EventKind.GENERIC)
    note: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    cause: Optional[int] = field(compare=False, default=None)
    tags: Optional[Dict[str, object]] = field(compare=False, default=None)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Min-heap of :class:`Event` with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        kind: EventKind = EventKind.GENERIC,
        note: str = "",
        cause: Optional[int] = None,
        tags: Optional[Dict[str, object]] = None,
    ) -> Event:
        event = Event(
            time=time,
            seq=next(self._counter),
            callback=callback,
            kind=kind,
            note=note,
            cause=cause,
            tags=tags,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Pop the earliest *live* event, draining cancelled ones.

        Cancelled events must never surface: a caller that pops without a
        preceding :meth:`peek_time` (which also drains) would otherwise
        receive an event whose callback must not run, breaking ordering
        assumptions downstream.  Raises :class:`IndexError` when no live
        event remains, matching ``heapq.heappop`` on an empty heap.
        """
        while True:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event

    def peek_time(self) -> Optional[float]:
        """Return the timestamp of the earliest pending event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time


class Simulator:
    """Virtual-time event loop.

    Usage::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("hello"))
        sim.run(until=10.0)

    The loop stops when the queue drains, ``until`` is reached, a step
    budget is exhausted, or a registered stop condition returns ``True``.
    """

    def __init__(self) -> None:
        self.queue = EventQueue()
        self.now: float = 0.0
        self.steps: int = 0
        self._stop_requested = False
        self._trace: Optional[MutableSequence[tuple[float, EventKind, str]]] = None
        self._kind_counts: Optional[dict[EventKind, int]] = None
        # Causality (None = off, the zero-cost default).  Rows are
        # (seq, time, kind, note, cause, tags); synthetic provenance roots
        # get negative ids from a separate counter so the event seq counter
        # (which participates in heap ordering) is never perturbed.
        self._causal: Optional[List[tuple]] = None
        self._current_event: Optional[Event] = None
        self._scope_cause: object = _NO_SCOPE
        self._root_ids = itertools.count(-1, -1)

    # -- scheduling ---------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        kind: EventKind = EventKind.GENERIC,
        note: str = "",
        cause: Optional[int] = None,
        tags: Optional[Dict[str, object]] = None,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` virtual seconds from now.

        With causality enabled, ``cause`` defaults to the currently
        executing event (or the installed :meth:`cause_scope`), so message
        send -> receive and fault -> reaction chains are captured as
        happens-before edges without instrumenting every call site.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        if self._causal is not None and cause is None:
            cause = self._default_cause()
        return self.queue.push(
            self.now + delay, callback, kind=kind, note=note, cause=cause, tags=tags
        )

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        kind: EventKind = EventKind.GENERIC,
        note: str = "",
        cause: Optional[int] = None,
        tags: Optional[Dict[str, object]] = None,
    ) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        if self._causal is not None and cause is None:
            cause = self._default_cause()
        return self.queue.push(
            time, callback, kind=kind, note=note, cause=cause, tags=tags
        )

    def _default_cause(self) -> Optional[int]:
        if self._scope_cause is not _NO_SCOPE:
            return self._scope_cause  # type: ignore[return-value]
        if self._current_event is not None:
            return self._current_event.seq
        return None

    # -- causality ----------------------------------------------------------

    def enable_causality(self) -> None:
        """Record a happens-before row for every executed event.

        Rows are ``(seq, time, kind, note, cause, tags)``; ``cause`` is the
        seq of the scheduling event (or a negative synthetic root id), so
        the list is the edge set of the run's provenance DAG.  Rows contain
        only virtual times and seq ids — no wall clocks — so a seeded run
        produces an identical log on every rerun.
        """
        self._causal = []

    def causal_events(self) -> Optional[List[tuple]]:
        """The recorded provenance rows, or ``None`` when causality is off."""
        return self._causal

    def provenance_root(
        self, note: str = "", tags: Optional[Dict[str, object]] = None
    ) -> Optional[int]:
        """Register a synthetic DAG root (a fault injection, a state
        corruption) that is not itself a scheduled event.

        Returns its negative id for use as a ``cause``, or ``None`` when
        causality is off.
        """
        if self._causal is None:
            return None
        eid = next(self._root_ids)
        self._causal.append(
            (eid, self.now, "provenance_root", note, None, dict(tags or {}))
        )
        return eid

    def annotate(self, **tags: object) -> None:
        """Merge tags into the currently executing event's provenance row.

        No-op outside an event callback or with causality off — call sites
        may invoke it unconditionally.
        """
        event = self._current_event
        if event is None:
            return
        if event.tags is None:
            event.tags = dict(tags)
        else:
            event.tags.update(tags)

    @contextmanager
    def cause_scope(self, cause: Optional[int]) -> Iterator[None]:
        """Attribute every event scheduled inside the block to ``cause``
        (``None`` suppresses the implicit current-event edge)."""
        if self._causal is None:
            yield
            return
        prev = self._scope_cause
        self._scope_cause = cause
        try:
            yield
        finally:
            self._scope_cause = prev

    # -- tracing ------------------------------------------------------------

    def enable_trace(self, capacity: Optional[int] = None) -> None:
        """Record (time, kind, note) for every executed event.

        ``capacity`` bounds the buffer as a ring keeping only the last N
        events — flight-recorder semantics for long runs where the full
        trace would grow without bound.  The default (``None``) keeps the
        historical unbounded list.
        """
        if capacity is None:
            self._trace = []
        else:
            if capacity < 1:
                raise ValueError(f"trace capacity must be >= 1 (got {capacity})")
            self._trace = deque(maxlen=capacity)

    @property
    def trace(self) -> MutableSequence[tuple[float, EventKind, str]]:
        if self._trace is None:
            raise RuntimeError("tracing not enabled; call enable_trace() first")
        return self._trace

    def enable_kind_counts(self) -> None:
        """Tally executed events by :class:`EventKind`.

        Unlike tracing this stores one integer per kind, so it is safe to
        leave on for arbitrarily long runs; telemetry pulls the tally at
        snapshot time."""
        self._kind_counts = {}

    @property
    def kind_counts(self) -> dict[EventKind, int]:
        if self._kind_counts is None:
            raise RuntimeError(
                "kind counting not enabled; call enable_kind_counts() first"
            )
        return self._kind_counts

    # -- running ------------------------------------------------------------

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stop_requested = True

    def run(
        self,
        until: Optional[float] = None,
        max_steps: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> float:
        """Execute events until a limit is hit.  Returns the final clock.

        ``stop_when`` is evaluated after each executed event; it is how the
        experiment harness detects that the network reached a legitimate
        state (Definition 1) and records the bootstrap/recovery instant.
        """
        self._stop_requested = False
        while len(self.queue) > 0:
            if self._stop_requested:
                break
            next_time = self.queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                break
            event = self.queue.pop()
            self.now = event.time
            if self._causal is not None:
                self._current_event = event
                try:
                    event.callback()
                finally:
                    self._current_event = None
                self._causal.append(
                    (event.seq, event.time, event.kind, event.note, event.cause, event.tags)
                )
            else:
                event.callback()
            self.steps += 1
            if self._trace is not None:
                self._trace.append((event.time, event.kind, event.note))
            if self._kind_counts is not None:
                self._kind_counts[event.kind] = (
                    self._kind_counts.get(event.kind, 0) + 1
                )
            if max_steps is not None and self.steps >= max_steps:
                break
            if stop_when is not None and stop_when():
                break
        return self.now


__all__ = ["Event", "EventQueue", "Simulator"]
