"""Measurement utilities for the experiment harness.

Collects the quantities the paper reports: bootstrap time, recovery time,
per-controller message counts (Figure 9's communication overhead), C-reset
and illegitimate-deletion counts (the Theorem 1 / Lemma 2 bounds), plus
generic time-series for the throughput experiments.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, List, MutableSequence, Optional, Tuple


@dataclass
class ControllerLoad:
    """Per-controller traffic accounting."""

    batches_sent: int = 0
    link_transmissions: int = 0  # hop-level message cost (both directions)
    replies_received: int = 0


class MetricsRecorder:
    """Mutable measurement sink shared by the simulation components.

    Observers registered with :meth:`add_observer` receive every recorded
    milestone through their ``on_event(time, name, value)`` hook — the
    push-based instrumentation point of the public run API, so watching a
    simulation no longer requires editing ``NetworkSimulation``.

    ``capacity`` bounds the milestone buffer :attr:`events` as a ring
    keeping the last N entries; the default (``None``) keeps the
    historical unbounded list.  Derived measurements (recovery time,
    convergence instants, loads) are scalars and never evicted — only the
    raw milestone log is bounded.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"events capacity must be >= 1 (got {capacity})")
        self.loads: Dict[str, ControllerLoad] = defaultdict(ControllerLoad)
        self.events: MutableSequence[Tuple[float, str, object]] = (
            [] if capacity is None else deque(maxlen=capacity)
        )
        self.convergence_time: Optional[float] = None
        self.last_convergence_time: Optional[float] = None
        self.fault_time: Optional[float] = None
        self.corruption_time: Optional[float] = None
        self.c_resets = 0
        self.illegitimate_deletions = 0
        self.dropped_control_packets = 0
        #: Tenant-traffic summary recorded by a ``Traffic`` phase (JSON
        #: dict of goodput/FCT/disruption metrics), or None.
        self.traffic: Optional[Dict[str, object]] = None
        self._observers: List[object] = []
        # First convergence at/after the most recent fault/corruption mark;
        # re-marking resets the pending measurement (documented semantics
        # of recovery_time / stabilization_time).
        self._recovered_at: Optional[float] = None
        self._stabilized_at: Optional[float] = None

    # -- observers ---------------------------------------------------------

    def add_observer(self, observer: object) -> None:
        """Register an object with an ``on_event(time, name, value)`` hook.

        Observers are notified in registration order.  An exception from
        one observer does not starve the others — every remaining observer
        is still notified — but the first exception is re-raised to the
        caller afterwards, so broken instrumentation stays loud.
        """
        self._observers.append(observer)

    def _notify(self, time: float, name: str, value: object = None) -> None:
        first_error: Optional[BaseException] = None
        for observer in self._observers:
            try:
                observer.on_event(time, name, value)
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    # -- traffic -----------------------------------------------------------------

    def record_batch(self, cid: str, hops: int) -> None:
        load = self.loads[cid]
        load.batches_sent += 1
        load.link_transmissions += hops

    def record_reply(self, cid: str, hops: int) -> None:
        load = self.loads[cid]
        load.replies_received += 1
        load.link_transmissions += hops

    def record_drop(self) -> None:
        self.dropped_control_packets += 1

    # -- milestones ----------------------------------------------------------------

    def mark_event(self, time: float, name: str, value: object = None) -> None:
        self.events.append((time, name, value))
        self._notify(time, name, value)

    def record_traffic(self, summary: Dict[str, object]) -> None:
        """Attach a ``Traffic`` phase's metrics block to the run."""
        self.traffic = summary

    def mark_fault(self, time: float) -> None:
        """Record a fault instant.  Each mark *restarts* the pending
        recovery measurement: ``recovery_time`` is defined against the
        most recent fault, and earlier convergences never count."""
        self.fault_time = time
        self._recovered_at = None
        self._notify(time, "fault")

    def mark_corruption(self, time: float) -> None:
        """Record an arbitrary-state-corruption instant (the
        ``corrupt_state`` phase).  Like :meth:`mark_fault`, re-marking
        restarts the pending ``stabilization_time`` measurement."""
        self.corruption_time = time
        self._stabilized_at = None
        self._notify(time, "corruption")

    def mark_convergence(self, time: float) -> None:
        """Record a convergence instant.  ``convergence_time`` keeps the
        first one (the bootstrap milestone); ``last_convergence_time``
        tracks every re-convergence after faults."""
        if self.convergence_time is None:
            self.convergence_time = time
        self.last_convergence_time = time
        if (
            self.fault_time is not None
            and self._recovered_at is None
            and time >= self.fault_time
        ):
            self._recovered_at = time
        if (
            self.corruption_time is not None
            and self._stabilized_at is None
            and time >= self.corruption_time
        ):
            self._stabilized_at = time
        self._notify(time, "convergence")

    @property
    def recovery_time(self) -> Optional[float]:
        """Seconds from the most recent fault mark to the *first*
        convergence at or after it.

        Defined semantics for the edge cases:

        * no fault marked → ``None`` (a convergence alone is a bootstrap
          milestone, ``convergence_time``, never a recovery);
        * no convergence since the most recent fault → ``None``, even if
          earlier faults did recover — each ``mark_fault`` restarts the
          measurement;
        * several convergences after the fault → the first one counts
          (the instant legitimacy *returned*, not the last re-check).
        """
        if self.fault_time is None or self._recovered_at is None:
            return None
        return self._recovered_at - self.fault_time

    @property
    def stabilization_time(self) -> Optional[float]:
        """Seconds from the most recent arbitrary-state corruption to the
        first legitimate configuration at or after it — the paper's
        self-stabilization measurement, distinct from post-fault
        ``recovery_time`` (same first-convergence-after-the-mark
        semantics, measured from :meth:`mark_corruption`)."""
        if self.corruption_time is None or self._stabilized_at is None:
            return None
        return self._stabilized_at - self.corruption_time

    # -- Figure 9 metric --------------------------------------------------------------

    def max_load_per_node_per_iteration(
        self, iterations: Dict[str, int], n_nodes: int
    ) -> float:
        """The paper's communication cost: link-level messages of the most
        loaded controller, normalized by its iteration count and by the
        number of nodes."""
        best = 0.0
        for cid, load in self.loads.items():
            iters = iterations.get(cid, 0)
            if iters == 0:
                continue
            best = max(best, load.link_transmissions / iters / max(1, n_nodes))
        return best


# -- summary statistics (violin-plot ingredients) --------------------------------


def median(values: List[float]) -> float:
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def quartiles(values: List[float]) -> Tuple[float, float, float]:
    """(Q1, median, Q3) with the inclusive (Tukey) method."""
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        raise ValueError("quartiles of empty sequence")
    mid = n // 2
    lower = ordered[: mid + (n % 2)]
    upper = ordered[mid:]
    return median(lower), median(ordered), median(upper)


def trimmed(values: List[float]) -> List[float]:
    """Drop the two extrema — the paper's Section 6.4 protocol ('we
    dismissed from the 20 measurements the two extrema').  Skipped for
    small samples, where trimming would erase most of the data."""
    if len(values) <= 4:
        return list(values)
    ordered = sorted(values)
    return ordered[1:-1]


def summarize(values: List[float]) -> Dict[str, float]:
    """Violin-plot summary: extrema, quartiles, median, mean."""
    if not values:
        raise ValueError("summary of empty sequence")
    q1, med, q3 = quartiles(values)
    return {
        "min": min(values),
        "q1": q1,
        "median": med,
        "q3": q3,
        "max": max(values),
        "mean": sum(values) / len(values),
        "n": float(len(values)),
    }


__all__ = [
    "ControllerLoad",
    "MetricsRecorder",
    "median",
    "quartiles",
    "trimmed",
    "summarize",
]
