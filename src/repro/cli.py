"""Command-line interface: run reproduction experiments from a shell.

Usage::

    python -m repro.cli list
    python -m repro.cli bootstrap --network B4 --controllers 3 --reps 3
    python -m repro.cli recover --network Telstra --fault link
    python -m repro.cli traffic --network Telstra [--no-recovery]
    python -m repro.cli figure fig5 --reps 3
    python -m repro.cli sweep --figure fig5 --network Telstra --reps 8 --workers 4
    python -m repro.cli scenario --topology jellyfish:20 --campaign churn --reps 4

``figure`` runs any of the paper's figure/table experiments by id and
prints the regenerated rows.  ``sweep`` runs a registered experiment spec
through the parallel repetition runner: repetitions fan out over a worker
pool with deterministic per-repetition seeding, so the series are
bit-identical whatever ``--workers`` is.  ``scenario`` drives the scenario
campaign subsystem through the same runner: a generated topology
(fat-tree, Jellyfish, ring, grid, or a Table-8 network) under a
composable randomized fault campaign.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import Callable, Dict

from repro.analysis import experiments as exp
from repro.analysis.scenarios import scenario_campaign
from repro.exp.runner import run_spec
from repro.exp.spec import list_specs
from repro.net.topologies import TOPOLOGY_BUILDERS, attach_controllers
from repro.scenarios.campaigns import CAMPAIGNS
from repro.scenarios.generators import GENERATORS, parse_topology
from repro.sim.network_sim import NetworkSimulation, SimulationConfig
from repro.sim.faults import FaultPlan, random_link
from repro.transport.traffic import (
    TrafficRun,
    place_hosts_at_max_distance,
    standalone_switches,
)

FIGURES: Dict[str, Callable[..., exp.ExperimentResult]] = {
    "table8": exp.table8_topologies,
    "fig5": exp.fig5_bootstrap,
    "fig6": exp.fig6_bootstrap_vs_controllers,
    "fig7": exp.fig7_bootstrap_vs_task_delay,
    "fig9": exp.fig9_communication_overhead,
    "fig10": exp.fig10_controller_failure,
    "fig11": exp.fig11_multi_controller_failure,
    "fig12": exp.fig12_switch_failure,
    "fig13": exp.fig13_link_failure,
    "fig14": exp.fig14_multi_link_failure,
    "fig15": exp.fig15_throughput_with_recovery,
    "fig16": exp.fig16_throughput_without_recovery,
    "table17": exp.table17_correlation,
    "fig18": exp.fig18_retransmissions,
    "fig19": exp.fig19_bad_tcp,
    "fig20": exp.fig20_out_of_order,
}

TAKES_REPS = {"fig5", "fig6", "fig7", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14"}


def cmd_list(_args: argparse.Namespace) -> int:
    print("networks:", ", ".join(sorted(TOPOLOGY_BUILDERS)))
    print("figures:", ", ".join(sorted(FIGURES)))
    print(
        "scenario topologies:",
        ", ".join(syntax for _, syntax in GENERATORS.values()),
    )
    print("campaigns:", ", ".join(sorted(CAMPAIGNS)))
    return 0


def _build_sim(args: argparse.Namespace) -> NetworkSimulation:
    topology = TOPOLOGY_BUILDERS[args.network]()
    attach_controllers(topology, args.controllers, seed=args.seed)
    config = SimulationConfig(
        seed=args.seed,
        theta=exp.THETA.get(args.network, 10),
        task_delay=args.task_delay,
        discovery_delay=args.task_delay,
        out_of_band=getattr(args, "out_of_band", False),
    )
    return NetworkSimulation(topology, config)


def cmd_bootstrap(args: argparse.Namespace) -> int:
    times = []
    for rep in range(args.reps):
        args.seed = rep
        sim = _build_sim(args)
        t = sim.run_until_legitimate(timeout=exp.TIMEOUT.get(args.network, 300.0))
        if t is None:
            print(f"rep {rep}: TIMEOUT")
            continue
        times.append(t)
        print(
            f"rep {rep}: bootstrapped in {t:.1f} s "
            f"(rules={sim.total_rules_installed()}, "
            f"illegit-deletions={sim.metrics.illegitimate_deletions})"
        )
    if times:
        print(f"median: {sorted(times)[len(times) // 2]:.1f} s over {len(times)} reps")
    return 0 if times else 1


def cmd_recover(args: argparse.Namespace) -> int:
    sim = _build_sim(args)
    timeout = exp.TIMEOUT.get(args.network, 300.0)
    t0 = sim.run_until_legitimate(timeout=timeout)
    if t0 is None:
        print("bootstrap timed out")
        return 1
    print(f"bootstrap: {t0:.1f} s")
    rng = random.Random(args.seed)
    plan = FaultPlan()
    at = sim.sim.now + 0.1
    if args.fault == "controller":
        victim = rng.choice(sim.topology.controllers)
        plan.fail_node(at, victim)
    elif args.fault == "link":
        u, v = random_link(sim.topology, rng)
        victim = f"{u}-{v}"
        plan.remove_link(at, u, v)
    else:  # switch
        for victim in sim.topology.switches:
            probe = sim.topology.copy()
            probe.remove_node(victim)
            if probe.connected():
                break
        plan.remove_node(at, victim)
    print(f"injecting {args.fault} fault on {victim}")
    sim.inject(plan)
    sim.run_for(0.2)
    t1 = sim.run_until_legitimate(timeout=timeout)
    if t1 is None:
        print("recovery timed out")
        return 1
    print(f"recovered in {t1 - at:.1f} s")
    return 0


def cmd_traffic(args: argparse.Namespace) -> int:
    topology = TOPOLOGY_BUILDERS[args.network]()
    pair = place_hosts_at_max_distance(topology)
    switches = standalone_switches(topology)
    run = TrafficRun(topology, switches, pair, recovery=not args.no_recovery)
    stats = run.run()
    print(f"hosts: {pair.a} <-> {pair.b} ({pair.distance} hops)")
    print("throughput (Mbit/s):", [round(x) for x in stats.throughput_series()])
    print("retransmissions (%):", [round(x, 1) for x in stats.retransmission_series()])
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    fn = FIGURES[args.id]
    kwargs = {"reps": args.reps} if args.id in TAKES_REPS else {}
    if args.workers:
        kwargs["workers"] = args.workers
    result = fn(**kwargs)
    for line in result.rows():
        print(line)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run one experiment spec through the parallel repetition runner."""
    networks = tuple(args.network) if args.network else None
    started = time.perf_counter()
    result = run_spec(
        args.figure,
        reps=args.reps,
        networks=networks,
        workers=args.workers,
        base_seed=args.seed,
    )
    elapsed = time.perf_counter() - started
    for line in result.rows():
        print(line)
    print(
        f"-- sweep {args.figure} reps={args.reps} seed={args.seed} "
        f"workers={args.workers}: {elapsed:.2f} s wall"
    )
    if not any(result.series.values()):
        print("no data produced (all repetitions timed out?)")
        return 1
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    """Run one (topology, campaign) pair through the repetition runner."""
    try:
        # Fail fast on a malformed spec; without this a typo surfaces as a
        # RemoteTraceback from inside a pool worker.
        parse_topology(args.topology, seed=args.seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    started = time.perf_counter()
    result = scenario_campaign(
        topology=args.topology,
        campaign=args.campaign,
        reps=args.reps,
        n_controllers=args.controllers,
        workers=args.workers,
        base_seed=args.seed,
        task_delay=args.task_delay,
        theta=args.theta,
        timeout=args.timeout,
    )
    elapsed = time.perf_counter() - started
    for line in result.rows():
        print(line)
    print(
        f"-- scenario {args.topology} campaign={args.campaign} reps={args.reps} "
        f"seed={args.seed} workers={args.workers}: {elapsed:.2f} s wall"
    )
    # Non-convergent repetitions are the whole point of this subsystem:
    # the runner drops their None measurements from the series, so count
    # them from the survivor tally and fail loudly instead of reporting a
    # clean distribution of survivors.
    completed = sum(len(values) for values in result.series.values())
    if completed < args.reps:
        print(
            f"{args.reps - completed}/{args.reps} repetitions never reached "
            f"a legitimate configuration (bootstrap or post-campaign "
            f"re-convergence exceeded --timeout {args.timeout})"
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Renaissance reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list networks and figures").set_defaults(fn=cmd_list)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--network", default="B4", choices=sorted(TOPOLOGY_BUILDERS))
    common.add_argument("--controllers", type=int, default=3)
    common.add_argument("--seed", type=int, default=0)
    common.add_argument("--task-delay", type=float, default=0.5)

    boot = sub.add_parser("bootstrap", parents=[common], help="measure bootstrap time")
    boot.add_argument("--reps", type=int, default=3)
    boot.add_argument("--out-of-band", action="store_true")
    boot.set_defaults(fn=cmd_bootstrap)

    rec = sub.add_parser("recover", parents=[common], help="measure failure recovery")
    rec.add_argument("--fault", default="link", choices=["controller", "link", "switch"])
    rec.set_defaults(fn=cmd_recover)

    traffic = sub.add_parser("traffic", help="throughput under a link failure")
    traffic.add_argument("--network", default="Telstra", choices=sorted(TOPOLOGY_BUILDERS))
    traffic.add_argument("--no-recovery", action="store_true")
    traffic.set_defaults(fn=cmd_traffic)

    fig = sub.add_parser("figure", help="regenerate a paper figure/table")
    fig.add_argument("id", choices=sorted(FIGURES))
    fig.add_argument("--reps", type=int, default=3)
    fig.add_argument("--workers", type=int, default=0,
                     help="repetition worker processes (0 = library default)")
    fig.set_defaults(fn=cmd_figure)

    sweep = sub.add_parser(
        "sweep",
        help="run an experiment spec via the parallel repetition runner",
    )
    sweep.add_argument("--figure", required=True, choices=list_specs())
    sweep.add_argument(
        "--network",
        action="append",
        choices=sorted(TOPOLOGY_BUILDERS),
        help="restrict to one network (repeatable); default: the spec's own list",
    )
    sweep.add_argument("--reps", type=int, default=None,
                       help="repetitions per data point (default: the spec's)")
    sweep.add_argument("--workers", type=int, default=1)
    sweep.add_argument("--seed", type=int, default=0,
                       help="base seed; repetition i runs with a seed derived from (seed, i)")
    sweep.set_defaults(fn=cmd_sweep)

    scen = sub.add_parser(
        "scenario",
        help="run a fault campaign on a generated topology via the repetition runner",
    )
    scen.add_argument(
        "--topology",
        default="jellyfish:20",
        help="a Table-8 name or a parametric spec: "
        + ", ".join(syntax for _, syntax in GENERATORS.values()),
    )
    scen.add_argument("--campaign", default="churn", choices=sorted(CAMPAIGNS))
    scen.add_argument("--controllers", type=int, default=3)
    scen.add_argument("--reps", type=int, default=8)
    scen.add_argument("--workers", type=int, default=1)
    scen.add_argument("--seed", type=int, default=0,
                      help="base seed; repetition i derives its topology, "
                      "controller placement, and campaign from (seed, i)")
    scen.add_argument("--task-delay", type=float, default=0.5)
    scen.add_argument("--theta", type=int, default=10)
    scen.add_argument("--timeout", type=float, default=240.0)
    scen.set_defaults(fn=cmd_scenario)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
