"""Command-line interface: run reproduction experiments from a shell.

Usage::

    python -m repro.cli list
    python -m repro.cli bootstrap --network B4 --controllers 3 --reps 3
    python -m repro.cli bootstrap --network jellyfish:20x4 --json
    python -m repro.cli recover --network Telstra --fault link
    python -m repro.cli iperf --network Telstra [--no-recovery]
    python -m repro.cli traffic --topology jellyfish:200 --flows 100000 --store runs/
    python -m repro.cli figure fig5 --reps 3
    python -m repro.cli sweep --figure fig5 --network Telstra --reps 8 --workers 4
    python -m repro.cli scenario --topology jellyfish:20 --campaign churn --reps 4
    python -m repro.cli stabilize --topology fattree:4 --corruption mixed --reps 3
    python -m repro.cli sweep --figure fig5 --network B4 --reps 3 --store runs/
    python -m repro.cli report --figure fig5 --network B4 --reps 3 --store runs/
    python -m repro.cli store verify --store runs/
    python -m repro.cli trace record --network fattree:4 --store runs/ --out boot.trace.json
    python -m repro.cli trace summary --store runs/
    python -m repro.cli fabric top --store runs/ --watch 2

Every simulation-running command constructs its runs through the public
facade (:mod:`repro.api`), so ``--network`` accepts both the named
Table-8 networks and the generated-topology specs (``fattree:4``,
``jellyfish:20x4``, ``ring:16``, ...).  ``bootstrap``, ``recover``,
``sweep``, and ``scenario`` take ``--json`` to emit the serializable
:class:`~repro.api.results.RunResult` / :class:`~repro.exp.spec.
ExperimentResult` record instead of human-readable rows, and ``--out
FILE`` to additionally write that JSON to disk.

``sweep`` and ``scenario`` take ``--store DIR`` to persist completed
repetitions into a content-addressed run store and resume from it
(``--no-cache`` recomputes while still writing through); ``report``
rebuilds figures/tables from a store with zero simulation, and ``store
ls``/``verify``/``reindex``/``gc`` inspect and repair one.

The distributed sweep fabric runs campaigns across independent worker
processes coordinated through a shared store directory: ``repro fabric
start --store DIR --workers N`` joins N persistent workers to the fleet
(run it on any host that mounts DIR), ``repro sweep --figure fig5
--fabric DIR`` submits the sweep's work units and blocks as the
aggregator, ``repro fabric run`` is the one-shot local convenience
(fleet up → campaign → fleet down), and ``repro fabric status``/``stop``
inspect and shut down a fleet.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List

from repro.adversary.corruptions import CORRUPTIONS
from repro.adversary.schedulers import SCHEDULERS
from repro.analysis import experiments as exp
from repro.analysis.adversary import stabilize_campaign
from repro.analysis.scenarios import scenario_campaign
from repro.analysis.traffic import traffic_campaign
from repro.api import (
    AwaitLegitimacy,
    Bootstrap,
    InjectFaults,
    RunPlan,
    RunResult,
    default_timeout,
    topology_spec_syntaxes,
    validate_topology_spec,
)
from repro.exp.runner import run_spec
from repro.exp.seeding import derive_seed
from repro.exp.spec import list_specs
from repro.store import RunStore, aggregate, store_summary
from repro.net.topologies import TOPOLOGY_BUILDERS
from repro.scenarios.campaigns import CAMPAIGNS
from repro.scenarios.generators import GENERATORS, parse_topology
from repro.sim.faults import FaultPlan, random_link, removable_switch
from repro.transport.traffic import (
    TrafficRun,
    place_hosts_at_max_distance,
    standalone_switches,
)

FIGURES: Dict[str, Callable[..., exp.ExperimentResult]] = {
    "table8": exp.table8_topologies,
    "fig5": exp.fig5_bootstrap,
    "fig6": exp.fig6_bootstrap_vs_controllers,
    "fig7": exp.fig7_bootstrap_vs_task_delay,
    "fig9": exp.fig9_communication_overhead,
    "fig10": exp.fig10_controller_failure,
    "fig11": exp.fig11_multi_controller_failure,
    "fig12": exp.fig12_switch_failure,
    "fig13": exp.fig13_link_failure,
    "fig14": exp.fig14_multi_link_failure,
    "fig15": exp.fig15_throughput_with_recovery,
    "fig16": exp.fig16_throughput_without_recovery,
    "table17": exp.table17_correlation,
    "fig18": exp.fig18_retransmissions,
    "fig19": exp.fig19_bad_tcp,
    "fig20": exp.fig20_out_of_order,
}

TAKES_REPS = {"fig5", "fig6", "fig7", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14"}


def _network_spec(value: str) -> str:
    """argparse type: accept Table-8 names and generator specs, reject
    everything else at parse time."""
    try:
        return validate_topology_spec(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _positive_float(value: str) -> float:
    """argparse type: a strictly positive float, validated at parse time
    (a bad value would otherwise surface as a RemoteTraceback from deep
    inside a pool worker)."""
    try:
        parsed = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {value!r}")
    if parsed <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0 (got {parsed})")
    return parsed


def _theta_value(value: str) -> int:
    """argparse type: Θ must be >= 1, validated at parse time."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {value!r}")
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"theta must be >= 1 (got {parsed})")
    return parsed


def _emit_json(doc: object, args: argparse.Namespace) -> None:
    """Serialize ``doc`` per the output flags: ``--json`` prints it to
    stdout (replacing the human rows), ``--out FILE`` writes it to disk."""
    if not (getattr(args, "json", False) or getattr(args, "out", None)):
        return
    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.json:
        print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")


def _quiet(args: argparse.Namespace) -> bool:
    """Human-readable rows are suppressed when stdout carries JSON."""
    return bool(getattr(args, "json", False))


def _store_of(args: argparse.Namespace):
    """The run store named by ``--store`` (with ``--no-cache`` applied),
    or ``None`` when persistence is off."""
    if not getattr(args, "store", None):
        return None
    return RunStore(args.store, refresh=getattr(args, "no_cache", False))


def _report_cache_stats(result, args: argparse.Namespace) -> None:
    """One stderr line of cache accounting — stderr so stdout stays
    byte-identical between cold and warm invocations (the resumability
    acceptance property, and what the CI resume-smoke job greps)."""
    stats = getattr(result, "cache_stats", None)
    if stats is None:
        return
    print(
        f"store: hits={stats['hit']} derived={stats['derived']} "
        f"simulated={stats['simulated']}",
        file=sys.stderr,
    )


def cmd_list(_args: argparse.Namespace) -> int:
    print("networks:", ", ".join(sorted(TOPOLOGY_BUILDERS)))
    print("figures:", ", ".join(sorted(FIGURES)))
    print(
        "scenario topologies:",
        ", ".join(syntax for _, syntax in GENERATORS.values()),
    )
    print("campaigns:", ", ".join(sorted(CAMPAIGNS)))
    print("corruptions:", ", ".join(sorted(CORRUPTIONS)))
    print("schedulers:", ", ".join(["none"] + sorted(SCHEDULERS)))
    return 0


def cmd_bootstrap(args: argparse.Namespace) -> int:
    timeout = default_timeout(args.network)
    times: List[float] = []
    runs: List[RunResult] = []
    for rep in range(args.reps):
        result = (
            RunPlan(args.network, controllers=args.controllers,
                    seed=derive_seed(args.seed, rep))
            .configure(task_delay=args.task_delay, out_of_band=args.out_of_band)
            .then(Bootstrap(timeout=timeout))
            .run()
        )
        runs.append(result)
        t = result.bootstrap_time
        if t is None:
            if not _quiet(args):
                print(f"rep {rep}: TIMEOUT")
            continue
        times.append(t)
        if not _quiet(args):
            print(
                f"rep {rep}: bootstrapped in {t:.1f} s "
                f"(rules={result.metrics['rules_installed']}, "
                f"illegit-deletions={result.metrics['illegitimate_deletions']})"
            )
    if times and not _quiet(args):
        print(f"median: {sorted(times)[len(times) // 2]:.1f} s over {len(times)} reps")
    _emit_json(
        {
            "command": "bootstrap",
            "network": args.network,
            "controllers": args.controllers,
            "base_seed": args.seed,
            "runs": [run.to_dict() for run in runs],
        },
        args,
    )
    return 0 if times else 1


def _recover_fault_builder(kind: str):
    """Fault builders for ``repro recover``, one per ``--fault`` choice."""

    def controller(sim, rng) -> FaultPlan:
        return FaultPlan().fail_node(sim.sim.now + 0.05, rng.choice(sim.topology.controllers))

    def link(sim, rng) -> FaultPlan:
        u, v = random_link(sim.topology, rng)
        return FaultPlan().remove_link(sim.sim.now + 0.05, u, v)

    def switch(sim, rng) -> FaultPlan:
        victim = removable_switch(sim.topology)
        return FaultPlan().remove_node(sim.sim.now + 0.05, victim)

    return {"controller": controller, "link": link, "switch": switch}[kind]


def cmd_recover(args: argparse.Namespace) -> int:
    timeout = default_timeout(args.network)
    result = (
        RunPlan(args.network, controllers=args.controllers, seed=args.seed)
        .configure(task_delay=args.task_delay)
        .then(
            Bootstrap(timeout=timeout),
            InjectFaults(
                builder=_recover_fault_builder(args.fault),
                label=f"recover:{args.fault}",
            ),
            AwaitLegitimacy(timeout=timeout),
        )
        .run()
    )
    _emit_json(result.to_dict(), args)
    quiet = _quiet(args)
    if result.bootstrap_time is None:
        if not quiet:
            print("bootstrap timed out")
        return 1
    if not quiet:
        print(f"bootstrap: {result.bootstrap_time:.1f} s")
        print(f"injecting {args.fault} fault")
    if result.recovery_time is None:
        if not quiet:
            print("recovery timed out")
        return 1
    if not quiet:
        print(f"recovered in {result.recovery_time:.1f} s")
    return 0


def cmd_iperf(args: argparse.Namespace) -> int:
    """Single-pair transport probe (the Figure 15/16 measurement)."""
    topology = TOPOLOGY_BUILDERS[args.network]()
    pair = place_hosts_at_max_distance(topology)
    switches = standalone_switches(topology)
    run = TrafficRun(topology, switches, pair, recovery=not args.no_recovery)
    stats = run.run()
    print(f"hosts: {pair.a} <-> {pair.b} ({pair.distance} hops)")
    print("throughput (Mbit/s):", [round(x) for x in stats.throughput_series()])
    print("retransmissions (%):", [round(x, 1) for x in stats.retransmission_series()])
    return 0


def cmd_traffic(args: argparse.Namespace) -> int:
    """Run one flow-level traffic campaign through the repetition runner."""
    return _run_campaign_command(
        args,
        "traffic",
        traffic_campaign,
        _traffic_params(args),
        knob_summary=f"campaign={args.campaign} flows={args.flows}",
        incomplete_message=(
            "repetitions recorded no traffic metrics (the traffic phase "
            f"failed or exceeded --timeout {args.timeout})"
        ),
    )


def cmd_figure(args: argparse.Namespace) -> int:
    fn = FIGURES[args.id]
    kwargs = {"reps": args.reps} if args.id in TAKES_REPS else {}
    if args.workers:
        kwargs["workers"] = args.workers
    result = fn(**kwargs)
    for line in result.rows():
        print(line)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run one experiment spec through the parallel repetition runner."""
    networks = tuple(args.network) if args.network else None
    if getattr(args, "fabric", None):
        return _sweep_via_fabric(args, networks)
    profiler = None
    if getattr(args, "profile", False):
        import cProfile

        # Profiling needs the work in-process and deterministic: one
        # repetition, no worker fan-out (child processes would escape the
        # profiler).
        args.reps = 1
        args.workers = 1
        profiler = cProfile.Profile()
    started = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    result = run_spec(
        args.figure,
        reps=args.reps,
        networks=networks,
        workers=args.workers,
        base_seed=args.seed,
        store=_store_of(args),
        refresh=args.no_cache,
    )
    if profiler is not None:
        profiler.disable()
        import pstats

        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(30)
    elapsed = time.perf_counter() - started
    _report_cache_stats(result, args)
    _emit_json(result.to_dict(), args)
    if not _quiet(args):
        for line in result.rows():
            print(line)
        print(
            f"-- sweep {args.figure} reps={args.reps} seed={args.seed} "
            f"workers={args.workers}: {elapsed:.2f} s wall"
        )
    if not any(result.series.values()):
        if not _quiet(args):
            print("no data produced (all repetitions timed out?)")
        return 1
    return 0


def _sweep_via_fabric(args: argparse.Namespace, networks) -> int:
    """``repro sweep --fabric DIR``: submit the sweep's work units to the
    fabric queue at DIR and block as the aggregator.  The workers are
    whoever shares the store (``repro fabric start`` fleets, here or on
    other hosts); the merged output is byte-identical to a serial sweep."""
    from repro.fabric import FabricError, run_fabric_campaign

    if getattr(args, "profile", False):
        print("error: --profile needs the work in-process; it cannot be "
              "combined with --fabric", file=sys.stderr)
        return 2
    started = time.perf_counter()
    try:
        result = run_fabric_campaign(
            args.fabric,
            args.figure,
            reps=args.reps,
            networks=networks,
            base_seed=args.seed,
            timeout=args.fabric_timeout,
        )
    except FabricError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started
    _emit_json(result.to_dict(), args)
    if not _quiet(args):
        for line in result.rows():
            print(line)
        print(
            f"-- sweep {args.figure} reps={args.reps} seed={args.seed} "
            f"fabric={args.fabric}: {elapsed:.2f} s wall"
        )
    if not any(result.series.values()):
        if not _quiet(args):
            print("no data produced (all repetitions timed out?)")
        return 1
    return 0


def cmd_fabric(args: argparse.Namespace) -> int:
    """Manage the distributed sweep fabric: start/status/stop/run."""
    from repro.fabric import (
        FabricError,
        LocalFleet,
        WorkQueue,
        run_local_campaign,
        worker_main,
    )

    store = RunStore(args.store)
    if args.action == "start":
        queue = WorkQueue(store, ttl=args.ttl)
        worker_kwargs = dict(
            ttl=args.ttl,
            poll=args.poll,
            max_attempts=args.max_attempts,
            backoff=args.backoff,
            drain=args.drain,
            preload=tuple(args.preload or ()),
            trace=args.trace,
        )
        if args.workers == 1:
            # In-process: this very process is the worker (its pid is the
            # one to SIGKILL in crash-recovery drills).
            queue.clear_stop()
            stats = worker_main(args.store, **worker_kwargs)
            print(f"worker drained: {dict(stats) or 'no work'}")
            return 0
        fleet = LocalFleet(args.store, workers=args.workers, **worker_kwargs)
        fleet.start()
        print(f"fabric fleet: {args.workers} worker(s) on {args.store} "
              f"(pids {', '.join(str(p) for p in fleet.pids())})")
        print("stop with: repro fabric stop --store " + args.store)
        for process in fleet.processes:
            process.join()
        return 0
    if args.action == "status":
        return _fabric_status(store)
    if args.action == "top":
        return _fabric_top(store, watch=args.watch)
    if args.action == "stop":
        WorkQueue(store).request_stop()
        print(f"fabric {args.store}: stop requested (workers exit at "
              "their next poll)")
        return 0
    # run: one-shot local fleet + campaign + aggregate
    networks = tuple(args.network) if args.network else None
    started = time.perf_counter()

    def _campaign() -> "exp.ExperimentResult":
        return run_local_campaign(
            args.store,
            args.figure,
            reps=args.reps,
            networks=networks,
            base_seed=args.seed,
            workers=args.workers,
            ttl=args.ttl,
            poll=args.poll,
            max_attempts=args.max_attempts,
            backoff=args.backoff,
            timeout=args.fabric_timeout,
            trace=args.trace,
        )

    try:
        if args.trace:
            # The aggregator records its own track; each worker saves a
            # `worker:<id>` TRACE before the fleet context exits, so
            # `repro trace stitch --store` sees the whole campaign.
            from repro.obs.export import save_trace
            from repro.obs.telemetry import Telemetry, use_telemetry

            with use_telemetry(Telemetry()) as telemetry:
                result = _campaign()
            trace_key = save_trace(store, telemetry, label="aggregator")
            print(
                f"aggregator trace {trace_key[:12]} saved (merge the "
                f"campaign: repro trace stitch --store {args.store})"
            )
        else:
            result = _campaign()
    except FabricError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started
    _emit_json(result.to_dict(), args)
    if not _quiet(args):
        for line in result.rows():
            print(line)
        print(
            f"-- fabric run {args.figure} reps={args.reps} seed={args.seed} "
            f"workers={args.workers}: {elapsed:.2f} s wall"
        )
    return 0 if any(result.series.values()) else 1


def _fabric_status(store: RunStore) -> int:
    """Per-campaign progress, lease state, and quarantine for one store."""
    from repro.fabric import WorkQueue

    queue = WorkQueue(store)
    campaigns = queue.campaigns()
    print(f"fabric {store.root}: {len(campaigns)} campaign(s)")
    for request in campaigns:
        progress = queue.progress(request)
        print(
            f"  {request.campaign_id[:12]} spec={request.name} "
            f"seed={request.base_seed}: done={progress['done']}/"
            f"{progress['total']} leased={progress['leased']} "
            f"quarantined={progress['quarantined']}"
        )
    now = time.time()
    leases = queue.leases()
    if leases:
        print(f"leases ({len(leases)}):")
        for lease in leases:
            state = "cooldown" if not lease.token else (
                "active" if lease.expires_at > now else "expired"
            )
            print(
                f"  {lease.key[:12]} worker={lease.worker} "
                f"attempts={lease.attempts} {state} "
                f"expires-in={lease.expires_at - now:+.1f}s"
            )
    quarantined = queue.quarantine_entries()
    if quarantined:
        print(f"quarantine ({len(quarantined)}):")
        for entry in quarantined:
            print(
                f"  {entry.get('key', '?')[:12]} "
                f"attempts={entry.get('attempts')} "
                f"error={entry.get('error')}"
            )
    from repro.obs.dashboard import worker_stats

    stats = worker_stats(queue.events(), now=now)
    active = [w for w, s in stats.items() if s["active"]]
    print(
        f"workers: {len(active)} active, {len(stats)} ever started"
        + (f" ({', '.join(sorted(active))})" if active else "")
    )
    for worker in sorted(stats):
        digest = stats[worker]
        age = digest["heartbeat_age"]
        heartbeat = "never" if age is None else f"{age:.1f}s ago"
        print(
            f"  {worker}: heartbeat {heartbeat}, claims={digest['claims']} "
            f"done={digest['completes']} failed={digest['failures']} "
            f"renews={digest['renews']}"
        )
    if queue.stop_requested():
        print("stop flag is raised (fleet is shutting down)")
    return 0


def _fabric_top(store: RunStore, watch: float = 0.0) -> int:
    """``repro fabric top``: the live campaign dashboard (per-worker task
    rates, heartbeat ages, retry/quarantine counts, ETA), rendered from
    the fabric journal; ``--watch S`` refreshes every S seconds."""
    from repro.fabric import WorkQueue
    from repro.obs.dashboard import render_fabric_top

    queue = WorkQueue(store)
    while True:
        print(render_fabric_top(queue))
        if not watch:
            return 0
        try:
            time.sleep(watch)
        except KeyboardInterrupt:
            return 0
        print()


def _run_campaign_command(
    args: argparse.Namespace,
    name: str,
    campaign_fn: Callable[..., exp.ExperimentResult],
    params: Dict[str, object],
    knob_summary: str,
    incomplete_message: str,
) -> int:
    """Shared body of the campaign commands (``scenario``/``stabilize``):
    fail fast on a malformed topology, run the campaign through the
    repetition runner, report cache stats and rows, and fail loudly when
    repetitions never converged (the runner drops their ``None``
    measurements from the series, so count them from the survivor tally
    instead of reporting a clean distribution of survivors)."""
    try:
        # Without this a typo surfaces as a RemoteTraceback from inside a
        # pool worker.
        parse_topology(args.topology, seed=args.seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    profiler = None
    if getattr(args, "profile", False):
        import cProfile

        # Same contract as `repro sweep --profile`: the work must stay
        # in-process and deterministic (a pool worker would escape the
        # profiler), so one repetition, no fan-out.
        args.reps = 1
        args.workers = 1
        profiler = cProfile.Profile()
    started = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    result = campaign_fn(
        reps=args.reps,
        workers=args.workers,
        base_seed=args.seed,
        store=_store_of(args),
        refresh=args.no_cache,
        **params,
    )
    if profiler is not None:
        profiler.disable()
        import pstats

        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(30)
    elapsed = time.perf_counter() - started
    _report_cache_stats(result, args)
    _emit_json(result.to_dict(), args)
    if not _quiet(args):
        for line in result.rows():
            print(line)
        print(
            f"-- {name} {args.topology} {knob_summary} reps={args.reps} "
            f"seed={args.seed} workers={args.workers}: {elapsed:.2f} s wall"
        )
    # One series per case: scenario/stabilize build one case, traffic
    # builds one per metric — scale the expectation accordingly.
    expected = args.reps * max(1, len(result.series))
    completed = sum(len(values) for values in result.series.values())
    if completed < expected:
        if not _quiet(args):
            print(f"{expected - completed}/{expected} {incomplete_message}")
        return 1
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    """Run one (topology, campaign) pair through the repetition runner."""
    return _run_campaign_command(
        args,
        "scenario",
        scenario_campaign,
        _scenario_params(args),
        knob_summary=f"campaign={args.campaign}",
        incomplete_message=(
            "repetitions never reached a legitimate configuration "
            "(bootstrap or post-campaign re-convergence exceeded "
            f"--timeout {args.timeout})"
        ),
    )


def cmd_stabilize(args: argparse.Namespace) -> int:
    """Run one (topology, corruption, scheduler) self-stabilization
    campaign through the repetition runner: every repetition starts from
    an arbitrary corrupted state and must reach Definition 1."""
    return _run_campaign_command(
        args,
        "stabilize",
        stabilize_campaign,
        _stabilize_params(args),
        knob_summary=f"corruption={args.corruption} scheduler={args.scheduler}",
        incomplete_message=(
            "repetitions never stabilized to a legitimate configuration "
            f"within --timeout {args.timeout}"
        ),
    )


def _case_params(args: argparse.Namespace) -> Dict[str, object]:
    """Knobs shared by every parametrized campaign spec."""
    return {
        "topology": args.topology,
        "n_controllers": args.controllers,
        "task_delay": args.task_delay,
        "theta": args.theta,
        "timeout": args.timeout,
    }


def _scenario_params(args: argparse.Namespace) -> Dict[str, object]:
    """The scenario spec's params, built from the shared knob flags.

    One source of truth for ``repro scenario`` (which runs under these
    params) and ``repro report`` (which must address records under the
    exact same params): both parsers inherit the same flag definitions,
    and both commands build the dict here.
    """
    return dict(_case_params(args), campaign=args.campaign)


def _stabilize_params(args: argparse.Namespace) -> Dict[str, object]:
    """The stabilize spec's params (same contract as
    :func:`_scenario_params`: shared verbatim with ``repro report``)."""
    return dict(
        _case_params(args), corruption=args.corruption, scheduler=args.scheduler
    )


def _traffic_params(args: argparse.Namespace) -> Dict[str, object]:
    """The traffic spec's params (same contract as
    :func:`_scenario_params`: shared verbatim with ``repro report``).

    Θ is a control-plane knob the traffic spec does not consume, so it is
    deliberately absent; the control-plane depth comes from the dedicated
    ``--control-plane`` flag (default 0: data-plane-only fabric), not the
    shared ``--controllers``.
    """
    return {
        "topology": args.topology,
        "campaign": args.campaign,
        "flows": args.flows,
        "pairs": args.pairs,
        "duration": args.duration,
        "ecmp": args.ecmp,
        "n_controllers": args.control_plane,
        "task_delay": args.task_delay,
        "timeout": args.timeout,
    }


def _report_params(args: argparse.Namespace) -> Dict[str, object]:
    """The spec params a ``repro report`` must address records under
    (only the scenario/stabilize/traffic specs parametrize their cases)."""
    if args.figure == "scenario":
        return _scenario_params(args)
    if args.figure == "stabilize":
        return _stabilize_params(args)
    if args.figure == "traffic":
        return _traffic_params(args)
    return {}


def _report_timings(store: RunStore) -> None:
    """Aggregate the per-phase host-cost breakdown over every stored run
    record that carries one (runs executed under telemetry): where the
    campaign's wall/CPU time actually went."""
    totals: Dict[str, Dict[str, float]] = {}
    timed_runs = 0
    for record in store.records():
        if record.get("kind") != "run":
            continue
        timings = record.get("payload", {}).get("timings") or []
        if timings:
            timed_runs += 1
        for timing in timings:
            bucket = totals.setdefault(
                timing.get("phase", "?"), {"wall": 0.0, "cpu": 0.0, "n": 0}
            )
            bucket["wall"] += float(timing.get("wall_seconds", 0.0))
            bucket["cpu"] += float(timing.get("cpu_seconds", 0.0))
            bucket["n"] += 1
    if not totals:
        print(
            "no timed run records (record some with telemetry active, e.g. "
            "repro trace record --store ...)"
        )
        return
    grand = sum(b["wall"] for b in totals.values())
    print(f"phase timings over {timed_runs} timed run(s):")
    for phase, bucket in sorted(
        totals.items(), key=lambda kv: -kv[1]["wall"]
    ):
        share = 100.0 * bucket["wall"] / grand if grand else 0.0
        print(
            f"  {phase}: wall={bucket['wall']:.3f}s ({share:.0f}%) "
            f"cpu={bucket['cpu']:.3f}s n={bucket['n']}"
        )


def cmd_report(args: argparse.Namespace) -> int:
    """Rebuild a figure/table purely from stored records — no simulation."""
    store = RunStore(args.store)
    if getattr(args, "timings", False):
        _report_timings(store)
        return 0
    if args.figure is None:
        print("error: --figure is required (or use --timings)", file=sys.stderr)
        return 2
    networks = tuple(args.network) if args.network else None
    result, missing = aggregate(
        store,
        args.figure,
        reps=args.reps,
        networks=networks,
        base_seed=args.seed,
        params=_report_params(args),
    )
    _emit_json(result.to_dict(), args)
    if not _quiet(args):
        for line in result.rows():
            print(line)
    if missing:
        print(
            f"store {args.store} is missing {len(missing)} repetition(s) "
            f"for {args.figure}:",
            file=sys.stderr,
        )
        for entry in missing:
            print(f"  {entry}", file=sys.stderr)
        print(
            "re-run the original sweep with --store to fill them",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Record, export, and summarize telemetry traces.

    ``record`` runs one bootstrap under an active telemetry handle (the
    run always executes — a cached result would have nothing to trace),
    optionally persisting both the run record and a content-addressed
    TRACE record into ``--store``, and exporting Chrome trace-event JSON
    to ``--out``.  ``export`` re-exports a stored TRACE record;
    ``summary`` prints its counters/histograms/phase-timing digest
    (``--json`` for scripting); ``stitch`` merges every TRACE record in
    the store — the aggregator plus each ``worker:N`` track of a fabric
    campaign — into one Perfetto timeline with cross-worker flow arrows.
    """
    from repro.obs import Telemetry, use_telemetry
    from repro.obs.export import (
        chrome_trace_from_payload,
        find_traces,
        load_trace,
        save_trace,
        stitch_chrome_trace,
        to_chrome_trace,
        trace_payload,
        validate_chrome_trace,
    )

    if args.action == "record":
        timeout = args.timeout or default_timeout(args.network)
        overrides = {"task_delay": args.task_delay}
        if args.theta is not None:
            overrides["theta"] = args.theta
        plan = (
            RunPlan(args.network, controllers=args.controllers, seed=args.seed)
            .configure(**overrides)
            .then(Bootstrap(timeout=timeout))
        )
        with use_telemetry(Telemetry(flight_capacity=args.flight)) as telemetry:
            result = plan.session().run()
        run_key = None
        store = _store_of(args)
        if store is not None:
            from repro.store.hashing import fingerprint

            identity = plan.identity()
            run_key = fingerprint(identity)
            store.save_run(run_key, identity, result,
                           tags={"topology": args.network, "seed": args.seed})
            trace_key = save_trace(store, telemetry, run_key=run_key,
                                   label=args.label)
            print(f"trace {trace_key[:12]} recorded for run {run_key[:12]} "
                  f"in {args.store}")
        doc = to_chrome_trace(telemetry)
        problems = validate_chrome_trace(doc)
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            return 1
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=None, sort_keys=True)
                fh.write("\n")
            print(f"chrome trace ({len(doc['traceEvents'])} events) -> {args.out}")
        _print_trace_summary(trace_payload(telemetry), result)
        return 0 if result.ok else 1

    # export / summary / stitch read stored TRACE records
    if not args.store:
        print(f"error: trace {args.action} needs --store DIR", file=sys.stderr)
        return 2
    store = RunStore(args.store)
    if args.action == "stitch":
        entries = []
        for trace_key in find_traces(store):
            record = load_trace(store, trace_key)
            if record is None:
                continue
            # Per-run traces (keyed by a run record) are single-run
            # post-mortems; the campaign timeline stitches the *session*
            # traces — the aggregator and worker:N tracks.
            if record["identity"].get("run"):
                continue
            entries.append({
                "label": record["identity"].get("label") or trace_key[:12],
                "payload": record["payload"],
            })
        if not entries:
            print(f"error: no trace records in {args.store} "
                  "(run a campaign with: repro fabric run --trace ...)",
                  file=sys.stderr)
            return 1
        doc = stitch_chrome_trace(entries)
        problems = validate_chrome_trace(doc)
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            return 1
        out = args.out or "stitched.trace.json"
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=None, sort_keys=True)
            fh.write("\n")
        labels = ", ".join(sorted(entry["label"] for entry in entries))
        print(f"stitched {len(entries)} trace(s) [{labels}] "
              f"({len(doc['traceEvents'])} events) -> {out}  "
              f"(load in https://ui.perfetto.dev)")
        return 0
    key = args.key
    if key is None:
        traces = find_traces(store)
        if not traces:
            print(f"error: no trace records in {args.store} "
                  "(record one with: repro trace record --store ...)",
                  file=sys.stderr)
            return 1
        key = traces[-1]
    record = load_trace(store, key)
    if record is None:
        print(f"error: no trace record at key {key}", file=sys.stderr)
        return 1
    payload = record["payload"]
    if args.action == "export":
        doc = chrome_trace_from_payload(payload)
        problems = validate_chrome_trace(doc)
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            return 1
        out = args.out or f"{key[:12]}.trace.json"
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=None, sort_keys=True)
            fh.write("\n")
        print(f"chrome trace {key[:12]} ({len(doc['traceEvents'])} events) "
              f"-> {out}  (load in https://ui.perfetto.dev)")
        return 0
    # summary
    if args.json:
        digest = {
            "key": key,
            "run": record["identity"].get("run"),
            "label": record["identity"].get("label", ""),
            "trace_schema": record["identity"].get("trace_schema", 1),
            "summary": payload.get("summary", {}),
            "n_spans": len(payload.get("spans", [])),
            "n_causal_events": sum(
                len(log.get("events", []))
                for log in payload.get("causal", [])
            ),
        }
        print(json.dumps(digest, indent=2, sort_keys=True))
        return 0
    print(f"trace {key[:12]} (run={record['identity'].get('run')})")
    _print_trace_summary(payload)
    return 0


def _print_trace_summary(payload: Dict[str, object], result=None) -> None:
    """Human digest of one trace payload: counters, histograms, phase
    wall/CPU breakdown, flight dumps."""
    summary = payload.get("summary", {})
    counters = summary.get("counters", {})
    if counters:
        print("counters:")
        for name in sorted(counters):
            print(f"  {name}: {counters[name]}")
    for name, histogram in sorted(summary.get("histograms", {}).items()):
        mean = histogram.get("mean")
        print(
            f"histogram {name}: n={histogram.get('count')} "
            f"mean={mean:.6f}s max={histogram.get('max'):.6f}s"
            if mean is not None
            else f"histogram {name}: empty"
        )
    spans = payload.get("spans", [])
    phase_spans = [s for s in spans if s.get("cat") == "phase"]
    if phase_spans:
        print("phases:")
        for span in phase_spans:
            print(f"  {span['name']}: {span['dur_wall']:.3f}s wall")
    if result is not None and result.timings:
        print("timings:")
        for timing in result.timings:
            print(
                f"  {timing['phase']}: wall={timing['wall_seconds']:.3f}s "
                f"cpu={timing['cpu_seconds']:.3f}s "
                f"sim={timing['sim_seconds']:.1f}s"
            )
    dumps = summary.get("flight_dumps", [])
    for dump in dumps:
        print(
            f"flight dump ({dump.get('reason')}): last {dump.get('n_events')} "
            f"events at t_sim={dump.get('t_sim')}"
        )
    print(f"spans: {summary.get('n_spans', len(spans))}")


def cmd_explain(args: argparse.Namespace) -> int:
    """Convergence forensics: root-cause a stored run or trace.

    Walks the trace's happens-before provenance DAG from the symptom (a
    legitimacy probe that never turned green, a flight dump) back to the
    injected corruption or fault, and prints the propagation chain plus
    any secondary anomalies.  With no KEY, picks the most recent *failed*
    run in the store (falling back to the newest trace); a run without a
    persisted trace is replayed deterministically from its
    content-addressed identity.  Exit status: 0 when the run converged,
    1 when the forensics confirm a failure.
    """
    from repro.obs.explain import explain_run

    store = RunStore(args.store)
    try:
        explanation = explain_run(store, key=args.key)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(explanation.to_dict(), indent=2, sort_keys=True))
    else:
        if explanation.source:
            print(f"explaining {explanation.source} "
                  f"({explanation.n_events} causal events)")
        print(explanation.render())
    return 0 if explanation.ok else 1


def cmd_store(args: argparse.Namespace) -> int:
    """Inspect or repair a run store: ls / verify / reindex / gc."""
    store = RunStore(args.store)
    if args.action == "gc":
        from repro.fabric import WorkQueue

        pruned = WorkQueue(store).gc(grace=args.grace)
        tmp_removed = store.prune_tmp(max_age=args.tmp_age)
        print(
            f"store {args.store}: gc removed {pruned['leases']} expired "
            f"lease(s), {pruned['orphans']} orphaned fabric file(s), "
            f"{tmp_removed} stale tmp file(s)"
        )
        return 0
    if args.action == "ls":
        summary = store_summary(store)
        print(f"store {args.store}: {summary['records']} record(s)")
        for kind, count in summary["by_kind"].items():
            print(f"  {kind}: {count}")
        for series, count in summary["by_series"].items():
            print(f"    {series}: {count}")
        return 0
    if args.action == "verify":
        problems = store.verify()
        if not problems:
            print(f"store {args.store}: ok ({len(store.keys())} object(s))")
            return 0
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    # reindex
    count = store.reindex()
    print(f"store {args.store}: manifest rebuilt ({count} record(s))")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Renaissance reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list networks and figures").set_defaults(fn=cmd_list)

    # One shared parent for the run knobs every simulation-running command
    # takes; previously --controllers/--seed/--task-delay were defined
    # independently in `common` and `scenario_knobs` and could drift.
    run_knobs = argparse.ArgumentParser(add_help=False)
    run_knobs.add_argument("--controllers", type=int, default=3)
    run_knobs.add_argument(
        "--seed", type=int, default=0,
        help="base seed; repetition i derives its randomness from (seed, i)",
    )
    run_knobs.add_argument("--task-delay", type=_positive_float, default=0.5)

    common = argparse.ArgumentParser(add_help=False, parents=[run_knobs])
    common.add_argument(
        "--network",
        default="B4",
        type=_network_spec,
        metavar="SPEC",
        help="a Table-8 name or a generated-topology spec: "
        + ", ".join(topology_spec_syntaxes()),
    )

    output = argparse.ArgumentParser(add_help=False)
    output.add_argument(
        "--json", action="store_true",
        help="print the serialized run record instead of human rows",
    )
    output.add_argument(
        "--out", metavar="FILE", default=None,
        help="also write the serialized run record to FILE",
    )

    caching = argparse.ArgumentParser(add_help=False)
    caching.add_argument(
        "--store", metavar="DIR", default=None,
        help="persist completed repetitions to (and resume from) this "
        "content-addressed run store",
    )
    caching.add_argument(
        "--no-cache", action="store_true",
        help="recompute every repetition (still writes through to --store)",
    )

    # Campaign case params, shared verbatim between `scenario`/`stabilize`
    # and `report` so stored records and report lookups can never drift.
    # Θ and the timeout are validated at parse time: a bad value would
    # otherwise surface as a RemoteTraceback from deep inside a worker.
    case_knobs = argparse.ArgumentParser(add_help=False)
    case_knobs.add_argument(
        "--topology",
        default="jellyfish:20",
        help="a Table-8 name or a parametric spec: "
        + ", ".join(syntax for _, syntax in GENERATORS.values()),
    )
    case_knobs.add_argument("--theta", type=_theta_value, default=10)
    case_knobs.add_argument("--timeout", type=_positive_float, default=240.0)

    scenario_knobs = argparse.ArgumentParser(add_help=False)
    scenario_knobs.add_argument("--campaign", default="churn",
                                choices=sorted(CAMPAIGNS))

    stabilize_knobs = argparse.ArgumentParser(add_help=False)
    stabilize_knobs.add_argument(
        "--corruption", default="mixed", choices=sorted(CORRUPTIONS),
        help="arbitrary-initial-state corruption strategy",
    )
    stabilize_knobs.add_argument(
        "--scheduler", default="none", choices=["none"] + sorted(SCHEDULERS),
        help="bounded adversarial delivery scheduler",
    )

    profiling = argparse.ArgumentParser(add_help=False)
    profiling.add_argument(
        "--profile", action="store_true",
        help="cProfile the campaign in-process (forces --reps 1 --workers 1)"
             " and print the top cumulative-time functions to stderr",
    )

    traffic_knobs = argparse.ArgumentParser(add_help=False)
    traffic_knobs.add_argument(
        "--flows", type=int, default=100_000,
        help="concurrent tenant flows to generate (10^5-10^6 supported)",
    )
    traffic_knobs.add_argument("--pairs", type=int, default=128,
                               help="distinct (src, dst) switch pairs")
    traffic_knobs.add_argument("--duration", type=_positive_float, default=12.0,
                               help="simulated seconds of traffic")
    traffic_knobs.add_argument("--ecmp", type=int, default=4,
                               help="max equal-cost paths per pair")
    traffic_knobs.add_argument(
        "--control-plane", type=int, default=0, metavar="N",
        help="bootstrap N in-band controllers under the workload "
        "(0 = data-plane-only fabric, the fast default)",
    )

    boot = sub.add_parser(
        "bootstrap", parents=[common, output], help="measure bootstrap time"
    )
    boot.add_argument("--reps", type=int, default=3)
    boot.add_argument("--out-of-band", action="store_true")
    boot.set_defaults(fn=cmd_bootstrap)

    rec = sub.add_parser(
        "recover", parents=[common, output], help="measure failure recovery"
    )
    rec.add_argument("--fault", default="link", choices=["controller", "link", "switch"])
    rec.set_defaults(fn=cmd_recover)

    iperf = sub.add_parser(
        "iperf", help="single-pair throughput under a link failure"
    )
    iperf.add_argument("--network", default="Telstra", choices=sorted(TOPOLOGY_BUILDERS))
    iperf.add_argument("--no-recovery", action="store_true")
    iperf.set_defaults(fn=cmd_iperf)

    traffic = sub.add_parser(
        "traffic",
        parents=[output, caching, run_knobs, case_knobs, scenario_knobs,
                 traffic_knobs, profiling],
        help="run a flow-level tenant workload under a fault campaign",
    )
    traffic.add_argument("--reps", type=int, default=1)
    traffic.add_argument("--workers", type=int, default=1)
    traffic.set_defaults(fn=cmd_traffic)

    fig = sub.add_parser("figure", help="regenerate a paper figure/table")
    fig.add_argument("id", choices=sorted(FIGURES))
    fig.add_argument("--reps", type=int, default=3)
    fig.add_argument("--workers", type=int, default=0,
                     help="repetition worker processes (0 = library default)")
    fig.set_defaults(fn=cmd_figure)

    sweep = sub.add_parser(
        "sweep",
        parents=[output, caching],
        help="run an experiment spec via the parallel repetition runner",
    )
    sweep.add_argument("--figure", required=True, choices=list_specs())
    sweep.add_argument(
        "--network",
        action="append",
        choices=sorted(TOPOLOGY_BUILDERS),
        help="restrict to one network (repeatable); default: the spec's own list",
    )
    sweep.add_argument("--reps", type=int, default=None,
                       help="repetitions per data point (default: the spec's)")
    sweep.add_argument("--workers", type=int, default=1)
    sweep.add_argument("--seed", type=int, default=0,
                       help="base seed; repetition i runs with a seed derived from (seed, i)")
    sweep.add_argument("--profile", action="store_true",
                       help="cProfile the sweep in-process (forces --reps 1 "
                            "--workers 1) and print the top cumulative-time "
                            "functions to stderr")
    sweep.add_argument("--fabric", metavar="DIR", default=None,
                       help="submit the sweep's work units to the fabric "
                            "queue at DIR and block as the aggregator "
                            "(workers: repro fabric start --store DIR)")
    sweep.add_argument("--fabric-timeout", type=_positive_float, default=None,
                       metavar="S",
                       help="give up aggregating after S seconds (default: "
                            "block until the fleet finishes)")
    sweep.set_defaults(fn=cmd_sweep)

    fab = sub.add_parser(
        "fabric",
        parents=[output],
        help="distributed sweep fabric: persistent workers coordinated "
             "through a shared run store",
    )
    fab.add_argument("action", choices=["start", "status", "top", "stop", "run"])
    fab.add_argument("--watch", type=_positive_float, default=None, metavar="S",
                     help="top: refresh the dashboard every S seconds "
                          "(default: render once and exit)")
    fab.add_argument("--store", metavar="DIR", required=True,
                     help="the shared run store coordinating the fleet")
    fab.add_argument("--workers", type=int, default=2,
                     help="worker processes (start/run); --workers 1 runs "
                          "the worker in this very process")
    fab.add_argument("--ttl", type=_positive_float, default=30.0,
                     help="lease time-to-live in seconds; a crashed "
                          "worker's unit is re-claimed after this")
    fab.add_argument("--poll", type=_positive_float, default=0.2,
                     help="idle poll interval in seconds")
    fab.add_argument("--max-attempts", type=int, default=3,
                     help="quarantine a task after this many failed attempts")
    fab.add_argument("--backoff", type=_positive_float, default=0.5,
                     help="base retry backoff in seconds (doubles per attempt)")
    fab.add_argument("--drain", action="store_true",
                     help="exit workers once no pending work remains "
                          "instead of polling for new campaigns")
    fab.add_argument("--preload", action="append", metavar="MODULE",
                     help="import MODULE in each worker before draining "
                          "(extra experiment-spec registrations); repeatable")
    fab.add_argument("--figure", choices=list_specs(), default="fig5",
                     help="the spec to run (action: run)")
    fab.add_argument("--network", action="append",
                     choices=sorted(TOPOLOGY_BUILDERS),
                     help="restrict to one network (repeatable; action: run)")
    fab.add_argument("--reps", type=int, default=None,
                     help="repetitions per data point (action: run)")
    fab.add_argument("--seed", type=int, default=0,
                     help="base seed (action: run)")
    fab.add_argument("--fabric-timeout", type=_positive_float, default=None,
                     metavar="S",
                     help="give up after S seconds (action: run)")
    fab.add_argument("--trace", action="store_true",
                     help="record per-worker TRACE records (and, for "
                          "action run, an aggregator trace) into the "
                          "store — merge with: repro trace stitch")
    fab.set_defaults(fn=cmd_fabric)

    scen = sub.add_parser(
        "scenario",
        parents=[output, caching, run_knobs, case_knobs, scenario_knobs,
                 profiling],
        help="run a fault campaign on a generated topology via the repetition runner",
    )
    scen.add_argument("--reps", type=int, default=8)
    scen.add_argument("--workers", type=int, default=1)
    scen.set_defaults(fn=cmd_scenario)

    stab = sub.add_parser(
        "stabilize",
        parents=[output, caching, run_knobs, case_knobs, stabilize_knobs,
                 profiling],
        help="measure convergence from an arbitrary corrupted initial state",
    )
    stab.add_argument("--reps", type=int, default=8)
    stab.add_argument("--workers", type=int, default=1)
    stab.set_defaults(fn=cmd_stabilize)

    report = sub.add_parser(
        "report",
        parents=[output, run_knobs, case_knobs, scenario_knobs,
                 stabilize_knobs, traffic_knobs],
        help="rebuild a figure/table from a run store, with zero simulation",
    )
    report.add_argument("--figure", default=None, choices=list_specs(),
                        help="the spec to rebuild (required unless --timings)")
    report.add_argument("--store", metavar="DIR", required=True,
                        help="the run store a sweep/scenario wrote with --store")
    report.add_argument(
        "--network",
        action="append",
        choices=sorted(TOPOLOGY_BUILDERS),
        help="restrict to one network (repeatable); default: the spec's own list",
    )
    report.add_argument("--reps", type=int, default=None,
                        help="repetitions per data point (default: the spec's)")
    report.add_argument("--timings", action="store_true",
                        help="instead of a figure, print the per-phase "
                             "wall/CPU breakdown aggregated over every "
                             "telemetry-timed run record in the store")
    report.set_defaults(fn=cmd_report)

    trace = sub.add_parser(
        "trace",
        parents=[common],
        help="record, export, and summarize telemetry traces "
             "(Chrome trace-event JSON, Perfetto-loadable)",
    )
    trace.add_argument("action", choices=["record", "export", "summary",
                                          "stitch"])
    trace.add_argument("--theta", type=_theta_value, default=None,
                       help="discovery-probe rounds Θ (default: derived "
                            "from the topology)")
    trace.add_argument("--timeout", type=_positive_float, default=None,
                       help="bootstrap timeout in simulated seconds "
                            "(default: the network's)")
    trace.add_argument("--flight", type=int, default=256, metavar="N",
                       help="flight-recorder depth: keep the last N "
                            "simulator events (record)")
    trace.add_argument("--label", default="",
                       help="free-form label stored in the TRACE record's "
                            "identity (record)")
    trace.add_argument("--store", metavar="DIR", default=None,
                       help="run store holding TRACE records (required for "
                            "export/summary; optional for record)")
    trace.add_argument("--key", default=None,
                       help="TRACE record key (default: the most recent "
                            "trace in the store)")
    trace.add_argument("--out", metavar="FILE", default=None,
                       help="write the Chrome trace-event JSON here")
    trace.add_argument("--json", action="store_true",
                       help="summary: print a machine-readable digest "
                            "instead of human rows")
    trace.set_defaults(fn=cmd_trace, no_cache=False)

    explain = sub.add_parser(
        "explain",
        help="convergence forensics: walk a stored run's provenance DAG "
             "from the failure symptom back to the injected "
             "corruption/fault",
    )
    explain.add_argument("key", nargs="?", default=None,
                         help="run or TRACE record key (default: the most "
                              "recent failed run, else the newest trace)")
    explain.add_argument("--store", metavar="DIR", required=True,
                         help="the run store holding the run/trace records")
    explain.add_argument("--json", action="store_true",
                         help="print the report as JSON for scripting")
    explain.set_defaults(fn=cmd_explain)

    store = sub.add_parser("store", help="inspect or repair a run store")
    store.add_argument("action", choices=["ls", "verify", "reindex", "gc"])
    store.add_argument("--store", metavar="DIR", required=True)
    store.add_argument("--grace", type=float, default=0.0,
                       help="gc: only remove leases expired at least this "
                            "many seconds ago (default 0: any expired lease)")
    store.add_argument("--tmp-age", type=_positive_float, default=3600.0,
                       help="gc: remove orphaned .tmp files older than this "
                            "many seconds")
    store.set_defaults(fn=cmd_store)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
