"""Seeded tenant workload generation.

A :class:`WorkloadSpec` is a small frozen value object (JSON
round-trippable, hashed into run identities by the ``Traffic`` phase);
:meth:`WorkloadSpec.generate` expands it into numpy arrays — one entry
per flow — deterministically from ``(spec, hosts, seed)``, so serial and
parallel sweeps see bit-identical workloads.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly by every traffic test
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

#: Salt mixed into the seed sequence so workload draws never collide with
#: other consumers of the repetition seed.
_SEED_SALT = 0x7472_6166

_ARRIVALS = ("all", "poisson")
_SIZE_DISTS = ("lognormal", "fixed")


def require_numpy() -> None:
    """The traffic engine is vectorized; without numpy it refuses to run
    (the rest of the repository stays importable)."""
    if np is None:
        raise RuntimeError(
            "repro.traffic requires numpy; install it or skip the traffic axis"
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative tenant workload: how many flows, between whom, how big.

    ``pairs`` caps the number of distinct (ingress, egress) switch pairs:
    rule installation and path enumeration scale with pairs, while the
    flow arrays scale with ``flows`` — that split is what keeps 10⁶ flows
    tractable on a 200-switch fabric.
    """

    flows: int = 100_000
    pairs: int = 256
    #: ``all`` starts every flow at t=0 (maximum concurrency);
    #: ``poisson`` draws exponential interarrivals.
    arrival: str = "all"
    #: Poisson arrival rate in flows/s; 0 spreads ``flows`` over the run.
    arrival_rate: float = 0.0
    #: Mean flow size in megabits.
    size_mbits: float = 50.0
    size_dist: str = "lognormal"
    size_sigma: float = 1.5
    #: Per-flow access-link cap in Mbit/s (the max-min allocation never
    #: grants a flow more than this).
    peak_rate_mbps: float = 100.0

    def __post_init__(self) -> None:
        if self.flows < 1:
            raise ValueError("flows must be >= 1")
        if self.pairs < 1:
            raise ValueError("pairs must be >= 1")
        if self.arrival not in _ARRIVALS:
            raise ValueError(f"arrival must be one of {_ARRIVALS}")
        if self.size_dist not in _SIZE_DISTS:
            raise ValueError(f"size_dist must be one of {_SIZE_DISTS}")
        if self.size_mbits <= 0 or self.peak_rate_mbps <= 0:
            raise ValueError("size_mbits and peak_rate_mbps must be positive")

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkloadSpec":
        return cls(**data)

    # -- expansion -------------------------------------------------------------

    def generate(
        self, hosts: Sequence[str], seed: int, duration: float
    ) -> "Workload":
        """Expand into per-flow arrays, pure in ``(self, hosts, seed)``.

        ``hosts`` are the candidate ingress/egress switches (sorted
        internally); ``duration`` bounds the poisson arrival horizon.
        """
        require_numpy()
        names = sorted(hosts)
        if len(names) < 2:
            raise ValueError("need at least two hosts to draw pairs")
        rng = np.random.default_rng([seed & 0xFFFF_FFFF_FFFF_FFFF, _SEED_SALT])
        n_hosts = len(names)
        src = rng.integers(0, n_hosts, size=self.pairs)
        dst = rng.integers(0, n_hosts - 1, size=self.pairs)
        dst = dst + (dst >= src)  # never a self-pair
        pairs: List[Tuple[str, str]] = [
            (names[int(s)], names[int(d)]) for s, d in zip(src, dst)
        ]
        flow_pair = rng.integers(0, self.pairs, size=self.flows).astype(np.int64)
        if self.size_dist == "fixed":
            sizes = np.full(self.flows, float(self.size_mbits))
        else:
            sigma = float(self.size_sigma)
            mu = math.log(self.size_mbits) - sigma * sigma / 2.0
            sizes = rng.lognormal(mu, sigma, size=self.flows)
        if self.arrival == "all":
            arrivals = np.zeros(self.flows)
        else:
            rate = self.arrival_rate or (self.flows / max(duration, 1e-9))
            arrivals = np.cumsum(rng.exponential(1.0 / rate, size=self.flows))
        return Workload(
            spec=self,
            hosts=names,
            pairs=pairs,
            flow_pair=flow_pair,
            size_mbits=sizes,
            arrival=arrivals,
        )


@dataclass
class Workload:
    """A generated workload: per-flow arrays plus the sampled pair set."""

    spec: WorkloadSpec
    hosts: List[str]
    pairs: List[Tuple[str, str]]
    flow_pair: "np.ndarray"  # pair index per flow
    size_mbits: "np.ndarray"  # flow size per flow
    arrival: "np.ndarray"  # arrival time per flow (seconds)

    @property
    def n_flows(self) -> int:
        return len(self.flow_pair)


__all__ = ["Workload", "WorkloadSpec", "require_numpy"]
