"""Tenant routing: ECMP path enumeration + multipath rule installation.

Two halves:

* :func:`ecmp_paths` resolves the data-plane routes a header can take
  through the *installed* switch tables — a branching variant of
  :func:`repro.switch.forwarding.next_hop` that follows **every**
  applicable top-priority rule instead of the deterministic first one.
  Equal-priority primary rules with different out-ports coexist in a
  table (a rule's identity includes its action), which is exactly the
  OpenFlow *select*-group semantics ECMP needs.

* :class:`TenantFlows` plans and installs those rule sets for a
  workload's host pairs: up to ``ecmp`` equal-cost shortest paths at
  ``PRIMARY_PRIORITY`` plus the κ-failover detours of the first path.
  Tenant rules are owned by their **ingress switch** — always discovered
  reachable — so Renaissance's stale-owner cleanup (controllers delete
  rules whose owner left the network) never garbage-collects live tenant
  state in composed control-plane runs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.flows.failover import PRIMARY_PRIORITY, _directed_rules
from repro.net.topology import NodeId, Topology
from repro.switch.abstract_switch import AbstractSwitch
from repro.switch.flow_table import Rule

Path = Tuple[NodeId, ...]


def ecmp_paths(
    topology: Topology,
    switches: Dict[str, AbstractSwitch],
    src: NodeId,
    dst: NodeId,
    max_paths: int = 4,
    ttl: int = 64,
) -> List[Path]:
    """Every route ``src → dst`` packets can take through the installed
    tables, branching over equal-top-priority applicable rules (ECMP
    ties), up to ``max_paths``.  Mirrors ``next_hop``'s resolution order:
    direct-neighbour relay, own-detour rules, primaries, detour starts.
    """
    results: List[Path] = []

    def walk(
        node: NodeId, stamp: Optional[int], visited: Set[NodeId], path: List[NodeId]
    ) -> None:
        if len(results) >= max_paths or len(path) > ttl:
            return
        usable = topology.operational_neighbor_set(node)
        if dst in usable:
            results.append(tuple(path + [dst]))
            return
        switch = switches.get(node)
        if switch is None:
            return
        matches = switch.table.matching(src, dst)
        applicable = [
            r
            for r in matches
            if r.forward_to in usable and r.forward_to not in visited
        ]
        branches: List[Tuple[NodeId, Optional[int]]] = []
        if stamp is not None:
            own = [r for r in applicable if r.detour == stamp]
            if own:
                top = own[0].priority
                branches = [(r.forward_to, stamp) for r in own if r.priority == top]
        if not branches:
            primaries = [r for r in applicable if r.detour is None]
            if primaries:
                top = primaries[0].priority
                branches = [
                    (r.forward_to, None) for r in primaries if r.priority == top
                ]
            else:
                starts = [r for r in applicable if r.detour_start]
                if starts:
                    top = starts[0].priority
                    branches = [
                        (r.forward_to, r.detour) for r in starts if r.priority == top
                    ]
        seen: Set[NodeId] = set()
        for hop, new_stamp in branches:
            if hop in seen:
                continue
            seen.add(hop)
            walk(hop, new_stamp, visited | {hop}, path + [hop])

    walk(src, None, {src}, [src])
    return results


def equal_cost_paths(
    view: Topology, src: NodeId, dst: NodeId, k: int
) -> List[Path]:
    """Up to ``k`` shortest ``src → dst`` paths of equal length whose
    interior nodes are switches, in deterministic (lexicographic) order —
    the path set ECMP primaries are installed for."""
    dist: Dict[NodeId, int] = {dst: 0}
    frontier = deque([dst])
    while frontier:
        u = frontier.popleft()
        if u != dst and not view.is_switch(u):
            continue  # only switches relay onward
        for v in sorted(view.operational_neighbor_set(u)):
            if v not in dist:
                dist[v] = dist[u] + 1
                frontier.append(v)
    if src not in dist:
        return []
    paths: List[Path] = []
    acc: List[NodeId] = [src]

    def dfs(u: NodeId) -> None:
        if len(paths) >= k:
            return
        if u == dst:
            paths.append(tuple(acc))
            return
        for v in sorted(view.operational_neighbor_set(u)):
            if dist.get(v) != dist[u] - 1:
                continue
            if v != dst and not view.is_switch(v):
                continue
            acc.append(v)
            dfs(v)
            acc.pop()

    dfs(src)
    return paths


class TenantFlows:
    """Installs and repairs the tenant rule sets for a set of host pairs.

    Plays the role the transport layer's ``FlowMaintainer`` plays for a
    single Iperf pair, scaled to the workload's pair set and extended
    with ECMP: each pair gets up to ``ecmp`` equal-cost primary paths at
    the same priority (flows hash-split across them) and the κ-failover
    detours of the first path.  ``install()`` is also the repair
    operation — it replans against the live (failed-link-free) view.
    """

    def __init__(
        self,
        topology: Topology,
        switches: Dict[str, AbstractSwitch],
        pairs: Sequence[Tuple[NodeId, NodeId]],
        kappa: int = 1,
        ecmp: int = 4,
    ) -> None:
        self.topology = topology
        self.switches = switches
        self.pairs = list(dict.fromkeys(pairs))  # dedupe, keep order
        self.kappa = kappa
        self.ecmp = max(1, ecmp)
        self._base_max_rules: Dict[str, int] = {}

    # -- planning --------------------------------------------------------------

    def _live_view(self) -> Topology:
        live = self.topology.copy()
        for u, v in live.failed_links():
            live.remove_link(u, v)
        return live

    def plan(self) -> Dict[str, Dict[str, List[Rule]]]:
        """``owner → switch → rules`` for the current live topology."""
        view = self._live_view()
        per: Dict[str, Dict[str, List[Rule]]] = {}

        def put(owner: str, rule: Rule) -> None:
            per.setdefault(owner, {}).setdefault(rule.sid, []).append(rule)

        for src, dst in self.pairs:
            owner = src  # reachable-node ownership; see module docstring
            seen_keys: Set[tuple] = set()
            for hop_rule in _directed_rules(view, src, dst, self.kappa):
                rule = Rule(
                    cid=owner,
                    sid=hop_rule.switch,
                    src=src,
                    dst=dst,
                    priority=hop_rule.priority,
                    forward_to=hop_rule.forward_to,
                    detour=hop_rule.detour,
                    detour_start=hop_rule.detour_start,
                )
                if rule.key() not in seen_keys:
                    seen_keys.add(rule.key())
                    put(owner, rule)
            if self.ecmp > 1:
                for path in equal_cost_paths(view, src, dst, self.ecmp):
                    for hop, nxt in zip(path, path[1:]):
                        rule = Rule(
                            cid=owner,
                            sid=hop,
                            src=src,
                            dst=dst,
                            priority=PRIMARY_PRIORITY,  # an ECMP tie
                            forward_to=nxt,
                        )
                        if rule.key() not in seen_keys:
                            seen_keys.add(rule.key())
                            put(owner, rule)
        return per

    # -- installation ----------------------------------------------------------

    def _provision(self, planned_per_switch: Dict[str, int]) -> None:
        """Grow table capacity so tenant rules never fight the control
        plane's clogged-memory eviction: each switch keeps its original
        budget for controller rules plus 2× the planned tenant load."""
        for sid, planned in planned_per_switch.items():
            table = self.switches[sid].table
            base = self._base_max_rules.setdefault(sid, table.max_rules)
            table.max_rules = max(table.max_rules, base + 2 * planned + 8)

    def install(self) -> int:
        """(Re)install the tenant rule sets; returns rules installed."""
        plans = self.plan()
        planned_per_switch: Dict[str, int] = {}
        for per_switch in plans.values():
            for sid, rules in per_switch.items():
                planned_per_switch[sid] = planned_per_switch.get(sid, 0) + len(rules)
        self._provision(planned_per_switch)
        installed = 0
        owners = sorted({src for src, _ in self.pairs})
        for owner in owners:
            per_switch = plans.get(owner, {})
            for sid in sorted(per_switch):
                self.switches[sid].table.replace_rules_of(owner, per_switch[sid])
                installed += len(per_switch[sid])
            # Switches no longer on any of this owner's paths lose their
            # stale tenant rules.
            for sid, switch in self.switches.items():
                if sid not in per_switch:
                    switch.table.delete_rules_of(owner)
        return installed

    def remove(self) -> None:
        """Delete every tenant rule (end-of-phase cleanup)."""
        for owner in sorted({src for src, _ in self.pairs}):
            for switch in self.switches.values():
                switch.table.delete_rules_of(owner)


__all__ = ["TenantFlows", "ecmp_paths", "equal_cost_paths"]
