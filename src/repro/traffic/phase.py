"""The ``Traffic`` run phase: tenant flows live inside a RunPlan.

Composable with every other phase: on its own it is a data-plane
campaign (tenant rules installed onto bare or bootstrapped tables, a
fault schedule disrupting live flows, a maintainer repairing them after
``repair_latency`` — the transport layer's protocol at 10⁵–10⁶-flow
scale); after a :class:`~repro.api.phases.Bootstrap` it measures tenant
traffic riding the real in-band control plane.

The phase interleaves the event-driven control-plane simulation with the
fluid engine in fixed quanta: each quantum the simulator advances (fault
actions fire, controllers iterate), topology/table changes trigger an
engine reroute (counting disrupted flows), and the engine integrates
flow rates over the quantum.  Fault timing within a quantum is resolved
at the quantum boundary — the fluid approximation's time resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.api.phases import Phase, describe_fault_plan
from repro.api.results import PhaseResult
from repro.sim.faults import FaultPlan
from repro.traffic.engine import FluidTrafficEngine
from repro.traffic.routes import TenantFlows
from repro.traffic.workload import WorkloadSpec

#: Fault kinds that can kill paths (recoveries never disrupt).
_DISRUPTIVE = ("fail_", "remove_", "corrupt_")

_CLOCK_EPS = 1e-9


@dataclass(frozen=True)
class Traffic(Phase):
    """Load a generated workload onto the installed rule set and run it
    through a fault campaign.

    Exactly one of ``campaign`` (a named
    :data:`~repro.scenarios.campaigns.CAMPAIGNS` builder, drawn from the
    session's fault stream) and ``plan`` (an explicit relative-clock
    :class:`FaultPlan`) may be given; neither means an undisturbed run.
    """

    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    duration: float = 12.0
    campaign: Optional[str] = None
    plan: Optional[FaultPlan] = None
    #: Seconds after a disruption until the tenant maintainer re-plans
    #: its rule sets against the live topology (the transport layer's
    #: repair model).
    repair_latency: float = 1.5
    #: Fluid integration quantum (seconds of simulated time).
    quantum: float = 0.1
    #: Equal-cost paths installed (and branched over) per pair.
    ecmp: int = 4
    kappa: int = 1
    capacity_mbps: float = 10_000.0
    queue_mbits: float = 50.0

    name = "traffic"

    def describe(self) -> dict:
        doc = {
            "phase": self.name,
            "workload": self.workload.to_dict(),
            "duration": self.duration,
            "campaign": self.campaign,
            "faults": describe_fault_plan(self.plan) if self.plan else None,
            "repair_latency": self.repair_latency,
            "quantum": self.quantum,
            "ecmp": self.ecmp,
            "kappa": self.kappa,
            "capacity_mbps": self.capacity_mbps,
            "queue_mbits": self.queue_mbits,
        }
        return doc

    def execute(self, session) -> PhaseResult:
        if self.campaign is not None and self.plan is not None:
            raise ValueError("Traffic takes campaign or plan, not both")
        sim = session.sim
        topology = sim.topology
        t_start = sim.sim.now

        workload = self.workload.generate(
            hosts=topology.switches, seed=session.seed, duration=self.duration
        )
        tenant = TenantFlows(
            topology,
            sim.switches,
            workload.pairs,
            kappa=self.kappa,
            ecmp=self.ecmp,
        )
        rules_installed = tenant.install()

        plan = self.plan
        if self.campaign is not None:
            # Drawn from the shared fault stream, like InjectFaults.
            from repro.scenarios.campaigns import build_campaign

            plan = build_campaign(self.campaign, topology, session.fault_stream)
        n_faults = 0
        first_fault: Optional[float] = None
        if plan is not None and plan.actions:
            shifted = plan.shifted(t_start)
            sim.inject(shifted)
            session.fault_at = shifted.last_at()
            session.trivial_recovery = False
            n_faults = sum(
                1
                for a in shifted.actions
                if any(a.kind.startswith(p) for p in _DISRUPTIVE)
            )
            first_fault = min(a.at for a in shifted.actions)

        engine = FluidTrafficEngine(
            topology,
            sim.switches,
            workload,
            capacity_mbps=self.capacity_mbps,
            link_latency=sim.config.link_latency,
            queue_mbits=self.queue_mbits,
            max_paths=self.ecmp,
        )
        engine.now = t_start

        end = t_start + self.duration
        repairs: List[float] = []
        last_version = topology.version
        last_repair: Optional[float] = None
        while end - sim.sim.now > _CLOCK_EPS:
            target = min(sim.sim.now + self.quantum, end)
            if repairs:
                target = min(target, repairs[0])
            dt = target - sim.sim.now
            sim.run_for(dt)
            now = sim.sim.now
            if repairs and now >= repairs[0] - _CLOCK_EPS:
                repairs = [r for r in repairs if r > now + _CLOCK_EPS]
                tenant.install()
                last_repair = now
                # A planned repair is a consistent update: flows migrate
                # losslessly, so the reroute is not a disruption.
                engine.reroute(now, count_disruptions=False)
                sim.metrics.mark_event(now, "traffic_repair", None)
            if topology.version != last_version:
                last_version = topology.version
                disrupted = engine.reroute(now)
                if disrupted:
                    sim.metrics.mark_event(now, "traffic_disrupted", disrupted)
                if plan is not None:
                    repairs = sorted(set(repairs + [now + self.repair_latency]))
            engine.advance(dt)

        churn_window = None
        if first_fault is not None:
            churn_end = max(
                last_repair if last_repair is not None else first_fault,
                session.fault_at or first_fault,
            ) + self.quantum
            churn_window = (first_fault, min(churn_end, end))
        summary = engine.summary(churn_window=churn_window, n_faults=n_faults)
        summary["rules_installed"] = int(rules_installed)
        sim.metrics.record_traffic(summary)
        return PhaseResult(
            phase=self.name,
            ok=True,
            t_start=t_start,
            t_end=sim.sim.now,
            value=summary["goodput_mbps"],
            details=summary,
        )


__all__ = ["Traffic"]
