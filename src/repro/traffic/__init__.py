"""Flow-level (fluid) tenant traffic at user scale.

The paper's setting is an in-band control plane serving real tenant
traffic; this package makes that a measured axis.  A seeded
:class:`~repro.traffic.workload.WorkloadSpec` generates 10⁵–10⁶
concurrent flows over sampled host pairs, a tenant rule planner installs
ECMP multipath + κ-failover rule sets into the *real* switch tables, and
the vectorized :class:`~repro.traffic.engine.FluidTrafficEngine` solves
max-min fair per-flow rates over the installed forwarding state — so
fault campaigns that rewrite the rule set disrupt live flows, and
goodput/FCT/disruption metrics quantify the recovery the paper claims.
"""

from repro.traffic.engine import FluidTrafficEngine, HAVE_NUMPY
from repro.traffic.phase import Traffic
from repro.traffic.routes import TenantFlows, ecmp_paths, equal_cost_paths
from repro.traffic.workload import Workload, WorkloadSpec

__all__ = [
    "FluidTrafficEngine",
    "HAVE_NUMPY",
    "TenantFlows",
    "Traffic",
    "Workload",
    "WorkloadSpec",
    "ecmp_paths",
    "equal_cost_paths",
]
