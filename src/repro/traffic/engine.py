"""The vectorized fluid traffic engine.

Flow-level (not per-packet) traffic simulation over the installed rule
set.  The scale trick is two-level grouping: 10⁵–10⁶ flows collapse into
a few thousand *path groups* — one per distinct (header, ECMP path) —
and every hot quantity (max-min rates, deliveries, completions, queue
backlogs) is solved over numpy arrays indexed by group or flow:

* **Routing** — each workload pair's routes come from
  :func:`repro.traffic.routes.ecmp_paths` (the installed tables, with
  ECMP branching); flows are hash-split ``flow_index % n_paths`` across
  their pair's paths, so the split is deterministic and reroutes move
  only the flows whose path actually died.
* **Rates** — progressive water-filling: per round, each link's fair
  share is ``remaining_capacity / active_flows``; the lowest bottleneck
  level freezes its groups (or the per-flow peak rate freezes everyone
  left), capacity is consumed, repeat.  Rounds are bounded by the number
  of distinct bottleneck levels, each round a handful of vector ops.
* **Queues** — a bounded fluid queue per link: backlog integrates
  ``offered − capacity`` (offered = flows × peak), clipped to the queue
  bound; per-flow latency is path propagation + Σ backlog/capacity.
* **Clock** — :meth:`FluidTrafficEngine.advance` integrates one quantum:
  admit arrivals, solve rates, deliver ``rate·dt``, complete flows with
  exact sub-quantum completion times, update queues.

Everything is a pure function of (workload, installed tables, fault
schedule): no wall clock, no hidden RNG — bit-identical at any worker
count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.topology import EdgeId, NodeId, Topology, edge
from repro.switch.abstract_switch import AbstractSwitch
from repro.traffic.routes import Path, ecmp_paths
from repro.traffic.workload import Workload, require_numpy

try:  # pragma: no cover
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

HAVE_NUMPY = np is not None

_EPS = 1e-9


def weighted_percentile(
    values: "np.ndarray", weights: "np.ndarray", q: float
) -> Optional[float]:
    """Percentile ``q`` (0–100) of ``values`` with integer multiplicities
    ``weights`` — the flow-latency distribution lives as (group value,
    flow count) pairs, never expanded to per-flow arrays."""
    if len(values) == 0:
        return None
    order = np.argsort(values, kind="stable")
    v = values[order]
    w = weights[order]
    cw = np.cumsum(w)
    total = cw[-1]
    if total <= 0:
        return None
    cut = (q / 100.0) * total
    return float(v[int(np.searchsorted(cw, cut))])


class FluidTrafficEngine:
    """Max-min fluid rate simulation of one workload over live tables."""

    def __init__(
        self,
        topology: Topology,
        switches: Dict[str, AbstractSwitch],
        workload: Workload,
        *,
        capacity_mbps: float = 10_000.0,
        link_latency: float = 0.002,
        queue_mbits: float = 50.0,
        max_paths: int = 4,
        ttl: int = 64,
    ) -> None:
        require_numpy()
        self.topology = topology
        self.switches = switches
        self.workload = workload
        self.capacity_mbps = float(capacity_mbps)
        self.link_latency = float(link_latency)
        self.queue_mbits = float(queue_mbits)
        self.max_paths = max(1, max_paths)
        self.ttl = ttl
        self.peak = float(workload.spec.peak_rate_mbps)

        n = workload.n_flows
        self.now = 0.0
        self.remaining = workload.size_mbits.astype(np.float64).copy()
        self.arrival = workload.arrival
        self.flow_pair = workload.flow_pair
        self.flow_index = np.arange(n, dtype=np.int64)
        self.active = np.zeros(n, dtype=bool)
        self.done = np.zeros(n, dtype=bool)
        self.completion = np.full(n, -1.0)
        self.delivered_mbits = 0.0
        self.disrupted_total = 0
        self.disruption_events: List[Tuple[float, int]] = []
        self.goodput_series: List[Tuple[float, float]] = []  # (t_end, Mbit/s)

        # Link interning (stable across rebuilds so queue backlogs survive
        # reroutes); capacities are uniform for now but stored per-link.
        self._link_ids: Dict[EdgeId, int] = {}
        self._capacity = np.zeros(0)
        self._backlog = np.zeros(0)

        # Group state, populated by _rebuild_routes.
        self.flow_group = np.full(n, -1, dtype=np.int64)
        self._group_paths: List[Path] = []
        self._group_pair: "np.ndarray" = np.zeros(0, dtype=np.int64)
        self._group_hops: "np.ndarray" = np.zeros(0, dtype=np.int64)
        self._inc_group: "np.ndarray" = np.zeros(0, dtype=np.int64)
        self._inc_link: "np.ndarray" = np.zeros(0, dtype=np.int64)
        self._pair_paths: List[List[Path]] = []
        self._rebuild_routes(initial=True)

    # -- link interning --------------------------------------------------------

    def _link_id(self, u: NodeId, v: NodeId) -> int:
        key = edge(u, v)
        lid = self._link_ids.get(key)
        if lid is None:
            lid = len(self._link_ids)
            self._link_ids[key] = lid
            self._capacity = np.append(self._capacity, self.capacity_mbps)
            self._backlog = np.append(self._backlog, 0.0)
        return lid

    # -- routing ---------------------------------------------------------------

    def _rebuild_routes(self, initial: bool = False) -> int:
        """Re-resolve every pair's ECMP paths from the installed tables
        and reassign flows.  Returns the number of *disrupted* flows:
        active flows whose previous path no longer exists (their bytes in
        flight are not lost — fluid model — but they stall until
        reassigned here, and reassignment restarts their rate from the
        fair share of the new path)."""
        old_groups = self._group_paths
        old_pair = self._group_pair
        old_assignment = self.flow_group

        pair_paths: List[List[Path]] = []
        group_paths: List[Path] = []
        group_pair: List[int] = []
        pair_start = np.zeros(len(self.workload.pairs), dtype=np.int64)
        pair_npaths = np.zeros(len(self.workload.pairs), dtype=np.int64)
        for p, (src, dst) in enumerate(self.workload.pairs):
            paths = ecmp_paths(
                self.topology,
                self.switches,
                src,
                dst,
                max_paths=self.max_paths,
                ttl=self.ttl,
            )
            pair_paths.append(paths)
            pair_start[p] = len(group_paths)
            pair_npaths[p] = len(paths)
            for path in paths:
                group_paths.append(path)
                group_pair.append(p)
        self._pair_paths = pair_paths
        self._group_paths = group_paths
        self._group_pair = np.asarray(group_pair, dtype=np.int64)
        self._group_hops = np.asarray(
            [len(path) - 1 for path in group_paths], dtype=np.int64
        )

        # Link incidence (interning links lazily keeps ids stable).
        inc_g: List[int] = []
        inc_l: List[int] = []
        for gid, path in enumerate(group_paths):
            for u, v in zip(path, path[1:]):
                inc_g.append(gid)
                inc_l.append(self._link_id(u, v))
        self._inc_group = np.asarray(inc_g, dtype=np.int64)
        self._inc_link = np.asarray(inc_l, dtype=np.int64)

        # Reassign flows: keep a flow on its old path when that exact
        # path survived; rebalance the rest by index hash.
        fresh = np.where(
            pair_npaths[self.flow_pair] > 0,
            pair_start[self.flow_pair]
            + self.flow_index % np.maximum(pair_npaths[self.flow_pair], 1),
            -1,
        )
        if initial or len(old_groups) == 0:
            self.flow_group = fresh
            return 0
        new_gid_of_path = {
            (int(pair), path): gid
            for gid, (pair, path) in enumerate(zip(group_pair, group_paths))
        }
        remap = np.full(len(old_groups), -1, dtype=np.int64)
        for old_gid, path in enumerate(old_groups):
            remap[old_gid] = new_gid_of_path.get(
                (int(old_pair[old_gid]), path), -1
            )
        had_path = old_assignment >= 0
        survived = np.where(had_path, remap[np.maximum(old_assignment, 0)], -1)
        disrupted = self.active & had_path & (survived < 0)
        self.flow_group = np.where(survived >= 0, survived, fresh)
        return int(np.count_nonzero(disrupted))

    def reroute(self, now: float, count_disruptions: bool = True) -> int:
        """Re-resolve routes after the tables or topology changed; counts
        (and records) disrupted flows unless this is a planned, lossless
        repair (``count_disruptions=False``)."""
        disrupted = self._rebuild_routes()
        if count_disruptions and disrupted:
            self.disrupted_total += disrupted
            self.disruption_events.append((now, disrupted))
        return disrupted if count_disruptions else 0

    # -- rate allocation -------------------------------------------------------

    def _group_counts(self) -> "np.ndarray":
        G = len(self._group_paths)
        routed = self.active & (self.flow_group >= 0)
        return np.bincount(self.flow_group[routed], minlength=G).astype(np.float64)

    def solve_rates(self, counts: Optional["np.ndarray"] = None) -> "np.ndarray":
        """Per-flow max-min fair rate for each group (Mbit/s), honoring
        per-link capacity and the per-flow peak cap."""
        if counts is None:
            counts = self._group_counts()
        G = len(counts)
        rate = np.zeros(G)
        if G == 0:
            return rate
        remaining = self._capacity.copy()
        unfrozen = counts > 0
        inc_g, inc_l = self._inc_group, self._inc_link
        L = len(remaining)
        while unfrozen.any():
            m = unfrozen[inc_g]
            weight = np.zeros(L)
            np.add.at(weight, inc_l[m], counts[inc_g[m]])
            share = np.where(weight > 0, remaining / np.maximum(weight, _EPS), np.inf)
            gshare = np.full(G, np.inf)
            np.minimum.at(gshare, inc_g[m], share[inc_l[m]])
            level = float(gshare[unfrozen].min())
            if self.peak <= level * (1.0 + _EPS) or not np.isfinite(level):
                rate[unfrozen] = self.peak
                newly = unfrozen.copy()
            else:
                newly = unfrozen & (gshare <= level * (1.0 + 1e-9))
                rate[newly] = np.maximum(gshare[newly], 0.0)
            mn = newly[inc_g]
            np.add.at(
                remaining, inc_l[mn], -(counts[inc_g[mn]] * rate[inc_g[mn]])
            )
            np.maximum(remaining, 0.0, out=remaining)
            unfrozen &= ~newly
        return rate

    # -- time integration ------------------------------------------------------

    def advance(self, dt: float) -> None:
        """Integrate one quantum: arrivals, rates, deliveries, queues."""
        if dt <= 0:
            return
        now = self.now
        admitted = (~self.done) & (~self.active) & (self.arrival <= now + _EPS)
        if admitted.any():
            self.active |= admitted

        counts = self._group_counts()
        group_rate = self.solve_rates(counts)
        gid = np.maximum(self.flow_group, 0)
        rates = np.where(
            self.active & (self.flow_group >= 0), group_rate[gid], 0.0
        )

        with np.errstate(divide="ignore", invalid="ignore"):
            t_finish = np.where(rates > 0, self.remaining / rates, np.inf)
        finished = self.active & (t_finish <= dt + _EPS)
        delivered = np.where(finished, self.remaining, rates * dt)
        delivered = np.where(self.active, delivered, 0.0)
        window_mbits = float(delivered.sum())
        self.delivered_mbits += window_mbits
        self.remaining -= delivered
        self.completion[finished] = now + t_finish[finished]
        self.done |= finished
        self.active &= ~finished

        # Bounded fluid queues: sources offer their peak; links over
        # capacity build standing backlogs (clipped at the queue bound),
        # under-loaded links drain.
        offered = np.zeros(len(self._capacity))
        np.add.at(
            offered,
            self._inc_link,
            counts[self._inc_group] * self.peak,
        )
        self._backlog += dt * (offered - self._capacity)
        np.clip(self._backlog, 0.0, self.queue_mbits, out=self._backlog)

        self.now = now + dt
        self.goodput_series.append((self.now, window_mbits / dt))

    # -- metrics ---------------------------------------------------------------

    def latency_percentiles(
        self, qs: Sequence[float] = (50.0, 99.0, 99.9)
    ) -> Dict[str, Optional[float]]:
        """Flow-weighted path latency (propagation + queueing) right now."""
        counts = self._group_counts()
        lat = self._group_hops * self.link_latency
        queue_delay = np.zeros(len(self._group_paths))
        if len(self._inc_group):
            np.add.at(
                queue_delay,
                self._inc_group,
                self._backlog[self._inc_link]
                / np.maximum(self._capacity[self._inc_link], _EPS),
            )
        total = lat + queue_delay
        mask = counts > 0
        return {
            f"p{str(q).rstrip('0').rstrip('.')}": weighted_percentile(
                total[mask], counts[mask], q
            )
            for q in qs
        }

    def fct_percentiles(
        self,
        window: Optional[Tuple[float, float]] = None,
        qs: Sequence[float] = (50.0, 99.0, 99.9),
    ) -> Dict[str, Optional[float]]:
        """Percentiles of flow completion time (completion − arrival) over
        flows that completed, optionally restricted to completions inside
        ``window`` (the recovery window of a fault campaign)."""
        done = self.done
        if window is not None:
            lo, hi = window
            done = done & (self.completion >= lo) & (self.completion <= hi)
        fct = self.completion[done] - self.arrival[done]
        out: Dict[str, Optional[float]] = {}
        for q in qs:
            key = f"p{str(q).rstrip('0').rstrip('.')}"
            out[key] = float(np.percentile(fct, q)) if len(fct) else None
        return out

    def summary(
        self, churn_window: Optional[Tuple[float, float]] = None, n_faults: int = 0
    ) -> Dict[str, object]:
        """The JSON-able metrics block recorded into ``RunResult``."""
        n = self.workload.n_flows
        series = self.goodput_series
        goodput_mean = (
            self.delivered_mbits / self.now if self.now > 0 else 0.0
        )
        churn_samples = [
            g
            for t, g in series
            if churn_window is not None and churn_window[0] <= t <= churn_window[1]
        ]
        stalled = int(np.count_nonzero(self.active & (self.flow_group < 0)))
        fct_all = self.fct_percentiles()
        fct_recovery = (
            self.fct_percentiles(window=churn_window)
            if churn_window is not None
            else {k: None for k in ("p50", "p99", "p99.9")}
        )
        return {
            "flows": int(n),
            "pairs": len(self.workload.pairs),
            "completed": int(np.count_nonzero(self.done)),
            "active": int(np.count_nonzero(self.active)),
            "stalled": stalled,
            "delivered_mbits": float(self.delivered_mbits),
            "goodput_mbps": float(goodput_mean),
            "goodput_churn_mbps": (
                float(sum(churn_samples) / len(churn_samples))
                if churn_samples
                else float(goodput_mean)
            ),
            "n_faults": int(n_faults),
            "disrupted_total": int(self.disrupted_total),
            "disrupted_per_fault": (
                float(self.disrupted_total / n_faults) if n_faults else None
            ),
            "disruption_events": [
                [float(t), int(c)] for t, c in self.disruption_events
            ],
            "fct_p50_s": fct_all["p50"],
            "fct_p99_s": fct_all["p99"],
            "fct_p999_s": fct_all["p99.9"],
            "fct_recovery_p50_s": fct_recovery["p50"],
            "fct_recovery_p99_s": fct_recovery["p99"],
            "fct_recovery_p999_s": fct_recovery["p99.9"],
            "latency": self.latency_percentiles(),
            "goodput_series": [
                [float(t), float(g)] for t, g in series
            ],
        }


__all__ = ["FluidTrafficEngine", "HAVE_NUMPY", "weighted_percentile"]
