"""The ``traffic`` experiment spec: tenant flows under a fault campaign.

Registers one :class:`~repro.exp.spec.ExperimentSpec` named ``traffic``
whose cases report the three headline metrics of a flow-level campaign —
goodput under churn, flows disrupted per fault, and the p99 flow
completion time — each measured from the *same* content-addressed
:class:`~repro.api.RunPlan`.  With a run store attached, the first case
simulates and the other two derive from the cached run record (the
runner's ``DERIVED`` status), so a three-metric sweep costs one
simulation per repetition.

The default plan is a data-plane campaign (``controllers=0``: bare
switch fabric, the tenant maintainer repairing after each fault) — the
transport layer's protocol at 10⁵-flow scale, fast enough for
jellyfish:200 sweeps.  ``controllers>0`` composes the same phase after a
:class:`~repro.api.Bootstrap` for traffic riding the real in-band
control plane.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.api import Bootstrap, RunPlan, RunResult, Traffic
from repro.exp.spec import CaseSpec, ExperimentSpec, register
from repro.traffic.workload import WorkloadSpec

#: metric label → key into the run's traffic metrics block.
TRAFFIC_METRICS = {
    "goodput": "goodput_churn_mbps",
    "disrupted": "disrupted_per_fault",
    "fct-p99": "fct_p99_s",
}


def traffic_run_plan(
    topology: str,
    seed: int,
    flows: int = 100_000,
    pairs: int = 128,
    campaign: Optional[str] = "churn",
    duration: float = 12.0,
    ecmp: int = 4,
    n_controllers: int = 0,
    task_delay: float = 0.5,
    timeout: float = 240.0,
) -> RunPlan:
    """The facade plan of one traffic repetition."""
    workload = WorkloadSpec(flows=flows, pairs=pairs)
    phase = Traffic(
        workload=workload,
        duration=duration,
        campaign=campaign or None,
        ecmp=ecmp,
    )
    plan = RunPlan(topology, controllers=n_controllers, seed=seed)
    if n_controllers > 0:
        return plan.configure(task_delay=task_delay).then(
            Bootstrap(timeout=timeout), phase
        )
    return plan.then(phase)


def run_traffic(
    topology: str,
    seed: int,
    flows: int = 100_000,
    pairs: int = 128,
    campaign: Optional[str] = "churn",
    duration: float = 12.0,
    ecmp: int = 4,
    n_controllers: int = 0,
    task_delay: float = 0.5,
    timeout: float = 240.0,
) -> RunResult:
    """Execute one traffic repetition and return its full run record."""
    return traffic_run_plan(
        topology,
        seed,
        flows=flows,
        pairs=pairs,
        campaign=campaign,
        duration=duration,
        ecmp=ecmp,
        n_controllers=n_controllers,
        task_delay=task_delay,
        timeout=timeout,
    ).run()


def measure_traffic_metric(metric: str, **kwargs) -> float:
    """One repetition's value of the named traffic metric (NaN when the
    run recorded no value — e.g. a percentile with zero completions)."""
    key = TRAFFIC_METRICS[metric]
    result = run_traffic(**kwargs)
    block = result.traffic or {}
    value = block.get(key)
    return float(value) if value is not None else math.nan


def _traffic_cases(
    networks=None,
    topology: str = "jellyfish:200",
    campaign: str = "churn",
    flows: int = 100_000,
    pairs: int = 128,
    duration: float = 12.0,
    ecmp: int = 4,
    n_controllers: int = 0,
    task_delay: float = 0.5,
    timeout: float = 240.0,
    **_params,
) -> List[CaseSpec]:
    if networks and topology not in networks and not any(
        str(n).startswith(topology) for n in networks
    ):
        return []

    def case(metric: str) -> CaseSpec:
        return CaseSpec(
            label=f"{topology} {campaign} {metric}",
            network=topology,
            measure=lambda s: measure_traffic_metric(
                metric,
                topology=topology,
                seed=s,
                flows=flows,
                pairs=pairs,
                campaign=campaign,
                duration=duration,
                ecmp=ecmp,
                n_controllers=n_controllers,
                task_delay=task_delay,
                timeout=timeout,
            ),
            trim=False,
        )

    return [case(metric) for metric in TRAFFIC_METRICS]


register(
    ExperimentSpec(
        name="traffic",
        title="Traffic: flow-level tenant workload under a fault campaign",
        build_cases=_traffic_cases,
        notes=(
            "goodput under churn (Mbit/s), flows disrupted per fault, and "
            "p99 flow-completion time (s) of a generated 10^5-10^6-flow "
            "workload on the installed rule set"
        ),
        default_reps=1,
    )
)


__all__ = [
    "TRAFFIC_METRICS",
    "measure_traffic_metric",
    "run_traffic",
    "traffic_run_plan",
]
