"""Per-second traffic statistics — the Wireshark-side of Figures 15–20.

The paper reports, per second of the 30-second run: TCP throughput
(Mbit/s), the percentage of retransmitted packets, the percentage of
packets with "BAD TCP" flags (Wireshark's umbrella for retransmissions,
duplicate ACKs, window problems), and the percentage of out-of-order
packets.  :class:`TrafficStats` accumulates exactly those counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass
class SecondStats:
    """Counters for one wall-clock second of a traffic run."""

    second: int
    segments_delivered: int = 0
    segments_sent: int = 0
    retransmissions: int = 0
    duplicate_acks: int = 0
    out_of_order: int = 0

    @property
    def bad_tcp(self) -> int:
        """Wireshark's 'BAD TCP' umbrella: retransmissions + dup-acks."""
        return self.retransmissions + self.duplicate_acks

    def pct(self, numerator: int) -> float:
        if self.segments_sent == 0:
            return 0.0
        return 100.0 * numerator / self.segments_sent


class TrafficStats:
    """Accumulates per-second stats and renders the paper's series."""

    def __init__(
        self, mbits_per_segment: float, duration: Optional[float] = None
    ) -> None:
        self.mbits_per_segment = mbits_per_segment
        #: Nominal run length in seconds.  When set, the series span
        #: ``[0, ceil(duration))`` densely: a second that received no
        #: bucket (e.g. because a reroute or blackhole step jumped the
        #: clock across it) appears as all-zero counters instead of
        #: silently shifting every later point one position left.
        self.duration = duration
        self._seconds: Dict[int, SecondStats] = {}

    def bucket(self, time: float) -> SecondStats:
        second = int(time)
        if second not in self._seconds:
            self._seconds[second] = SecondStats(second=second)
        return self._seconds[second]

    def seconds(self) -> List[SecondStats]:
        """Per-second counters, one entry per wall-clock second.

        Dense (zero-filled gaps) over the nominal duration when it is
        known; otherwise falls back to the observed seconds in order.
        """
        if self.duration is None:
            return [self._seconds[s] for s in sorted(self._seconds)]
        horizon = math.ceil(self.duration)
        return [
            self._seconds.get(s) or SecondStats(second=s) for s in range(horizon)
        ]

    # -- the four series of Figures 15/16 and 18-20 ------------------------------

    def throughput_series(self) -> List[float]:
        """Mbit/s delivered per second (Figures 15/16)."""
        return [
            s.segments_delivered * self.mbits_per_segment for s in self.seconds()
        ]

    def retransmission_series(self) -> List[float]:
        """% of sent packets that were retransmissions (Figure 18)."""
        return [s.pct(s.retransmissions) for s in self.seconds()]

    def bad_tcp_series(self) -> List[float]:
        """% of packets with BAD-TCP flags (Figure 19)."""
        return [s.pct(s.bad_tcp) for s in self.seconds()]

    def out_of_order_series(self) -> List[float]:
        """% of out-of-order packets (Figure 20)."""
        return [s.pct(s.out_of_order) for s in self.seconds()]


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (Table 17 compares the recovery and
    no-recovery throughput series with it)."""
    n = min(len(xs), len(ys))
    if n < 2:
        raise ValueError("need at least two points")
    xs, ys = list(xs[:n]), list(ys[:n])
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        # A flatline series (e.g. a run that never delivers) has no
        # defined correlation; report NaN instead of aborting the sweep.
        return float("nan")
    return cov / math.sqrt(var_x * var_y)


__all__ = ["SecondStats", "TrafficStats", "pearson"]
