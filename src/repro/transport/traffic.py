"""Traffic workloads for the throughput experiments (Figures 15–20).

The paper places two hosts at maximal distance, streams Iperf TCP between
them for 30 seconds, and fails a link near the middle of the primary path
at the 10th second.  Two modes are compared:

* **with recovery** (Figure 15): Renaissance's tag-based consistent
  updates re-establish fresh κ-fault-resilient flows after the failure;
* **without recovery** (Figure 16): only the pre-installed backup
  (fast-failover) paths are used — no new primaries are computed.

:class:`TrafficRun` reproduces this protocol on the simulated data plane.
Host flows are installed into the *actual* switch flow tables with the
same planner the control plane uses, and the TCP path provider resolves
the route by walking those tables — so the failover and the repair are
exercised end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.topology import Topology
from repro.flows.failover import plan_flow_rules
from repro.switch.abstract_switch import AbstractSwitch
from repro.switch.flow_table import Rule
from repro.core.legitimacy import forwarding_path
from repro.transport.tcp import RenoConnection, RenoParams
from repro.transport.stats import TrafficStats


@dataclass(frozen=True)
class HostPair:
    """Two host attachment switches and the hop distance between them."""

    a: str
    b: str
    distance: int


def place_hosts_at_max_distance(topology: Topology) -> HostPair:
    """The paper's host placement: 'the distance between them is as large
    as the network diameter'."""
    best: Optional[HostPair] = None
    for switch in topology.switches:
        layers = topology.bfs_layers(switch)
        far_switches = [
            (dist, node)
            for node, dist in layers.items()
            if topology.is_switch(node)
        ]
        dist, node = max(far_switches)
        if best is None or dist > best.distance:
            best = HostPair(a=switch, b=node, distance=dist)
    if best is None:
        raise ValueError("topology has no switches")
    return best


def middle_primary_link(
    topology: Topology, pair: HostPair
) -> Tuple[str, str]:
    """The link 'as close to the middle of the primary path as possible'
    whose failure leaves a backup route available."""
    path = topology.shortest_path(pair.a, pair.b)
    if path is None or len(path) < 2:
        raise ValueError("host pair is not connected")
    hops = list(zip(path, path[1:]))
    order = sorted(range(len(hops)), key=lambda i: abs(i - len(hops) // 2))
    for idx in order:
        u, v = hops[idx]
        probe = topology.copy()
        probe.remove_link(u, v)
        if probe.connected():
            return u, v
    raise ValueError("no mid-path link can fail without disconnecting")


class FlowMaintainer:
    """Installs and (optionally) repairs the host flow in the switch
    tables — standing in for the controller's data-plane rule generation.

    ``owner`` tags the rules; the control plane treats it like any other
    rule owner.  In recovery mode, a topology change triggers a fresh
    computation ``repair_latency`` seconds later — the measured control
    plane recovery time of Figures 10–14."""

    def __init__(
        self,
        topology: Topology,
        switches: Dict[str, AbstractSwitch],
        pair: HostPair,
        owner: str = "traffic-ctrl",
        kappa: int = 1,
    ) -> None:
        self.topology = topology
        self.switches = switches
        self.pair = pair
        self.owner = owner
        self.kappa = kappa

    def install(self, view: Optional[Topology] = None) -> int:
        """(Re)compute and install host-flow rules from ``view`` (defaults
        to the live ground truth, i.e. a converged control plane's view).
        Returns the number of rules installed."""
        graph = view or self._live_view()
        plan = plan_flow_rules(graph, self.pair.a, self.pair.b, self.kappa)
        per_switch: Dict[str, List[Rule]] = {}
        for hop_rule in plan:
            if hop_rule.switch not in self.switches:
                continue
            per_switch.setdefault(hop_rule.switch, []).append(
                Rule(
                    cid=self.owner,
                    sid=hop_rule.switch,
                    src=hop_rule.src,
                    dst=hop_rule.dst,
                    priority=hop_rule.priority,
                    forward_to=hop_rule.forward_to,
                    tag=None,
                )
            )
        installed = 0
        for sid, rules in per_switch.items():
            self.switches[sid].table.replace_rules_of(self.owner, rules)
            installed += len(rules)
        # Switches no longer on any path lose their stale host rules.
        for sid, switch in self.switches.items():
            if sid not in per_switch:
                switch.table.delete_rules_of(self.owner)
        return installed

    def _live_view(self) -> Topology:
        live = self.topology.copy()
        for u, v in live.failed_links():
            live.remove_link(u, v)
        return live


@dataclass
class TrafficRun:
    """The Figures 15–20 protocol on one network.

    ``recovery=True`` re-installs fresh flows ``repair_latency`` seconds
    after the failure (Figure 15); ``recovery=False`` leaves only the
    failover detours (Figure 16).
    """

    topology: Topology
    switches: Dict[str, AbstractSwitch]
    pair: HostPair
    recovery: bool = True
    duration: float = 30.0
    failure_at: float = 10.0
    repair_latency: float = 1.5
    kappa: int = 1
    params: Optional[RenoParams] = None

    def run(self) -> TrafficStats:
        maintainer = FlowMaintainer(
            self.topology, self.switches, self.pair, kappa=self.kappa
        )
        maintainer.install()
        fail_u, fail_v = middle_primary_link(self.topology, self.pair)

        connection = RenoConnection(
            path_provider=lambda: self._current_path(),
            params=self.params,
        )
        # Dense per-second series over the whole protocol; seconds a
        # reroute jumps across stay as zero-filled buckets in place.
        connection.stats.duration = self.duration

        def advance_to(t: float) -> None:
            if connection.now < t:
                connection.run(t - connection.now)

        advance_to(self.failure_at)
        # The clamped stepping lands exactly on the boundary, so the
        # failure is injected in the advertised second, not one RTT late.
        assert connection.now == self.failure_at
        self.topology.set_link_up(fail_u, fail_v, False)
        if self.recovery:
            advance_to(self.failure_at + self.repair_latency)
            # The paper's variant repairs flows with tag-based consistent
            # updates (Section 6.2): the switch to the fresh primary is
            # planned and lossless.
            maintainer.install()
            connection.notify_consistent_update()
        advance_to(self.duration)
        return connection.stats

    def _current_path(self) -> Optional[List[str]]:
        return forwarding_path(
            self.topology, self.switches, self.pair.a, self.pair.b
        )


def standalone_switches(
    topology: Topology, max_rules: int = 100_000
) -> Dict[str, AbstractSwitch]:
    """Bare switches for data-plane-only studies (no control plane)."""
    switches: Dict[str, AbstractSwitch] = {}
    for sid in topology.switches:
        switches[sid] = AbstractSwitch(
            sid,
            alive_neighbors=(lambda s: (lambda: topology.operational_neighbors(s)))(sid),
            max_rules=max_rules,
        )
    return switches


__all__ = [
    "HostPair",
    "place_hosts_at_max_distance",
    "middle_primary_link",
    "FlowMaintainer",
    "TrafficRun",
    "standalone_switches",
]
