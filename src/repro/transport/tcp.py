"""An event-driven TCP Reno model (paper Section 6.4.3).

The paper generates Iperf TCP traffic and observes Reno's reaction to a
mid-path link failure: a throughput valley in the failure second, a spike
of retransmissions and "BAD TCP" flags to the 10–15 % band, and a smaller
out-of-order bump — all consequences of the brief blackhole between the
link dying and the fast-failover (or new primary) path taking over.

:class:`RenoConnection` advances in RTT-sized steps against a *path
provider* (a callable returning the current data-plane route, resolved
through the real switch tables).  The model implements:

* slow start / congestion avoidance / fast retransmit + fast recovery;
* a receiver-window cap, which reproduces the host-limited ~500 Mbit/s
  plateau of the paper's Mininet runs (link capacity is 1000 Mbit/s);
* a failover blackhole: on a path change, everything sent during
  ``failover_latency`` is lost and must be retransmitted — this is what
  drives the Figure 18/19 spike — and a window's worth of segments that
  raced both paths arrives out of order (Figure 20);
* a small stochastic baseline loss, giving the sub-1 % noise floor the
  paper's counters show before the failure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.transport.stats import TrafficStats


@dataclass
class RenoParams:
    """Model constants; defaults tuned to the paper's testbed scale."""

    #: Segment payload in megabits (1500-byte MTU segments).
    segment_mbits: float = 0.012
    #: Raw link capacity (the paper sets 1000 Mbit/s).
    capacity_mbps: float = 1000.0
    #: Host-side efficiency: Mininet host stacks saturate around half the
    #: raw link rate, giving the ~500-525 Mbit/s plateau of Figure 15.
    host_efficiency: float = 0.52
    #: Per-hop one-way propagation + processing delay (seconds).
    per_hop_delay: float = 0.001
    #: Minimum round-trip time (seconds).
    base_rtt: float = 0.004
    #: Receiver window in multiples of the effective BDP.
    rwnd_bdp_factor: float = 2.0
    #: Blackhole between link death and the backup rules taking over.
    failover_latency: float = 0.12
    #: Fraction of one window that arrives out of order after a reroute.
    reorder_window_fraction: float = 0.35
    #: Baseline random segment-loss probability.
    baseline_loss: float = 0.0005
    seed: int = 0


class RenoConnection:
    """One long-lived TCP Reno flow over the simulated data plane."""

    def __init__(
        self,
        path_provider: Callable[[], Optional[List[str]]],
        params: Optional[RenoParams] = None,
    ) -> None:
        self.params = params or RenoParams()
        self._path_provider = path_provider
        self._rng = random.Random(self.params.seed)
        self.stats = TrafficStats(self.params.segment_mbits)
        # Reno state (units: segments).
        self.cwnd = 2.0
        self.ssthresh = 1e9
        self._backlog_retrans = 0
        self._last_path: Optional[Tuple[str, ...]] = None
        #: Hop count of the last successfully resolved path; used to size
        #: the RTO step while blackholed (before the first resolution a
        #: mid-size 4-hop path is assumed).
        self._last_hops = 4
        self._in_blackhole = False
        self._consistent_update_pending = False
        self.now = 0.0

    # -- derived quantities ---------------------------------------------------

    def _rtt(self, path_len_hops: int) -> float:
        return self.params.base_rtt + 2 * self.params.per_hop_delay * path_len_hops

    def _effective_capacity_mbps(self, path_len_hops: int) -> float:
        """Host-limited plateau, slightly decreasing with path length —
        the longer-diameter networks sit a few Mbit/s lower in Figure 15."""
        p = self.params
        return p.capacity_mbps * p.host_efficiency / (1.0 + 0.004 * path_len_hops)

    def _rwnd(self, path_len_hops: int) -> float:
        p = self.params
        bdp_segments = (
            self._effective_capacity_mbps(path_len_hops)
            * self._rtt(path_len_hops)
            / p.segment_mbits
        )
        return max(4.0, p.rwnd_bdp_factor * bdp_segments)

    # -- simulation ----------------------------------------------------------------

    _CLOCK_EPS = 1e-9

    def run(self, duration: float) -> TrafficStats:
        """Advance the connection for exactly ``duration`` seconds.

        The final step is clamped to the boundary: a step whose RTT would
        overshoot ``end`` is scaled down to the remaining fraction, so no
        bucket ever accumulates time past the horizon (the old behaviour
        reported a partial trailing second as a full one — a spurious
        terminal valley in Figure 15 — and made ``advance_to`` land up to
        one RTT late)."""
        end = self.now + duration
        while end - self.now > self._CLOCK_EPS:
            self._step(end)
        self.now = end  # snap away float residue so callers can compare
        return self.stats

    def _step(self, limit: float) -> None:
        path = self._path_provider()
        if path is None:
            self._step_blackhole(limit)
            return
        hops = len(path) - 1
        rtt = self._rtt(hops)
        path_key = tuple(path)
        self._in_blackhole = False
        self._last_hops = hops
        if self._last_path is not None and path_key != self._last_path:
            self._on_reroute(hops, limit)
        self._last_path = path_key
        dt = min(rtt, limit - self.now)
        if dt <= 0:
            return
        self._step_transfer(hops, rtt, dt / rtt)
        self.now += dt

    def _step_blackhole(self, limit: float) -> None:
        """No route at all: everything sent is lost; RTO fires.

        ``ssthresh`` halves only on the *first* RTO of the outage (one
        loss event): Reno's retry timeouts do not keep collapsing it, so
        after the route returns, slow start climbs back to half the old
        window and recovery is fast."""
        full_dt = max(self._rtt(self._last_hops), 0.01)
        dt = min(full_dt, limit - self.now)
        if dt <= 0:
            return
        bucket = self.stats.bucket(self.now)
        sent = int(self.cwnd * (dt / full_dt))
        bucket.segments_sent += sent
        self._backlog_retrans += sent
        if not self._in_blackhole:
            self.ssthresh = max(2.0, self.cwnd / 2.0)
            self._in_blackhole = True
        self.cwnd = 2.0  # timeout: back to slow start
        self.now += dt

    def notify_consistent_update(self) -> None:
        """The control plane announced a tag-based consistent update
        (paper Section 6.2): the next path change is planned, per-packet
        consistent, and therefore lossless — only mild reordering occurs
        while in-flight packets drain from the old path."""
        self._consistent_update_pending = True

    def _on_reroute(self, hops: int, limit: float) -> None:
        """The path changed: model the failover blackhole + reordering."""
        p = self.params
        if self._consistent_update_pending:
            self._consistent_update_pending = False
            bucket = self.stats.bucket(self.now)
            reordered = int(min(self.cwnd, self._rwnd(hops)) * 0.05)
            bucket.out_of_order += reordered
            return
        rate_segments = self._effective_capacity_mbps(hops) / p.segment_mbits
        lost = int(rate_segments * p.failover_latency)
        bucket = self.stats.bucket(self.now)
        bucket.segments_sent += lost  # sent into the void
        self._backlog_retrans += lost
        reordered = int(min(self.cwnd, self._rwnd(hops)) * p.reorder_window_fraction)
        bucket.out_of_order += reordered
        bucket.duplicate_acks += reordered // 3  # every 3 dup-acks noted
        # Fast retransmit / fast recovery: halve, skip slow start.
        self.ssthresh = max(2.0, self.cwnd / 2.0)
        self.cwnd = self.ssthresh
        # The blackhole consumes wall-clock before delivery resumes (it
        # may legitimately jump the clock across whole seconds; the dense
        # series keeps those seconds as zero-filled buckets).
        self.now = min(self.now + p.failover_latency, limit)

    def _step_transfer(self, hops: int, rtt: float, fraction: float = 1.0) -> None:
        """One RTT's worth of transfer, scaled by ``fraction`` when the
        step was clamped at a run boundary (a partial final step sends and
        grows proportionally less)."""
        p = self.params
        bucket = self.stats.bucket(self.now)
        rwnd = self._rwnd(hops)
        window = min(self.cwnd, rwnd)
        capacity_per_rtt = self._effective_capacity_mbps(hops) * rtt / p.segment_mbits
        budget = int(min(window, capacity_per_rtt) * fraction)
        if budget <= 0:
            if fraction < 1.0:
                return  # a sliver too short to carry a segment
            budget = 1
        # Retransmissions drain first (they occupy the same window space).
        retrans = min(self._backlog_retrans, budget)
        fresh = budget - retrans
        self._backlog_retrans -= retrans
        # Baseline stochastic loss on fresh data.
        lost = sum(
            1 for _ in range(fresh) if self._rng.random() < p.baseline_loss
        )
        delivered = retrans + fresh - lost
        self._backlog_retrans += lost
        bucket.segments_sent += budget
        bucket.retransmissions += retrans
        bucket.segments_delivered += delivered
        if lost:
            bucket.duplicate_acks += lost
        # Window growth: slow start doubles per RTT, congestion avoidance
        # adds one segment per RTT; the receiver window caps everything.
        # Partial steps grow linearly in the elapsed fraction of an RTT
        # (identical to the old rule when fraction == 1).
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd * (1.0 + fraction), rwnd)
        else:
            self.cwnd = min(self.cwnd + fraction, rwnd)


__all__ = ["RenoParams", "RenoConnection"]
