"""Data-plane transport substrate for the throughput experiments.

The paper measures Iperf TCP throughput between two hosts while a link on
the primary path fails (Figures 15–20), dissecting the traffic with
Wireshark (retransmissions, "BAD TCP" flags, out-of-order packets).  We
substitute an event-driven **TCP Reno** model (:mod:`repro.transport.tcp`)
driven over the simulated data plane: slow start, congestion avoidance,
fast retransmit / fast recovery — the control law whose reaction to the
path change produces the paper's throughput valley and counter spikes.
"""

from repro.transport.tcp import RenoConnection, RenoParams
from repro.transport.traffic import HostPair, place_hosts_at_max_distance, TrafficRun
from repro.transport.stats import SecondStats, TrafficStats, pearson

__all__ = [
    "RenoConnection",
    "RenoParams",
    "HostPair",
    "place_hosts_at_max_distance",
    "TrafficRun",
    "SecondStats",
    "TrafficStats",
    "pearson",
]
