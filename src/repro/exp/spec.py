"""Declarative experiment specifications for the paper's Section 6.

Every figure/table of the evaluation is registered here as an
:class:`ExperimentSpec`: a pure description of *what* to measure — which
networks, which fault plan, which measurement extractor, how many
repetitions — with execution left entirely to :mod:`repro.exp.runner`.
The split lets one spec run serially, over a process pool, or filtered to
a single network from the CLI, always producing the same series.

A spec's ``build_cases`` expands it into concrete :class:`CaseSpec` rows
(one per plotted label).  Case measurement callables are (re)built inside
whichever process executes them, so nothing here needs to be picklable
beyond the spec name and its parameters.

All experiments follow the paper's protocol (Section 6.3/6.4): task delay
500 ms, Θ = 10 for B4/Clos and 30 for the Rocketfuel networks, N
repetitions per data point with the two extrema dismissed, and violin
summaries of the rest.  Repetition counts default to the paper's 20 but
are parameters — the benchmark suite uses smaller counts to keep wall
time reasonable; shapes are stable from ~5 repetitions on.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

# THETA/TIMEOUT are canonically defined by the public facade (repro.api)
# and re-exported here so figure code and tests keep one import path.
from repro.api import (
    THETA,
    TIMEOUT,
    AwaitLegitimacy,
    Bootstrap,
    InjectFaults,
    RunPlan,
    RunResult,
)
from repro.net.topologies import TOPOLOGY_BUILDERS, TABLE8_EXPECTED
from repro.sim.network_sim import NetworkSimulation
from repro.sim.faults import FaultPlan, random_link, removable_switch
from repro.sim.metrics import summarize, trimmed
from repro.transport.traffic import (
    TrafficRun,
    place_hosts_at_max_distance,
    standalone_switches,
)
from repro.transport.stats import TrafficStats, pearson

SMALL_NETWORKS = ("B4", "Clos")
ROCKETFUEL_NETWORKS = ("Telstra", "AT&T", "EBONE")
ALL_NETWORKS = SMALL_NETWORKS + ROCKETFUEL_NETWORKS
#: Table 17's network list (the paper swaps AT&T for Exodus there).
TABLE17_NETWORKS = ("Clos", "B4", "Telstra", "EBONE", "Exodus")

#: What a case measurement yields: one repetition value (``None`` on
#: timeout) or — for ``series`` cases — the whole plotted series at once.
Measurement = Union[Optional[float], List[float]]


@dataclass
class ExperimentResult:
    """One figure's regenerated data: label → repetition measurements."""

    name: str
    series: Dict[str, List[float]] = field(default_factory=dict)
    notes: str = ""
    #: How each repetition was obtained when a run store was in play
    #: (``{"hit": n, "derived": n, "simulated": n}``).  Diagnostic only:
    #: excluded from equality and from the serialized form, so cold and
    #: warm sweeps emit byte-identical JSON.
    cache_stats: Optional[Dict[str, int]] = field(
        default=None, compare=False, repr=False
    )

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {label: summarize(vals) for label, vals in self.series.items() if vals}

    def rows(self) -> List[str]:
        """Printable rows in the style of the paper's figures."""
        lines = [f"== {self.name} =="]
        for label, values in self.series.items():
            if not values:
                lines.append(f"{label:>24}: (no data)")
                continue
            s = summarize(values)
            lines.append(
                f"{label:>24}: median={s['median']:8.2f}  "
                f"q1={s['q1']:8.2f}  q3={s['q3']:8.2f}  "
                f"min={s['min']:8.2f}  max={s['max']:8.2f}  n={int(s['n'])}"
            )
        if self.notes:
            lines.append(f"   note: {self.notes}")
        return lines

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form; the embedded summary is derived, not stored."""
        return {
            "name": self.name,
            "series": {label: list(values) for label, values in self.series.items()},
            "notes": self.notes,
            "summary": self.summary(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        return cls(
            name=data["name"],
            series={label: list(values) for label, values in data["series"].items()},
            notes=data.get("notes", ""),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class CaseSpec:
    """One plotted label of an experiment.

    ``measure`` maps a repetition seed to a :data:`Measurement`.  ``series``
    cases produce their whole series in a single call (the deterministic
    traffic experiments); repeated cases produce one scalar per repetition
    and are trimmed of their extrema per the paper's protocol unless
    ``trim`` is off.
    """

    label: str
    network: Optional[str]
    measure: Callable[[int], Measurement]
    series: bool = False
    trim: bool = True


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative, registry-addressable experiment description."""

    name: str  # registry id, e.g. "fig5"
    title: str  # printed heading, e.g. "Figure 5: bootstrap time, ..."
    build_cases: Callable[..., List[CaseSpec]]
    notes: str = ""
    default_reps: int = 20

    def cases(
        self, networks: Optional[Sequence[str]] = None, **params
    ) -> List[CaseSpec]:
        return self.build_cases(networks=networks, **params)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

SPECS: Dict[str, ExperimentSpec] = {}

#: Modules that register further specs on import (the scenario subsystem
#: lives above this layer).  Loaded lazily on first registry access so the
#: registry is complete in *any* process — including ``spawn``-start pool
#: workers that resolve specs by name — without creating an import cycle
#: at package-init time.
_DEFERRED_SPEC_MODULES: List[str] = [
    "repro.scenarios.spec",
    "repro.adversary.spec",
    "repro.traffic.spec",
]


def _load_deferred_specs() -> None:
    import importlib

    while _DEFERRED_SPEC_MODULES:
        # Pop only after a successful import: a failing module stays queued
        # so every registry access re-raises the root ImportError instead of
        # a misleading "unknown spec".
        importlib.import_module(_DEFERRED_SPEC_MODULES[-1])
        _DEFERRED_SPEC_MODULES.pop()


def register(spec: ExperimentSpec) -> ExperimentSpec:
    if spec.name in SPECS:
        raise ValueError(f"duplicate experiment spec: {spec.name}")
    SPECS[spec.name] = spec
    return spec


def get_spec(name: str) -> ExperimentSpec:
    _load_deferred_specs()
    try:
        return SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(sorted(SPECS))}"
        ) from None


def list_specs() -> List[str]:
    _load_deferred_specs()
    return sorted(SPECS)


# ---------------------------------------------------------------------------
# shared measurement machinery
# ---------------------------------------------------------------------------


def _bootstrap_time(
    network: str,
    n_controllers: int,
    seed: int,
    task_delay: float = 0.5,
) -> Tuple[Optional[float], RunResult]:
    """Bootstrap to legitimacy through the facade; returns the paper's
    bootstrap-time measurement plus the full serializable run record."""
    result = (
        RunPlan(network, controllers=n_controllers, seed=seed)
        .configure(task_delay=task_delay)
        .then(Bootstrap(timeout=TIMEOUT[network]))
        .run()
    )
    return result.bootstrap_time, result


def _recovery_time(
    network: str,
    n_controllers: int,
    seed: int,
    fault_builder: Callable[[NetworkSimulation, random.Random], FaultPlan],
    fault_label: str,
) -> Optional[float]:
    """Bootstrap to a legitimate state, inject the fault plan, and measure
    the time back to legitimacy (the paper's recovery protocol).

    ``fault_label`` names the builder (with its parameters) in the run's
    content address — see :class:`~repro.api.phases.InjectFaults`.
    """
    result = (
        RunPlan(network, controllers=n_controllers, seed=seed)
        .then(
            Bootstrap(timeout=TIMEOUT[network]),
            InjectFaults(builder=fault_builder, label=fault_label),
            AwaitLegitimacy(timeout=TIMEOUT[network]),
        )
        .run()
    )
    return result.recovery_time


def _traffic_stats(network: str, recovery: bool, seed: int = 0) -> TrafficStats:
    topology = TOPOLOGY_BUILDERS[network]()
    pair = place_hosts_at_max_distance(topology)
    switches = standalone_switches(topology)
    run = TrafficRun(topology, switches, pair, recovery=recovery)
    return run.run()


def _networks(networks: Optional[Sequence[str]], default: Sequence[str]) -> Sequence[str]:
    return tuple(networks) if networks else tuple(default)


# ---------------------------------------------------------------------------
# Table 8 — network statistics
# ---------------------------------------------------------------------------


def _table8_stat(network: str, index: int) -> List[float]:
    topo = TOPOLOGY_BUILDERS[network]()
    if index == 0:
        return [float(len(topo.switches))]
    if index == 1:
        return [float(topo.diameter())]
    return [float(topo.edge_connectivity())]


def _table8_cases(networks=None, **_params) -> List[CaseSpec]:
    cases: List[CaseSpec] = []
    for network in TABLE8_EXPECTED:
        if networks and network not in networks:
            continue
        for index, metric in enumerate(("nodes", "diameter", "edge connectivity")):
            cases.append(
                CaseSpec(
                    label=f"{network} {metric}",
                    network=network,
                    measure=lambda s, n=network, i=index: _table8_stat(n, i),
                    series=True,
                )
            )
    return cases


register(
    ExperimentSpec(
        name="table8",
        title="Table 8: topology statistics",
        build_cases=_table8_cases,
        notes="paper: B4 12/5, Clos 20/4, Telstra 57/8, AT&T 172/10, EBONE 208/11",
    )
)


# ---------------------------------------------------------------------------
# Figures 5-7 — bootstrap time
# ---------------------------------------------------------------------------


def _fig5_cases(networks=None, **_params) -> List[CaseSpec]:
    return [
        CaseSpec(
            label=network,
            network=network,
            measure=lambda s, n=network: _bootstrap_time(n, 3, s)[0],
        )
        for network in _networks(networks, ALL_NETWORKS)
    ]


register(
    ExperimentSpec(
        name="fig5",
        title="Figure 5: bootstrap time, 3 controllers",
        build_cases=_fig5_cases,
        notes="paper medians roughly 5-55 s growing with network size/diameter",
    )
)


def _fig6_cases(networks=None, controller_counts=(1, 3, 5, 7), **_params) -> List[CaseSpec]:
    cases = []
    for network in _networks(networks, ROCKETFUEL_NETWORKS):
        for n_ctrl in controller_counts:
            cases.append(
                CaseSpec(
                    label=f"{network} x{n_ctrl}",
                    network=network,
                    measure=lambda s, n=network, c=n_ctrl: _bootstrap_time(n, c, s)[0],
                )
            )
    return cases


register(
    ExperimentSpec(
        name="fig6",
        title="Figure 6: bootstrap vs controller count",
        build_cases=_fig6_cases,
        notes="paper: grows with network size; mildly with controller count",
    )
)


def _fig7_cases(
    networks=None,
    delays=(1.0, 0.9, 0.7, 0.5, 0.3, 0.1, 0.08, 0.06, 0.04, 0.02, 0.005),
    n_controllers=7,
    **_params,
) -> List[CaseSpec]:
    cases = []
    for network in _networks(networks, ALL_NETWORKS):
        for delay in delays:
            cases.append(
                CaseSpec(
                    label=f"{network} d={delay}",
                    network=network,
                    measure=lambda s, n=network, d=delay, c=n_controllers: _bootstrap_time(
                        n, c, s, task_delay=d
                    )[0],
                )
            )
    return cases


register(
    ExperimentSpec(
        name="fig7",
        title="Figure 7: bootstrap vs task delay",
        build_cases=_fig7_cases,
        notes=(
            "paper: proportional to the delay until congestion raises the small-"
            "delay end; the simulator has no queueing so the small-delay end "
            "flattens instead of peaking"
        ),
        default_reps=5,
    )
)


# ---------------------------------------------------------------------------
# Figure 9 — communication overhead
# ---------------------------------------------------------------------------


def _fig9_measure(network: str, seed: int) -> Optional[float]:
    n_ctrl = 3 if network in SMALL_NETWORKS else 7
    t, result = _bootstrap_time(network, n_ctrl, seed)
    if t is None:
        return None
    return result.metrics["max_load_per_node_per_iteration"]


def _fig9_cases(networks=None, **_params) -> List[CaseSpec]:
    return [
        CaseSpec(
            label=network,
            network=network,
            measure=lambda s, n=network: _fig9_measure(n, s),
        )
        for network in _networks(networks, ALL_NETWORKS)
    ]


register(
    ExperimentSpec(
        name="fig9",
        title="Figure 9: communication cost per node",
        build_cases=_fig9_cases,
        notes="paper: ~5-25 messages per node per iteration, similar across networks",
    )
)


# ---------------------------------------------------------------------------
# Figures 10-14 — recovery from benign failures
# ---------------------------------------------------------------------------


def _controller_fault(sim: NetworkSimulation, rng: random.Random) -> FaultPlan:
    victim = rng.choice(sim.topology.controllers)
    return FaultPlan().fail_node(sim.sim.now + 0.05, victim)


def _fig10_cases(networks=None, **_params) -> List[CaseSpec]:
    return [
        CaseSpec(
            label=network,
            network=network,
            measure=lambda s, n=network: _recovery_time(
                n, 3, s, _controller_fault, "controller_fault"
            ),
        )
        for network in _networks(networks, ALL_NETWORKS)
    ]


register(
    ExperimentSpec(
        name="fig10",
        title="Figure 10: recovery after controller fail-stop",
        build_cases=_fig10_cases,
        notes="paper: O(D) — a few seconds, well below bootstrap time",
    )
)


def _multi_controller_fault(kill: int):
    def fault(sim: NetworkSimulation, rng: random.Random) -> FaultPlan:
        victims = rng.sample(sim.topology.controllers, kill)
        plan = FaultPlan()
        for victim in victims:
            plan.fail_node(sim.sim.now + 0.05, victim)
        return plan

    return fault


def _fig11_cases(networks=None, kill_counts=(1, 2, 3, 4, 5, 6), **_params) -> List[CaseSpec]:
    cases = []
    for network in _networks(networks, ROCKETFUEL_NETWORKS):
        for kill in kill_counts:
            cases.append(
                CaseSpec(
                    label=f"{network} kill={kill}",
                    network=network,
                    measure=lambda s, n=network, k=kill: _recovery_time(
                        n, 7, s, _multi_controller_fault(k),
                        f"multi_controller_fault:{k}",
                    ),
                )
            )
    return cases


register(
    ExperimentSpec(
        name="fig11",
        title="Figure 11: recovery after multi-controller fail-stop",
        build_cases=_fig11_cases,
        notes="paper: no clear relation between kill count and recovery time",
    )
)


def _switch_fault(sim: NetworkSimulation, rng: random.Random) -> FaultPlan:
    victim = removable_switch(sim.topology, rng)
    return FaultPlan().remove_node(sim.sim.now + 0.05, victim)


def _fig12_cases(networks=None, **_params) -> List[CaseSpec]:
    return [
        CaseSpec(
            label=network,
            network=network,
            measure=lambda s, n=network: _recovery_time(
                n, 3, s, _switch_fault, "switch_fault"
            ),
        )
        for network in _networks(networks, ALL_NETWORKS)
    ]


register(
    ExperimentSpec(
        name="fig12",
        title="Figure 12: recovery after switch failure",
        build_cases=_fig12_cases,
        notes="paper: O(D), grows with diameter, large variance",
    )
)


def _link_fault(sim: NetworkSimulation, rng: random.Random) -> FaultPlan:
    u, v = random_link(sim.topology, rng, protect_connectivity=True)
    return FaultPlan().remove_link(sim.sim.now + 0.05, u, v)


def _fig13_cases(networks=None, **_params) -> List[CaseSpec]:
    return [
        CaseSpec(
            label=network,
            network=network,
            measure=lambda s, n=network: _recovery_time(
                n, 3, s, _link_fault, "link_fault"
            ),
        )
        for network in _networks(networks, ALL_NETWORKS)
    ]


register(
    ExperimentSpec(
        name="fig13",
        title="Figure 13: recovery after link failure",
        build_cases=_fig13_cases,
        notes="paper: O(D)",
    )
)


def _multi_link_fault(count: int):
    def fault(sim: NetworkSimulation, rng: random.Random) -> FaultPlan:
        plan = FaultPlan()
        probe = sim.topology.copy()
        picked = 0
        links = list(probe.links)
        rng.shuffle(links)
        for u, v in links:
            if picked >= count:
                break
            trial = probe.copy()
            trial.remove_link(u, v)
            if trial.connected():
                probe = trial
                plan.remove_link(sim.sim.now + 0.05, u, v)
                picked += 1
        return plan

    return fault


def _fig14_cases(networks=None, fail_counts=(2, 4, 6), **_params) -> List[CaseSpec]:
    cases = []
    for network in _networks(networks, ALL_NETWORKS):
        for count in fail_counts:
            cases.append(
                CaseSpec(
                    label=f"{network} k={count}",
                    network=network,
                    measure=lambda s, n=network, k=count: _recovery_time(
                        n, 3, s, _multi_link_fault(k), f"multi_link_fault:{k}"
                    ),
                )
            )
    return cases


register(
    ExperimentSpec(
        name="fig14",
        title="Figure 14: recovery after multiple link failures",
        build_cases=_fig14_cases,
        notes="paper: failure count does not significantly change recovery time",
    )
)


# ---------------------------------------------------------------------------
# Figures 15/16, Table 17, Figures 18-20 — traffic under failure
# ---------------------------------------------------------------------------


def _traffic_series_cases(
    networks: Optional[Sequence[str]],
    default: Sequence[str],
    extract: Callable[[str, int], List[float]],
) -> List[CaseSpec]:
    return [
        CaseSpec(
            label=network,
            network=network,
            measure=lambda s, n=network: extract(n, s),
            series=True,
        )
        for network in _networks(networks, default)
    ]


def _fig15_cases(networks=None, **_params) -> List[CaseSpec]:
    return _traffic_series_cases(
        networks,
        ALL_NETWORKS,
        lambda n, s: _traffic_stats(n, recovery=True).throughput_series(),
    )


register(
    ExperimentSpec(
        name="fig15",
        title="Figure 15: throughput with recovery",
        build_cases=_fig15_cases,
        notes="series are per-second Mbit/s; expect one valley at second 10",
    )
)


def _fig16_cases(networks=None, **_params) -> List[CaseSpec]:
    return _traffic_series_cases(
        networks,
        ALL_NETWORKS,
        lambda n, s: _traffic_stats(n, recovery=False).throughput_series(),
    )


register(
    ExperimentSpec(
        name="fig16",
        title="Figure 16: throughput without recovery",
        build_cases=_fig16_cases,
        notes="paper: nearly identical to Figure 15",
    )
)


def _table17_measure(network: str, seed: int) -> List[float]:
    with_rec = _traffic_stats(network, recovery=True).throughput_series()
    without = _traffic_stats(network, recovery=False).throughput_series()
    return [pearson(with_rec, without)]


def _table17_cases(networks=None, **_params) -> List[CaseSpec]:
    return _traffic_series_cases(networks, TABLE17_NETWORKS, _table17_measure)


register(
    ExperimentSpec(
        name="table17",
        title="Table 17: recovery vs no-recovery correlation",
        build_cases=_table17_cases,
        notes="paper: 0.92-0.96",
    )
)


def _fig18_cases(networks=None, **_params) -> List[CaseSpec]:
    return _traffic_series_cases(
        networks,
        ALL_NETWORKS,
        lambda n, s: _traffic_stats(n, recovery=True).retransmission_series(),
    )


register(
    ExperimentSpec(
        name="fig18",
        title="Figure 18: retransmission rate",
        build_cases=_fig18_cases,
        notes="paper: <1% baseline, 10-15% spike after the failure, fast decay",
    )
)


def _fig19_cases(networks=None, **_params) -> List[CaseSpec]:
    return _traffic_series_cases(
        networks,
        ALL_NETWORKS,
        lambda n, s: _traffic_stats(n, recovery=True).bad_tcp_series(),
    )


register(
    ExperimentSpec(
        name="fig19",
        title="Figure 19: BAD TCP flags",
        build_cases=_fig19_cases,
        notes="paper: spike to 10-18% at the failure second",
    )
)


def _fig20_cases(networks=None, **_params) -> List[CaseSpec]:
    return _traffic_series_cases(
        networks,
        ALL_NETWORKS,
        lambda n, s: _traffic_stats(n, recovery=True).out_of_order_series(),
    )


register(
    ExperimentSpec(
        name="fig20",
        title="Figure 20: out-of-order packets",
        build_cases=_fig20_cases,
        notes="paper: much smaller presence, up to ~3%",
    )
)


__all__ = [
    "ALL_NETWORKS",
    "CaseSpec",
    "ExperimentResult",
    "ExperimentSpec",
    "Measurement",
    "ROCKETFUEL_NETWORKS",
    "SMALL_NETWORKS",
    "SPECS",
    "TABLE17_NETWORKS",
    "THETA",
    "TIMEOUT",
    "get_spec",
    "list_specs",
    "register",
    "trimmed",
]
