"""Deterministic seed derivation for parallel experiment repetitions.

Every repetition of every experiment case derives its simulation seed from
``(base_seed, rep_index)`` alone — never from a module-global ``random``
state — so a repetition computes the same measurement no matter which
worker process runs it, in which order.  That invariant is what makes the
parallel runner's series bit-identical to serial execution.

The derivation is affine rather than hashed on purpose: with the default
``base_seed = 0`` it reproduces the seed sequence ``0, 1, 2, …`` the
original serial harness used, so regenerated figures stay comparable
across versions of this repository.
"""

from __future__ import annotations

import random

#: Stride between base-seed streams; repetition counts in this repo are
#: far below it, so distinct base seeds yield disjoint seed sequences.
_BASE_STRIDE = 1_000_003


def derive_seed(base_seed: int, rep_index: int) -> int:
    """Seed of repetition ``rep_index`` under ``base_seed``.

    ``derive_seed(0, i) == i`` — the historical serial seeds.
    """
    if rep_index < 0:
        raise ValueError(f"negative repetition index: {rep_index}")
    return base_seed * _BASE_STRIDE + rep_index


def rep_rng(base_seed: int, rep_index: int) -> random.Random:
    """A fresh, injectable randomness source for one repetition."""
    return random.Random(derive_seed(base_seed, rep_index))


def fault_rng(seed: int) -> random.Random:
    """The fault-plan randomness stream of one repetition.

    Decorrelated from the simulation's own stream by the historical affine
    step (kept verbatim so regenerated recovery figures match earlier
    versions of this repository).
    """
    return random.Random(seed * 7919 + 13)


def adversary_rng(seed: int) -> random.Random:
    """The arbitrary-state-corruption stream of one repetition.

    Decorrelated from both the simulation stream (``Random(seed)``) and
    the fault stream by its own affine step, so corrupting the initial
    state never perturbs the event interleaving or a later fault campaign
    of the same repetition.
    """
    return random.Random(seed * 6_700_417 + 29)


__all__ = ["derive_seed", "rep_rng", "fault_rng", "adversary_rng"]
