"""Parallel repetition runner for declarative experiment specs.

The runner expands an :class:`~repro.exp.spec.ExperimentSpec` into a flat
list of repetition tasks, executes them — in-process or fanned out over a
``multiprocessing`` pool — and merges the outcomes into an
:class:`~repro.exp.spec.ExperimentResult`.

**Determinism contract.**  A repetition's measurement is a pure function
of ``(spec name, networks, params, case index, seed)``: the seed is
derived from ``(base_seed, rep_index)`` by :mod:`repro.exp.seeding`, the
measurement callable is rebuilt from the registry inside whichever
process runs the task, and outcomes are merged by ``(case, repetition)``
index rather than completion order.  Serial and parallel execution of the
same spec therefore produce bit-identical series — the property the
determinism tests pin down.

**Persistence.**  With a ``store`` the runner becomes resumable: each
completed repetition is written through to a content-addressed
:class:`~repro.store.store.RunStore` *from the process that ran it* (so
an interrupted sweep keeps everything finished so far), and a stored
repetition is loaded instead of measured on re-invocation.  The task's
identity dict doubles as the lookup key, which is why the pure-function
contract above matters: the same task always addresses the same record.
Underneath, the measurement executes with the store *active*, so every
:meth:`~repro.api.plan.RunPlan.run` it performs is content-addressed
too — a sweep re-filtered to other networks or repetitions still reuses
every simulation it already ran.

Workers receive only primitive task tuples; nothing closure-shaped ever
crosses the process boundary, so the runner works under both ``fork`` and
``spawn`` start methods.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.exp.seeding import derive_seed
from repro.exp.spec import (
    CaseSpec,
    ExperimentResult,
    ExperimentSpec,
    Measurement,
    get_spec,
    trimmed,
)

#: How one repetition's value was obtained (``ExperimentResult.cache_stats``
#: tallies these): ``hit`` — measurement record loaded, nothing executed;
#: ``derived`` — measurement re-derived from cached run records, no
#: simulation; ``simulated`` — at least one simulation actually ran.
HIT, DERIVED, SIMULATED = "hit", "derived", "simulated"


@dataclass(frozen=True)
class RepetitionTask:
    """One unit of work: a single repetition of a single case."""

    spec_name: str
    networks: Optional[Tuple[str, ...]]
    params: Tuple[Tuple[str, object], ...]  # sorted (key, value) pairs
    case_index: int
    rep_index: int
    seed: int
    store_dir: Optional[str] = None
    refresh: bool = False


def measurement_identity(task: RepetitionTask, label: str) -> Dict[str, Any]:
    """The content-addressed identity of one repetition's measurement."""
    from repro.store.hashing import SCHEMA_VERSION

    return {
        "kind": "measurement",
        "schema": SCHEMA_VERSION,
        "spec": task.spec_name,
        "networks": list(task.networks) if task.networks else None,
        "params": [[k, v] for k, v in task.params],
        "label": label,
        "case_index": task.case_index,
        "rep": task.rep_index,
        "seed": task.seed,
    }


#: Store handles per (root, refresh), one per worker process: stats
#: accumulate across the tasks a worker executes.
_OPEN_STORES: Dict[Tuple[str, bool], "RunStore"] = {}


def _open_store(store_dir: str, refresh: bool):
    from repro.store.store import RunStore

    key = (store_dir, refresh)
    if key not in _OPEN_STORES:
        _OPEN_STORES[key] = RunStore(store_dir, refresh=refresh)
    return _OPEN_STORES[key]


def _execute_task(task: RepetitionTask) -> Tuple[int, int, Measurement, str]:
    """Run (or load) one repetition; top-level so workers can unpickle it."""
    spec = get_spec(task.spec_name)
    cases = spec.cases(networks=task.networks, **dict(task.params))
    case = cases[task.case_index]
    if task.store_dir is None:
        return task.case_index, task.rep_index, case.measure(task.seed), SIMULATED

    from repro.store.hashing import fingerprint
    from repro.store.store import use_store

    store = _open_store(task.store_dir, task.refresh)
    identity = measurement_identity(task, case.label)
    key = fingerprint(identity)
    record = store.get(key)
    if record is not None and record.get("kind") == "measurement":
        return task.case_index, task.rep_index, record["payload"]["value"], HIT

    loaded_before = store.stats.runs_loaded
    stored_before = store.stats.runs_stored
    with use_store(store):
        value = case.measure(task.seed)
    if store.stats.runs_stored > stored_before:
        status = SIMULATED  # at least one fresh simulation was persisted
    elif store.stats.runs_loaded > loaded_before:
        status = DERIVED  # re-derived entirely from cached run records
    else:
        # The measurement never touched a RunPlan (traffic/table specs
        # execute directly); it did its own work, so count it as such.
        status = SIMULATED
    store.put(
        key,
        identity,
        {"value": value},
        tags={
            "spec": task.spec_name,
            "label": case.label,
            "network": case.network,
            "rep": task.rep_index,
            "seed": task.seed,
        },
    )
    return task.case_index, task.rep_index, value, status


def default_workers() -> int:
    """Worker count when the caller does not choose one.

    ``REPRO_WORKERS`` overrides (the benchmark suite sets it); the default
    of 1 keeps library calls serial unless parallelism is asked for.
    """
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        return max(1, int(env))
    return 1


def expand_tasks(
    name: str,
    reps: Optional[int] = None,
    networks: Optional[Sequence[str]] = None,
    base_seed: int = 0,
    params: Optional[Dict[str, object]] = None,
    store_dir: Optional[str] = None,
    refresh: bool = False,
) -> Tuple[ExperimentSpec, List[CaseSpec], int, List[RepetitionTask]]:
    """Expand one spec invocation into its flat repetition task list.

    Shared by :func:`run_spec` and the store report aggregator — the two
    must enumerate identical tasks so the report's lookups address the
    exact records a sweep wrote.
    """
    spec = get_spec(name)
    networks_key = tuple(networks) if networks else None
    params = dict(params or {})
    params_key = tuple(sorted(params.items()))
    cases = spec.cases(networks=networks_key, **params)
    effective_reps = reps if reps is not None else spec.default_reps

    tasks: List[RepetitionTask] = []
    for case_index, case in enumerate(cases):
        n_reps = 1 if case.series else effective_reps
        for rep in range(n_reps):
            tasks.append(
                RepetitionTask(
                    spec_name=name,
                    networks=networks_key,
                    params=params_key,
                    case_index=case_index,
                    rep_index=rep,
                    seed=derive_seed(base_seed, rep),
                    store_dir=store_dir,
                    refresh=refresh,
                )
            )
    return spec, cases, effective_reps, tasks


def merge_measurements(
    spec: ExperimentSpec,
    cases: List[CaseSpec],
    effective_reps: int,
    grid: Dict[Tuple[int, int], Measurement],
) -> ExperimentResult:
    """Assemble the result from a (case, repetition) → value grid.

    One merge path for live sweeps and store-only reports: identical
    grids produce byte-identical serialized results.
    """
    result = ExperimentResult(name=spec.title, notes=spec.notes)
    for case_index, case in enumerate(cases):
        if case.series:
            value = grid.get((case_index, 0))
            result.series[case.label] = list(value) if value else []
            continue
        values = [
            grid[(case_index, rep)]
            for rep in range(effective_reps)
            if grid.get((case_index, rep)) is not None
        ]
        result.series[case.label] = trimmed(values) if case.trim else values
    return result


def run_spec(
    name: str,
    reps: Optional[int] = None,
    networks: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    base_seed: int = 0,
    params: Optional[Dict[str, object]] = None,
    store: Optional[Union[str, Path, "RunStore"]] = None,
    refresh: bool = False,
) -> ExperimentResult:
    """Execute one registered experiment spec and merge its series.

    ``reps`` defaults to the spec's own repetition count; ``networks``
    restricts the case list; ``params`` forwards spec-specific knobs
    (e.g. ``controller_counts`` for fig6).  ``workers > 1`` fans the
    repetitions out over a process pool; results are identical to
    ``workers=1`` for the same ``base_seed``.

    ``store`` (a directory path or an open
    :class:`~repro.store.store.RunStore`) makes the sweep resumable:
    completed repetitions are persisted as they finish and loaded instead
    of simulated on re-invocation.  ``refresh=True`` (the CLI's
    ``--no-cache``) recomputes everything while still writing through.
    The result's ``cache_stats`` tallies how each repetition was obtained.
    """
    store_dir: Optional[str] = None
    if store is not None:
        # NB: duck-typing on `.root` would be a trap here — pathlib paths
        # expose `.root` as the filesystem anchor ("/").
        from repro.store.store import RunStore

        if isinstance(store, RunStore):
            store_dir = str(store.root)
            refresh = refresh or store.refresh
        else:
            store_dir = str(store)
    spec, cases, effective_reps, tasks = expand_tasks(
        name,
        reps=reps,
        networks=networks,
        base_seed=base_seed,
        params=params,
        store_dir=store_dir,
        refresh=refresh,
    )

    n_workers = workers if workers is not None else default_workers()
    outcomes = _execute(tasks, n_workers)

    grid: Dict[Tuple[int, int], Measurement] = {
        (case_index, rep): value for case_index, rep, value, _status in outcomes
    }
    result = merge_measurements(spec, cases, effective_reps, grid)
    if store_dir is not None:
        stats = {HIT: 0, DERIVED: 0, SIMULATED: 0}
        for *_, status in outcomes:
            stats[status] += 1
        result.cache_stats = stats
    return result


def worker_initializer() -> None:
    """Per-process one-time setup for repetition workers.

    Loads the deferred spec registry once (instead of on the first task)
    and enables the memoized topology-resolution cache, so repeated
    repetitions of the same network in one worker stop re-running the
    generator and controller placement.  Import errors are deliberately
    swallowed here: a broken registry module re-raises from the first
    task's ``get_spec`` with a full traceback instead of killing the pool
    during initialization.

    Shared by the ``multiprocessing`` pool below and the fabric's
    persistent workers — the same warm-process semantics either way.
    """
    from repro.api.topology import enable_resolution_cache

    enable_resolution_cache()
    try:
        from repro.exp.spec import list_specs

        list_specs()
    except Exception:
        pass


def _execute(
    tasks: List[RepetitionTask], workers: int
) -> List[Tuple[int, int, Measurement, str]]:
    if workers <= 1 or len(tasks) <= 1:
        return [_execute_task(task) for task in tasks]
    ctx = _pool_context()
    with ctx.Pool(
        processes=min(workers, len(tasks)), initializer=worker_initializer
    ) as pool:
        # chunksize 1: repetition cost varies by orders of magnitude across
        # networks, so fine-grained dispatch keeps the pool balanced.
        return pool.map(_execute_task, tasks, chunksize=1)


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


__all__ = [
    "DERIVED",
    "HIT",
    "SIMULATED",
    "RepetitionTask",
    "default_workers",
    "expand_tasks",
    "measurement_identity",
    "merge_measurements",
    "run_spec",
    "worker_initializer",
]
