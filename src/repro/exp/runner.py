"""Parallel repetition runner for declarative experiment specs.

The runner expands an :class:`~repro.exp.spec.ExperimentSpec` into a flat
list of repetition tasks, executes them — in-process or fanned out over a
``multiprocessing`` pool — and merges the outcomes into an
:class:`~repro.exp.spec.ExperimentResult`.

**Determinism contract.**  A repetition's measurement is a pure function
of ``(spec name, networks, params, case index, seed)``: the seed is
derived from ``(base_seed, rep_index)`` by :mod:`repro.exp.seeding`, the
measurement callable is rebuilt from the registry inside whichever
process runs the task, and outcomes are merged by ``(case, repetition)``
index rather than completion order.  Serial and parallel execution of the
same spec therefore produce bit-identical series — the property the
determinism tests pin down.

Workers receive only primitive task tuples; nothing closure-shaped ever
crosses the process boundary, so the runner works under both ``fork`` and
``spawn`` start methods.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exp.seeding import derive_seed
from repro.exp.spec import ExperimentResult, Measurement, get_spec, trimmed


@dataclass(frozen=True)
class RepetitionTask:
    """One unit of work: a single repetition of a single case."""

    spec_name: str
    networks: Optional[Tuple[str, ...]]
    params: Tuple[Tuple[str, object], ...]  # sorted (key, value) pairs
    case_index: int
    rep_index: int
    seed: int


def _execute_task(task: RepetitionTask) -> Tuple[int, int, Measurement]:
    """Run one repetition; top-level so worker processes can unpickle it."""
    spec = get_spec(task.spec_name)
    cases = spec.cases(networks=task.networks, **dict(task.params))
    value = cases[task.case_index].measure(task.seed)
    return task.case_index, task.rep_index, value


def default_workers() -> int:
    """Worker count when the caller does not choose one.

    ``REPRO_WORKERS`` overrides (the benchmark suite sets it); the default
    of 1 keeps library calls serial unless parallelism is asked for.
    """
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        return max(1, int(env))
    return 1


def run_spec(
    name: str,
    reps: Optional[int] = None,
    networks: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    base_seed: int = 0,
    params: Optional[Dict[str, object]] = None,
) -> ExperimentResult:
    """Execute one registered experiment spec and merge its series.

    ``reps`` defaults to the spec's own repetition count; ``networks``
    restricts the case list; ``params`` forwards spec-specific knobs
    (e.g. ``controller_counts`` for fig6).  ``workers > 1`` fans the
    repetitions out over a process pool; results are identical to
    ``workers=1`` for the same ``base_seed``.
    """
    spec = get_spec(name)
    networks_key = tuple(networks) if networks else None
    params = dict(params or {})
    params_key = tuple(sorted(params.items()))
    cases = spec.cases(networks=networks_key, **params)
    effective_reps = reps if reps is not None else spec.default_reps

    tasks: List[RepetitionTask] = []
    for case_index, case in enumerate(cases):
        n_reps = 1 if case.series else effective_reps
        for rep in range(n_reps):
            tasks.append(
                RepetitionTask(
                    spec_name=name,
                    networks=networks_key,
                    params=params_key,
                    case_index=case_index,
                    rep_index=rep,
                    seed=derive_seed(base_seed, rep),
                )
            )

    n_workers = workers if workers is not None else default_workers()
    outcomes = _execute(tasks, n_workers)

    grid: Dict[Tuple[int, int], Measurement] = {
        (case_index, rep): value for case_index, rep, value in outcomes
    }
    result = ExperimentResult(name=spec.title, notes=spec.notes)
    for case_index, case in enumerate(cases):
        if case.series:
            value = grid.get((case_index, 0))
            result.series[case.label] = list(value) if value else []
            continue
        values = [
            grid[(case_index, rep)]
            for rep in range(effective_reps)
            if grid.get((case_index, rep)) is not None
        ]
        result.series[case.label] = trimmed(values) if case.trim else values
    return result


def _execute(
    tasks: List[RepetitionTask], workers: int
) -> List[Tuple[int, int, Measurement]]:
    if workers <= 1 or len(tasks) <= 1:
        return [_execute_task(task) for task in tasks]
    ctx = _pool_context()
    with ctx.Pool(processes=min(workers, len(tasks))) as pool:
        # chunksize 1: repetition cost varies by orders of magnitude across
        # networks, so fine-grained dispatch keeps the pool balanced.
        return pool.map(_execute_task, tasks, chunksize=1)


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


__all__ = ["RepetitionTask", "run_spec", "default_workers"]
