"""Experiment orchestration: declarative specs + parallel repetition runner.

The layer splits *what* an experiment measures from *how* it is executed,
the same architecture simulation frameworks use to get scenario diversity
and throughput:

* :mod:`repro.exp.spec` — declarative :class:`~repro.exp.spec.ExperimentSpec`
  descriptions of every figure/table in the paper's Section 6, in a
  registry keyed by figure id;
* :mod:`repro.exp.runner` — executes a spec's repetitions serially or over
  a ``multiprocessing`` pool, with bit-identical results either way;
* :mod:`repro.exp.seeding` — deterministic per-repetition seed derivation.
"""

from repro.exp.seeding import derive_seed, fault_rng
from repro.exp.spec import CaseSpec, ExperimentSpec, ExperimentResult, get_spec, list_specs
from repro.exp.runner import run_spec

__all__ = [
    "CaseSpec",
    "ExperimentSpec",
    "ExperimentResult",
    "derive_seed",
    "fault_rng",
    "get_spec",
    "list_specs",
    "run_spec",
]
