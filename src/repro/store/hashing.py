"""Stable content hashing for run-store records.

A record's address is the SHA-256 of the *canonical JSON* encoding of its
identity dict — the resolved inputs that fully determine the outcome (see
:mod:`repro.store.store` for the two identity shapes).  Canonical JSON is
``json.dumps`` with sorted keys and no whitespace: float encoding uses
``repr``'s shortest round-trip form, which is byte-stable across
processes, interpreter restarts, and platforms, so the same identity
hashes to the same key everywhere — the property the cross-process hash
stability test pins.

The encoder is deliberately strict (no ``default=`` escape hatch): a
non-JSON value inside an identity raises ``TypeError`` instead of being
silently stringified, forcing every describer to make its serialization
explicit.  Anything that changes what a stored payload *means* — result
schema, phase semantics, measurement derivation — must bump
``SCHEMA_VERSION``; the version is part of every identity, so a bump
cleanly invalidates all previously stored records.
"""

from __future__ import annotations

import hashlib
import json

#: Version of the record identity/payload contract.  Part of every hashed
#: identity: bump it when stored results are no longer comparable across
#: code versions.
#:
#: v2: the adversarial self-stabilization axis — config snapshots carry
#: ``scheduler``/``scheduler_bound``, metrics snapshots carry
#: ``corruption_time``/``stabilization_time``, and ``recovery_time``
#: switched to first-convergence-after-the-last-fault semantics.
SCHEMA_VERSION = 2


def canonical_json(obj: object) -> str:
    """Deterministic JSON encoding: sorted keys, minimal separators."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), ensure_ascii=False)


def fingerprint(obj: object) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


__all__ = ["SCHEMA_VERSION", "canonical_json", "fingerprint"]
