"""Figure/table aggregation from stored records — no simulation.

:func:`aggregate` rebuilds one experiment's
:class:`~repro.exp.spec.ExperimentResult` purely from the measurement
records a sweep persisted: it expands the *same* repetition task list the
runner would execute (same spec registry, same seed derivation, same case
ordering), addresses each task's record by content hash, and merges the
loaded values through the runner's own merge path.  A report over a
complete store is therefore byte-identical to the sweep that filled it —
the acceptance property the golden-series report test pins.

Missing repetitions are returned, not guessed: the caller decides whether
an incomplete figure is an error (the CLI exits non-zero and prints which
``(label, repetition, seed)`` triples still need running — re-running the
original sweep against the same store fills exactly those).

:func:`store_summary` is the listing-shaped view behind ``repro store
ls``: record counts per kind and per spec/label, straight off the
manifest.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exp.runner import expand_tasks, measurement_identity, merge_measurements
from repro.exp.spec import ExperimentResult, Measurement
from repro.store.hashing import fingerprint
from repro.store.store import RunStore


def aggregate(
    store: RunStore,
    name: str,
    reps: Optional[int] = None,
    networks: Optional[Sequence[str]] = None,
    base_seed: int = 0,
    params: Optional[Dict[str, object]] = None,
) -> Tuple[ExperimentResult, List[str]]:
    """Rebuild one experiment from stored measurements.

    Returns ``(result, missing)``: ``missing`` names every repetition the
    store has no valid record for (corrupt records count as missing).
    The result is exactly what :func:`~repro.exp.runner.run_spec` with the
    same arguments would return over a warm store.
    """
    spec, cases, effective_reps, tasks = expand_tasks(
        name, reps=reps, networks=networks, base_seed=base_seed, params=params
    )
    grid: Dict[Tuple[int, int], Measurement] = {}
    missing: List[str] = []
    for task in tasks:
        case = cases[task.case_index]
        record = store.get(fingerprint(measurement_identity(task, case.label)))
        if record is None or record.get("kind") != "measurement":
            missing.append(f"{case.label!r} rep {task.rep_index} (seed {task.seed})")
            continue
        grid[(task.case_index, task.rep_index)] = record["payload"]["value"]
    return merge_measurements(spec, cases, effective_reps, grid), missing


def store_summary(store: RunStore) -> Dict[str, object]:
    """Counts of what the store holds, per kind and per spec/label."""
    kinds: Counter = Counter()
    specs: Counter = Counter()
    for entry in store.manifest():
        kinds[entry.get("kind", "record")] += 1
        tags = entry.get("tags", {})
        if entry.get("kind") == "measurement":
            specs[f"{tags.get('spec', '?')} / {tags.get('label', '?')}"] += 1
        elif entry.get("kind") == "run":
            specs[f"run / {tags.get('topology', '?')}"] += 1
    return {
        "records": sum(kinds.values()),
        "by_kind": dict(sorted(kinds.items())),
        "by_series": dict(sorted(specs.items())),
    }


__all__ = ["aggregate", "store_summary"]
