"""``repro.store`` — content-addressed persistence of completed runs.

The run store is the repository's memoization layer at the granularity
simulation studies actually resume at: one completed repetition.  Sweeps
and scenario campaigns write every finished repetition through to disk,
re-invocations load instead of simulate, and ``repro report`` rebuilds
figure/table summaries from the stored records without running the
simulator at all.

Quickstart::

    from repro.exp.runner import run_spec
    from repro.store import RunStore, aggregate

    store = RunStore("results-store")
    run_spec("fig5", reps=3, networks=("B4",), store=store)   # cold: simulates
    run_spec("fig5", reps=3, networks=("B4",), store=store)   # warm: loads

    result, missing = aggregate(store, "fig5", reps=3, networks=("B4",))
    assert not missing
"""

from repro.store.hashing import SCHEMA_VERSION, canonical_json, fingerprint
from repro.store.report import aggregate, store_summary
from repro.store.store import (
    RunStore,
    StoreStats,
    active_store,
    append_line,
    use_store,
)

__all__ = [
    "SCHEMA_VERSION",
    "RunStore",
    "StoreStats",
    "active_store",
    "aggregate",
    "append_line",
    "canonical_json",
    "fingerprint",
    "store_summary",
    "use_store",
]
