"""Content-addressed, on-disk persistence of completed runs.

A :class:`RunStore` maps the *identity* of a completed unit of work to its
serialized outcome, so an identical re-invocation loads the stored record
instead of simulating.  Two record kinds share one address space:

``run``
    One :class:`~repro.api.results.RunResult` — the full record of one
    phased simulation, keyed by the hash of (resolved topology spec,
    controller count, placement, effective ``SimulationConfig``, phase
    descriptions, seed, schema version).  Written by
    :meth:`~repro.api.plan.RunPlan.run` whenever a store is active.

``measurement``
    One repetition's measurement value, keyed by the hash of (spec name,
    network filter, spec params, case label/index, repetition index,
    derived seed, schema version).  Written by the repetition runner;
    :mod:`repro.store.report` rebuilds whole figures from these records
    without touching the simulator.

Layout on disk::

    <root>/objects/<key[:2]>/<key>.json    # one record per completed unit
    <root>/manifest.jsonl                  # append-only index (key, kind, tags)

Each object file is one canonical-JSON document carrying the identity it
was hashed from, a payload checksum, and free-form ``tags`` for listing.
Writes are atomic (temp file + ``os.replace`` in the same directory) and
safe from concurrent worker processes: the key *is* the content, so two
writers racing on one object produce the same bytes, and manifest lines
are single short appends.  Loads validate the record end-to-end — key
matches the identity hash, checksum matches the payload — so a corrupted
or truncated record is indistinguishable from a miss and simply re-runs.

The objects directory is authoritative; the manifest is a listing
accelerator that :meth:`RunStore.reindex` can rebuild at any time.

A store becomes *active* for the current process via :func:`use_store`;
:meth:`RunPlan.run` consults :func:`active_store` so cache integration
needs no signature changes anywhere between the runner and the plan.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.api.results import RunResult
from repro.obs.telemetry import active as active_telemetry
from repro.store.hashing import SCHEMA_VERSION, canonical_json, fingerprint

#: Distinguishes temp files of concurrent writers *within* one process
#: (threads, or two store handles) on top of the pid in the name.
_TMP_COUNTER = itertools.count()


def append_line(path: Union[str, Path], line: str) -> None:
    """Append one line to ``path`` as a single ``write`` on an ``O_APPEND``
    descriptor.

    A single ``write(2)`` to an ``O_APPEND`` file is atomic with respect to
    the offset on POSIX filesystems, so concurrent appenders — worker
    processes on one host, or several hosts on a shared filesystem — never
    interleave bytes mid-line.  (Readers still tolerate a torn *tail* line
    from a writer that died mid-call.)
    """
    data = (line + "\n").encode("utf-8")
    fd = os.open(str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


@dataclass
class StoreStats:
    """In-process counters of one store handle's traffic.

    ``hits``/``misses`` count record lookups (a corrupt record counts as
    both ``corrupt`` and a miss); ``stores`` counts records written.
    ``runs_loaded``/``runs_stored`` break out the ``run`` kind so callers
    can tell "derived from cached runs" from "actually simulated".
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    runs_loaded: int = 0
    runs_stored: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "runs_loaded": self.runs_loaded,
            "runs_stored": self.runs_stored,
        }


class RunStore:
    """One on-disk store rooted at ``root``.

    ``refresh=True`` turns every lookup into a miss while still writing
    results through — the ``--no-cache`` semantics: recompute everything,
    leave the store warm for the next invocation.
    """

    def __init__(self, root: Union[str, Path], refresh: bool = False) -> None:
        self.root = Path(root)
        self.refresh = refresh
        self.stats = StoreStats()

    # -- paths ------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.jsonl"

    def object_path(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key}.json"

    # -- generic record access --------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The validated record at ``key``, or ``None`` on miss/corruption."""
        telemetry = active_telemetry()
        if telemetry is None:
            return self._get(key)
        start = telemetry.now()
        record = self._get(key)
        hit = record is not None
        telemetry.counter("store.hits" if hit else "store.misses").inc()
        telemetry.record_span(
            "store.get",
            "store",
            start,
            telemetry.now() - start,
            args={"key": key[:12], "hit": hit},
        )
        return record

    def _get(self, key: str) -> Optional[Dict[str, Any]]:
        if self.refresh:
            self.stats.misses += 1
            return None
        path = self.object_path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        if not self._intact(key, record):
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        if record["schema"] != SCHEMA_VERSION:
            # Intact record of another code version: stale, not corrupt —
            # a plain miss, so the caller recomputes under the current
            # schema (the new record gets a different key; the old one
            # stays readable to the code version that wrote it).
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record

    @staticmethod
    def _intact(key: str, record: Any) -> bool:
        """Whether the record's content survives its own hashes —
        independent of schema version."""
        if not isinstance(record, dict):
            return False
        try:
            return (
                record["key"] == key
                and fingerprint(record["identity"]) == key
                and fingerprint(record["payload"]) == record["checksum"]
            )
        except (KeyError, TypeError):
            return False

    def put(
        self,
        key: str,
        identity: Dict[str, Any],
        payload: Any,
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Persist one record atomically and append its manifest line."""
        telemetry = active_telemetry()
        if telemetry is None:
            self._put(key, identity, payload, tags)
            return
        start = telemetry.now()
        self._put(key, identity, payload, tags)
        telemetry.counter("store.puts").inc()
        telemetry.record_span(
            "store.put",
            "store",
            start,
            telemetry.now() - start,
            args={"key": key[:12], "kind": identity.get("kind", "record")},
        )

    def _put(
        self,
        key: str,
        identity: Dict[str, Any],
        payload: Any,
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        record = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "kind": identity.get("kind", "record"),
            "identity": identity,
            "tags": dict(tags or {}),
            "payload": payload,
            "checksum": fingerprint(payload),
        }
        path = self.object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(canonical_json(record) + "\n")
        os.replace(tmp, path)
        self._append_manifest(record)
        self.stats.stores += 1

    def _append_manifest(self, record: Dict[str, Any]) -> None:
        # Single O_APPEND write: safe under concurrent multi-process
        # writers (two workers completing at once never tear each other's
        # manifest lines).
        append_line(
            self.manifest_path,
            canonical_json(
                {"key": record["key"], "kind": record["kind"], "tags": record["tags"]}
            ),
        )

    # -- run records -------------------------------------------------------

    def load_run(self, key: str) -> Optional[RunResult]:
        record = self.get(key)
        if record is None or record.get("kind") != "run":
            return None
        self.stats.runs_loaded += 1
        return RunResult.from_dict(record["payload"])

    def save_run(
        self,
        key: str,
        identity: Dict[str, Any],
        result: RunResult,
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.put(key, identity, result.to_dict(), tags=tags)
        self.stats.runs_stored += 1

    # -- listing / integrity ----------------------------------------------

    def keys(self) -> List[str]:
        """Every object key on disk (authoritative, sorted)."""
        if not self.objects_dir.is_dir():
            return []
        return sorted(p.stem for p in self.objects_dir.glob("*/*.json"))

    def records(self) -> Iterator[Dict[str, Any]]:
        """Current-schema validated records from the objects directory,
        sorted by key.

        Corrupt and stale-schema objects are skipped (and counted in
        :attr:`stats`); pass over :meth:`verify` to see corruption.
        """
        for key in self.keys():
            record = self.get(key)
            if record is not None:
                yield record

    def _read_intact(self, key: str) -> Optional[Dict[str, Any]]:
        """The intact record at ``key`` regardless of schema version, or
        ``None``; no stats accounting (maintenance-path reads)."""
        try:
            with open(self.object_path(key), "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return record if self._intact(key, record) else None

    def manifest(self) -> List[Dict[str, Any]]:
        """Deduplicated manifest entries (last write per key wins)."""
        entries: Dict[str, Dict[str, Any]] = {}
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn tail line; verify() reports it
                    if isinstance(entry, dict) and "key" in entry:
                        entries[entry["key"]] = entry
        except FileNotFoundError:
            pass
        return [entries[k] for k in sorted(entries)]

    def reindex(self) -> int:
        """Rebuild the manifest from the objects directory; returns the
        number of indexed records.

        Every *intact* object is indexed, whatever its schema version —
        stale records belong to another code version but are still valid
        store content (only corruption drops an object from the index).
        """
        records = [r for key in self.keys() if (r := self._read_intact(key))]
        tmp = self.root / f".manifest.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
        self.root.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(
                    canonical_json(
                        {
                            "key": record["key"],
                            "kind": record["kind"],
                            "tags": record["tags"],
                        }
                    )
                    + "\n"
                )
        os.replace(tmp, self.manifest_path)
        return len(records)

    def verify(self) -> List[str]:
        """Integrity problems, empty when the store is sound.

        Checks every object (parse, key↔identity hash, payload checksum)
        and cross-checks the manifest both ways.  An intact record of a
        different schema version is *stale*, not corrupt — valid content
        of another code version — and does not fail verification.
        """
        problems: List[str] = []
        on_disk = set()
        if self.objects_dir.is_dir():
            for path in sorted(self.objects_dir.glob("*/*.json")):
                key = path.stem
                on_disk.add(key)
                try:
                    with open(path, "r", encoding="utf-8") as fh:
                        record = json.load(fh)
                except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
                    problems.append(f"unreadable object {key}: {exc}")
                    continue
                if not self._intact(key, record):
                    problems.append(f"corrupt object {key} (hash/checksum mismatch)")
        manifest_keys = {entry["key"] for entry in self.manifest()}
        for key in sorted(manifest_keys - on_disk):
            problems.append(f"manifest entry without object: {key}")
        for key in sorted(on_disk - manifest_keys):
            problems.append(f"object missing from manifest: {key} (run reindex)")
        return problems

    def prune_tmp(self, max_age: float = 3600.0) -> int:
        """Remove orphaned ``*.tmp`` files older than ``max_age`` seconds.

        A writer that is SIGKILLed between creating its temp file and the
        ``os.replace`` leaves the temp behind; they are harmless to reads
        (never addressed) but accumulate.  Age-gating keeps in-flight
        writes of live workers safe.  Returns the number removed.
        """
        cutoff = time.time() - max_age
        removed = 0
        candidates: List[Path] = []
        if self.root.is_dir():
            candidates.extend(self.root.glob(".*.tmp"))
        if self.objects_dir.is_dir():
            candidates.extend(self.objects_dir.glob("*/.*.tmp"))
        for path in candidates:
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except FileNotFoundError:
                continue  # another pruner got it first
        return removed


# ---------------------------------------------------------------------------
# active-store context
# ---------------------------------------------------------------------------

_ACTIVE: Optional[RunStore] = None


def active_store() -> Optional[RunStore]:
    """The store write-through run executions currently target, if any."""
    return _ACTIVE


@contextmanager
def use_store(store: Optional[RunStore]):
    """Make ``store`` the process-wide active store for the duration.

    The repetition runner wraps each measurement in this, so every
    :meth:`RunPlan.run` a measurement performs — however deep in library
    code — reads and writes the same store.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = store
    try:
        yield store
    finally:
        _ACTIVE = previous


__all__ = ["RunStore", "StoreStats", "active_store", "append_line", "use_store"]
