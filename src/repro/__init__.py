"""repro — a reproduction of *Renaissance: A Self-Stabilizing Distributed
SDN Control Plane using In-band Communications* (Canini, Salem, Schiff,
Schiller, Schmid; ICDCS 2018 / arXiv:1712.07697).

Public API overview
===================

* :mod:`repro.core` — the Renaissance controller (Algorithm 2), its
  variants, round tags, reply store, rule generation, and the
  legitimate-state checker (Definition 1).
* :mod:`repro.switch` — the abstract SDN switch: bounded flow table,
  bounded manager set, command protocol, fast-failover forwarding.
* :mod:`repro.net` — substrates: topology model and zoo, unreliable link
  layer, self-stabilizing end-to-end channel, Θ failure detector, local
  topology discovery.
* :mod:`repro.flows` — κ-fault-resilient flow computation.
* :mod:`repro.sim` — the discrete-event simulation harness replacing the
  paper's Mininet/OVS/Floodlight testbed.
* :mod:`repro.transport` — TCP Reno data-plane model for the throughput
  experiments (Figures 15–20).
* :mod:`repro.api` — **the unified run facade**: topology resolution for
  named and generated networks, builder-style phased run plans, and
  JSON-serializable results.  Experiments, scenarios, and the CLI all
  construct their simulations through it.
* :mod:`repro.adversary` — **adversarial self-stabilization**: seeded
  arbitrary-initial-state corruption strategies, bounded worst-case
  delivery schedulers, the ``stabilize`` experiment spec, and the
  convergence-from-arbitrary-state property harness.
* :mod:`repro.store` — **the run store**: content-addressed on-disk
  persistence of completed runs/repetitions, resumable sweeps, and
  store-only report aggregation.
* :mod:`repro.analysis` — one experiment function per paper figure/table.

Quickstart::

    from repro.api import Bootstrap, RunPlan

    result = RunPlan("B4", controllers=3, seed=1).then(Bootstrap()).run()
    print(f"bootstrapped in {result.bootstrap_time:.1f} simulated seconds")
"""

from repro.net import (
    Topology,
    NodeKind,
    TOPOLOGY_BUILDERS,
)
from repro.net.topologies import attach_controllers, TABLE8_EXPECTED
from repro.core import (
    RenaissanceConfig,
    RenaissanceController,
    NonAdaptiveController,
    ThreeTagController,
    LegitimacyChecker,
)
from repro.sim import NetworkSimulation, SimulationConfig, FaultPlan
from repro.api import (
    AwaitLegitimacy,
    Bootstrap,
    CorruptState,
    InjectFaults,
    RunFor,
    RunObserver,
    RunPlan,
    RunResult,
    build_simulation,
    resolve_topology,
)

__version__ = "1.1.0"


def build_network(name: str, n_controllers: int = 3, seed: int = 0) -> Topology:
    """Build one of the paper's evaluation networks (Table 8) with
    ``n_controllers`` controllers attached.

    ``name`` is one of ``"B4"``, ``"Clos"``, ``"Telstra"``, ``"AT&T"``,
    ``"EBONE"``.
    """
    try:
        builder = TOPOLOGY_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(TOPOLOGY_BUILDERS))
        raise ValueError(f"unknown network {name!r}; choose one of: {known}")
    topology = builder()
    attach_controllers(topology, n_controllers, seed=seed)
    return topology


__all__ = [
    "Topology",
    "NodeKind",
    "TOPOLOGY_BUILDERS",
    "TABLE8_EXPECTED",
    "attach_controllers",
    "build_network",
    "RenaissanceConfig",
    "RenaissanceController",
    "NonAdaptiveController",
    "ThreeTagController",
    "LegitimacyChecker",
    "NetworkSimulation",
    "SimulationConfig",
    "FaultPlan",
    "AwaitLegitimacy",
    "Bootstrap",
    "CorruptState",
    "InjectFaults",
    "RunFor",
    "RunObserver",
    "RunPlan",
    "RunResult",
    "build_simulation",
    "resolve_topology",
    "__version__",
]
