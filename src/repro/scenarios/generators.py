"""Parametric topology generators beyond the Table-8 zoo.

Five families, chosen to stress the protocol differently than the paper's
ladder-ISP stand-ins:

* :func:`fat_tree` — the canonical k-ary datacenter fat-tree (dense,
  short diameter, massive path diversity);
* :func:`jellyfish` — a random regular graph, the Jellyfish datacenter
  proposal (expander-like, no structure for the planner to exploit);
* :func:`ring` — the minimal 2-edge-connected graph (diameter n/2, the
  worst case for in-band route stretch);
* :func:`grid2d` — a rows × cols mesh (planar, moderate diversity);
* :func:`harary` — the exactly k-edge-connected Harary graph H(k, n)
  behind ``random_k_connected``, for κ-connectivity stress.

Every generator returns a switch-only :class:`~repro.net.topology.Topology`
that is **2-edge-connected** — the resilience floor κ = 1 fault-resilient
flows require — and asserts so at build time via the linear-time bridge
check.  Controllers are attached afterwards with
:func:`repro.net.topologies.attach_controllers`, which preserves that
invariant.

:func:`parse_topology` turns CLI strings (``fattree:4``, ``jellyfish:20``,
``jellyfish:20x4``, ``ring:16``, ``grid:4x5``, ``harary:10x3``, or a
Table-8 name such as ``B4``) into topologies, so every scenario entry
point shares one spec syntax.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from repro.net.topologies import TOPOLOGY_BUILDERS, random_k_connected
from repro.net.topology import Topology


def _checked(topo: Topology, family: str) -> Topology:
    if not topo.two_edge_connected():
        raise AssertionError(f"{family} generator produced a bridged graph")
    return topo


def fat_tree(k: int) -> Topology:
    """The k-ary fat-tree of Al-Fares et al.: (k/2)² core switches and k
    pods of k/2 aggregation + k/2 edge switches — 5k²/4 switches total.

    ``k`` must be even and ≥ 4 (k = 2 gives edge switches a single
    uplink, i.e. a bridge).
    """
    if k < 4 or k % 2:
        raise ValueError(f"fat-tree arity must be even and >= 4 (got {k})")
    half = k // 2
    topo = Topology()
    cores = [f"ft-c{i}" for i in range(half * half)]
    for c in cores:
        topo.add_switch(c)
    for pod in range(k):
        aggs = [f"ft-p{pod}-a{i}" for i in range(half)]
        edges = [f"ft-p{pod}-e{i}" for i in range(half)]
        for s in aggs + edges:
            topo.add_switch(s)
        for e in edges:
            for a in aggs:
                topo.add_link(e, a)
        # Aggregation switch i uplinks to core group i (cores i*half ..).
        for i, a in enumerate(aggs):
            for j in range(half):
                topo.add_link(a, cores[i * half + j])
    return _checked(topo, "fat-tree")


def jellyfish(n: int, degree: int = 3, seed: int = 0) -> Topology:
    """A Jellyfish fabric: a uniformly random ``degree``-regular graph on
    ``n`` switches, deterministic in ``seed``.

    Built by configuration-model stub matching with whole-graph rejection
    of self-loops, parallel edges, and bridged outcomes; random regular
    graphs of degree ≥ 3 are asymptotically almost surely 3-connected, so
    a handful of attempts suffices.
    """
    if degree < 3:
        raise ValueError(f"jellyfish degree must be >= 3 (got {degree})")
    if n <= degree:
        raise ValueError(f"need n > degree (got n={n}, degree={degree})")
    if (n * degree) % 2:
        raise ValueError(f"n*degree must be even (got {n}x{degree})")
    names = [f"jf{i}" for i in range(n)]
    for attempt in range(1000):
        rng = random.Random(seed * 1_000_003 + attempt)
        stubs = [i for i in range(n) for _ in range(degree)]
        rng.shuffle(stubs)
        pairs = list(zip(stubs[0::2], stubs[1::2]))
        if any(u == v for u, v in pairs):
            continue
        edges = {frozenset(p) for p in pairs}
        if len(edges) < len(pairs):
            continue
        topo = Topology()
        for name in names:
            topo.add_switch(name)
        for u, v in pairs:
            topo.add_link(names[u], names[v])
        if topo.two_edge_connected():
            return topo
    raise RuntimeError(f"no 2-edge-connected {degree}-regular graph on {n} nodes found")


def ring(n: int) -> Topology:
    """A cycle of ``n`` switches — exactly 2-edge-connected, diameter n//2."""
    if n < 3:
        raise ValueError(f"ring needs >= 3 switches (got {n})")
    topo = Topology()
    names = [f"r{i}" for i in range(n)]
    for name in names:
        topo.add_switch(name)
    for i in range(n):
        topo.add_link(names[i], names[(i + 1) % n])
    return _checked(topo, "ring")


def grid2d(rows: int, cols: int) -> Topology:
    """A rows × cols mesh.  Both dimensions must be ≥ 2: every edge then
    borders a unit square, so the (connected) grid is bridgeless."""
    if rows < 2 or cols < 2:
        raise ValueError(f"grid needs both dimensions >= 2 (got {rows}x{cols})")
    topo = Topology()
    name = lambda r, c: f"g{r}-{c}"
    for r in range(rows):
        for c in range(cols):
            topo.add_switch(name(r, c))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                topo.add_link(name(r, c), name(r, c + 1))
            if r + 1 < rows:
                topo.add_link(name(r, c), name(r + 1, c))
    return _checked(topo, "grid")


def harary(n: int, k: int, seed: int = 0) -> Topology:
    """The Harary graph H(k, n) behind the property tests'
    κ-connectivity stress — a scenario-spec wrapper over
    :func:`repro.net.topologies.random_k_connected` (k ≥ 2 guarantees
    the 2-edge-connectivity floor)."""
    return _checked(random_k_connected(n, k, seed=seed), "harary")


def _positive_ints(family: str, arg: str, count: int) -> List[int]:
    parts = arg.split("x")
    if len(parts) != count or not all(p.isdigit() for p in parts):
        raise ValueError(f"bad {family} spec argument {arg!r}")
    return [int(p) for p in parts]


def _parse_fattree(arg: str, seed: int) -> Topology:
    (k,) = _positive_ints("fattree", arg, 1)
    return fat_tree(k)


def _parse_jellyfish(arg: str, seed: int) -> Topology:
    if "x" in arg:
        n, degree = _positive_ints("jellyfish", arg, 2)
    else:
        (n,) = _positive_ints("jellyfish", arg, 1)
        degree = 3
    return jellyfish(n, degree, seed=seed)


def _parse_ring(arg: str, seed: int) -> Topology:
    (n,) = _positive_ints("ring", arg, 1)
    return ring(n)


def _parse_grid(arg: str, seed: int) -> Topology:
    rows, cols = _positive_ints("grid", arg, 2)
    return grid2d(rows, cols)


def _parse_harary(arg: str, seed: int) -> Topology:
    n, k = _positive_ints("harary", arg, 2)
    return harary(n, k, seed=seed)


#: Scenario families: name → (spec-argument parser, argument syntax).
#: :func:`parse_topology` dispatches through this table, so registering a
#: new family here is all it takes to expose it everywhere.
GENERATORS: Dict[str, Tuple[Callable[[str, int], Topology], str]] = {
    "fattree": (_parse_fattree, "fattree:K (even K >= 4)"),
    "jellyfish": (_parse_jellyfish, "jellyfish:N or jellyfish:NxDEGREE"),
    "ring": (_parse_ring, "ring:N"),
    "grid": (_parse_grid, "grid:ROWSxCOLS"),
    "harary": (_parse_harary, "harary:NxK (K >= 2)"),
}


def parse_topology(spec: str, seed: int = 0) -> Topology:
    """Build the topology named by ``spec``.

    Accepts the Table-8 names (``B4``, ``Clos``, ...) and the parametric
    families of this module (``fattree:4``, ``jellyfish:20``,
    ``jellyfish:20x4``, ``ring:16``, ``grid:4x5``, ``harary:10x3``).
    ``seed`` only affects the randomized families.
    """
    if spec in TOPOLOGY_BUILDERS:
        return TOPOLOGY_BUILDERS[spec]()
    family, sep, arg = spec.partition(":")
    family = family.replace("_", "").replace("-", "").lower()
    if not sep or family not in GENERATORS:
        known = sorted(TOPOLOGY_BUILDERS) + [
            syntax for _, syntax in GENERATORS.values()
        ]
        raise ValueError(f"unknown topology {spec!r}; known: {', '.join(known)}")
    parser, _ = GENERATORS[family]
    return parser(arg, seed)


__all__ = [
    "GENERATORS",
    "fat_tree",
    "grid2d",
    "harary",
    "jellyfish",
    "parse_topology",
    "ring",
]
