"""Composable randomized fault campaigns.

A *campaign* is a pure function ``(topology, rng) -> FaultPlan``: given
the ground-truth topology and an injected randomness source it emits a
declarative fault schedule on a **relative clock** (t = 0 is the moment
of injection; the scenario spec shifts it to the simulation's current
time).  Purity in the rng is what lets the repetition runner re-derive an
identical campaign in any worker process from the repetition seed alone.

Every campaign here is *transient*: each fail has a matching recover no
later than the campaign's last action, so the communication topology at
``plan.last_at()`` equals the initial one and the self-stabilization
claim applies — the system must re-converge to a legitimate
configuration within a bounded horizon after the final fault.  (State
corruption needs no undo; scrubbing it *is* the protocol's job.)

Campaigns compose: :func:`compose` merges plans on the shared relative
clock, and the ``mixed`` campaign is exactly such a composition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.net.topology import Topology
from repro.sim.faults import FaultAction, FaultPlan
from repro.switch.flow_table import Rule


def compose(*plans: FaultPlan) -> FaultPlan:
    """Merge campaigns on the shared relative clock, ordered by time.

    Sorted by time alone: the sort is stable, so same-instant actions keep
    their (deterministic) per-plan order — and corruption targets carry
    unorderable payloads, so they must never act as tie-breakers.
    """
    actions: List[FaultAction] = []
    for plan in plans:
        actions.extend(plan.actions)
    return FaultPlan(sorted(actions, key=lambda a: a.at))


def _recover_at(rng: random.Random, t: float, mttr: float, horizon: float) -> float:
    """Repair time: exponential with mean ``mttr``, strictly after ``t``
    and never past the horizon (campaigns must end all-up)."""
    return min(horizon, t + max(0.05, rng.expovariate(1.0 / mttr)))


def poisson_churn(
    topology: Topology,
    rng: random.Random,
    horizon: float = 8.0,
    mtbf: float = 1.5,
    mttr: float = 1.0,
    node_fraction: float = 0.3,
) -> FaultPlan:
    """Poisson link/node churn: failures arrive with mean spacing
    ``mtbf``; each victim (a link, or a switch with probability
    ``node_fraction``) repairs after an exponential ``mttr``."""
    plan = FaultPlan()
    links = topology.links
    switches = topology.switches
    down_until: Dict[object, float] = {}
    t = 0.0
    while True:
        t += rng.expovariate(1.0 / mtbf)
        if t >= horizon - mttr:
            break
        if switches and rng.random() < node_fraction:
            victim = rng.choice(switches)
            # A still-down victim would have its pending recover revive it
            # mid-outage; drop the arrival instead (thinning the process).
            if down_until.get(victim, 0.0) > t:
                continue
            repair = _recover_at(rng, t, mttr, horizon)
            plan.fail_node(t, victim)
            plan.recover_node(repair, victim)
            down_until[victim] = repair
        elif links:
            u, v = rng.choice(links)
            if down_until.get((u, v), 0.0) > t:
                continue
            repair = _recover_at(rng, t, mttr, horizon)
            plan.fail_link(t, u, v)
            plan.recover_link(repair, u, v)
            down_until[(u, v)] = repair
    return plan


def regional_failure(
    topology: Topology,
    rng: random.Random,
    at: float = 1.0,
    radius: int = 1,
    outage: float = 2.0,
) -> FaultPlan:
    """Correlated regional outage: every node within ``radius`` hops of a
    random epicenter switch fails at once (taking its links down with it)
    and the whole region comes back ``outage`` seconds later."""
    center = rng.choice(topology.switches)
    distances = topology.bfs_layers(center)
    region = sorted(n for n, d in distances.items() if d <= radius)
    plan = FaultPlan()
    for node in region:
        plan.fail_node(at, node)
        plan.recover_node(at + outage, node)
    return plan


def flapping_links(
    topology: Topology,
    rng: random.Random,
    n_links: int = 2,
    period: float = 1.0,
    cycles: int = 3,
    start: float = 0.5,
) -> FaultPlan:
    """A few unstable links flap down/up with the given period; every
    flap ends with the link restored."""
    links = list(topology.links)
    victims = rng.sample(links, min(n_links, len(links)))
    plan = FaultPlan()
    for u, v in victims:
        for cycle in range(cycles):
            down = start + cycle * period
            plan.fail_link(down, u, v)
            plan.recover_link(down + period / 2.0, u, v)
    return plan


def controller_churn(
    topology: Topology,
    rng: random.Random,
    events: int = 3,
    spacing: float = 1.5,
    downtime: float = 1.0,
    start: float = 0.5,
) -> FaultPlan:
    """Controllers fail-stop and recover one after another — the
    Figure 10/11 scenario generalized to an ongoing stream."""
    if not topology.controllers:
        raise ValueError("controller churn needs controllers attached")
    plan = FaultPlan()
    down_until: Dict[str, float] = {}
    t = start
    for _ in range(events):
        # Only pick controllers that are back up, so one outage window
        # never truncates another (a pending recover is unconditional).
        candidates = [
            c for c in topology.controllers if down_until.get(c, 0.0) <= t
        ]
        if candidates:
            victim = rng.choice(candidates)
            plan.fail_node(t, victim)
            plan.recover_node(t + downtime, victim)
            down_until[victim] = t + downtime
        t += spacing * (0.5 + rng.random())
    return plan


def state_corruption(
    topology: Topology,
    rng: random.Random,
    events: int = 3,
    horizon: float = 5.0,
) -> FaultPlan:
    """Rare transient faults (the paper's Figure 3 rightmost class):
    switch tables are wiped or polluted with a ghost controller's rule,
    and controller reply stores are corrupted."""
    plan = FaultPlan()
    times = sorted(rng.uniform(0.2, horizon) for _ in range(events))
    for t in times:
        roll = rng.random()
        if roll < 0.4 or not topology.controllers:
            sid = rng.choice(topology.switches)
            plan.corrupt_switch(t, sid, clear_first=True)
        elif roll < 0.7:
            sid = rng.choice(topology.switches)
            neighbor = rng.choice(topology.neighbors(sid))
            ghost = Rule(
                cid="zz-ghost",
                sid=sid,
                src="zz-ghost",
                dst="zz-nowhere",
                priority=1,
                forward_to=neighbor,
            )
            plan.corrupt_switch(t, sid, rules=(ghost,), managers=("zz-ghost",))
        else:
            plan.corrupt_controller(t, rng.choice(topology.controllers))
    return plan


def mixed(topology: Topology, rng: random.Random, horizon: float = 8.0) -> FaultPlan:
    """Churn + flapping + corruption at once — the kitchen-sink workload."""
    return compose(
        poisson_churn(topology, rng, horizon=horizon, mtbf=2.5),
        flapping_links(topology, rng, n_links=1, cycles=2),
        state_corruption(topology, rng, events=2, horizon=horizon * 0.6),
    )


@dataclass(frozen=True)
class Campaign:
    """A named, parameterizable fault-campaign generator."""

    name: str
    description: str
    builder: Callable[..., FaultPlan]

    def build(self, topology: Topology, rng: random.Random, **params) -> FaultPlan:
        return self.builder(topology, rng, **params)


CAMPAIGNS: Dict[str, Campaign] = {
    campaign.name: campaign
    for campaign in (
        Campaign("churn", "Poisson link/node churn with MTBF/MTTR", poisson_churn),
        Campaign("regional", "correlated regional outage around an epicenter", regional_failure),
        Campaign("flapping", "periodically flapping links", flapping_links),
        Campaign("controller-churn", "rolling controller fail-stop/recover", controller_churn),
        Campaign("corruption", "transient state corruption of switches/controllers", state_corruption),
        Campaign("mixed", "churn + flapping + corruption composed", mixed),
    )
}


def build_campaign(
    name: str, topology: Topology, rng: random.Random, **params
) -> FaultPlan:
    """Build the named campaign; raises on unknown names."""
    try:
        campaign = CAMPAIGNS[name]
    except KeyError:
        raise ValueError(
            f"unknown campaign {name!r}; known: {', '.join(sorted(CAMPAIGNS))}"
        ) from None
    return campaign.build(topology, rng, **params)


__all__ = [
    "CAMPAIGNS",
    "Campaign",
    "build_campaign",
    "compose",
    "controller_churn",
    "flapping_links",
    "mixed",
    "poisson_churn",
    "regional_failure",
    "state_corruption",
]
