"""The ``scenario`` experiment spec: (topology × campaign) convergence.

Registers one :class:`~repro.exp.spec.ExperimentSpec` named ``scenario``
whose cases measure the paper's core claim on *generated* networks under
*randomized* fault campaigns: bootstrap to a legitimate configuration,
inject the campaign, and measure the time from the campaign's final
action back to legitimacy.

Everything is a pure function of the repetition seed — the topology (for
randomized families), the controller placement, the simulation's event
randomness, and the campaign itself — so the parallel repetition runner
produces bit-identical series at any worker count.  The module is wired
into the registry lazily through ``repro.exp.spec``'s deferred-module
hook, which also makes the spec resolvable inside ``spawn``-start worker
processes that never imported this package.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.exp.seeding import fault_rng
from repro.exp.spec import CaseSpec, ExperimentSpec, register
from repro.net.topologies import attach_controllers
from repro.scenarios.campaigns import build_campaign
from repro.scenarios.generators import parse_topology
from repro.sim.faults import FaultPlan
from repro.sim.network_sim import NetworkSimulation, SimulationConfig


def build_scenario_simulation(
    topology: str,
    seed: int,
    n_controllers: int = 3,
    task_delay: float = 0.5,
    theta: int = 10,
) -> NetworkSimulation:
    """One scenario repetition's simulation, pure in ``(topology, seed)``."""
    topo = parse_topology(topology, seed=seed)
    attach_controllers(topo, n_controllers, seed=seed)
    config = SimulationConfig(
        task_delay=task_delay,
        discovery_delay=task_delay,
        theta=theta,
        seed=seed,
        rng=random.Random(seed),
    )
    return NetworkSimulation(topo, config)


def measure_campaign_recovery(
    topology: str,
    campaign: str,
    seed: int,
    n_controllers: int = 3,
    task_delay: float = 0.5,
    theta: int = 10,
    timeout: float = 240.0,
    plan: Optional[FaultPlan] = None,
) -> Optional[float]:
    """Recovery time from the campaign's last action to legitimacy.

    Bootstraps, shifts the campaign onto the simulation clock, lets every
    scheduled action execute, then measures re-convergence.  Returns
    ``None`` if bootstrap or re-convergence times out.  ``plan`` overrides
    the generated campaign (the property harness uses it to shrink a
    failing schedule); it is interpreted on the relative clock.
    """
    sim = build_scenario_simulation(
        topology, seed, n_controllers=n_controllers, task_delay=task_delay, theta=theta
    )
    if sim.run_until_legitimate(timeout=timeout) is None:
        return None
    if plan is None:
        plan = build_campaign(campaign, sim.topology, fault_rng(seed))
    shifted = plan.shifted(sim.sim.now)
    if not shifted.actions:
        return 0.0
    sim.inject(shifted)
    last_at = shifted.last_at()
    # Run past the final action so the clock starts after the last fault.
    sim.run_for(last_at - sim.sim.now + 0.01)
    t = sim.run_until_legitimate(timeout=timeout)
    if t is None:
        return None
    return max(0.0, t - last_at)


def _scenario_cases(
    networks=None,
    topology: str = "jellyfish:20",
    campaign: str = "churn",
    n_controllers: int = 3,
    task_delay: float = 0.5,
    theta: int = 10,
    timeout: float = 240.0,
    **_params,
) -> List[CaseSpec]:
    label = f"{topology} {campaign}"
    if networks and topology not in networks and label not in networks:
        return []
    return [
        CaseSpec(
            label=label,
            network=topology,
            measure=lambda s: measure_campaign_recovery(
                topology,
                campaign,
                s,
                n_controllers=n_controllers,
                task_delay=task_delay,
                theta=theta,
                timeout=timeout,
            ),
            # The paper's drop-two-extrema protocol suits figure
            # regeneration; exploratory campaigns exist to surface the
            # worst-case tail, so keep every repetition.
            trim=False,
        )
    ]


register(
    ExperimentSpec(
        name="scenario",
        title="Scenario: fault-campaign recovery on a generated topology",
        build_cases=_scenario_cases,
        notes=(
            "recovery seconds from the campaign's last action back to a "
            "legitimate configuration (Definition 1)"
        ),
        default_reps=8,
    )
)


__all__ = [
    "build_scenario_simulation",
    "measure_campaign_recovery",
]
