"""The ``scenario`` experiment spec: (topology × campaign) convergence.

Registers one :class:`~repro.exp.spec.ExperimentSpec` named ``scenario``
whose cases measure the paper's core claim on *generated* networks under
*randomized* fault campaigns: bootstrap to a legitimate configuration,
inject the campaign, and measure the time from the campaign's final
action back to legitimacy.

Everything is a pure function of the repetition seed — the topology (for
randomized families), the controller placement, the simulation's event
randomness, and the campaign itself — so the parallel repetition runner
produces bit-identical series at any worker count.  The module is wired
into the registry lazily through ``repro.exp.spec``'s deferred-module
hook, which also makes the spec resolvable inside ``spawn``-start worker
processes that never imported this package.
"""

from __future__ import annotations

from typing import List, Optional

from repro.api import (
    AwaitLegitimacy,
    Bootstrap,
    InjectFaults,
    RunPlan,
    RunResult,
    build_simulation,
)
from repro.exp.spec import CaseSpec, ExperimentSpec, register
from repro.scenarios.campaigns import build_campaign
from repro.sim.faults import FaultPlan
from repro.sim.network_sim import NetworkSimulation


def build_scenario_simulation(
    topology: str,
    seed: int,
    n_controllers: int = 3,
    task_delay: float = 0.5,
    theta: int = 10,
) -> NetworkSimulation:
    """One scenario repetition's simulation, pure in ``(topology, seed)``."""
    return build_simulation(
        topology,
        controllers=n_controllers,
        seed=seed,
        task_delay=task_delay,
        theta=theta,
    )


def campaign_run_plan(
    topology: str,
    campaign: str,
    seed: int,
    n_controllers: int = 3,
    task_delay: float = 0.5,
    theta: int = 10,
    timeout: float = 240.0,
    plan: Optional[FaultPlan] = None,
) -> RunPlan:
    """The facade plan of one scenario repetition: bootstrap, run the
    campaign on the relative clock, measure re-convergence.

    ``plan`` overrides the generated campaign (the property harness uses
    it to shrink a failing schedule); either way the schedule is shifted
    onto the simulation clock at injection time.
    """
    inject = InjectFaults(
        plan=plan,
        builder=(
            None
            if plan is not None
            else (lambda sim, rng: build_campaign(campaign, sim.topology, rng))
        ),
        relative=True,
        # The campaign name is the builder's whole parametrization; the
        # label makes it part of the run's content address (an explicit
        # ``plan`` is serialized verbatim instead).
        label=f"campaign:{campaign}",
    )
    return (
        RunPlan(topology, controllers=n_controllers, seed=seed)
        .configure(task_delay=task_delay, theta=theta)
        .then(
            Bootstrap(timeout=timeout),
            inject,
            AwaitLegitimacy(timeout=timeout, clamp_zero=True),
        )
    )


def run_campaign(
    topology: str,
    campaign: str,
    seed: int,
    n_controllers: int = 3,
    task_delay: float = 0.5,
    theta: int = 10,
    timeout: float = 240.0,
    plan: Optional[FaultPlan] = None,
) -> RunResult:
    """Execute one scenario repetition and return its full run record."""
    return campaign_run_plan(
        topology,
        campaign,
        seed,
        n_controllers=n_controllers,
        task_delay=task_delay,
        theta=theta,
        timeout=timeout,
        plan=plan,
    ).run()


def measure_campaign_recovery(
    topology: str,
    campaign: str,
    seed: int,
    n_controllers: int = 3,
    task_delay: float = 0.5,
    theta: int = 10,
    timeout: float = 240.0,
    plan: Optional[FaultPlan] = None,
) -> Optional[float]:
    """Recovery time from the campaign's last action to legitimacy, or
    ``None`` if bootstrap or re-convergence times out."""
    return run_campaign(
        topology,
        campaign,
        seed,
        n_controllers=n_controllers,
        task_delay=task_delay,
        theta=theta,
        timeout=timeout,
        plan=plan,
    ).recovery_time


def _scenario_cases(
    networks=None,
    topology: str = "jellyfish:20",
    campaign: str = "churn",
    n_controllers: int = 3,
    task_delay: float = 0.5,
    theta: int = 10,
    timeout: float = 240.0,
    **_params,
) -> List[CaseSpec]:
    label = f"{topology} {campaign}"
    if networks and topology not in networks and label not in networks:
        return []
    return [
        CaseSpec(
            label=label,
            network=topology,
            measure=lambda s: measure_campaign_recovery(
                topology,
                campaign,
                s,
                n_controllers=n_controllers,
                task_delay=task_delay,
                theta=theta,
                timeout=timeout,
            ),
            # The paper's drop-two-extrema protocol suits figure
            # regeneration; exploratory campaigns exist to surface the
            # worst-case tail, so keep every repetition.
            trim=False,
        )
    ]


register(
    ExperimentSpec(
        name="scenario",
        title="Scenario: fault-campaign recovery on a generated topology",
        build_cases=_scenario_cases,
        notes=(
            "recovery seconds from the campaign's last action back to a "
            "legitimate configuration (Definition 1)"
        ),
        default_reps=8,
    )
)


__all__ = [
    "build_scenario_simulation",
    "campaign_run_plan",
    "measure_campaign_recovery",
    "run_campaign",
]
