"""Seeded generate-and-shrink harness for the convergence property.

The paper's core claim (Theorem 1) is that the control plane reaches a
legitimate configuration from *any* sequence of benign and transient
faults, within a bounded horizon.  This harness checks that claim on
thousands of generated cases with nothing beyond the standard library:

* **generate** — :func:`generate_cases` derives ``n`` random
  ``(topology, campaign, seed)`` triples from a base seed, drawing
  topologies from every scenario family — including the Harary graphs
  behind ``random_k_connected`` (``harary:NxK``) — at deliberately small
  sizes so a tier-1 run covers many cases per second;
* **check** — :func:`check_case` runs the scenario measurement: a case
  *passes* iff the network re-converges within the timeout after the
  campaign's final action;
* **shrink** — on failure, :func:`shrink_case` first tries smaller
  topologies of the same family, then shrinks the fault schedule on the
  smallest failing case to a minimal *transient* prefix, and reports the
  smallest reproducing triple.

Failures print a copy-pastable reproduction line; re-running the triple
through :func:`check_case` reproduces the timeout deterministically.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.exp.seeding import fault_rng
from repro.obs.explain import explain_rerun
from repro.obs.telemetry import Telemetry, use_telemetry
from repro.scenarios.campaigns import CAMPAIGNS, build_campaign
from repro.scenarios.spec import build_scenario_simulation, measure_campaign_recovery
from repro.sim.faults import FaultPlan

#: Small-but-varied topology pool: every generator family at sizes where a
#: full bootstrap-campaign-reconverge cycle stays around a second of wall
#: time.  Sub-lists are ordered largest-first so index+1 is "smaller".
TOPOLOGY_POOL: Tuple[Tuple[str, ...], ...] = (
    # Rings deliberately cover the previously-livelocked high-diameter
    # sizes (16/20) now that max_rules is diameter-aware.
    ("ring:20", "ring:16", "ring:12", "ring:10", "ring:8", "ring:6", "ring:5"),
    ("grid:3x4", "grid:3x3", "grid:2x4", "grid:2x3"),
    ("jellyfish:12", "jellyfish:10", "jellyfish:8", "jellyfish:6"),
    ("harary:12x3", "harary:10x3", "harary:8x2", "harary:6x2"),
    ("fattree:4",),
)


@dataclass(frozen=True)
class ConvergenceCase:
    """One generated property-test case — the reproducing triple."""

    topology: str
    campaign: str
    seed: int

    def repro_line(self) -> str:
        return (
            f"check_case(ConvergenceCase(topology={self.topology!r}, "
            f"campaign={self.campaign!r}, seed={self.seed}))"
        )


#: Fast simulation settings shared by every harness run: small Θ and task
#: delay keep convergence within a few simulated seconds on the pool's
#: topology sizes, so the timeout is a genuine bounded-horizon assertion.
FAST_SETTINGS = dict(n_controllers=2, task_delay=0.1, theta=4, timeout=120.0)


def generate_cases(n: int, base_seed: int = 0) -> List[ConvergenceCase]:
    """``n`` deterministic random triples spanning all families/campaigns."""
    rng = random.Random(base_seed * 7_368_787 + 11)
    campaigns = sorted(CAMPAIGNS)
    cases = []
    for _ in range(n):
        family = rng.choice(TOPOLOGY_POOL)
        cases.append(
            ConvergenceCase(
                topology=rng.choice(family),
                campaign=rng.choice(campaigns),
                seed=rng.randrange(1 << 20),
            )
        )
    return cases


def campaign_plan(case: ConvergenceCase) -> FaultPlan:
    """The exact fault schedule the case injects (relative clock)."""
    sim = build_scenario_simulation(
        case.topology,
        case.seed,
        n_controllers=FAST_SETTINGS["n_controllers"],
        task_delay=FAST_SETTINGS["task_delay"],
        theta=FAST_SETTINGS["theta"],
    )
    return build_campaign(case.campaign, sim.topology, fault_rng(case.seed))


def check_case(
    case: ConvergenceCase, plan: Optional[FaultPlan] = None
) -> Optional[float]:
    """Recovery seconds after the campaign's last action, or ``None`` on
    non-convergence — the property under test is "never ``None``"."""
    return measure_campaign_recovery(
        case.topology, case.campaign, case.seed, plan=plan, **FAST_SETTINGS
    )


_RECOVER_OF = {"fail_link": "recover_link", "fail_node": "recover_node"}


def plan_is_transient(plan: FaultPlan) -> bool:
    """True iff every failed link/node is recovered by the plan's end —
    the invariant campaigns promise and shrunk prefixes must preserve.
    (Shared oracle: the campaign and shrinker test suites both assert
    against this, so the fail/recover kind bookkeeping cannot drift.)

    Permanent ``remove_link``/``remove_node`` actions are by definition
    never recovered, so any plan containing one is not transient.
    """
    events: Dict[tuple, List[Tuple[float, str]]] = {}
    for action in plan.actions:
        if action.kind in ("remove_link", "remove_node"):
            return False
        if action.kind in ("fail_link", "recover_link", "fail_node", "recover_node"):
            events.setdefault(action.target, []).append((action.at, action.kind))
    return all(
        sorted(history)[-1][1].startswith("recover") for history in events.values()
    )


def _transient_prefix(plan: FaultPlan, cut: int) -> FaultPlan:
    """``actions[:cut]`` plus the recover actions from the remainder that
    keep the prefix transient.

    A raw prefix can cut between a fail and its recover, leaving the
    network permanently degraded — then non-convergence is benign and the
    "shrunk" schedule would not reproduce the original protocol failure.
    Campaigns guarantee every fail a later recover, so the deficit is
    always satisfiable.
    """
    prefix = list(plan.actions[:cut])
    deficit: Counter = Counter()
    for action in prefix:
        if action.kind in _RECOVER_OF:
            deficit[(_RECOVER_OF[action.kind], action.target)] += 1
        elif action.kind in ("recover_link", "recover_node"):
            key = (action.kind, action.target)
            if deficit[key] > 0:
                deficit[key] -= 1
    for action in plan.actions[cut:]:
        key = (action.kind, action.target)
        if deficit.get(key, 0) > 0:
            deficit[key] -= 1
            prefix.append(action)
    return FaultPlan(sorted(prefix, key=lambda a: a.at))


def _shrink_plan(case: ConvergenceCase) -> Optional[FaultPlan]:
    """Shortest failing transient prefix of the case's campaign (linear
    scan from the front — schedules are short), or ``None`` if only the
    full schedule fails."""
    plan = campaign_plan(case)
    for cut in range(1, len(plan.actions)):
        prefix = _transient_prefix(plan, cut)
        if check_case(case, plan=prefix) is None:
            return prefix
    return None


def shrink_case(case: ConvergenceCase) -> Tuple[ConvergenceCase, Optional[FaultPlan]]:
    """Smallest reproduction of a failing case.

    First shrinks the topology within its family (node names shift
    between sizes, so schedules do not transfer and each candidate is
    checked with its own regenerated campaign), then shrinks the fault
    schedule on the smallest failing case to a minimal transient prefix.
    """
    best = case
    family = next((f for f in TOPOLOGY_POOL if case.topology in f), ())
    start = family.index(case.topology) + 1 if case.topology in family else 0
    for smaller in family[start:]:
        candidate = replace(best, topology=smaller)
        if check_case(candidate) is None:
            best = candidate
        else:
            break
    return best, _shrink_plan(best)


@dataclass
class PropertyReport:
    """Outcome of one harness run."""

    cases: List[ConvergenceCase]
    recovery_times: List[float]
    failures: List[ConvergenceCase]

    @property
    def ok(self) -> bool:
        return not self.failures


def failure_event_tail(
    case: ConvergenceCase,
    plan: Optional[FaultPlan] = None,
    capacity: int = 32,
) -> List[List[object]]:
    """The last simulator events of a *failing* case — the flight
    recorder's dump.

    Re-runs the (already shrunken, hence cheap) case under a private
    telemetry handle; the simulation attaches its bounded event ring to
    it and dumps the tail on non-convergence.  Returns the dump's
    ``[t_sim, kind, note]`` rows, or ``[]`` if the case passes on the
    re-run.
    """
    with use_telemetry(Telemetry(flight_capacity=capacity)) as telemetry:
        check_case(case, plan=plan)
    if not telemetry.flight_dumps:
        return []
    return list(telemetry.flight_dumps[-1]["events"])


def run_convergence_property(n: int, base_seed: int = 0) -> PropertyReport:
    """Check ``n`` generated cases; shrink and report every failure."""
    cases = generate_cases(n, base_seed=base_seed)
    times: List[float] = []
    failures: List[ConvergenceCase] = []
    for case in cases:
        recovery = check_case(case)
        if recovery is None:
            shrunk, shrunk_plan = shrink_case(case)
            failures.append(shrunk)
            detail = (
                f" with {len(shrunk_plan.actions)}-action prefix"
                if shrunk_plan is not None
                else ""
            )
            print(
                "convergence FAILED"
                f" on (topology={shrunk.topology!r}, campaign={shrunk.campaign!r}, "
                f"seed={shrunk.seed}){detail}\n  reproduce: {shrunk.repro_line()}"
            )
            # Convergence forensics: re-run the shrunken case under a
            # private telemetry handle and print the causal chain from the
            # injected fault to the failed probe verdicts.
            explanation = explain_rerun(
                lambda c=shrunk, p=shrunk_plan: check_case(c, plan=p),
                source=shrunk.repro_line(),
            )
            for line in explanation.render().splitlines():
                print(f"  {line}")
        else:
            times.append(recovery)
    return PropertyReport(cases=cases, recovery_times=times, failures=failures)


__all__ = [
    "FAST_SETTINGS",
    "TOPOLOGY_POOL",
    "ConvergenceCase",
    "PropertyReport",
    "campaign_plan",
    "check_case",
    "failure_event_tail",
    "generate_cases",
    "plan_is_transient",
    "run_convergence_property",
    "shrink_case",
]
