"""Scenario campaigns: generated topologies × composable fault workloads.

The paper evaluates convergence only on the five Table-8 networks under
single, hand-picked faults.  This package opens the scenario axis:

* :mod:`repro.scenarios.generators` — parametric topology families
  (fat-tree, Jellyfish, ring, 2D grid) beyond the Table-8 zoo, all
  guaranteeing the 2-edge-connectivity κ = 1 resilient flows require;
* :mod:`repro.scenarios.campaigns` — composable randomized fault
  campaigns (Poisson churn, correlated regional failures, flapping
  links, controller churn, transient state corruption), each a pure
  function of a seed;
* :mod:`repro.scenarios.spec` — the ``scenario`` experiment spec that
  runs any (topology, campaign) pair through the parallel repetition
  runner with deterministic seeding;
* :mod:`repro.scenarios.harness` — a seeded generate-and-shrink property
  harness checking the paper's core claim: convergence to a legitimate
  configuration from any fault sequence, within a bounded horizon.
"""

from repro.scenarios.generators import (
    GENERATORS,
    fat_tree,
    grid2d,
    harary,
    jellyfish,
    parse_topology,
    ring,
)
from repro.scenarios.campaigns import CAMPAIGNS, Campaign, build_campaign, compose
from repro.scenarios.harness import (
    ConvergenceCase,
    check_case,
    generate_cases,
    run_convergence_property,
    shrink_case,
)

__all__ = [
    "CAMPAIGNS",
    "Campaign",
    "ConvergenceCase",
    "GENERATORS",
    "build_campaign",
    "check_case",
    "compose",
    "fat_tree",
    "generate_cases",
    "grid2d",
    "harary",
    "jellyfish",
    "parse_topology",
    "ring",
    "run_convergence_property",
    "shrink_case",
]
