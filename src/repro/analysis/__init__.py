"""Experiment harness: one function per paper figure/table.

Each function regenerates the rows/series of the corresponding figure or
table of the paper's Section 6 evaluation, returning plain data structures
that the benchmark suite prints and asserts shape properties on.
"""

from repro.analysis.experiments import (
    ExperimentResult,
    table8_topologies,
    fig5_bootstrap,
    fig6_bootstrap_vs_controllers,
    fig7_bootstrap_vs_task_delay,
    fig9_communication_overhead,
    fig10_controller_failure,
    fig11_multi_controller_failure,
    fig12_switch_failure,
    fig13_link_failure,
    fig14_multi_link_failure,
    fig15_throughput_with_recovery,
    fig16_throughput_without_recovery,
    table17_correlation,
    fig18_retransmissions,
    fig19_bad_tcp,
    fig20_out_of_order,
)
from repro.analysis.adversary import stabilize_campaign
from repro.analysis.scenarios import scenario_campaign
from repro.analysis.traffic import traffic_campaign

__all__ = [
    "ExperimentResult",
    "scenario_campaign",
    "stabilize_campaign",
    "traffic_campaign",
    "table8_topologies",
    "fig5_bootstrap",
    "fig6_bootstrap_vs_controllers",
    "fig7_bootstrap_vs_task_delay",
    "fig9_communication_overhead",
    "fig10_controller_failure",
    "fig11_multi_controller_failure",
    "fig12_switch_failure",
    "fig13_link_failure",
    "fig14_multi_link_failure",
    "fig15_throughput_with_recovery",
    "fig16_throughput_without_recovery",
    "table17_correlation",
    "fig18_retransmissions",
    "fig19_bad_tcp",
    "fig20_out_of_order",
]
