"""Figure-shaped API over the scenario campaign subsystem.

:func:`scenario_campaign` is to the ``scenario`` spec what
``fig5_bootstrap`` is to ``fig5``: a stable wrapper that resolves the
spec in the registry and executes it through the parallel repetition
runner, bit-identical at any worker count.
"""

from __future__ import annotations

from typing import Optional

from repro.exp.runner import run_spec
from repro.exp.spec import ExperimentResult


def scenario_campaign(
    topology: str = "jellyfish:20",
    campaign: str = "churn",
    reps: int = 8,
    n_controllers: int = 3,
    workers: Optional[int] = None,
    base_seed: int = 0,
    task_delay: float = 0.5,
    theta: int = 10,
    timeout: float = 240.0,
    store=None,
    refresh: bool = False,
) -> ExperimentResult:
    """Recovery-time distribution of one fault campaign on one generated
    topology; each repetition derives its topology (for randomized
    families), controller placement, and campaign from its own seed.
    ``store``/``refresh`` make the campaign resumable exactly like
    :func:`~repro.exp.runner.run_spec`."""
    return run_spec(
        "scenario",
        reps=reps,
        workers=workers,
        base_seed=base_seed,
        store=store,
        refresh=refresh,
        params={
            "topology": topology,
            "campaign": campaign,
            "n_controllers": n_controllers,
            "task_delay": task_delay,
            "theta": theta,
            "timeout": timeout,
        },
    )


__all__ = ["scenario_campaign"]
