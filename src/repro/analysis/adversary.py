"""Figure-shaped API over the adversarial self-stabilization subsystem.

:func:`stabilize_campaign` is to the ``stabilize`` spec what
``scenario_campaign`` is to ``scenario``: a stable wrapper that resolves
the spec in the registry and executes it through the parallel repetition
runner, bit-identical at any worker count and resumable through the run
store.
"""

from __future__ import annotations

from typing import Optional

from repro.exp.runner import run_spec
from repro.exp.spec import ExperimentResult


def stabilize_campaign(
    topology: str = "jellyfish:20",
    corruption: str = "mixed",
    scheduler: str = "none",
    reps: int = 8,
    n_controllers: int = 3,
    workers: Optional[int] = None,
    base_seed: int = 0,
    task_delay: float = 0.5,
    theta: int = 10,
    timeout: float = 240.0,
    store=None,
    refresh: bool = False,
) -> ExperimentResult:
    """Stabilization-time distribution of one corruption strategy (under
    one delivery scheduler) on one topology; each repetition derives its
    topology (for randomized families), controller placement, corrupted
    initial state, and scheduler randomness from its own seed.
    ``store``/``refresh`` make the campaign resumable exactly like
    :func:`~repro.exp.runner.run_spec`."""
    return run_spec(
        "stabilize",
        reps=reps,
        workers=workers,
        base_seed=base_seed,
        store=store,
        refresh=refresh,
        params={
            "topology": topology,
            "corruption": corruption,
            "scheduler": scheduler,
            "n_controllers": n_controllers,
            "task_delay": task_delay,
            "theta": theta,
            "timeout": timeout,
        },
    )


__all__ = ["stabilize_campaign"]
