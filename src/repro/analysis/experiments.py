"""Reproduction of every table and figure in the paper's Section 6.

This module is the stable, figure-shaped API over the experiment
orchestration subsystem: each ``figN_*``/``tableN_*`` function resolves to
a declarative :class:`~repro.exp.spec.ExperimentSpec` in the registry and
executes it through :func:`~repro.exp.runner.run_spec`.  The heavy lifting
— case expansion, per-repetition seed derivation, optional fan-out over a
process pool — lives in :mod:`repro.exp`; results are bit-identical no
matter how many workers execute them.

All experiments follow the paper's protocol (Section 6.3/6.4): task delay
500 ms, Θ = 10 for B4/Clos and 30 for the Rocketfuel networks, N
repetitions per data point with the two extrema dismissed, and violin
summaries of the rest.  Repetition counts default to the paper's 20 but
are parameters — the benchmark suite uses smaller counts to keep wall
time reasonable; shapes are stable from ~5 repetitions on.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.exp.runner import run_spec
from repro.exp.spec import (
    ALL_NETWORKS,
    ExperimentResult,
    ROCKETFUEL_NETWORKS,
    SMALL_NETWORKS,
    TABLE17_NETWORKS,
    THETA,
    TIMEOUT,
)


def table8_topologies(
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Node counts and diameters of the five evaluation networks."""
    return run_spec("table8", workers=workers)


def fig5_bootstrap(
    reps: int = 20,
    networks: Sequence[str] = ALL_NETWORKS,
    workers: Optional[int] = None,
    base_seed: int = 0,
) -> ExperimentResult:
    """Bootstrap time with 3 controllers on each network (Figure 5)."""
    return run_spec(
        "fig5", reps=reps, networks=networks, workers=workers, base_seed=base_seed
    )


def fig6_bootstrap_vs_controllers(
    reps: int = 20,
    networks: Sequence[str] = ROCKETFUEL_NETWORKS,
    controller_counts: Sequence[int] = (1, 3, 5, 7),
    workers: Optional[int] = None,
    base_seed: int = 0,
) -> ExperimentResult:
    """Bootstrap time for 1–7 controllers on the Rocketfuel networks
    (Figure 6)."""
    return run_spec(
        "fig6",
        reps=reps,
        networks=networks,
        workers=workers,
        base_seed=base_seed,
        params={"controller_counts": tuple(controller_counts)},
    )


def fig7_bootstrap_vs_task_delay(
    reps: int = 5,
    networks: Sequence[str] = ALL_NETWORKS,
    delays: Sequence[float] = (1.0, 0.9, 0.7, 0.5, 0.3, 0.1, 0.08, 0.06, 0.04, 0.02, 0.005),
    n_controllers: int = 7,
    workers: Optional[int] = None,
    base_seed: int = 0,
) -> ExperimentResult:
    """Bootstrap time as a function of the task delay (Figure 7)."""
    return run_spec(
        "fig7",
        reps=reps,
        networks=networks,
        workers=workers,
        base_seed=base_seed,
        params={"delays": tuple(delays), "n_controllers": n_controllers},
    )


def fig9_communication_overhead(
    reps: int = 20,
    networks: Sequence[str] = ALL_NETWORKS,
    workers: Optional[int] = None,
    base_seed: int = 0,
) -> ExperimentResult:
    """Per-node message cost of the most loaded controller, normalized by
    the iterations to converge (Figure 9)."""
    return run_spec(
        "fig9", reps=reps, networks=networks, workers=workers, base_seed=base_seed
    )


def fig10_controller_failure(
    reps: int = 20,
    networks: Sequence[str] = ALL_NETWORKS,
    workers: Optional[int] = None,
    base_seed: int = 0,
) -> ExperimentResult:
    """Recovery time after the fail-stop of one random controller
    (Figure 10)."""
    return run_spec(
        "fig10", reps=reps, networks=networks, workers=workers, base_seed=base_seed
    )


def fig11_multi_controller_failure(
    reps: int = 20,
    networks: Sequence[str] = ROCKETFUEL_NETWORKS,
    kill_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    workers: Optional[int] = None,
    base_seed: int = 0,
) -> ExperimentResult:
    """Recovery after simultaneously failing 1–6 of 7 controllers
    (Figure 11)."""
    return run_spec(
        "fig11",
        reps=reps,
        networks=networks,
        workers=workers,
        base_seed=base_seed,
        params={"kill_counts": tuple(kill_counts)},
    )


def fig12_switch_failure(
    reps: int = 20,
    networks: Sequence[str] = ALL_NETWORKS,
    workers: Optional[int] = None,
    base_seed: int = 0,
) -> ExperimentResult:
    """Recovery after permanently removing one random switch (Figure 12)."""
    return run_spec(
        "fig12", reps=reps, networks=networks, workers=workers, base_seed=base_seed
    )


def fig13_link_failure(
    reps: int = 20,
    networks: Sequence[str] = ALL_NETWORKS,
    workers: Optional[int] = None,
    base_seed: int = 0,
) -> ExperimentResult:
    """Recovery after permanently removing one random link (Figure 13)."""
    return run_spec(
        "fig13", reps=reps, networks=networks, workers=workers, base_seed=base_seed
    )


def fig14_multi_link_failure(
    reps: int = 20,
    networks: Sequence[str] = ALL_NETWORKS,
    fail_counts: Sequence[int] = (2, 4, 6),
    workers: Optional[int] = None,
    base_seed: int = 0,
) -> ExperimentResult:
    """Recovery after 2/4/6 simultaneous permanent link failures
    (Figure 14)."""
    return run_spec(
        "fig14",
        reps=reps,
        networks=networks,
        workers=workers,
        base_seed=base_seed,
        params={"fail_counts": tuple(fail_counts)},
    )


def fig15_throughput_with_recovery(
    networks: Sequence[str] = ALL_NETWORKS,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Per-second TCP throughput, link failure at t=10 s, with Renaissance
    recovery via tag-based consistent updates (Figure 15)."""
    return run_spec("fig15", networks=networks, workers=workers)


def fig16_throughput_without_recovery(
    networks: Sequence[str] = ALL_NETWORKS,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Per-second throughput using only the pre-installed backup paths
    (Figure 16)."""
    return run_spec("fig16", networks=networks, workers=workers)


def table17_correlation(
    networks: Sequence[str] = TABLE17_NETWORKS,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Pearson correlation between the Figure 15 and Figure 16 series
    (Table 17; paper reports 0.92-0.96 for Clos, B4, Telstra, EBONE,
    Exodus)."""
    return run_spec("table17", networks=networks, workers=workers)


def fig18_retransmissions(
    networks: Sequence[str] = ALL_NETWORKS,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Retransmission percentage per second (Figure 18)."""
    return run_spec("fig18", networks=networks, workers=workers)


def fig19_bad_tcp(
    networks: Sequence[str] = ALL_NETWORKS,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """BAD-TCP-flag percentage per second (Figure 19)."""
    return run_spec("fig19", networks=networks, workers=workers)


def fig20_out_of_order(
    networks: Sequence[str] = ALL_NETWORKS,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Out-of-order packet percentage per second (Figure 20)."""
    return run_spec("fig20", networks=networks, workers=workers)


__all__ = [
    "ExperimentResult",
    "THETA",
    "TIMEOUT",
    "ALL_NETWORKS",
    "SMALL_NETWORKS",
    "ROCKETFUEL_NETWORKS",
    "TABLE17_NETWORKS",
    "table8_topologies",
    "fig5_bootstrap",
    "fig6_bootstrap_vs_controllers",
    "fig7_bootstrap_vs_task_delay",
    "fig9_communication_overhead",
    "fig10_controller_failure",
    "fig11_multi_controller_failure",
    "fig12_switch_failure",
    "fig13_link_failure",
    "fig14_multi_link_failure",
    "fig15_throughput_with_recovery",
    "fig16_throughput_without_recovery",
    "table17_correlation",
    "fig18_retransmissions",
    "fig19_bad_tcp",
    "fig20_out_of_order",
]
