"""Reproduction of every table and figure in the paper's Section 6.

All experiments follow the paper's protocol (Section 6.3/6.4): task delay
500 ms, Θ = 10 for B4/Clos and 30 for the Rocketfuel networks, N
repetitions per data point with the two extrema dismissed, and violin
summaries of the rest.  Repetition counts default to the paper's 20 but
are parameters — the benchmark suite uses smaller counts to keep wall
time reasonable; shapes are stable from ~5 repetitions on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.net.topologies import TOPOLOGY_BUILDERS, TABLE8_EXPECTED, attach_controllers
from repro.sim.network_sim import NetworkSimulation, SimulationConfig
from repro.sim.faults import FaultAction, FaultPlan, random_link
from repro.sim.metrics import summarize, trimmed
from repro.transport.traffic import (
    TrafficRun,
    place_hosts_at_max_distance,
    standalone_switches,
)
from repro.transport.stats import TrafficStats, pearson

#: The paper's Θ per network (Section 6.3).
THETA: Dict[str, int] = {
    "B4": 10,
    "Clos": 10,
    "Telstra": 30,
    "AT&T": 30,
    "EBONE": 30,
    "Exodus": 30,
}

#: Convergence timeouts, scaled to network size.
TIMEOUT: Dict[str, float] = {
    "B4": 120.0,
    "Clos": 120.0,
    "Telstra": 240.0,
    "AT&T": 600.0,
    "EBONE": 600.0,
    "Exodus": 240.0,
}

SMALL_NETWORKS = ("B4", "Clos")
ROCKETFUEL_NETWORKS = ("Telstra", "AT&T", "EBONE")
ALL_NETWORKS = SMALL_NETWORKS + ROCKETFUEL_NETWORKS
#: Table 17's network list (the paper swaps AT&T for Exodus there).
TABLE17_NETWORKS = ("Clos", "B4", "Telstra", "EBONE", "Exodus")


@dataclass
class ExperimentResult:
    """One figure's regenerated data: label → repetition measurements."""

    name: str
    series: Dict[str, List[float]] = field(default_factory=dict)
    notes: str = ""

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {label: summarize(vals) for label, vals in self.series.items() if vals}

    def rows(self) -> List[str]:
        """Printable rows in the style of the paper's figures."""
        lines = [f"== {self.name} =="]
        for label, values in self.series.items():
            if not values:
                lines.append(f"{label:>24}: (no data)")
                continue
            s = summarize(values)
            lines.append(
                f"{label:>24}: median={s['median']:8.2f}  "
                f"q1={s['q1']:8.2f}  q3={s['q3']:8.2f}  "
                f"min={s['min']:8.2f}  max={s['max']:8.2f}  n={int(s['n'])}"
            )
        if self.notes:
            lines.append(f"   note: {self.notes}")
        return lines


# ---------------------------------------------------------------------------
# shared machinery
# ---------------------------------------------------------------------------


def _make_simulation(
    network: str,
    n_controllers: int,
    seed: int,
    task_delay: float = 0.5,
) -> NetworkSimulation:
    topology = TOPOLOGY_BUILDERS[network]()
    attach_controllers(topology, n_controllers, seed=seed)
    config = SimulationConfig(
        task_delay=task_delay,
        discovery_delay=task_delay,
        theta=THETA[network],
        seed=seed,
    )
    return NetworkSimulation(topology, config)


def _bootstrap_time(
    network: str,
    n_controllers: int,
    seed: int,
    task_delay: float = 0.5,
) -> Tuple[Optional[float], NetworkSimulation]:
    sim = _make_simulation(network, n_controllers, seed, task_delay=task_delay)
    t = sim.run_until_legitimate(timeout=TIMEOUT[network])
    return t, sim


def _recovery_time(
    network: str,
    n_controllers: int,
    seed: int,
    fault_builder: Callable[[NetworkSimulation, random.Random], FaultPlan],
) -> Optional[float]:
    """Bootstrap to a legitimate state, inject the fault plan, and measure
    the time back to legitimacy (the paper's recovery protocol)."""
    sim = _make_simulation(network, n_controllers, seed)
    t0 = sim.run_until_legitimate(timeout=TIMEOUT[network])
    if t0 is None:
        return None
    rng = random.Random(seed * 7919 + 13)
    plan = fault_builder(sim, rng)
    sim.inject(plan)
    fault_at = max(action.at for action in plan.actions)
    # Let the fault take effect before probing for re-convergence.
    sim.run_for(max(0.0, fault_at - sim.sim.now) + 0.01)
    t1 = sim.run_until_legitimate(timeout=TIMEOUT[network])
    if t1 is None:
        return None
    return t1 - fault_at


def _collect(
    reps: int, runner: Callable[[int], Optional[float]]
) -> List[float]:
    values = [runner(seed) for seed in range(reps)]
    return [v for v in values if v is not None]


# ---------------------------------------------------------------------------
# Table 8 — network statistics
# ---------------------------------------------------------------------------


def table8_topologies() -> ExperimentResult:
    """Node counts and diameters of the five evaluation networks."""
    result = ExperimentResult(name="Table 8: topology statistics")
    for network, (nodes, diameter) in TABLE8_EXPECTED.items():
        topo = TOPOLOGY_BUILDERS[network]()
        result.series[f"{network} nodes"] = [float(len(topo.switches))]
        result.series[f"{network} diameter"] = [float(topo.diameter())]
        result.series[f"{network} edge connectivity"] = [float(topo.edge_connectivity())]
    result.notes = "paper: B4 12/5, Clos 20/4, Telstra 57/8, AT&T 172/10, EBONE 208/11"
    return result


# ---------------------------------------------------------------------------
# Figure 5 / Figure 6 — bootstrap time
# ---------------------------------------------------------------------------


def fig5_bootstrap(
    reps: int = 20, networks: Sequence[str] = ALL_NETWORKS
) -> ExperimentResult:
    """Bootstrap time with 3 controllers on each network (Figure 5)."""
    result = ExperimentResult(name="Figure 5: bootstrap time, 3 controllers")
    for network in networks:
        times = _collect(reps, lambda s: _bootstrap_time(network, 3, s)[0])
        result.series[network] = trimmed(times)
    result.notes = "paper medians roughly 5-55 s growing with network size/diameter"
    return result


def fig6_bootstrap_vs_controllers(
    reps: int = 20,
    networks: Sequence[str] = ROCKETFUEL_NETWORKS,
    controller_counts: Sequence[int] = (1, 3, 5, 7),
) -> ExperimentResult:
    """Bootstrap time for 1–7 controllers on the Rocketfuel networks
    (Figure 6)."""
    result = ExperimentResult(name="Figure 6: bootstrap vs controller count")
    for network in networks:
        for n_ctrl in controller_counts:
            times = _collect(reps, lambda s: _bootstrap_time(network, n_ctrl, s)[0])
            result.series[f"{network} x{n_ctrl}"] = trimmed(times)
    result.notes = "paper: grows with network size; mildly with controller count"
    return result


# ---------------------------------------------------------------------------
# Figure 7 — bootstrap time vs task delay
# ---------------------------------------------------------------------------


def fig7_bootstrap_vs_task_delay(
    reps: int = 5,
    networks: Sequence[str] = ALL_NETWORKS,
    delays: Sequence[float] = (1.0, 0.9, 0.7, 0.5, 0.3, 0.1, 0.08, 0.06, 0.04, 0.02, 0.005),
    n_controllers: int = 7,
) -> ExperimentResult:
    """Bootstrap time as a function of the task delay (Figure 7)."""
    result = ExperimentResult(name="Figure 7: bootstrap vs task delay")
    for network in networks:
        for delay in delays:
            times = _collect(
                reps,
                lambda s: _bootstrap_time(network, n_controllers, s, task_delay=delay)[0],
            )
            result.series[f"{network} d={delay}"] = trimmed(times)
    result.notes = (
        "paper: proportional to the delay until congestion raises the small-"
        "delay end; the simulator has no queueing so the small-delay end "
        "flattens instead of peaking"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 9 — communication overhead
# ---------------------------------------------------------------------------


def fig9_communication_overhead(
    reps: int = 20, networks: Sequence[str] = ALL_NETWORKS
) -> ExperimentResult:
    """Per-node message cost of the most loaded controller, normalized by
    the iterations to converge (Figure 9)."""
    result = ExperimentResult(name="Figure 9: communication cost per node")

    def one(network: str, seed: int) -> Optional[float]:
        n_ctrl = 3 if network in SMALL_NETWORKS else 7
        t, sim = _bootstrap_time(network, n_ctrl, seed)
        if t is None:
            return None
        n_nodes = len(sim.topology.nodes)
        return sim.metrics.max_load_per_node_per_iteration(
            sim.controller_iterations(), n_nodes
        )

    for network in networks:
        values = _collect(reps, lambda s: one(network, s))
        result.series[network] = trimmed(values)
    result.notes = "paper: ~5-25 messages per node per iteration, similar across networks"
    return result


# ---------------------------------------------------------------------------
# Figures 10-14 — recovery from benign failures
# ---------------------------------------------------------------------------


def fig10_controller_failure(
    reps: int = 20, networks: Sequence[str] = ALL_NETWORKS
) -> ExperimentResult:
    """Recovery time after the fail-stop of one random controller
    (Figure 10)."""
    result = ExperimentResult(name="Figure 10: recovery after controller fail-stop")

    def fault(sim: NetworkSimulation, rng: random.Random) -> FaultPlan:
        victim = rng.choice(sim.topology.controllers)
        return FaultPlan().fail_node(sim.sim.now + 0.05, victim)

    for network in networks:
        n_ctrl = 3
        times = _collect(reps, lambda s: _recovery_time(network, n_ctrl, s, fault))
        result.series[network] = trimmed(times)
    result.notes = "paper: O(D) — a few seconds, well below bootstrap time"
    return result


def fig11_multi_controller_failure(
    reps: int = 20,
    networks: Sequence[str] = ROCKETFUEL_NETWORKS,
    kill_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
) -> ExperimentResult:
    """Recovery after simultaneously failing 1–6 of 7 controllers
    (Figure 11)."""
    result = ExperimentResult(name="Figure 11: recovery after multi-controller fail-stop")

    def make_fault(kill: int):
        def fault(sim: NetworkSimulation, rng: random.Random) -> FaultPlan:
            victims = rng.sample(sim.topology.controllers, kill)
            plan = FaultPlan()
            for victim in victims:
                plan.fail_node(sim.sim.now + 0.05, victim)
            return plan

        return fault

    for network in networks:
        for kill in kill_counts:
            times = _collect(
                reps, lambda s: _recovery_time(network, 7, s, make_fault(kill))
            )
            result.series[f"{network} kill={kill}"] = trimmed(times)
    result.notes = "paper: no clear relation between kill count and recovery time"
    return result


def fig12_switch_failure(
    reps: int = 20, networks: Sequence[str] = ALL_NETWORKS
) -> ExperimentResult:
    """Recovery after permanently removing one random switch (Figure 12)."""
    result = ExperimentResult(name="Figure 12: recovery after switch failure")

    def fault(sim: NetworkSimulation, rng: random.Random) -> FaultPlan:
        candidates = list(sim.topology.switches)
        rng.shuffle(candidates)
        for victim in candidates:
            probe = sim.topology.copy()
            probe.remove_node(victim)
            if probe.connected():
                plan = FaultPlan()
                plan.actions.append(
                    FaultAction(sim.sim.now + 0.05, "remove_node", (victim,))
                )
                return plan
        raise ValueError("no switch removable without disconnection")

    for network in networks:
        times = _collect(reps, lambda s: _recovery_time(network, 3, s, fault))
        result.series[network] = trimmed(times)
    result.notes = "paper: O(D), grows with diameter, large variance"
    return result


def fig13_link_failure(
    reps: int = 20, networks: Sequence[str] = ALL_NETWORKS
) -> ExperimentResult:
    """Recovery after permanently removing one random link (Figure 13)."""
    result = ExperimentResult(name="Figure 13: recovery after link failure")

    def fault(sim: NetworkSimulation, rng: random.Random) -> FaultPlan:
        u, v = random_link(sim.topology, rng, protect_connectivity=True)
        return FaultPlan().remove_link(sim.sim.now + 0.05, u, v)

    for network in networks:
        times = _collect(reps, lambda s: _recovery_time(network, 3, s, fault))
        result.series[network] = trimmed(times)
    result.notes = "paper: O(D)"
    return result


def fig14_multi_link_failure(
    reps: int = 20,
    networks: Sequence[str] = ALL_NETWORKS,
    fail_counts: Sequence[int] = (2, 4, 6),
) -> ExperimentResult:
    """Recovery after 2/4/6 simultaneous permanent link failures
    (Figure 14)."""
    result = ExperimentResult(name="Figure 14: recovery after multiple link failures")

    def make_fault(count: int):
        def fault(sim: NetworkSimulation, rng: random.Random) -> FaultPlan:
            plan = FaultPlan()
            probe = sim.topology.copy()
            picked = 0
            links = list(probe.links)
            rng.shuffle(links)
            for u, v in links:
                if picked >= count:
                    break
                trial = probe.copy()
                trial.remove_link(u, v)
                if trial.connected():
                    probe = trial
                    plan.remove_link(sim.sim.now + 0.05, u, v)
                    picked += 1
            return plan

        return fault

    for network in networks:
        for count in fail_counts:
            times = _collect(
                reps, lambda s: _recovery_time(network, 3, s, make_fault(count))
            )
            result.series[f"{network} k={count}"] = trimmed(times)
    result.notes = "paper: failure count does not significantly change recovery time"
    return result


# ---------------------------------------------------------------------------
# Figures 15/16, Table 17, Figures 18-20 — traffic under failure
# ---------------------------------------------------------------------------


def _traffic_stats(network: str, recovery: bool, seed: int = 0) -> TrafficStats:
    topology = TOPOLOGY_BUILDERS[network]()
    pair = place_hosts_at_max_distance(topology)
    switches = standalone_switches(topology)
    run = TrafficRun(topology, switches, pair, recovery=recovery)
    return run.run()


def fig15_throughput_with_recovery(
    networks: Sequence[str] = ALL_NETWORKS,
) -> ExperimentResult:
    """Per-second TCP throughput, link failure at t=10 s, with Renaissance
    recovery via tag-based consistent updates (Figure 15)."""
    result = ExperimentResult(name="Figure 15: throughput with recovery")
    for network in networks:
        stats = _traffic_stats(network, recovery=True)
        result.series[network] = stats.throughput_series()
    result.notes = "series are per-second Mbit/s; expect one valley at second 10"
    return result


def fig16_throughput_without_recovery(
    networks: Sequence[str] = ALL_NETWORKS,
) -> ExperimentResult:
    """Per-second throughput using only the pre-installed backup paths
    (Figure 16)."""
    result = ExperimentResult(name="Figure 16: throughput without recovery")
    for network in networks:
        stats = _traffic_stats(network, recovery=False)
        result.series[network] = stats.throughput_series()
    result.notes = "paper: nearly identical to Figure 15"
    return result


def table17_correlation(
    networks: Sequence[str] = TABLE17_NETWORKS,
) -> ExperimentResult:
    """Pearson correlation between the Figure 15 and Figure 16 series
    (Table 17; paper reports 0.92-0.96 for Clos, B4, Telstra, EBONE,
    Exodus)."""
    result = ExperimentResult(name="Table 17: recovery vs no-recovery correlation")
    for network in networks:
        with_rec = _traffic_stats(network, recovery=True).throughput_series()
        without = _traffic_stats(network, recovery=False).throughput_series()
        result.series[network] = [pearson(with_rec, without)]
    result.notes = "paper: 0.92-0.96"
    return result


def fig18_retransmissions(
    networks: Sequence[str] = ALL_NETWORKS,
) -> ExperimentResult:
    """Retransmission percentage per second (Figure 18)."""
    result = ExperimentResult(name="Figure 18: retransmission rate")
    for network in networks:
        stats = _traffic_stats(network, recovery=True)
        result.series[network] = stats.retransmission_series()
    result.notes = "paper: <1% baseline, 10-15% spike after the failure, fast decay"
    return result


def fig19_bad_tcp(networks: Sequence[str] = ALL_NETWORKS) -> ExperimentResult:
    """BAD-TCP-flag percentage per second (Figure 19)."""
    result = ExperimentResult(name="Figure 19: BAD TCP flags")
    for network in networks:
        stats = _traffic_stats(network, recovery=True)
        result.series[network] = stats.bad_tcp_series()
    result.notes = "paper: spike to 10-18% at the failure second"
    return result


def fig20_out_of_order(networks: Sequence[str] = ALL_NETWORKS) -> ExperimentResult:
    """Out-of-order packet percentage per second (Figure 20)."""
    result = ExperimentResult(name="Figure 20: out-of-order packets")
    for network in networks:
        stats = _traffic_stats(network, recovery=True)
        result.series[network] = stats.out_of_order_series()
    result.notes = "paper: much smaller presence, up to ~3%"
    return result


__all__ = [
    "ExperimentResult",
    "THETA",
    "TIMEOUT",
    "ALL_NETWORKS",
    "SMALL_NETWORKS",
    "ROCKETFUEL_NETWORKS",
    "table8_topologies",
    "fig5_bootstrap",
    "fig6_bootstrap_vs_controllers",
    "fig7_bootstrap_vs_task_delay",
    "fig9_communication_overhead",
    "fig10_controller_failure",
    "fig11_multi_controller_failure",
    "fig12_switch_failure",
    "fig13_link_failure",
    "fig14_multi_link_failure",
    "fig15_throughput_with_recovery",
    "fig16_throughput_without_recovery",
    "table17_correlation",
    "fig18_retransmissions",
    "fig19_bad_tcp",
    "fig20_out_of_order",
]
