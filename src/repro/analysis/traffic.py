"""Figure-shaped API over the flow-level traffic subsystem.

:func:`traffic_campaign` is to the ``traffic`` spec what
:func:`~repro.analysis.scenarios.scenario_campaign` is to ``scenario``: a
stable wrapper that resolves the spec in the registry and executes it
through the parallel repetition runner, bit-identical at any worker
count.  One repetition simulates once and reports three metrics (goodput
under churn, flows disrupted per fault, p99 FCT) — with a ``store``, the
second and third derive from the first's cached run record.
"""

from __future__ import annotations

from typing import Optional

from repro.exp.runner import run_spec
from repro.exp.spec import ExperimentResult


def traffic_campaign(
    topology: str = "jellyfish:200",
    campaign: str = "churn",
    flows: int = 100_000,
    pairs: int = 128,
    duration: float = 12.0,
    ecmp: int = 4,
    reps: int = 1,
    n_controllers: int = 0,
    workers: Optional[int] = None,
    base_seed: int = 0,
    task_delay: float = 0.5,
    timeout: float = 240.0,
    store=None,
    refresh: bool = False,
) -> ExperimentResult:
    """Goodput/disruption/FCT distributions of one generated tenant
    workload riding one fault campaign; each repetition derives its
    topology, workload, and campaign from its own seed.
    ``store``/``refresh`` make the campaign resumable exactly like
    :func:`~repro.exp.runner.run_spec`."""
    return run_spec(
        "traffic",
        reps=reps,
        workers=workers,
        base_seed=base_seed,
        store=store,
        refresh=refresh,
        params={
            "topology": topology,
            "campaign": campaign,
            "flows": flows,
            "pairs": pairs,
            "duration": duration,
            "ecmp": ecmp,
            "n_controllers": n_controllers,
            "task_delay": task_delay,
            "timeout": timeout,
        },
    )


__all__ = ["traffic_campaign"]
