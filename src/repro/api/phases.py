"""First-class run phases: the paper's evaluation protocol as objects.

Every measurement in the repository is a sequence of the same few steps —
bootstrap to a legitimate configuration, inject faults, let the clock run,
measure re-convergence.  Each step is a :class:`Phase`: a declarative,
reusable object executed by a :class:`~repro.api.plan.RunSession`, which
replaces the hand-rolled loops previously duplicated across
``exp/spec.py``, ``scenarios/spec.py``, and ``cli.py``.

A phase's :meth:`~Phase.execute` receives the session, advances the
simulation, and returns a :class:`~repro.api.results.PhaseResult`.  Fault
timing state (the instant of the last injected fault) flows between
phases through the session, so an ``InjectFaults``/``AwaitLegitimacy``
pair measures recovery exactly the way the paper's protocol defines it:
seconds from the final fault action back to legitimacy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.api.results import PhaseResult
from repro.api.topology import default_timeout
from repro.sim.faults import FaultPlan

#: A fault-plan builder: called with the live simulation and the
#: repetition's fault randomness stream once the network is bootstrapped.
FaultBuilder = Callable[["object", random.Random], FaultPlan]


def describe_fault_plan(plan: FaultPlan) -> list:
    """JSON-able encoding of an explicit fault schedule.

    Targets may carry non-JSON leaves (corruption payloads embed ``Rule``
    objects); those are folded in by ``repr`` — deterministic for the
    frozen dataclasses involved — so two plans hash equal iff their
    schedules are identical.
    """

    def leaf(value: object):
        if isinstance(value, (str, int, float, bool)) or value is None:
            return value
        if isinstance(value, (list, tuple)):
            return [leaf(v) for v in value]
        return repr(value)

    return [[a.at, a.kind, leaf(list(a.target))] for a in plan.actions]


@dataclass(frozen=True)
class Phase:
    """Base class; concrete phases override ``name`` and ``execute``."""

    name = "phase"

    def execute(self, session) -> PhaseResult:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-able description of the phase for content addressing.

        Together with the plan's topology/config/seed this must determine
        the phase's behaviour: the run store hashes it into the run key.
        Concrete phases extend the base ``{"phase": name}`` dict.
        """
        return {"phase": self.name}

    def addressable(self) -> bool:
        """Whether :meth:`describe` fully captures the phase's behaviour.

        A plan containing any non-addressable phase bypasses the run
        store entirely (``RunPlan.cacheable()`` is false) — an
        under-specified description must never produce a wrong cache hit.
        """
        return True


@dataclass(frozen=True)
class Bootstrap(Phase):
    """Run until Definition 1 holds; the value is the convergence time.

    ``timeout`` defaults to the per-network table of
    :mod:`repro.api.topology`.  ``full`` requests the exhaustive
    κ-resilience check instead of the sampled one.
    """

    timeout: Optional[float] = None
    full: bool = False

    name = "bootstrap"

    def describe(self) -> dict:
        return {"phase": self.name, "timeout": self.timeout, "full": self.full}

    def execute(self, session) -> PhaseResult:
        timeout = (
            self.timeout
            if self.timeout is not None
            else default_timeout(session.topology_spec)
        )
        sim = session.sim
        t_start = sim.sim.now
        t = sim.run_until_legitimate(timeout=timeout, full=self.full)
        return PhaseResult(
            phase=self.name,
            ok=t is not None,
            t_start=t_start,
            t_end=sim.sim.now,
            value=t,
            details={"timeout": timeout},
        )


@dataclass(frozen=True)
class CorruptState(Phase):
    """Rewrite component state to an *arbitrary* configuration.

    Applies the named :data:`~repro.adversary.corruptions.CORRUPTIONS`
    strategy — after topology construction, before the first protocol
    step when placed first in a plan — so a following
    :class:`AwaitLegitimacy` measures convergence from arbitrary state:
    the paper's self-stabilization claim itself, not merely recovery from
    faults injected into a clean run.  The corruption randomness is a
    pure function of the plan seed (its own decorrelated stream), which
    keeps corrupted repetitions bit-identical across worker processes and
    makes the phase content-addressable: the corruption *name* plus the
    plan's seed fully determine the injected state.

    Marks the metrics recorder's corruption instant, so the run's
    ``stabilization_time`` (distinct from post-fault ``recovery_time``)
    measures from here to the first legitimate configuration.
    """

    corruption: str = "mixed"

    name = "corrupt_state"

    def describe(self) -> dict:
        return {"phase": self.name, "corruption": self.corruption}

    def execute(self, session) -> PhaseResult:
        # Lazy: the adversary registry sits above this layer.
        from repro.adversary.corruptions import apply_corruption
        from repro.exp.seeding import adversary_rng

        sim = session.sim
        t_start = sim.sim.now
        # Provenance root: the corruption is not itself a scheduled event,
        # so it enters the happens-before DAG as a synthetic root; any
        # events the strategy schedules (e.g. channel-garbage's in-flight
        # datagrams) inherit it as their cause.
        root = sim.sim.provenance_root(
            note=f"corrupt:{self.corruption}",
            tags={
                "corruption": self.corruption,
                "corruption_id": f"{self.corruption}@seed={session.seed}",
            },
        )
        with sim.sim.cause_scope(root):
            accounting = apply_corruption(
                self.corruption, sim, adversary_rng(session.seed)
            )
        sim.metrics.mark_corruption(sim.sim.now)
        return PhaseResult(
            phase=self.name,
            ok=True,
            t_start=t_start,
            t_end=sim.sim.now,
            details={"corruption": self.corruption, "accounting": accounting},
        )


@dataclass(frozen=True)
class RunFor(Phase):
    """Advance the simulation clock by a fixed duration."""

    duration: float = 1.0

    name = "run_for"

    def describe(self) -> dict:
        return {"phase": self.name, "duration": self.duration}

    def execute(self, session) -> PhaseResult:
        sim = session.sim
        t_start = sim.sim.now
        sim.run_for(self.duration)
        return PhaseResult(
            phase=self.name,
            ok=True,
            t_start=t_start,
            t_end=sim.sim.now,
            value=self.duration,
        )


@dataclass(frozen=True)
class InjectFaults(Phase):
    """Inject a fault plan and run just past its final action.

    Exactly one of ``plan`` (a prebuilt :class:`FaultPlan`) and
    ``builder`` (called with ``(sim, rng)``, where ``rng`` is the
    repetition's decorrelated fault stream) must be given.  With
    ``relative=True`` the plan is interpreted on a relative clock and
    shifted to the current simulation time — the convention fault
    campaigns use.  After injection the clock advances to ``settle``
    seconds past the last action, so a following
    :class:`AwaitLegitimacy` measures from the fault, not before it.

    ``label`` names the builder for content addressing: a builder is a
    callable the run store cannot hash, and its qualified name would
    collapse distinct parametrizations of one closure factory onto the
    same key.  A call site that wants its runs cached must therefore pass
    a label carrying the builder's full parametrization (kill counts,
    campaign names, ...); an unlabeled builder makes the whole plan
    uncacheable rather than risk a wrong cache hit.
    """

    plan: Optional[FaultPlan] = None
    builder: Optional[FaultBuilder] = field(default=None, compare=False)
    settle: float = 0.01
    relative: bool = False
    label: Optional[str] = None

    name = "inject_faults"

    def addressable(self) -> bool:
        return self.plan is not None or self.label is not None

    def describe(self) -> dict:
        if self.plan is not None:
            faults = describe_fault_plan(self.plan)
        else:
            faults = self.label
        return {
            "phase": self.name,
            "faults": faults,
            "settle": self.settle,
            "relative": self.relative,
        }

    def execute(self, session) -> PhaseResult:
        if (self.plan is None) == (self.builder is None):
            raise ValueError("InjectFaults needs exactly one of plan and builder")
        sim = session.sim
        t_start = sim.sim.now
        plan = self.plan
        if plan is None:
            plan = self.builder(sim, session.fault_stream)
        if self.relative:
            plan = plan.shifted(sim.sim.now)
        if not plan.actions:
            # Nothing to inject: the network is already (still) legitimate,
            # so a following AwaitLegitimacy reports zero recovery.
            session.fault_at = None
            session.trivial_recovery = True
            return PhaseResult(
                phase=self.name,
                ok=True,
                t_start=t_start,
                t_end=sim.sim.now,
                details={"n_actions": 0},
            )
        session.trivial_recovery = False
        sim.inject(plan)
        fault_at = plan.last_at()
        sim.run_for(max(0.0, fault_at - sim.sim.now) + self.settle)
        session.fault_at = fault_at
        return PhaseResult(
            phase=self.name,
            ok=True,
            t_start=t_start,
            t_end=sim.sim.now,
            value=fault_at,
            details={
                "n_actions": len(plan.actions),
                "kinds": sorted({a.kind for a in plan.actions}),
            },
        )


@dataclass(frozen=True)
class AwaitLegitimacy(Phase):
    """Run until legitimacy returns; the value is the recovery time.

    Measures seconds from the last injected fault (the session's
    ``fault_at``) to re-convergence; when no fault was injected the value
    is the absolute convergence time.  ``clamp_zero`` floors the
    measurement at zero (fault campaigns use it).  Fails — ``ok=False``,
    aborting subsequent phases — if the timeout elapses first.
    """

    timeout: Optional[float] = None
    clamp_zero: bool = False
    full: bool = False

    name = "await_legitimacy"

    def describe(self) -> dict:
        return {
            "phase": self.name,
            "timeout": self.timeout,
            "clamp_zero": self.clamp_zero,
            "full": self.full,
        }

    def execute(self, session) -> PhaseResult:
        sim = session.sim
        t_start = sim.sim.now
        if session.trivial_recovery:
            return PhaseResult(
                phase=self.name,
                ok=True,
                t_start=t_start,
                t_end=t_start,
                value=0.0,
                details={"trivial": True},
            )
        timeout = (
            self.timeout
            if self.timeout is not None
            else default_timeout(session.topology_spec)
        )
        t = sim.run_until_legitimate(timeout=timeout, full=self.full)
        if t is None:
            return PhaseResult(
                phase=self.name,
                ok=False,
                t_start=t_start,
                t_end=sim.sim.now,
                details={"timeout": timeout},
            )
        value = t if session.fault_at is None else t - session.fault_at
        if self.clamp_zero:
            value = max(0.0, value)
        return PhaseResult(
            phase=self.name,
            ok=True,
            t_start=t_start,
            t_end=sim.sim.now,
            value=value,
            details={"timeout": timeout, "converged_at": t},
        )


__all__ = [
    "AwaitLegitimacy",
    "Bootstrap",
    "CorruptState",
    "FaultBuilder",
    "InjectFaults",
    "Phase",
    "RunFor",
    "describe_fault_plan",
]
