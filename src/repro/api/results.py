"""Typed, JSON-round-trippable run results.

A :class:`RunResult` is the complete record of one :class:`~repro.api.plan.
RunPlan` execution: the resolved topology spec, the effective simulation
configuration, one :class:`PhaseResult` per executed phase, and a metrics
snapshot taken at the end of the run.  Everything is built from plain JSON
types, so ``RunResult.from_dict(result.to_dict()) == result`` holds
exactly — the property the serialization tests pin.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class PhaseResult:
    """Outcome of one executed phase.

    ``value`` is the phase's headline measurement — the bootstrap
    convergence time for ``bootstrap``, the recovery time for
    ``await_legitimacy``, the time of the last injected fault for
    ``inject_faults`` — or ``None`` when the phase failed (timed out) or
    was skipped after an earlier failure.
    """

    phase: str
    ok: bool
    t_start: float
    t_end: float
    value: Optional[float] = None
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Simulated seconds the phase consumed."""
        return self.t_end - self.t_start

    @property
    def skipped(self) -> bool:
        return bool(self.details.get("skipped"))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "phase": self.phase,
            "ok": self.ok,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "value": self.value,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PhaseResult":
        return cls(
            phase=data["phase"],
            ok=data["ok"],
            t_start=data["t_start"],
            t_end=data["t_end"],
            value=data.get("value"),
            details=dict(data.get("details", {})),
        )


@dataclass
class RunResult:
    """The serializable record of one phased simulation run."""

    topology: str
    n_controllers: int
    placement: str
    seed: int
    config: Dict[str, Any] = field(default_factory=dict)
    phases: List[PhaseResult] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Per-phase host-side cost (``{"phase", "wall_seconds",
    #: "cpu_seconds"}`` dicts), measured only when telemetry is active —
    #: empty otherwise, and omitted from the JSON so untimed runs stay
    #: byte-identical to records written before this field existed.
    timings: List[Dict[str, Any]] = field(default_factory=list)

    # -- verdicts ---------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True iff every phase ran and succeeded."""
        return all(p.ok for p in self.phases)

    def phase(self, name: str, last: bool = False) -> Optional[PhaseResult]:
        """The first (or last) phase result with the given name."""
        matches = [p for p in self.phases if p.phase == name]
        if not matches:
            return None
        return matches[-1] if last else matches[0]

    @property
    def bootstrap_time(self) -> Optional[float]:
        """Convergence time of the first ``bootstrap`` phase (``None`` if
        it timed out or never ran)."""
        p = self.phase("bootstrap")
        return p.value if p is not None and p.ok else None

    @property
    def recovery_time(self) -> Optional[float]:
        """Recovery measurement of the last ``await_legitimacy`` phase
        (``None`` if it timed out, was skipped, or never ran)."""
        p = self.phase("await_legitimacy", last=True)
        return p.value if p is not None and p.ok else None

    @property
    def stabilization_time(self) -> Optional[float]:
        """Seconds from arbitrary-state corruption (a ``corrupt_state``
        phase) to the first legitimate configuration, straight from the
        metrics snapshot; ``None`` when no corruption was applied or the
        run never stabilized."""
        return self.metrics.get("stabilization_time")

    @property
    def traffic(self) -> Optional[Dict[str, Any]]:
        """The tenant-traffic metrics block recorded by a ``traffic``
        phase (goodput, disruption counts, FCT percentiles), or ``None``
        when the run carried no traffic."""
        return self.metrics.get("traffic")

    def summary(self) -> Dict[str, Any]:
        """Small human-oriented digest (also embedded in the JSON)."""
        return {
            "ok": self.ok,
            "bootstrap_time": self.bootstrap_time,
            "recovery_time": self.recovery_time,
            "stabilization_time": self.stabilization_time,
            "phases": [p.phase for p in self.phases],
        }

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        doc = {
            "topology": self.topology,
            "n_controllers": self.n_controllers,
            "placement": self.placement,
            "seed": self.seed,
            "config": dict(self.config),
            "phases": [p.to_dict() for p in self.phases],
            "metrics": dict(self.metrics),
            "summary": self.summary(),
        }
        if self.timings:
            doc["timings"] = [dict(t) for t in self.timings]
        return doc

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        return cls(
            topology=data["topology"],
            n_controllers=data["n_controllers"],
            placement=data.get("placement", "dual_homed"),
            seed=data["seed"],
            config=dict(data.get("config", {})),
            phases=[PhaseResult.from_dict(p) for p in data.get("phases", [])],
            metrics=dict(data.get("metrics", {})),
            timings=[dict(t) for t in data.get("timings", [])],
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))


__all__ = ["PhaseResult", "RunResult"]
