"""One topology spec syntax for the whole repository.

:func:`resolve_topology` accepts both the named Table-8 networks
(``"B4"``, ``"Telstra"``, ...) and the parametric generator specs of
:mod:`repro.scenarios.generators` (``"fattree:4"``, ``"jellyfish:20x4"``,
``"ring:16"``, ...) behind a single string syntax, attaches controllers
through a pluggable placement strategy, and returns a simulation-ready
:class:`~repro.net.topology.Topology`.

The per-network protocol defaults of the paper's Section 6.3 — Θ and the
convergence timeout, both scaled to network size — live here as well, so
every entry point (figure experiments, scenario campaigns, CLI) resolves
them identically.

The generator registry is imported lazily inside the functions that need
it: :mod:`repro.scenarios.spec` builds its simulations through this
facade, so a module-level import of ``repro.scenarios`` here would be a
cycle.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.net.topologies import TOPOLOGY_BUILDERS, attach_controllers
from repro.net.topology import Topology

#: The paper's Θ per named network (Section 6.3).  Generated topologies
#: default to the small-network setting.
THETA: Dict[str, int] = {
    "B4": 10,
    "Clos": 10,
    "Telstra": 30,
    "AT&T": 30,
    "EBONE": 30,
    "Exodus": 30,
}

DEFAULT_THETA = 10

#: Convergence timeouts, scaled to named-network size.
TIMEOUT: Dict[str, float] = {
    "B4": 120.0,
    "Clos": 120.0,
    "Telstra": 240.0,
    "AT&T": 600.0,
    "EBONE": 600.0,
    "Exodus": 240.0,
}

DEFAULT_TIMEOUT = 300.0

#: A topology input: a spec string or an already-built topology.
TopologyLike = Union[str, Topology]

#: A placement strategy attaches ``count`` controllers to a switch-only
#: topology, deterministically in ``seed``, and returns their ids.
PlacementStrategy = Callable[[Topology, int, int], List[str]]


def default_theta(spec: TopologyLike) -> int:
    """Θ for a topology spec: the paper's table for named networks, the
    small-network default for generated or prebuilt ones."""
    if isinstance(spec, str):
        return THETA.get(spec, DEFAULT_THETA)
    return DEFAULT_THETA


def default_timeout(spec: TopologyLike, fallback: float = DEFAULT_TIMEOUT) -> float:
    """Convergence timeout for a topology spec (named networks scale with
    size; everything else gets ``fallback``)."""
    if isinstance(spec, str):
        return TIMEOUT.get(spec, fallback)
    return fallback


# ---------------------------------------------------------------------------
# controller placement strategies
# ---------------------------------------------------------------------------


def _dual_homed(topo: Topology, count: int, seed: int) -> List[str]:
    """The historical placement: each controller dual-homed onto a random
    switch-switch link (preserves diameter and 2-edge-connectivity)."""
    return attach_controllers(topo, count, seed=seed)


def _switch_links(topo: Topology) -> List[Tuple[str, str]]:
    links = sorted(
        (u, v) for u, v in topo.links if topo.is_switch(u) and topo.is_switch(v)
    )
    if not links:
        raise ValueError("topology has no switch-switch link to home a controller on")
    return links


def _spread(topo: Topology, count: int, seed: int) -> List[str]:
    """Deterministic evenly-spaced placement: controllers dual-homed onto
    links spaced uniformly through the sorted link list.  Independent of
    ``seed`` — useful when the placement itself must not be a random
    variable of the experiment."""
    if count < 1:
        raise ValueError("need at least one controller")
    links = _switch_links(topo)
    step = len(links) / count
    ids: List[str] = []
    for i in range(count):
        u, v = links[int(i * step) % len(links)]
        cid = f"c{i}"
        topo.add_controller(cid)
        topo.add_link(cid, u)
        topo.add_link(cid, v)
        ids.append(cid)
    return ids


#: Pluggable placement registry; register a strategy here to make it
#: addressable from every entry point (``RunPlan(..., placement=name)``).
PLACEMENTS: Dict[str, PlacementStrategy] = {
    "dual_homed": _dual_homed,
    "spread": _spread,
}


def place_controllers(
    topo: Topology, count: int, seed: int = 0, placement: str = "dual_homed"
) -> List[str]:
    """Attach ``count`` controllers using the named placement strategy."""
    try:
        strategy = PLACEMENTS[placement]
    except KeyError:
        raise ValueError(
            f"unknown placement {placement!r}; known: {', '.join(sorted(PLACEMENTS))}"
        ) from None
    return strategy(topo, count, seed)


# ---------------------------------------------------------------------------
# spec resolution
# ---------------------------------------------------------------------------


def validate_topology_spec(spec: str) -> str:
    """Syntax-check a topology spec without building it.

    Accepts Table-8 names and well-formed ``family:ARGS`` generator specs;
    raises :class:`ValueError` otherwise.  Family-specific constraints
    (even fat-tree arity, jellyfish parity, ...) surface at build time.
    """
    from repro.scenarios.generators import GENERATORS

    if spec in TOPOLOGY_BUILDERS:
        return spec
    family, sep, arg = spec.partition(":")
    family = family.replace("_", "").replace("-", "").lower()
    if sep and family in GENERATORS:
        parts = arg.split("x")
        if parts and all(p.isdigit() for p in parts):
            return spec
    known = sorted(TOPOLOGY_BUILDERS) + [syntax for _, syntax in GENERATORS.values()]
    raise ValueError(f"unknown topology {spec!r}; known: {', '.join(known)}")


def topology_spec_syntaxes() -> List[str]:
    """Human-readable list of every accepted spec form (for CLI help)."""
    from repro.scenarios.generators import GENERATORS

    return sorted(TOPOLOGY_BUILDERS) + [syntax for _, syntax in GENERATORS.values()]


#: Per-process memo of resolved topologies, keyed by the full resolution
#: input ``(spec string, seed, controllers, placement)``.  ``None`` means
#: memoization is off (the default: serial entry points keep the exact
#: historical build-per-call behavior).  Long-lived workers — the
#: repetition pool's initializer and fabric workers — enable it so
#: repeated repetitions of the same network stop re-running the generator
#: and placement; cached entries are pristine and callers always receive
#: a fresh :meth:`Topology.copy`, so simulations can mutate freely.
_RESOLUTION_CACHE: Optional[Dict[Tuple[str, int, int, str], Topology]] = None


def enable_resolution_cache() -> None:
    """Turn on per-process memoization of :func:`resolve_topology`."""
    global _RESOLUTION_CACHE
    if _RESOLUTION_CACHE is None:
        _RESOLUTION_CACHE = {}


def disable_resolution_cache() -> None:
    """Turn memoization back off and drop every cached topology."""
    global _RESOLUTION_CACHE
    _RESOLUTION_CACHE = None


def resolution_cache_stats() -> Optional[Dict[str, int]]:
    """``{"entries": n}`` while the cache is enabled, else ``None``."""
    if _RESOLUTION_CACHE is None:
        return None
    return {"entries": len(_RESOLUTION_CACHE)}


def resolve_topology(
    spec: TopologyLike,
    seed: int = 0,
    controllers: int = 0,
    placement: str = "dual_homed",
) -> Topology:
    """Build the topology named by ``spec`` and attach controllers.

    ``spec`` is a Table-8 name, a generator spec string, or an existing
    :class:`Topology` — the latter is returned as-is when it already has
    controllers, and **mutated in place** (controllers attached) when it
    has none and ``controllers > 0``; pass ``topo.copy()`` to keep the
    original pristine.  ``seed`` drives both the randomized generator
    families and the placement strategy.  When ``controllers`` is zero,
    or the topology already has controllers, placement is skipped (an
    existing placement always wins over the ``placement`` argument).

    With :func:`enable_resolution_cache` on, string specs are resolved
    once per ``(spec, seed, controllers, placement)`` and subsequent calls
    return a fresh copy of the pristine result — bit-identical to a fresh
    build, since generators and placements are deterministic in ``seed``.
    """
    if isinstance(spec, Topology):
        topo = spec
        if controllers > 0 and not topo.controllers:
            place_controllers(topo, controllers, seed=seed, placement=placement)
        return topo

    cache = _RESOLUTION_CACHE
    key = (spec, seed, controllers, placement)
    if cache is not None:
        pristine = cache.get(key)
        if pristine is not None:
            return pristine.copy()

    from repro.scenarios.generators import parse_topology

    topo = parse_topology(spec, seed=seed)
    if controllers > 0 and not topo.controllers:
        place_controllers(topo, controllers, seed=seed, placement=placement)
    if cache is not None:
        cache[key] = topo.copy()
    return topo


__all__ = [
    "DEFAULT_THETA",
    "DEFAULT_TIMEOUT",
    "PLACEMENTS",
    "PlacementStrategy",
    "THETA",
    "TIMEOUT",
    "TopologyLike",
    "default_theta",
    "default_timeout",
    "disable_resolution_cache",
    "enable_resolution_cache",
    "place_controllers",
    "resolution_cache_stats",
    "resolve_topology",
    "topology_spec_syntaxes",
    "validate_topology_spec",
]
