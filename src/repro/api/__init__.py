"""``repro.api`` — the unified public run API.

One facade over the whole reproduction: resolve a topology (named Table-8
network or generated spec string), describe a run as a
:class:`~repro.api.plan.RunPlan` of first-class phases, execute it, and
get back a typed, JSON-round-trippable
:class:`~repro.api.results.RunResult`.  The figure experiments
(:mod:`repro.exp`), the scenario campaigns (:mod:`repro.scenarios`), and
every CLI command construct their simulations exclusively through this
package.

Quickstart::

    from repro.api import RunPlan, Bootstrap

    result = RunPlan("jellyfish:20x4", controllers=3, seed=0).then(Bootstrap()).run()
    print(result.bootstrap_time)
    print(result.to_json(indent=2))
"""

from repro.api.phases import (
    AwaitLegitimacy,
    Bootstrap,
    CorruptState,
    FaultBuilder,
    InjectFaults,
    Phase,
    RunFor,
)
from repro.api.plan import RunObserver, RunPlan, RunSession, build_simulation
from repro.api.results import PhaseResult, RunResult
from repro.traffic.phase import Traffic
from repro.api.topology import (
    PLACEMENTS,
    THETA,
    TIMEOUT,
    PlacementStrategy,
    default_theta,
    default_timeout,
    place_controllers,
    resolve_topology,
    topology_spec_syntaxes,
    validate_topology_spec,
)

__all__ = [
    "AwaitLegitimacy",
    "Bootstrap",
    "CorruptState",
    "FaultBuilder",
    "InjectFaults",
    "PLACEMENTS",
    "Phase",
    "PhaseResult",
    "PlacementStrategy",
    "RunFor",
    "RunObserver",
    "RunPlan",
    "RunResult",
    "RunSession",
    "THETA",
    "Traffic",
    "TIMEOUT",
    "build_simulation",
    "default_theta",
    "default_timeout",
    "place_controllers",
    "resolve_topology",
    "topology_spec_syntaxes",
    "validate_topology_spec",
]
