"""Builder-style run plans and their executing sessions.

:class:`RunPlan` is the repository's single way to describe a simulation
run: a topology spec (named or generated), a controller count and
placement strategy, :class:`~repro.sim.network_sim.SimulationConfig`
overrides, a seed, and an ordered list of
:class:`~repro.api.phases.Phase` objects::

    result = (
        RunPlan("Telstra", controllers=3, seed=7)
        .configure(task_delay=0.5)
        .then(Bootstrap(), InjectFaults(builder=one_link_fault), AwaitLegitimacy())
        .run()
    )

:meth:`RunPlan.run` executes the phases in order — aborting the remainder
after the first failure — and returns a serializable
:class:`~repro.api.results.RunResult`.  :meth:`RunPlan.session` exposes
the underlying :class:`~repro.sim.network_sim.NetworkSimulation` for
callers that need live access (timelines, custom instrumentation).

Observation is push-based: a :class:`RunObserver` passed to ``run`` is
threaded into the simulation's :class:`~repro.sim.metrics.MetricsRecorder`
(``on_event``) and notified after every phase (``on_phase_end``), so
instrumentation no longer requires editing ``NetworkSimulation``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.api.phases import Phase
from repro.api.results import PhaseResult, RunResult
from repro.api.topology import TopologyLike, default_theta, resolve_topology
from repro.net.topology import Topology
from repro.obs.telemetry import active as active_telemetry
from repro.sim.network_sim import NetworkSimulation, SimulationConfig


class RunObserver:
    """Override either hook; the defaults are no-ops.

    ``on_event`` receives every milestone the simulation records through
    its :class:`~repro.sim.metrics.MetricsRecorder` (fault executions,
    convergence, custom marks); ``on_phase_end`` fires after each phase
    with its :class:`PhaseResult`.
    """

    def on_event(self, time: float, name: str, value: object = None) -> None:
        """Called for every metrics event, on the simulation clock."""

    def on_phase_end(self, result: PhaseResult) -> None:
        """Called after each executed (or skipped) phase."""


#: Config overrides whose values the run store cannot content-address
#: (injected objects); a plan carrying any of them bypasses the store.
_UNCACHEABLE_OVERRIDES = frozenset(
    {"rng", "fault_model", "controller_factory", "renaissance"}
)

#: SimulationConfig fields with JSON-representable values, snapshotted
#: into RunResult.config (injected objects — rng, fault models, controller
#: factories — are deliberately left out).
_CONFIG_SCALARS = (
    "kappa",
    "task_delay",
    "discovery_delay",
    "link_latency",
    "theta",
    "seed",
    "packet_ttl",
    "convergence_interval",
    "out_of_band",
    "reliable_channels",
    "route_cache",
    "scheduler",
    "scheduler_bound",
    "robust_views",
)


def _config_snapshot(config: SimulationConfig) -> Dict[str, Any]:
    return {name: getattr(config, name) for name in _CONFIG_SCALARS}


def _metrics_snapshot(sim: NetworkSimulation) -> Dict[str, Any]:
    """JSON-safe end-of-run snapshot of everything the figures report."""
    metrics = sim.metrics
    iterations = sim.controller_iterations()
    n_nodes = len(sim.topology.nodes)
    snapshot = {
        "c_resets": metrics.c_resets,
        "illegitimate_deletions": metrics.illegitimate_deletions,
        "dropped_control_packets": metrics.dropped_control_packets,
        "rules_installed": sim.total_rules_installed(),
        "n_nodes": n_nodes,
        "controller_iterations": dict(iterations),
        "max_load_per_node_per_iteration": metrics.max_load_per_node_per_iteration(
            iterations, n_nodes
        ),
        "convergence_time": metrics.convergence_time,
        "last_convergence_time": metrics.last_convergence_time,
        "fault_time": metrics.fault_time,
        "recovery_time": metrics.recovery_time,
        "corruption_time": metrics.corruption_time,
        "stabilization_time": metrics.stabilization_time,
    }
    # Only runs with a Traffic phase carry the key: snapshots of every
    # pre-existing plan stay byte-identical (stable store records).
    if metrics.traffic is not None:
        snapshot["traffic"] = metrics.traffic
    return snapshot


class RunPlan:
    """Declarative description of one phased simulation run."""

    def __init__(
        self,
        topology: TopologyLike,
        controllers: int = 3,
        placement: str = "dual_homed",
        seed: int = 0,
    ) -> None:
        self._topology = topology
        self._controllers = controllers
        self._placement = placement
        self._seed = seed
        self._overrides: Dict[str, Any] = {}
        self._phases: List[Phase] = []

    # -- builder steps ----------------------------------------------------

    def with_controllers(self, count: int, placement: Optional[str] = None) -> "RunPlan":
        self._controllers = count
        if placement is not None:
            self._placement = placement
        return self

    def with_seed(self, seed: int) -> "RunPlan":
        self._seed = seed
        return self

    def configure(self, **overrides: Any) -> "RunPlan":
        """Override :class:`SimulationConfig` fields.

        Setting ``task_delay`` without ``discovery_delay`` makes the
        discovery period follow it — the paper runs both loops at the
        same cadence, and every migrated call site relied on that.
        """
        self._overrides.update(overrides)
        return self

    def then(self, *phases: Phase) -> "RunPlan":
        """Append phases, executed in order by :meth:`run`."""
        self._phases.extend(phases)
        return self

    # -- content addressing ----------------------------------------------

    def cacheable(self) -> bool:
        """Whether the plan's behaviour is fully captured by
        :meth:`identity` — plans carrying injected objects or phases
        whose description is under-specified (an unlabeled fault
        builder) are not."""
        if set(self._overrides) & _UNCACHEABLE_OVERRIDES:
            return False
        return all(phase.addressable() for phase in self._phases)

    def identity(self) -> Dict[str, Any]:
        """The resolved inputs that determine this plan's outcome, as a
        canonical JSON-able dict.  Its fingerprint is the plan's address
        in a :class:`~repro.store.store.RunStore`."""
        from repro.store.hashing import SCHEMA_VERSION

        if isinstance(self._topology, Topology):
            topo = self._topology
            topology: Any = {
                "nodes": [[n, topo.kind(n).value] for n in topo.nodes],
                "links": [list(link) for link in topo.links],
                "failed_links": [list(link) for link in topo.failed_links()],
                "down_nodes": sorted(n for n in topo.nodes if not topo.node_is_up(n)),
            }
        else:
            topology = self._topology
        return {
            "kind": "run",
            "schema": SCHEMA_VERSION,
            "topology": topology,
            "controllers": self._controllers,
            "placement": self._placement,
            "seed": self._seed,
            "config": _config_snapshot(self._make_config()),
            "phases": [phase.describe() for phase in self._phases],
        }

    # -- execution --------------------------------------------------------

    def _make_config(self) -> SimulationConfig:
        overrides = dict(self._overrides)
        if "task_delay" in overrides and "discovery_delay" not in overrides:
            overrides["discovery_delay"] = overrides["task_delay"]
        overrides.setdefault("theta", default_theta(self._topology))
        overrides.setdefault("seed", self._seed)
        return SimulationConfig(**overrides)

    def session(self) -> "RunSession":
        return RunSession(self)

    def run(self, observer: Optional[RunObserver] = None) -> RunResult:
        """Execute the plan, reading/writing the active run store.

        When a store is active (see :func:`repro.store.store.use_store`),
        the plan is content-addressed: a stored record for an identical
        plan is returned without building the simulation, and a fresh
        execution is persisted before returning.  Plans that cannot be
        addressed (injected objects) and observed runs (an observer wants
        the live event stream) always execute.
        """
        if observer is None and self.cacheable():
            from repro.store.store import active_store

            store = active_store()
            if store is not None:
                identity = self.identity()
                from repro.store.hashing import fingerprint

                key = fingerprint(identity)
                cached = store.load_run(key)
                if cached is not None:
                    return cached
                result = self.session().run()
                store.save_run(
                    key,
                    identity,
                    result,
                    tags={"topology": identity["topology"], "seed": self._seed}
                    if isinstance(identity["topology"], str)
                    else {"topology": "<custom>", "seed": self._seed},
                )
                telemetry = active_telemetry()
                if telemetry is not None:
                    # Persist the run's trace (spans, flight dumps, causal
                    # log) next to its record, keyed by the run key, so
                    # `repro explain` works post-mortem from the store.
                    from repro.obs.export import save_trace

                    save_trace(store, telemetry, run_key=key)
                return result
        return self.session().run(observer=observer)


class RunSession:
    """One materialized run: the built simulation plus phase execution."""

    def __init__(self, plan: RunPlan) -> None:
        self.plan = plan
        self.seed = plan._seed
        if isinstance(plan._topology, Topology):
            self.topology_spec = "<custom>"
        else:
            self.topology_spec = plan._topology
        topology = resolve_topology(
            plan._topology,
            seed=plan._seed,
            controllers=plan._controllers,
            placement=plan._placement,
        )
        self.sim = NetworkSimulation(topology, plan._make_config())
        #: Simulation time of the last injected fault action; None until
        #: an InjectFaults phase runs (AwaitLegitimacy then measures the
        #: absolute convergence time instead of a delta).
        self.fault_at: Optional[float] = None
        #: Set by an InjectFaults phase whose plan was empty: recovery is
        #: trivially zero, matching the historical campaign semantics.
        self.trivial_recovery = False
        self._fault_stream = None

    @property
    def fault_stream(self):
        """The run's fault-randomness stream, shared by every InjectFaults
        phase so consecutive fault phases keep advancing it instead of
        redrawing the same values.  Its first draws equal a fresh
        ``fault_rng(seed)``, preserving the historical single-fault
        measurements bit-for-bit."""
        if self._fault_stream is None:
            # Lazy: repro.exp builds on this package (import cycle).
            from repro.exp.seeding import fault_rng

            self._fault_stream = fault_rng(self.seed)
        return self._fault_stream

    def run(self, observer: Optional[RunObserver] = None) -> RunResult:
        if observer is not None:
            self.sim.metrics.add_observer(observer)
        # Per-phase host cost is measured only under telemetry, so untimed
        # runs skip the clock reads entirely and their serialized records
        # stay byte-identical (RunResult omits an empty timings list).
        telemetry = active_telemetry()
        timings: List[Dict[str, Any]] = []
        phase_results: List[PhaseResult] = []
        aborted = False
        for phase in self.plan._phases:
            if aborted:
                now = self.sim.sim.now
                result = PhaseResult(
                    phase=phase.name,
                    ok=False,
                    t_start=now,
                    t_end=now,
                    details={"skipped": True},
                )
            elif telemetry is None:
                result = phase.execute(self)
            else:
                wall_start = telemetry.now()
                cpu_start = time.process_time()
                t_sim = self.sim.sim.now
                result = phase.execute(self)
                wall = telemetry.now() - wall_start
                cpu = time.process_time() - cpu_start
                telemetry.record_span(
                    f"phase:{phase.name}",
                    "phase",
                    wall_start,
                    wall,
                    t_sim=t_sim,
                    args={"ok": result.ok, "value": result.value},
                )
                timings.append(
                    {
                        "phase": phase.name,
                        "wall_seconds": wall,
                        "cpu_seconds": cpu,
                        "sim_seconds": result.t_end - result.t_start,
                        "ok": result.ok,
                    }
                )
            phase_results.append(result)
            if observer is not None:
                observer.on_phase_end(result)
            if not result.ok:
                aborted = True
        if telemetry is not None:
            causal = self.sim.sim.causal_events()
            if causal:
                telemetry.record_causal_log(
                    causal, source=f"run:{self.topology_spec}:seed={self.seed}"
                )
        return RunResult(
            topology=self.topology_spec,
            n_controllers=len(self.sim.topology.controllers),
            placement=self.plan._placement,
            seed=self.seed,
            config=_config_snapshot(self.sim.config),
            phases=phase_results,
            metrics=_metrics_snapshot(self.sim),
            timings=timings,
        )


def build_simulation(
    topology: TopologyLike,
    controllers: int = 3,
    seed: int = 0,
    placement: str = "dual_homed",
    **overrides: Any,
) -> NetworkSimulation:
    """Construct a ready-to-run :class:`NetworkSimulation` through the
    facade — the one sanctioned construction path outside unit tests.

    Accepts every topology spec :func:`~repro.api.topology.resolve_topology`
    does; ``overrides`` are :class:`SimulationConfig` fields (with
    ``discovery_delay`` following ``task_delay`` unless given).
    """
    plan = RunPlan(topology, controllers=controllers, placement=placement, seed=seed)
    return plan.configure(**overrides).session().sim


__all__ = [
    "RunObserver",
    "RunPlan",
    "RunSession",
    "build_simulation",
]
