"""The happens-before provenance DAG of one simulation run.

The engine (with causality enabled) records one row per executed event —
``(eid, t_sim, kind, note, cause, tags)`` — plus synthetic roots with
negative ids for interventions that are not themselves events (state
corruptions).  This module turns those rows into a queryable DAG: nodes
are events, an edge ``cause -> eid`` means "executing ``cause`` scheduled
``eid``".  The DAG is the substrate of :mod:`repro.obs.explain`; it also
carries its own determinism check (:meth:`ProvenanceDAG.signature`), the
invariant pinned by the causal-determinism tests: a seeded run produces
the same DAG on every rerun, on any worker.

Rows contain only virtual times, seq ids, and typed tags — no wall
clocks — which is what makes the signature meaningful.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass
class CausalEvent:
    """One node of the provenance DAG (an executed event or a synthetic
    root; roots have negative ids and no cause)."""

    eid: int
    t_sim: float
    kind: str
    note: str = ""
    cause: Optional[int] = None
    tags: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_root(self) -> bool:
        return self.eid < 0

    def label(self) -> str:
        """Short human-readable rendering for causal-chain output."""
        parts = [f"t={self.t_sim:.3f}", self.kind]
        if self.note:
            parts.append(f"({self.note})")
        interesting = {
            k: v
            for k, v in self.tags.items()
            if k in ("corruption_id", "fault_id", "round", "ctrl", "legitimate")
        }
        if interesting:
            parts.append(
                "[" + " ".join(f"{k}={v}" for k, v in sorted(interesting.items())) + "]"
            )
        return " ".join(parts)


class ProvenanceDAG:
    """Indexed happens-before DAG built from a trace's causal rows."""

    def __init__(self, events: List[CausalEvent]) -> None:
        self.events = events
        self.by_id: Dict[int, CausalEvent] = {e.eid: e for e in events}
        self.children: Dict[int, List[int]] = {}
        for event in events:
            if event.cause is not None:
                self.children.setdefault(event.cause, []).append(event.eid)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: List[List[Any]]) -> "ProvenanceDAG":
        """Build from serialized ``[eid, t, kind, note, cause, tags]``
        rows (the engine's tuples serialize to exactly this shape)."""
        events = [
            CausalEvent(
                eid=int(eid),
                t_sim=float(t),
                kind=str(kind),
                note=str(note or ""),
                cause=None if cause is None else int(cause),
                tags=dict(tags or {}),
            )
            for eid, t, kind, note, cause, tags in rows
        ]
        return cls(events)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> Optional["ProvenanceDAG"]:
        """The DAG of a TRACE record payload's last causal log (one log
        per simulation run; the last is the run the trace is about), or
        ``None`` for pre-causality (v1) traces."""
        logs = payload.get("causal") or []
        if not logs:
            return None
        return cls.from_rows(logs[-1].get("events", []))

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def roots(self) -> List[CausalEvent]:
        """Synthetic provenance roots (corruptions), earliest first."""
        return sorted(
            (e for e in self.events if e.is_root), key=lambda e: (e.t_sim, -e.eid)
        )

    def find(self, **tag_filters: Any) -> List[CausalEvent]:
        """Events whose tags match every given ``key=value`` (a value of
        ``...`` (Ellipsis) matches mere presence)."""
        matches = []
        for event in self.events:
            for key, value in tag_filters.items():
                if key not in event.tags:
                    break
                if value is not ... and event.tags[key] != value:
                    break
            else:
                matches.append(event)
        return matches

    def ancestry(self, eid: int, limit: int = 64) -> List[CausalEvent]:
        """The cause chain from ``eid`` back toward a root, nearest
        first, cycle-safe and bounded."""
        chain: List[CausalEvent] = []
        seen = set()
        current = self.by_id.get(eid)
        while current is not None and current.eid not in seen and len(chain) < limit:
            seen.add(current.eid)
            chain.append(current)
            if current.cause is None:
                break
            current = self.by_id.get(current.cause)
        return chain

    def descendants(self, eid: int, limit: int = 100_000) -> Iterator[CausalEvent]:
        """Breadth-first walk of everything ``eid`` transitively caused."""
        frontier = list(self.children.get(eid, []))
        seen = set(frontier)
        emitted = 0
        while frontier and emitted < limit:
            nxt = frontier.pop(0)
            event = self.by_id.get(nxt)
            if event is None:
                continue
            yield event
            emitted += 1
            for child in self.children.get(nxt, []):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)

    def causal_chain(
        self, root_eid: int, limit: int = 12
    ) -> List[CausalEvent]:
        """A representative forward chain from a root toward the run's
        end: at each step follow the child whose own subtree reaches
        furthest in virtual time — the spine of the failure's propagation.
        """
        # Deepest-reach memo, computed iteratively (chains can be long).
        reach: Dict[int, float] = {}

        def compute_reach(eid: int) -> float:
            cached = reach.get(eid)
            if cached is not None:
                return cached
            stack = [(eid, False)]
            while stack:
                node, expanded = stack.pop()
                if node in reach:
                    continue
                kids = self.children.get(node, [])
                if expanded or not kids:
                    own = self.by_id[node].t_sim if node in self.by_id else 0.0
                    best = max((reach.get(k, 0.0) for k in kids), default=own)
                    reach[node] = max(own, best)
                else:
                    stack.append((node, True))
                    for kid in kids:
                        if kid not in reach:
                            stack.append((kid, False))
            return reach[eid]

        chain: List[CausalEvent] = []
        current = root_eid
        seen = set()
        while len(chain) < limit:
            event = self.by_id.get(current)
            if event is None or current in seen:
                break
            seen.add(current)
            chain.append(event)
            kids = self.children.get(current, [])
            if not kids:
                break
            current = max(kids, key=compute_reach)
        return chain

    # -- determinism -------------------------------------------------------

    def signature(self) -> str:
        """Content hash of the full edge set and tag payloads — equal
        across reruns of the same seeded run iff the DAG is identical."""
        canonical = json.dumps(
            [
                [e.eid, e.t_sim, e.kind, e.note, e.cause, e.tags]
                for e in self.events
            ],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


__all__ = ["CausalEvent", "ProvenanceDAG"]
