"""Live campaign progress from the fabric journal: ``repro fabric top``.

Everything here is a pure function of the fabric's ``events.jsonl``
journal plus the queue's on-disk campaign/lease/quarantine state — no
worker cooperation needed, so the view works on a fleet that is wedged,
dead, or running on other hosts.

Per worker the journal yields: the last heartbeat instant (any ``claim``
/ ``renew`` / ``complete`` / ``failed`` event the worker logged — renewals
are journaled exactly so a wedged worker's silence is visible *before*
its lease TTL expires), the completion tally and rate, and the attempt
counts behind retries.  Per campaign: done/total progress and an ETA
extrapolated from the fleet's recent completion rate.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

#: Journal kinds that prove the worker process was alive at that instant.
_HEARTBEAT_KINDS = {"claim", "renew", "complete", "failed", "worker-start"}

#: Completion-rate window (seconds): ETA uses the recent rate, not the
#: lifetime average, so a fleet that sped up or stalled shows it.
RATE_WINDOW = 120.0


def worker_stats(
    events: List[Dict[str, Any]], now: Optional[float] = None
) -> Dict[str, Dict[str, Any]]:
    """Per-worker activity digest from the journal.

    Returns ``{worker: {last_seen, heartbeat_age, claims, completes,
    failures, renews, active, current_key}}``; ``active`` means started
    more times than exited (the worker-start/worker-exit pairing).
    """
    now = time.time() if now is None else now
    stats: Dict[str, Dict[str, Any]] = {}

    def entry(worker: str) -> Dict[str, Any]:
        if worker not in stats:
            stats[worker] = {
                "last_seen": None,
                "heartbeat_age": None,
                "claims": 0,
                "completes": 0,
                "failures": 0,
                "renews": 0,
                "starts": 0,
                "exits": 0,
                "current_key": None,
                "complete_times": [],
            }
        return stats[worker]

    for event in events:
        worker = event.get("worker")
        if not worker:
            continue
        kind = event.get("kind")
        digest = entry(worker)
        t = event.get("t")
        if kind in _HEARTBEAT_KINDS and isinstance(t, (int, float)):
            if digest["last_seen"] is None or t > digest["last_seen"]:
                digest["last_seen"] = t
        if kind == "claim":
            digest["claims"] += 1
            digest["current_key"] = event.get("key")
        elif kind == "renew":
            digest["renews"] += 1
        elif kind == "complete":
            digest["completes"] += 1
            digest["current_key"] = None
            if isinstance(t, (int, float)):
                digest["complete_times"].append(t)
        elif kind == "failed":
            digest["failures"] += 1
            digest["current_key"] = None
        elif kind == "worker-start":
            digest["starts"] += 1
        elif kind == "worker-exit":
            digest["exits"] += 1
            digest["current_key"] = None
    for digest in stats.values():
        digest["active"] = digest["starts"] > digest["exits"]
        if digest["last_seen"] is not None:
            digest["heartbeat_age"] = max(0.0, now - digest["last_seen"])
    return stats


def completion_rate(
    events: List[Dict[str, Any]],
    now: Optional[float] = None,
    window: float = RATE_WINDOW,
) -> float:
    """Fleet-wide completions per second over the recent window."""
    now = time.time() if now is None else now
    recent = [
        event["t"]
        for event in events
        if event.get("kind") == "complete"
        and isinstance(event.get("t"), (int, float))
        and event["t"] >= now - window
    ]
    if not recent:
        return 0.0
    span = max(now - min(recent), 1e-9)
    return len(recent) / span


def _format_age(age: Optional[float]) -> str:
    if age is None:
        return "never"
    if age < 90:
        return f"{age:.1f}s ago"
    return f"{age / 60:.1f}m ago"


def _format_eta(remaining: int, rate: float) -> str:
    if remaining == 0:
        return "done"
    if rate <= 0:
        return "stalled (no recent completions)"
    eta = remaining / rate
    if eta < 120:
        return f"~{eta:.0f}s"
    return f"~{eta / 60:.1f}m"


def render_fabric_top(queue, now: Optional[float] = None) -> str:
    """The ``repro fabric top`` screen for one store's fabric state.

    ``queue`` is a :class:`~repro.fabric.queue.WorkQueue`; ``now``
    injects the clock for tests.
    """
    now = time.time() if now is None else now
    events = queue.events()
    stats = worker_stats(events, now=now)
    rate = completion_rate(events, now=now)
    lines: List[str] = []

    campaigns = queue.campaigns()
    total_remaining = 0
    lines.append(
        f"fabric {queue.store.root} — {len(campaigns)} campaign(s), "
        f"rate {rate * 60:.1f} unit/min"
    )
    for request in campaigns:
        progress = queue.progress(request)
        remaining = (
            progress["total"] - progress["done"] - progress["quarantined"]
        )
        total_remaining += remaining
        lines.append(
            f"  {request.campaign_id[:12]} spec={request.name} "
            f"seed={request.base_seed}: {progress['done']}/{progress['total']} done "
            f"leased={progress['leased']} quarantined={progress['quarantined']} "
            f"eta={_format_eta(remaining, rate)}"
        )

    active = {w: s for w, s in stats.items() if s["active"]}
    lines.append(f"workers ({len(active)} active / {len(stats)} seen):")
    for worker in sorted(stats):
        digest = stats[worker]
        state = "active" if digest["active"] else "exited"
        rate_line = ""
        if digest["complete_times"]:
            span = max(now - min(digest["complete_times"]), 1e-9)
            rate_line = f" rate={digest['completes'] / span * 60:.1f}/min"
        busy = (
            f" on {digest['current_key'][:12]}" if digest["current_key"] else ""
        )
        lines.append(
            f"  {worker}: {state}, heartbeat {_format_age(digest['heartbeat_age'])}, "
            f"done={digest['completes']} failed={digest['failures']} "
            f"claims={digest['claims']}{rate_line}{busy}"
        )

    retries = sum(1 for e in events if e.get("kind") == "failed")
    reclaims = sum(1 for e in events if e.get("kind") == "reclaim")
    quarantined = queue.quarantine_entries()
    lines.append(
        f"retries={retries} reclaims={reclaims} quarantined={len(quarantined)}"
    )
    for entry in quarantined:
        lines.append(
            f"  quarantine {str(entry.get('key', '?'))[:12]}: "
            f"attempts={entry.get('attempts')} error={entry.get('error')}"
        )
    if queue.stop_requested():
        lines.append("stop flag is raised (fleet is shutting down)")
    return "\n".join(lines)


__all__ = [
    "RATE_WINDOW",
    "completion_rate",
    "render_fabric_top",
    "worker_stats",
]
