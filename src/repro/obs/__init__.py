"""Unified telemetry: spans, counters/histograms, flight recorder.

The :mod:`repro.obs` package is the repository's measurement substrate —
always available, near-zero cost when off:

* :class:`~repro.obs.telemetry.Telemetry` — a process-wide handle
  collecting structured **spans** (phase, controller round, legitimacy
  probe, store read/write, fabric task) stamped with both wall time and
  virtual (simulation) time, a **counter/gauge/histogram registry** fed
  by the hot layers (simulator event-kind counts, ``RouteCache``
  hit/miss/eviction, store hits/misses, fabric claim/heartbeat/retry),
  and **flight-recorder dumps**: the bounded ring of the last N executed
  simulator events, captured automatically on non-convergence.
* :mod:`~repro.obs.export` — Chrome trace-event JSON (Perfetto-loadable)
  export, campaign trace stitching, plus content-addressed TRACE
  persistence in the run store.
* :mod:`~repro.obs.causality` / :mod:`~repro.obs.explain` — the
  happens-before provenance DAG recorded by the engine under telemetry,
  and the convergence-forensics reports (``repro explain``) built on it.
* :mod:`~repro.obs.dashboard` — the ``repro fabric top`` live campaign
  view rendered from the fabric's ``events.jsonl`` journal.

Enabling is scoped, mirroring :func:`repro.store.store.use_store`::

    from repro.obs import Telemetry, use_telemetry

    with use_telemetry(Telemetry()) as t:
        RunPlan("fattree:4").then(Bootstrap()).run()
    print(t.snapshot()["counters"]["route_cache.hits"])

Instrumented call sites guard on :func:`~repro.obs.telemetry.active`
returning ``None`` (one attribute check), so the disabled path stays
bit-identical and within noise of the uninstrumented code.
"""

from repro.obs.telemetry import (
    Counter,
    Gauge,
    Histogram,
    Span,
    Telemetry,
    active,
    use_telemetry,
)
from repro.obs.causality import CausalEvent, ProvenanceDAG
from repro.obs.explain import Explanation, explain_payload, explain_rerun, explain_run

__all__ = [
    "CausalEvent",
    "Counter",
    "Explanation",
    "Gauge",
    "Histogram",
    "ProvenanceDAG",
    "Span",
    "Telemetry",
    "active",
    "explain_payload",
    "explain_rerun",
    "explain_run",
    "use_telemetry",
]
