"""Trace persistence and Chrome trace-event (Perfetto) export.

Two responsibilities:

* **TRACE records** — a completed :class:`~repro.obs.telemetry.Telemetry`
  session persists into the ordinary content-addressed run store as a
  record of kind ``trace``, addressed by the run key it instruments (or a
  free label for runs outside the store), so traces live next to the run
  records they explain and survive ``store verify``/``reindex`` like any
  other object.
* **Chrome trace-event JSON** — the export format both Perfetto and
  ``chrome://tracing`` load: ``X`` (complete) events for spans, ``i``
  (instant) events for milestone marks and flight-recorder tails on a
  dedicated virtual-time track, ``C`` (counter) events for the final
  registry state, and ``M`` (metadata) events naming the tracks.
  :func:`validate_chrome_trace` checks the schema — the CI obs-smoke
  job's loadability gate.

Imports of the store layer are deliberately lazy: the store itself
imports :mod:`repro.obs.telemetry` for its instrumentation guard, and a
module-level import here would close the cycle.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.telemetry import Telemetry

#: Version of the TRACE record layout (independent of the store's global
#: ``SCHEMA_VERSION``, which addresses *run* records).  v2 adds the
#: ``causal`` happens-before logs and the ``meta`` block (``epoch_unix``
#: for cross-process stitching, this version number); bumping it re-keys
#: new trace records without invalidating any stored run.
TRACE_SCHEMA = 2

#: Synthetic process/thread ids of the exported tracks.
PID_HOST = 1  # wall-clock spans (host-side work)
PID_VIRTUAL = 2  # simulation-clock instants (sim events, marks)

#: Span categories rendered on their own host-side thread rows, in order.
_THREAD_CATS = ("phase", "sim", "probe", "store", "fabric", "")


def _tid_of(cat: str) -> int:
    try:
        return _THREAD_CATS.index(cat) + 1
    except ValueError:
        return len(_THREAD_CATS) + 1


def _us(seconds: float) -> int:
    """Trace-event timestamps are integer microseconds."""
    return int(round(seconds * 1e6))


def chrome_trace_from_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Build the Chrome trace-event document from a TRACE record payload
    (``{"summary": snapshot, "spans": span_records}``)."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID_HOST,
            "tid": 0,
            "args": {"name": "repro host (wall time)"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID_VIRTUAL,
            "tid": 0,
            "args": {"name": "simulation (virtual time)"},
        },
    ]
    for index, cat in enumerate(_THREAD_CATS):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PID_HOST,
                "tid": index + 1,
                "args": {"name": cat or "misc"},
            }
        )
    last_ts = 0
    for span in payload.get("spans", []):
        ts = _us(span["t_wall"])
        args = dict(span.get("args") or {})
        if span.get("t_sim") is not None:
            args["t_sim"] = span["t_sim"]
        events.append(
            {
                "name": span["name"],
                "cat": span.get("cat") or "misc",
                "ph": "X",
                "ts": ts,
                "dur": max(1, _us(span["dur_wall"])),
                "pid": PID_HOST,
                "tid": _tid_of(span.get("cat", "")),
                "args": args,
            }
        )
        last_ts = max(last_ts, ts + _us(span["dur_wall"]))
    summary = payload.get("summary", {})
    for mark in summary.get("marks", []):
        if mark.get("t_sim") is None:
            continue
        events.append(
            {
                "name": mark["name"],
                "cat": "mark",
                "ph": "i",
                "ts": _us(mark["t_sim"]),
                "pid": PID_VIRTUAL,
                "tid": 1,
                "s": "p",
                "args": {"value": mark.get("value")},
            }
        )
    for dump_index, dump in enumerate(summary.get("flight_dumps", [])):
        for t_sim, kind, note in dump.get("events", []):
            events.append(
                {
                    "name": str(kind),
                    "cat": f"flight:{dump.get('reason', '?')}",
                    "ph": "i",
                    "ts": _us(t_sim),
                    "pid": PID_VIRTUAL,
                    "tid": 2 + dump_index,
                    "s": "t",
                    "args": {"note": note},
                }
            )
    for name, value in sorted(summary.get("counters", {}).items()):
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": last_ts,
                "pid": PID_HOST,
                "tid": 0,
                "args": {"value": value},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def to_chrome_trace(telemetry: Telemetry) -> Dict[str, Any]:
    """Export a live telemetry session to the Chrome trace-event format."""
    return chrome_trace_from_payload(trace_payload(telemetry))


_VALID_PHASES = {"X", "M", "C", "i", "B", "E", "s", "t", "f"}

#: Flow-event phases (causal arrows between tracks); they additionally
#: require an ``id`` binding start to finish.
_FLOW_PHASES = {"s", "t", "f"}


def validate_chrome_trace(doc: Any) -> List[str]:
    """Schema problems of a trace-event document; empty when loadable.

    Checks the invariants Perfetto's JSON importer relies on: a
    ``traceEvents`` array, string names, known phase codes, integer-like
    non-negative timestamps on timed events, durations on ``X`` events,
    and flow-binding ids on ``s``/``t``/``f`` events.
    """
    problems: List[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document must be an object with a 'traceEvents' array"]
    for index, event in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing/empty name")
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if "pid" not in event:
            problems.append(f"{where}: missing pid")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur <= 0:
                problems.append(f"{where}: X event needs a positive dur")
        if phase in _FLOW_PHASES and not isinstance(event.get("id"), (str, int)):
            problems.append(f"{where}: flow event needs an id")
    return problems


# ---------------------------------------------------------------------------
# campaign stitching: several processes' traces on one timeline
# ---------------------------------------------------------------------------


def _global_us(offset: float, t_wall: float) -> int:
    return max(0, _us(offset + t_wall))


def stitch_chrome_trace(traces: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge several TRACE payloads into one Chrome trace-event document.

    ``traces`` is a list of ``{"label": str, "payload": trace_payload}``
    entries — typically one aggregator plus the ``worker:N`` traces of a
    fabric campaign.  Each trace becomes its own process track; per-trace
    relative wall clocks are aligned on a global timeline via the
    ``meta.epoch_unix`` stamps (v2 traces; v1 payloads fall back to a
    shared origin).  Causal ``s``/``f`` flow arrows connect the
    aggregator's ``submit:<campaign>`` span to each worker's matching
    ``fabric:*`` task span, task completions back to the
    ``aggregate:<campaign>`` span, and retry handoffs of one unit across
    workers; the task finishing last is flagged as the campaign's
    critical path.
    """
    epochs = [
        trace["payload"].get("meta", {}).get("epoch_unix") for trace in traces
    ]
    known = [e for e in epochs if isinstance(e, (int, float))]
    base = min(known) if known else 0.0
    events: List[Dict[str, Any]] = []

    # Aggregator first (pid 1), then workers in label order.
    def rank(entry: Dict[str, Any]) -> tuple:
        label = entry.get("label") or ""
        return (label.startswith("worker:"), label)

    ordered = sorted(traces, key=rank)
    submit_spans: List[tuple] = []  # (span, pid, offset)
    aggregate_spans: List[tuple] = []
    task_spans: List[tuple] = []  # (span, pid, offset, label)

    for pid0, entry in enumerate(ordered):
        pid = pid0 + 1
        label = entry.get("label") or f"trace:{pid}"
        payload = entry["payload"]
        epoch = payload.get("meta", {}).get("epoch_unix")
        offset = (epoch - base) if isinstance(epoch, (int, float)) else 0.0
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        for index, cat in enumerate(_THREAD_CATS):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": index + 1,
                    "args": {"name": cat or "misc"},
                }
            )
        for span in payload.get("spans", []):
            name = span["name"]
            ts = _global_us(offset, span["t_wall"])
            args = dict(span.get("args") or {})
            if span.get("t_sim") is not None:
                args["t_sim"] = span["t_sim"]
            events.append(
                {
                    "name": name,
                    "cat": span.get("cat") or "misc",
                    "ph": "X",
                    "ts": ts,
                    "dur": max(1, _us(span["dur_wall"])),
                    "pid": pid,
                    "tid": _tid_of(span.get("cat", "")),
                    "args": args,
                }
            )
            if name.startswith("submit:"):
                submit_spans.append((span, pid, offset))
            elif name.startswith("aggregate:"):
                aggregate_spans.append((span, pid, offset))
            elif name.startswith("fabric:") and (span.get("args") or {}).get("key"):
                task_spans.append((span, pid, offset, label))

    def flow(phase: str, name: str, flow_id: str, pid: int, tid: int, ts: int) -> Dict[str, Any]:
        event = {
            "name": name,
            "cat": "flow",
            "ph": phase,
            "id": flow_id,
            "ts": ts,
            "pid": pid,
            "tid": tid,
        }
        if phase == "f":
            event["bp"] = "e"  # bind to the enclosing slice's end
        return event

    submitted: Dict[str, tuple] = {}
    for span, pid, offset in submit_spans:
        for unit_key in (span.get("args") or {}).get("units", []) or []:
            submitted[str(unit_key)] = (span, pid, offset)

    # submit -> task and task -> aggregate arrows.
    for span, pid, offset, label in task_spans:
        key = str(span["args"]["key"])
        start = _global_us(offset, span["t_wall"])
        end = _global_us(offset, span["t_wall"] + span["dur_wall"])
        origin = submitted.get(key)
        if origin is not None:
            o_span, o_pid, o_offset = origin
            events.append(
                flow("s", "dispatch", key, o_pid, _tid_of(o_span.get("cat", "")),
                     _global_us(o_offset, o_span["t_wall"]))
            )
            events.append(
                flow("f", "dispatch", key, pid, _tid_of(span.get("cat", "")), start)
            )
        for a_span, a_pid, a_offset in aggregate_spans:
            events.append(
                flow("s", "collect", f"{key}:done", pid,
                     _tid_of(span.get("cat", "")), end)
            )
            events.append(
                flow("f", "collect", f"{key}:done", a_pid,
                     _tid_of(a_span.get("cat", "")),
                     _global_us(a_offset, a_span["t_wall"]))
            )
            break  # one aggregate target is enough

    # Retry handoffs: the same unit key claimed by several workers.
    by_key: Dict[str, List[tuple]] = {}
    for span, pid, offset, label in task_spans:
        by_key.setdefault(str(span["args"]["key"]), []).append((span, pid, offset))
    for key, attempts in by_key.items():
        attempts.sort(key=lambda item: item[2] + item[0]["t_wall"])
        for attempt_index in range(len(attempts) - 1):
            span, pid, offset = attempts[attempt_index]
            nxt, n_pid, n_offset = attempts[attempt_index + 1]
            handoff = f"{key}:retry{attempt_index}"
            events.append(
                flow("s", "retry", handoff, pid, _tid_of(span.get("cat", "")),
                     _global_us(offset, span["t_wall"] + span["dur_wall"]))
            )
            events.append(
                flow("f", "retry", handoff, n_pid, _tid_of(nxt.get("cat", "")),
                     _global_us(n_offset, nxt["t_wall"]))
            )

    # Campaign critical path: the task whose completion gates the result.
    if task_spans:
        last = max(
            task_spans,
            key=lambda item: item[2] + item[0]["t_wall"] + item[0]["dur_wall"],
        )
        span, pid, offset, label = last
        events.append(
            {
                "name": "campaign_critical_path",
                "cat": "flow",
                "ph": "i",
                "ts": _global_us(offset, span["t_wall"] + span["dur_wall"]),
                "pid": pid,
                "tid": _tid_of(span.get("cat", "")),
                "s": "g",
                "args": {"key": span["args"]["key"], "worker": label},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ---------------------------------------------------------------------------
# TRACE records in the run store
# ---------------------------------------------------------------------------


def trace_identity(run_key: Optional[str] = None, label: str = "") -> Dict[str, Any]:
    """The content-addressed identity of one trace: the run it
    instruments (by store key) or a free label.  Re-recording the same
    run overwrites its trace — the store's benign last-writer-wins."""
    from repro.store.hashing import SCHEMA_VERSION

    return {
        "kind": "trace",
        "schema": SCHEMA_VERSION,
        "trace_schema": TRACE_SCHEMA,
        "run": run_key,
        "label": label,
    }


def trace_payload(telemetry: Telemetry) -> Dict[str, Any]:
    return {
        "summary": telemetry.snapshot(),
        "spans": telemetry.span_records(),
        "causal": [dict(log) for log in telemetry.causal_logs],
        "meta": {
            "trace_schema": TRACE_SCHEMA,
            "epoch_unix": telemetry.epoch_unix,
        },
    }


def save_trace(
    store,
    telemetry: Telemetry,
    run_key: Optional[str] = None,
    label: str = "",
) -> str:
    """Persist one telemetry session as a TRACE record; returns its key."""
    from repro.store.hashing import fingerprint

    identity = trace_identity(run_key=run_key, label=label)
    key = fingerprint(identity)
    store.put(
        key,
        identity,
        trace_payload(telemetry),
        tags={"run": run_key, "label": label},
    )
    return key


def load_trace(store, key: str) -> Optional[Dict[str, Any]]:
    """The TRACE record at ``key`` (full record, payload under
    ``"payload"``), or ``None``."""
    record = store.get(key)
    if record is None or record.get("kind") != "trace":
        return None
    return record


def find_traces(store) -> List[str]:
    """Keys of every trace record in the store, oldest first (by object
    mtime, so ``[-1]`` is the most recent recording)."""
    keys = [
        entry["key"] for entry in store.manifest() if entry.get("kind") == "trace"
    ]

    def mtime(key: str) -> float:
        try:
            return store.object_path(key).stat().st_mtime
        except OSError:
            return 0.0

    return sorted(keys, key=lambda k: (mtime(k), k))


__all__ = [
    "PID_HOST",
    "PID_VIRTUAL",
    "TRACE_SCHEMA",
    "chrome_trace_from_payload",
    "find_traces",
    "load_trace",
    "save_trace",
    "stitch_chrome_trace",
    "to_chrome_trace",
    "trace_identity",
    "trace_payload",
    "validate_chrome_trace",
]
