"""Trace persistence and Chrome trace-event (Perfetto) export.

Two responsibilities:

* **TRACE records** — a completed :class:`~repro.obs.telemetry.Telemetry`
  session persists into the ordinary content-addressed run store as a
  record of kind ``trace``, addressed by the run key it instruments (or a
  free label for runs outside the store), so traces live next to the run
  records they explain and survive ``store verify``/``reindex`` like any
  other object.
* **Chrome trace-event JSON** — the export format both Perfetto and
  ``chrome://tracing`` load: ``X`` (complete) events for spans, ``i``
  (instant) events for milestone marks and flight-recorder tails on a
  dedicated virtual-time track, ``C`` (counter) events for the final
  registry state, and ``M`` (metadata) events naming the tracks.
  :func:`validate_chrome_trace` checks the schema — the CI obs-smoke
  job's loadability gate.

Imports of the store layer are deliberately lazy: the store itself
imports :mod:`repro.obs.telemetry` for its instrumentation guard, and a
module-level import here would close the cycle.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.telemetry import Telemetry

#: Synthetic process/thread ids of the exported tracks.
PID_HOST = 1  # wall-clock spans (host-side work)
PID_VIRTUAL = 2  # simulation-clock instants (sim events, marks)

#: Span categories rendered on their own host-side thread rows, in order.
_THREAD_CATS = ("phase", "sim", "probe", "store", "fabric", "")


def _tid_of(cat: str) -> int:
    try:
        return _THREAD_CATS.index(cat) + 1
    except ValueError:
        return len(_THREAD_CATS) + 1


def _us(seconds: float) -> int:
    """Trace-event timestamps are integer microseconds."""
    return int(round(seconds * 1e6))


def chrome_trace_from_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Build the Chrome trace-event document from a TRACE record payload
    (``{"summary": snapshot, "spans": span_records}``)."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID_HOST,
            "tid": 0,
            "args": {"name": "repro host (wall time)"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID_VIRTUAL,
            "tid": 0,
            "args": {"name": "simulation (virtual time)"},
        },
    ]
    for index, cat in enumerate(_THREAD_CATS):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PID_HOST,
                "tid": index + 1,
                "args": {"name": cat or "misc"},
            }
        )
    last_ts = 0
    for span in payload.get("spans", []):
        ts = _us(span["t_wall"])
        args = dict(span.get("args") or {})
        if span.get("t_sim") is not None:
            args["t_sim"] = span["t_sim"]
        events.append(
            {
                "name": span["name"],
                "cat": span.get("cat") or "misc",
                "ph": "X",
                "ts": ts,
                "dur": max(1, _us(span["dur_wall"])),
                "pid": PID_HOST,
                "tid": _tid_of(span.get("cat", "")),
                "args": args,
            }
        )
        last_ts = max(last_ts, ts + _us(span["dur_wall"]))
    summary = payload.get("summary", {})
    for mark in summary.get("marks", []):
        if mark.get("t_sim") is None:
            continue
        events.append(
            {
                "name": mark["name"],
                "cat": "mark",
                "ph": "i",
                "ts": _us(mark["t_sim"]),
                "pid": PID_VIRTUAL,
                "tid": 1,
                "s": "p",
                "args": {"value": mark.get("value")},
            }
        )
    for dump_index, dump in enumerate(summary.get("flight_dumps", [])):
        for t_sim, kind, note in dump.get("events", []):
            events.append(
                {
                    "name": str(kind),
                    "cat": f"flight:{dump.get('reason', '?')}",
                    "ph": "i",
                    "ts": _us(t_sim),
                    "pid": PID_VIRTUAL,
                    "tid": 2 + dump_index,
                    "s": "t",
                    "args": {"note": note},
                }
            )
    for name, value in sorted(summary.get("counters", {}).items()):
        events.append(
            {
                "name": name,
                "ph": "C",
                "ts": last_ts,
                "pid": PID_HOST,
                "tid": 0,
                "args": {"value": value},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def to_chrome_trace(telemetry: Telemetry) -> Dict[str, Any]:
    """Export a live telemetry session to the Chrome trace-event format."""
    return chrome_trace_from_payload(trace_payload(telemetry))


_VALID_PHASES = {"X", "M", "C", "i", "B", "E"}


def validate_chrome_trace(doc: Any) -> List[str]:
    """Schema problems of a trace-event document; empty when loadable.

    Checks the invariants Perfetto's JSON importer relies on: a
    ``traceEvents`` array, string names, known phase codes, integer-like
    non-negative timestamps on timed events, and durations on ``X``
    events.
    """
    problems: List[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document must be an object with a 'traceEvents' array"]
    for index, event in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing/empty name")
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if "pid" not in event:
            problems.append(f"{where}: missing pid")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur <= 0:
                problems.append(f"{where}: X event needs a positive dur")
    return problems


# ---------------------------------------------------------------------------
# TRACE records in the run store
# ---------------------------------------------------------------------------


def trace_identity(run_key: Optional[str] = None, label: str = "") -> Dict[str, Any]:
    """The content-addressed identity of one trace: the run it
    instruments (by store key) or a free label.  Re-recording the same
    run overwrites its trace — the store's benign last-writer-wins."""
    from repro.store.hashing import SCHEMA_VERSION

    return {
        "kind": "trace",
        "schema": SCHEMA_VERSION,
        "run": run_key,
        "label": label,
    }


def trace_payload(telemetry: Telemetry) -> Dict[str, Any]:
    return {"summary": telemetry.snapshot(), "spans": telemetry.span_records()}


def save_trace(
    store,
    telemetry: Telemetry,
    run_key: Optional[str] = None,
    label: str = "",
) -> str:
    """Persist one telemetry session as a TRACE record; returns its key."""
    from repro.store.hashing import fingerprint

    identity = trace_identity(run_key=run_key, label=label)
    key = fingerprint(identity)
    store.put(
        key,
        identity,
        trace_payload(telemetry),
        tags={"run": run_key, "label": label},
    )
    return key


def load_trace(store, key: str) -> Optional[Dict[str, Any]]:
    """The TRACE record at ``key`` (full record, payload under
    ``"payload"``), or ``None``."""
    record = store.get(key)
    if record is None or record.get("kind") != "trace":
        return None
    return record


def find_traces(store) -> List[str]:
    """Keys of every trace record in the store, oldest first (by object
    mtime, so ``[-1]`` is the most recent recording)."""
    keys = [
        entry["key"] for entry in store.manifest() if entry.get("kind") == "trace"
    ]

    def mtime(key: str) -> float:
        try:
            return store.object_path(key).stat().st_mtime
        except OSError:
            return 0.0

    return sorted(keys, key=lambda k: (mtime(k), k))


__all__ = [
    "PID_HOST",
    "PID_VIRTUAL",
    "chrome_trace_from_payload",
    "find_traces",
    "load_trace",
    "save_trace",
    "to_chrome_trace",
    "trace_identity",
    "trace_payload",
    "validate_chrome_trace",
]
