"""The process-wide telemetry handle: spans, metrics, flight dumps.

Design constraints, in priority order:

1. **Bit-identical when disabled.**  Telemetry never touches the
   simulation's randomness or event ordering, and instrumented sites
   guard on :func:`active` (or a captured handle) being ``None`` — the
   disabled path costs one attribute check.
2. **Cheap when enabled.**  The truly hot counters (``RouteCache``,
   simulator event kinds) are *pulled* from their owners at snapshot
   time through registered providers instead of being pushed per hit;
   spans are recorded only at moderate-frequency sites (phases,
   controller iterations, legitimacy probes, store and fabric
   operations).
3. **Everything serializes.**  :meth:`Telemetry.snapshot` and
   :meth:`Telemetry.span_records` produce plain-JSON documents — the
   payload of the store's content-addressed TRACE records and the input
   of the Chrome trace-event exporter.

Wall timestamps are seconds since the handle's creation
(``time.perf_counter`` based), so exported traces start at t=0.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: Default flight-recorder depth: the last N executed simulator events
#: kept in the bounded ring and shipped with a dump.
DEFAULT_FLIGHT_CAPACITY = 256


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value metric (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Power-of-two bucketed distribution with exact count/sum/extrema.

    Buckets hold values in ``(2^(i-1), 2^i] * scale`` with ``scale`` the
    smallest bucket bound; good enough for latency distributions without
    per-observation allocation.
    """

    __slots__ = ("count", "total", "min", "max", "buckets", "scale")

    def __init__(self, scale: float = 1e-6) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}
        self.scale = scale

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = 0
        bound = self.scale
        while value > bound and index < 64:
            bound *= 2.0
            index += 1
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "scale": self.scale,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


@dataclass
class Span:
    """One timed operation: wall-clock interval plus virtual-time stamp.

    ``t_wall``/``dur_wall`` are seconds relative to the telemetry
    handle's epoch; ``t_sim`` is the simulation clock at the span's
    start (``None`` for host-side spans such as store reads).
    """

    name: str
    cat: str
    t_wall: float
    dur_wall: float
    t_sim: Optional[float] = None
    args: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cat": self.cat,
            "t_wall": self.t_wall,
            "dur_wall": self.dur_wall,
            "t_sim": self.t_sim,
            "args": dict(self.args),
        }


def _jsonable(value: Any) -> Any:
    """Fold a mark/arg value to a JSON-representable leaf."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


class Telemetry:
    """One recording session: the sink every instrumented layer feeds.

    ``flight_capacity`` bounds the simulator event ring a live
    :class:`~repro.sim.network_sim.NetworkSimulation` keeps while this
    handle is active; the ring's tail becomes a flight dump on
    non-convergence or harness failure.
    """

    def __init__(self, flight_capacity: int = DEFAULT_FLIGHT_CAPACITY) -> None:
        if flight_capacity < 1:
            raise ValueError(f"flight_capacity must be >= 1 (got {flight_capacity})")
        self.flight_capacity = flight_capacity
        self.spans: List[Span] = []
        self.marks: List[Tuple[float, Optional[float], str, Any]] = []
        self.flight_dumps: List[Dict[str, Any]] = []
        #: Causal-provenance logs, one per completed simulation run:
        #: ``{"source": str, "events": [[eid, t_sim, kind, note, cause,
        #: tags], ...]}``.  Rows carry only virtual times and seq ids, so
        #: seeded reruns serialize identically.
        self.causal_logs: List[Dict[str, Any]] = []
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._providers: List[Callable[[], Dict[str, int]]] = []
        self._epoch = time.perf_counter()
        #: Absolute unix time of the epoch — lets the trace stitcher place
        #: several processes' relative wall clocks on one global timeline.
        self.epoch_unix = time.time()

    # -- clocks ------------------------------------------------------------

    def now(self) -> float:
        """Wall seconds since this handle was created."""
        return time.perf_counter() - self._epoch

    # -- registry ----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        return histogram

    def add_provider(self, provider: Callable[[], Dict[str, int]]) -> None:
        """Register a pull-style metrics source.

        A provider returns ``{counter_name: value}`` at snapshot time;
        values from several providers under one name are summed.  This is
        how the hot layers (``RouteCache``, the simulator's event-kind
        tally) report without paying any per-hit instrumentation cost.
        """
        self._providers.append(provider)

    def counters(self) -> Dict[str, int]:
        """Pushed counters merged with every provider's current values."""
        merged = {name: c.value for name, c in self._counters.items()}
        for provider in self._providers:
            for name, value in provider().items():
                merged[name] = merged.get(name, 0) + int(value)
        return merged

    # -- spans -------------------------------------------------------------

    def record_span(
        self,
        name: str,
        cat: str,
        t_wall: float,
        dur_wall: float,
        t_sim: Optional[float] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append a completed span (the low-overhead site API: callers
        take their own ``now()`` stamps around the timed region)."""
        self.spans.append(
            Span(
                name=name,
                cat=cat,
                t_wall=t_wall,
                dur_wall=dur_wall,
                t_sim=t_sim,
                args=dict(args) if args else {},
            )
        )

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "",
        t_sim: Optional[float] = None,
        **args: Any,
    ) -> Iterator[None]:
        """Context-manager span for coarse sites (phases, CLI commands)."""
        start = self.now()
        try:
            yield
        finally:
            self.record_span(
                name, cat, start, self.now() - start, t_sim=t_sim, args=args
            )

    # -- marks (metrics-recorder milestones) -------------------------------

    def mark(self, t_sim: float, name: str, value: Any = None) -> None:
        """Record a simulation milestone (fault, convergence, ...)."""
        self.marks.append((self.now(), t_sim, name, _jsonable(value)))

    # -- flight recorder ---------------------------------------------------

    def record_flight_dump(
        self,
        reason: str,
        events: List[Tuple[float, Any, str]],
        t_sim: Optional[float] = None,
        source: str = "",
    ) -> Dict[str, Any]:
        """Capture the simulator event ring's tail.

        ``events`` are ``(time, kind, note)`` tuples as the engine traces
        them; enum kinds are folded to their values so the dump is pure
        JSON.
        """
        dump = {
            "reason": reason,
            "source": source,
            "t_wall": self.now(),
            "t_sim": t_sim,
            "n_events": len(events),
            "events": [
                [t, getattr(kind, "value", str(kind)), note]
                for t, kind, note in events
            ],
        }
        self.flight_dumps.append(dump)
        return dump

    # -- causal provenance -------------------------------------------------

    def record_causal_log(
        self, events: List[Tuple], source: str = ""
    ) -> Dict[str, Any]:
        """Capture a simulator's happens-before rows as pure JSON.

        ``events`` are the engine's ``(eid, t_sim, kind, note, cause,
        tags)`` rows; enum kinds fold to their values, tags through
        :func:`_jsonable`.  Goes into the TRACE record's ``causal`` block
        (not the summary snapshot, which predates this field and must stay
        byte-stable).
        """
        log = {
            "source": source,
            "events": [
                [
                    eid,
                    t,
                    getattr(kind, "value", str(kind)),
                    note,
                    cause,
                    _jsonable(tags) if tags else None,
                ]
                for eid, t, kind, note, cause, tags in events
            ],
        }
        self.causal_logs.append(log)
        return log

    # -- serialization -----------------------------------------------------

    def span_records(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.spans]

    def snapshot(self) -> Dict[str, Any]:
        """The JSON-able state of the whole session: counters (providers
        included), gauges, histograms, milestone marks, flight dumps, and
        a span tally.  This is the TRACE record's summary block."""
        return {
            "counters": dict(sorted(self.counters().items())),
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.as_dict() for name, h in sorted(self._histograms.items())
            },
            "marks": [
                {"t_wall": tw, "t_sim": ts, "name": name, "value": value}
                for tw, ts, name, value in self.marks
            ],
            "flight_dumps": [dict(dump) for dump in self.flight_dumps],
            "n_spans": len(self.spans),
        }


# ---------------------------------------------------------------------------
# active-telemetry context (mirrors repro.store.store.use_store)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Telemetry] = None


def active() -> Optional[Telemetry]:
    """The telemetry handle instrumented layers currently feed, if any.

    Hot call sites capture the result once (e.g. at simulation
    construction) and guard on it being ``None``; when no handle is
    active the instrumentation is a single comparison.
    """
    return _ACTIVE


@contextmanager
def use_telemetry(telemetry: Optional[Telemetry]) -> Iterator[Optional[Telemetry]]:
    """Make ``telemetry`` the process-wide active handle for the scope.

    Simulations constructed inside the scope attach their flight ring and
    metric providers to it; store and fabric operations inside the scope
    record spans and counters on it.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous


__all__ = [
    "DEFAULT_FLIGHT_CAPACITY",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "Telemetry",
    "active",
    "use_telemetry",
]
