"""Convergence forensics: from a symptom back to its root cause.

Built on the happens-before DAG of :mod:`repro.obs.causality`, this module
answers the question the paper's claims hinge on — *why* did (or didn't)
a run converge: it locates the symptom (a legitimacy probe that never
turned green, a flight-recorder dump), walks the provenance DAG to the
originating corruption or fault, renders the propagation chain, and scans
for secondary anomalies (stuck rounds, rule-flap cycles, delivery storms,
straggler probes).

Three entry points:

* :func:`explain_payload` — forensics over a TRACE record payload;
* :func:`explain_run` — store-first: resolve a run/trace key to a
  payload (replaying the run from its content-addressed identity when no
  trace was persisted) and explain it — the engine behind
  ``repro explain``;
* :func:`explain_rerun` — re-execute a callable under a private
  telemetry handle and explain the resulting trace — what the property
  harnesses call on a failing case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs.causality import CausalEvent, ProvenanceDAG
from repro.obs.export import trace_identity, trace_payload
from repro.obs.telemetry import Telemetry, use_telemetry


@dataclass
class Explanation:
    """One forensics report, renderable as text or JSON."""

    ok: bool
    symptom: Dict[str, Any]
    root_cause: Optional[Dict[str, Any]] = None
    chain: List[str] = field(default_factory=list)
    anomalies: List[Dict[str, Any]] = field(default_factory=list)
    n_events: int = 0
    source: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "symptom": dict(self.symptom),
            "root_cause": dict(self.root_cause) if self.root_cause else None,
            "chain": list(self.chain),
            "anomalies": [dict(a) for a in self.anomalies],
            "n_events": self.n_events,
            "source": self.source,
        }

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [f"forensics: {self.symptom.get('summary', self.symptom.get('kind'))}"]
        if self.root_cause is not None:
            lines.append(f"root cause: {self.root_cause.get('summary')}")
        elif not self.ok:
            lines.append("root cause: none identified (no tagged fault/corruption)")
        if self.chain:
            lines.append("causal chain:")
            for step in self.chain:
                lines.append(f"  -> {step}")
        for anomaly in self.anomalies:
            lines.append(f"anomaly: {anomaly.get('summary', anomaly.get('kind'))}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# forensics over one TRACE payload
# ---------------------------------------------------------------------------


def _find_symptom(dag: ProvenanceDAG, payload: Dict[str, Any]) -> Dict[str, Any]:
    probes = [e for e in dag.events if "legitimate" in e.tags]
    dumps = payload.get("summary", {}).get("flight_dumps", [])
    if probes and probes[-1].tags.get("legitimate"):
        t = probes[-1].t_sim
        return {
            "kind": "converged",
            "t_sim": t,
            "summary": f"run converged at t={t:.2f}",
        }
    if probes:
        t = probes[-1].t_sim
        return {
            "kind": "non-convergence",
            "t_sim": t,
            "n_probes": len(probes),
            "summary": (
                f"non-convergence: {len(probes)} legitimacy probes all failed, "
                f"last at t={t:.2f}"
            ),
        }
    if dumps:
        reason = dumps[-1].get("reason", "?")
        return {
            "kind": reason,
            "t_sim": dumps[-1].get("t_sim"),
            "summary": f"flight recorder dumped: {reason}",
        }
    return {"kind": "no-symptom", "summary": "no probe verdicts recorded"}


_DEGRADING_FAULTS = ("fail_", "remove_", "corrupt_")


def _find_root_cause(dag: ProvenanceDAG) -> Optional[CausalEvent]:
    corruptions = [r for r in dag.roots() if "corruption_id" in r.tags]
    if corruptions:
        return corruptions[-1]
    faults = dag.find(fault_id=...)
    degrading = [
        f for f in faults if str(f.tags.get("fault", "")).startswith(_DEGRADING_FAULTS)
    ]
    pool = degrading or faults
    if pool:
        return max(pool, key=lambda e: (e.t_sim, e.eid))
    return None


def _describe_cause(event: CausalEvent) -> Dict[str, Any]:
    if "corruption_id" in event.tags:
        return {
            "kind": "corruption",
            "id": event.tags["corruption_id"],
            "corruption": event.tags.get("corruption"),
            "t_sim": event.t_sim,
            "summary": f"state corruption {event.tags['corruption_id']} "
            f"at t={event.t_sim:.2f}",
        }
    return {
        "kind": "fault",
        "id": event.tags.get("fault_id"),
        "fault": event.tags.get("fault"),
        "target": event.tags.get("target"),
        "t_sim": event.t_sim,
        "summary": f"fault {event.tags.get('fault_id')} on "
        f"{event.tags.get('target')} at t={event.t_sim:.2f}",
    }


def _tail_events(dag: ProvenanceDAG, fraction: float = 0.25) -> List[CausalEvent]:
    if not dag.events:
        return []
    t_end = max(e.t_sim for e in dag.events)
    cutoff = t_end * (1.0 - fraction)
    return [e for e in dag.events if e.t_sim >= cutoff]


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    return ordered[len(ordered) // 2] if ordered else 0.0


def _find_anomalies(dag: ProvenanceDAG, payload: Dict[str, Any]) -> List[Dict[str, Any]]:
    anomalies: List[Dict[str, Any]] = []

    # Stuck rounds: a controller's trailing iterations never starting a
    # new round (bounded refresh not yet fired, or firing in a cycle).
    by_ctrl: Dict[str, List[CausalEvent]] = {}
    for event in dag.events:
        ctrl = event.tags.get("ctrl")
        if ctrl is not None:
            by_ctrl.setdefault(str(ctrl), []).append(event)
    for ctrl, iterations in sorted(by_ctrl.items()):
        stuck = 0
        for event in reversed(iterations):
            if event.tags.get("new_round"):
                break
            stuck += 1
        if stuck >= 8:
            last = iterations[-1]
            anomalies.append(
                {
                    "kind": "stuck_round",
                    "ctrl": ctrl,
                    "iterations": stuck,
                    "round": last.tags.get("round"),
                    "round_age": last.tags.get("round_age"),
                    "summary": f"controller {ctrl} stuck on round "
                    f"{last.tags.get('round')} for its last {stuck} iterations",
                }
            )

    # Rule-flap cycles: steady state installs without deleting, so
    # repeated late-run DelAllRules to one switch flag a limit cycle.
    tail = _tail_events(dag)
    flaps: Dict[str, int] = {}
    deliveries: Dict[tuple, int] = {}
    for event in tail:
        if event.tags.get("msg") == "batch" and event.tags.get("dels", 0):
            flaps[str(event.tags.get("dst"))] = (
                flaps.get(str(event.tags.get("dst")), 0) + 1
            )
        if "msg" in event.tags:
            pair = (str(event.tags.get("src")), str(event.tags.get("dst")))
            deliveries[pair] = deliveries.get(pair, 0) + 1
    for dst, count in sorted(flaps.items()):
        if count >= 3:
            anomalies.append(
                {
                    "kind": "rule_flap",
                    "dst": dst,
                    "deletions": count,
                    "summary": f"rule-flap cycle: {count} late-run rule "
                    f"deletions at {dst}",
                }
            )
    if deliveries:
        med = _median(list(map(float, deliveries.values())))
        for (src, dst), count in sorted(deliveries.items()):
            if count >= 20 and count >= 4 * max(med, 1.0):
                anomalies.append(
                    {
                        "kind": "delivery_storm",
                        "src": src,
                        "dst": dst,
                        "count": count,
                        "median": med,
                        "summary": f"delivery storm: {count} late-run messages "
                        f"{src}->{dst} (median pair: {med:.0f})",
                    }
                )

    # Straggler probes: one legitimacy check far beyond the others.
    probe_walls = [
        span["dur_wall"]
        for span in payload.get("spans", [])
        if span.get("name") == "legitimacy_probe"
    ]
    if len(probe_walls) >= 8:
        med = _median(probe_walls)
        worst = max(probe_walls)
        if med > 0 and worst >= 5 * med:
            anomalies.append(
                {
                    "kind": "straggler_probe",
                    "max_wall": worst,
                    "median_wall": med,
                    "summary": f"straggler probe: worst legitimacy check "
                    f"{worst * 1e3:.2f}ms vs median {med * 1e3:.2f}ms",
                }
            )
    return anomalies


def explain_payload(payload: Dict[str, Any], source: str = "") -> Explanation:
    """Forensics over one TRACE record payload."""
    dag = ProvenanceDAG.from_payload(payload)
    if dag is None or not len(dag):
        return Explanation(
            ok=False,
            symptom={
                "kind": "no-causal-data",
                "summary": "trace carries no causal log (pre-v2 trace, or the "
                "run never executed events)",
            },
            source=source,
        )
    symptom = _find_symptom(dag, payload)
    ok = symptom["kind"] == "converged"
    cause = _find_root_cause(dag)
    root_cause = _describe_cause(cause) if cause is not None else None
    chain: List[str] = []
    if cause is not None:
        chain = [step.label() for step in dag.causal_chain(cause.eid)]
    anomalies = _find_anomalies(dag, payload)
    return Explanation(
        ok=ok,
        symptom=symptom,
        root_cause=root_cause,
        chain=chain,
        anomalies=anomalies,
        n_events=len(dag),
        source=source,
    )


# ---------------------------------------------------------------------------
# store-first entry point (the CLI's engine)
# ---------------------------------------------------------------------------


def plan_from_identity(identity: Dict[str, Any]):
    """Reconstruct an executable :class:`~repro.api.plan.RunPlan` from a
    stored run record's identity.

    The identity carries everything a cacheable plan needs: the topology
    spec string, controller count/placement/seed, the full config
    snapshot, and each phase's ``describe()`` dict.  Raises
    :class:`ValueError` for identities that are not faithfully
    replayable: custom (inline) topologies, label-only fault builders,
    and fault targets folded by ``repr``.
    """
    from repro.api.phases import (
        AwaitLegitimacy,
        Bootstrap,
        CorruptState,
        InjectFaults,
        RunFor,
    )
    from repro.api.plan import RunPlan
    from repro.sim.faults import FaultAction, FaultPlan

    if identity.get("kind") != "run":
        raise ValueError(f"not a run identity: kind={identity.get('kind')!r}")
    topology = identity.get("topology")
    if not isinstance(topology, str):
        raise ValueError("custom-topology runs cannot be replayed from identity")
    plan = RunPlan(
        topology,
        controllers=identity["controllers"],
        placement=identity.get("placement", "dual_homed"),
        seed=identity["seed"],
    ).configure(**identity.get("config", {}))
    phases = []
    for desc in identity.get("phases", []):
        name = desc.get("phase")
        if name == "bootstrap":
            phases.append(
                Bootstrap(timeout=desc.get("timeout"), full=bool(desc.get("full")))
            )
        elif name == "corrupt_state":
            phases.append(CorruptState(corruption=desc.get("corruption", "mixed")))
        elif name == "run_for":
            phases.append(RunFor(duration=desc.get("duration", 1.0)))
        elif name == "await_legitimacy":
            phases.append(
                AwaitLegitimacy(
                    timeout=desc.get("timeout"),
                    clamp_zero=bool(desc.get("clamp_zero")),
                    full=bool(desc.get("full")),
                )
            )
        elif name == "inject_faults":
            faults = desc.get("faults")
            if not isinstance(faults, list):
                raise ValueError(
                    f"inject_faults described only by label {faults!r}; "
                    "cannot replay"
                )
            actions = [
                FaultAction(float(at), str(kind), _rebuild_target(target))
                for at, kind, target in faults
            ]
            phases.append(
                InjectFaults(
                    plan=FaultPlan(actions),
                    settle=desc.get("settle", 0.01),
                    relative=bool(desc.get("relative")),
                )
            )
        else:
            raise ValueError(f"unknown phase {name!r} in identity")
    return plan.then(*phases)


def _rebuild_target(target: Any) -> tuple:
    """Invert the describe-time leaf folding where possible; repr-folded
    leaves (Rule objects) are not reconstructable."""

    def check(leaf: Any) -> Any:
        if isinstance(leaf, str) and "(" in leaf:
            raise ValueError(
                f"fault target leaf {leaf!r} was folded by repr; cannot replay"
            )
        if isinstance(leaf, list):
            return [check(item) for item in leaf]
        return leaf

    return tuple(check(leaf) for leaf in target)


def _latest_failed_run_key(store) -> Optional[str]:
    """Most recently written run record whose result failed."""
    candidates = []
    for entry in store.manifest():
        if entry.get("kind") != "run":
            continue
        key = entry["key"]
        result = store.load_run(key)
        if result is None or result.ok:
            continue
        try:
            mtime = store.object_path(key).stat().st_mtime
        except OSError:
            mtime = 0.0
        candidates.append((mtime, key))
    if not candidates:
        return None
    return max(candidates)[1]


def explain_run(store, key: Optional[str] = None) -> Explanation:
    """Explain a stored run or trace.

    With no ``key``, picks the most recent *failed* run record (falling
    back to the most recent trace).  A run key resolves to its persisted
    trace when one exists; otherwise the run is replayed from its
    content-addressed identity under a private telemetry handle — same
    seed, same corruption stream, so the replay is the run.
    """
    from repro.obs.export import find_traces
    from repro.store.hashing import fingerprint

    if key is None:
        key = _latest_failed_run_key(store)
        if key is None:
            traces = find_traces(store)
            if not traces:
                raise ValueError("store holds no failed runs and no traces")
            key = traces[-1]
    record = store.get(key)
    if record is None:
        raise ValueError(f"no record at {key}")
    kind = record.get("kind")
    if kind == "trace":
        return explain_payload(record["payload"], source=f"trace:{key[:12]}")
    if kind != "run":
        raise ValueError(f"record {key[:12]} is a {kind!r}, not a run or trace")
    trace_key = fingerprint(trace_identity(run_key=key))
    trace_record = store.get(trace_key)
    if trace_record is not None and trace_record.get("kind") == "trace":
        return explain_payload(
            trace_record["payload"], source=f"run:{key[:12]} (stored trace)"
        )
    plan = plan_from_identity(record["identity"])
    with use_telemetry(Telemetry()) as telemetry:
        plan.session().run()
    return explain_payload(
        trace_payload(telemetry), source=f"run:{key[:12]} (replayed)"
    )


# ---------------------------------------------------------------------------
# harness entry point
# ---------------------------------------------------------------------------


def explain_rerun(runner: Callable[[], Any], source: str = "") -> Explanation:
    """Re-execute ``runner`` under a private telemetry handle and explain
    the resulting trace — what the property harnesses call on an
    (already shrunken, hence cheap) failing case."""
    with use_telemetry(Telemetry()) as telemetry:
        runner()
    return explain_payload(trace_payload(telemetry), source=source)


__all__ = [
    "Explanation",
    "explain_payload",
    "explain_rerun",
    "explain_run",
    "plan_from_identity",
]
