"""The abstract SDN switch control module (paper Section 2.1.1).

Glues the flow table, the manager set and the command protocol together.
A command batch is executed atomically — receive, update, reply in one
step, per the paper's execution model (Section 3.2).

The switch also records which deletions each batch performed; the
simulation harness classifies them as legitimate or *illegitimate*
(Definition 2: removing a non-failed controller's state on another
controller's command) to reproduce the Theorem 1 bound empirically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.switch.flow_table import FlowTable, Rule, META_PRIORITY
from repro.switch.managers import ManagerSet
from repro.switch.commands import (
    AddManager,
    CommandBatch,
    DelAllRules,
    DelManager,
    NewRound,
    Query,
    QueryReply,
    UpdateRules,
)

#: Placeholder for "no value" fields in meta-rules (the paper's ⊥).
BOTTOM = "⊥"


@dataclass
class DeletionRecord:
    """What one batch deleted, for illegitimate-deletion accounting."""

    issuer: str
    managers_removed: List[str] = field(default_factory=list)
    rule_owners_cleared: List[str] = field(default_factory=list)


class AbstractSwitch:
    """One switch's control module plus its bounded configuration state."""

    def __init__(
        self,
        sid: str,
        alive_neighbors: Callable[[], List[str]],
        max_rules: int = 10_000,
        max_managers: int = 64,
    ) -> None:
        self.sid = sid
        self._alive_neighbors = alive_neighbors
        self.table = FlowTable(sid, max_rules=max_rules)
        self.managers = ManagerSet(max_managers=max_managers)
        self.batches_processed = 0
        self.deletion_log: List[DeletionRecord] = []

    # -- control plane ----------------------------------------------------------

    def handle_batch(self, batch: CommandBatch) -> Optional[QueryReply]:
        """Execute a command batch atomically; answer its query if present."""
        self.batches_processed += 1
        record = DeletionRecord(issuer=batch.sender)
        reply: Optional[QueryReply] = None
        for command in batch.commands:
            if isinstance(command, NewRound):
                self._set_meta_rule(batch.sender, command.tag)
            elif isinstance(command, AddManager):
                self.managers.add(command.cid)
            elif isinstance(command, DelManager):
                if self.managers.remove(command.cid):
                    record.managers_removed.append(command.cid)
            elif isinstance(command, DelAllRules):
                if self.table.delete_rules_of(command.cid) > 0:
                    record.rule_owners_cleared.append(command.cid)
            elif isinstance(command, UpdateRules):
                self.table.replace_rules_of(batch.sender, command.rules)
            elif isinstance(command, Query):
                reply = self.snapshot()
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown command: {command!r}")
        if record.managers_removed or record.rule_owners_cleared:
            self.deletion_log.append(record)
        return reply

    def _set_meta_rule(self, cid: str, tag: object) -> None:
        self.table.install(
            Rule(
                cid=cid,
                sid=self.sid,
                src=BOTTOM,
                dst=BOTTOM,
                priority=META_PRIORITY,
                forward_to=None,
                tag=tag,
            )
        )

    def snapshot(self) -> QueryReply:
        """The switch's query response ⟨j, Nc(j), manager(j), rules(j)⟩."""
        return QueryReply(
            node=self.sid,
            neighbors=tuple(self._alive_neighbors()),
            managers=tuple(self.managers.members()),
            rules=tuple(self.table.rules()),
        )

    def meta_tag_of(self, cid: str) -> Optional[object]:
        """Tag of ``cid``'s meta-rule, or ``None`` if absent."""
        for rule in self.table.rules_of(cid):
            if rule.is_meta:
                return rule.tag
        return None

    # -- transient-fault hooks -----------------------------------------------------

    def corrupt(
        self,
        rules: Tuple[Rule, ...] = (),
        managers: Tuple[str, ...] = (),
        clear_first: bool = False,
    ) -> None:
        """Arbitrarily rewrite the switch configuration (a transient fault:
        the paper's rare faults corrupt state but leave code intact)."""
        if clear_first:
            self.table.clear()
            self.managers.clear()
        self.table.corrupt_with(rules)
        self.managers.corrupt_with(managers)


__all__ = ["AbstractSwitch", "DeletionRecord", "BOTTOM"]
