"""The abstract SDN switch (paper Sections 2.1 and 2.1.1).

A deliberately minimal switch model: a bounded match-action rule table with
an eviction policy, a bounded manager set, a control module that executes
controller command batches atomically, and a data plane that forwards by
the highest-priority applicable rule whose out-link is operational
(fast-failover semantics).
"""

from repro.switch.flow_table import Rule, FlowTable, META_PRIORITY
from repro.switch.managers import ManagerSet
from repro.switch.commands import (
    Command,
    NewRound,
    AddManager,
    DelManager,
    DelAllRules,
    UpdateRules,
    Query,
    CommandBatch,
    QueryReply,
)
from repro.switch.abstract_switch import AbstractSwitch
from repro.switch.forwarding import select_rule, next_hop

__all__ = [
    "Rule",
    "FlowTable",
    "META_PRIORITY",
    "ManagerSet",
    "Command",
    "NewRound",
    "AddManager",
    "DelManager",
    "DelAllRules",
    "UpdateRules",
    "Query",
    "CommandBatch",
    "QueryReply",
    "AbstractSwitch",
    "select_rule",
    "next_hop",
]
