"""Bounded match-action rule table with least-recently-updated eviction.

A rule is the paper's tuple ⟨cID, sID, src, dest, prt, fwd, tag⟩
(Figure 4): ``cid`` installed it, ``sid`` stores it, the match is the
packet header ``(src, dst)``, ``priority`` picks among matching rules
(larger is higher), ``forward_to`` is the out-port, and ``tag`` is the
synchronization-round tag.

The table enforces ``max_rules`` with the paper's clogged-memory policy
(Section 2.1.1): when full, the least-recently-*updated* rule is evicted.
A controller that keeps refreshing its rules therefore never loses them to
eviction — the property Lemma 1 relies on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: Priority reserved for round-synchronization meta-rules — the lowest.
META_PRIORITY = 0

#: Rule-event kinds published to version listeners, ordered by how much of
#: a cached walk population they can perturb (see ``RouteCache``): a
#: primary-rule change can redirect any walk of its header; a
#: ``detour_start`` change additionally only matters to walks that hit a
#: rule miss (it could rescue them); a plain detour-hop change only
#: matters to walks that actually travelled stamped.
EVENT_PRIMARY = 0
EVENT_START = 1
EVENT_DETOUR = 2


def _event_kind(rule: "Rule") -> int:
    if rule.detour is None:
        return EVENT_PRIMARY
    return EVENT_START if rule.detour_start else EVENT_DETOUR


@dataclass(frozen=True)
class Rule:
    """One match-action entry.  ``forward_to is None`` encodes a meta-rule
    (it matches nothing on the data path).

    ``detour``/``detour_start`` implement tagged local fast failover: a
    packet whose primary out-link is down is stamped with the detour id at
    the detecting switch (the rule with ``detour_start=True``) and from
    then on matches only rules carrying the same ``detour`` stamp, falling
    back to primary rules (unstamping) where the detour rejoins the intact
    primary suffix.  The stamp is what keeps concurrent detours of one
    flow from bouncing packets between each other — the same role packet
    tags play for consistent updates in the paper (Section 6.2).
    """

    cid: str  # controller that installed the rule
    sid: str  # switch storing the rule
    src: str  # match: packet source
    dst: str  # match: packet destination
    priority: int
    forward_to: Optional[str]
    tag: object = None
    detour: Optional[int] = None  # None = primary-path rule
    detour_start: bool = False  # stamps unstamped packets entering here

    @property
    def is_meta(self) -> bool:
        return self.forward_to is None and self.priority == META_PRIORITY

    def key(self) -> Tuple[str, str, str, int, Optional[str], Optional[int]]:
        """Identity within one controller's rule set: match + priority +
        action (the tag is metadata, not identity)."""
        return (self.cid, self.src, self.dst, self.priority, self.forward_to, self.detour)


class FlowTable:
    """Rule storage for one switch, bounded by ``max_rules``."""

    def __init__(self, sid: str, max_rules: int) -> None:
        if max_rules < 1:
            raise ValueError("max_rules must be >= 1")
        self.sid = sid
        self.max_rules = max_rules
        self._rules: Dict[Tuple, Rule] = {}
        self._touched: Dict[Tuple, int] = {}
        # Match index (src, dst) -> rule keys, kept in sync by every
        # mutation: data-plane lookups must not scan the whole table.
        self._by_match: Dict[Tuple[str, str], List[Tuple]] = {}
        self._clock = itertools.count()
        self.evictions = 0
        # Monotone mutation counter of *forwarding-relevant* state: bumped
        # whenever the set of rules — as seen by the data plane — changes,
        # letting route caches detect staleness without diffing tables.
        # Idempotent refreshes (same key re-installed to stay LRU-fresh,
        # meta-rule tag rotation) deliberately do not bump it: they cannot
        # change any forwarding decision.
        self.version = 0
        # Subscribers notified on each version bump with this table's sid
        # and ``(src, dst, event_kind)`` triples describing which packet
        # headers' match results the mutation may have changed and how —
        # the dirty-tracking channel route caches use to invalidate only
        # walks of those flows through this switch.
        self._version_listeners: List[
            Callable[[str, Tuple[Tuple[str, str, int], ...]], None]
        ] = []
        # Memo of matching() results per header, dropped per key on any
        # install/delete touching that header (even tag-only refreshes,
        # which swap the Rule object without bumping version).
        self._match_cache: Dict[Tuple[str, str], List[Rule]] = {}
        # Rules per owning controller, so controllers_present() is O(#cids)
        # instead of a full-table scan on every no_stale_rules probe.
        self._owner_counts: Dict[str, int] = {}

    def add_version_listener(
        self, listener: Callable[[str, Tuple[Tuple[str, str, int], ...]], None]
    ) -> None:
        """Subscribe to forwarding-relevant mutations of this table.

        Listeners receive ``(sid, events)`` where each event is
        ``(src, dst, kind)`` with ``kind`` one of ``EVENT_PRIMARY`` /
        ``EVENT_START`` / ``EVENT_DETOUR``; meta-rule headers are
        delivered too but match no data-plane flow.
        """
        self._version_listeners.append(listener)

    def remove_version_listener(
        self, listener: Callable[[str, Tuple[Tuple[str, str, int], ...]], None]
    ) -> None:
        try:
            self._version_listeners.remove(listener)
        except ValueError:
            pass

    def _bump_version(self, events: Tuple[Tuple[str, str, int], ...]) -> None:
        self.version += 1
        for listener in self._version_listeners:
            listener(self.sid, events)

    def _index_add(self, key: Tuple, rule: Rule) -> None:
        if rule.is_meta:
            return
        self._by_match.setdefault((rule.src, rule.dst), []).append(key)

    def _index_remove(self, key: Tuple, rule: Rule) -> None:
        if rule.is_meta:
            return
        bucket = self._by_match.get((rule.src, rule.dst))
        if bucket is None:
            return
        try:
            bucket.remove(key)
        except ValueError:
            pass
        if not bucket:
            del self._by_match[(rule.src, rule.dst)]

    def _delete_key(self, key: Tuple) -> None:
        rule = self._rules.pop(key)
        del self._touched[key]
        self._index_remove(key, rule)
        self._match_cache.pop((rule.src, rule.dst), None)
        count = self._owner_counts.get(rule.cid, 0) - 1
        if count > 0:
            self._owner_counts[rule.cid] = count
        else:
            self._owner_counts.pop(rule.cid, None)
        self._bump_version(((rule.src, rule.dst, _event_kind(rule)),))

    def __len__(self) -> int:
        return len(self._rules)

    def rules(self) -> List[Rule]:
        return list(self._rules.values())

    def rules_of(self, cid: str) -> List[Rule]:
        return [r for r in self._rules.values() if r.cid == cid]

    def controllers_present(self) -> List[str]:
        return sorted(self._owner_counts)

    # -- mutation -------------------------------------------------------------

    def install(self, rule: Rule) -> None:
        """Insert or refresh one rule, evicting if the table is clogged."""
        if rule.sid != self.sid:
            raise ValueError(f"rule for switch {rule.sid} offered to {self.sid}")
        key = rule.key()
        prior = self._rules.get(key)
        if prior is None and len(self._rules) >= self.max_rules:
            self._evict_one()
        if prior is not None:
            self._index_remove(key, prior)
        self._rules[key] = rule
        self._touched[key] = next(self._clock)
        self._index_add(key, rule)
        self._match_cache.pop((rule.src, rule.dst), None)
        if prior is None:
            self._owner_counts[rule.cid] = self._owner_counts.get(rule.cid, 0) + 1
        # The key carries every forwarding-relevant field except
        # ``detour_start``; a same-key refresh differing only in tag (the
        # newRound meta-rule rotation) leaves forwarding untouched.
        if prior is None or prior.detour_start != rule.detour_start:
            # A detour_start flip is both a removal and an addition; publish
            # the stronger (lower) of the two kinds.
            kind = _event_kind(rule)
            if prior is not None:
                kind = min(kind, _event_kind(prior))
            self._bump_version(((rule.src, rule.dst, kind),))

    def _evict_one(self) -> None:
        victim = min(self._touched, key=self._touched.get)
        self._delete_key(victim)
        self.evictions += 1

    def replace_rules_of(self, cid: str, new_rules: Iterable[Rule]) -> None:
        """The ``updateRule`` command: replace all of ``cid``'s rules
        (except meta-rules, which ``newRound`` manages).

        Delta-based: rules surviving the update are refreshed in place
        rather than deleted and reinstalled, so an idempotent periodic
        update does not invalidate route caches.
        """
        incoming = list(new_rules)
        for rule in incoming:
            if rule.cid != cid:
                raise ValueError(f"rule owned by {rule.cid} in update for {cid}")
        keep = {rule.key() for rule in incoming}
        for key in [
            k
            for k, r in self._rules.items()
            if r.cid == cid and not r.is_meta and k not in keep
        ]:
            self._delete_key(key)
        for rule in incoming:
            self.install(rule)

    def delete_rules_of(self, cid: str, include_meta: bool = True) -> int:
        """The ``delAllRules`` command.  Returns the number removed."""
        victims = [
            k
            for k, r in self._rules.items()
            if r.cid == cid and (include_meta or not r.is_meta)
        ]
        for key in victims:
            self._delete_key(key)
        return len(victims)

    def clear(self) -> None:
        kinds: Dict[Tuple[str, str], int] = {}
        for rule in self._rules.values():
            header = (rule.src, rule.dst)
            kind = _event_kind(rule)
            prior = kinds.get(header)
            kinds[header] = kind if prior is None else min(prior, kind)
        self._rules.clear()
        self._touched.clear()
        self._by_match.clear()
        self._match_cache.clear()
        self._owner_counts.clear()
        self._bump_version(tuple((s, d, k) for (s, d), k in kinds.items()))

    # -- lookup ---------------------------------------------------------------

    def matching(self, src: str, dst: str) -> List[Rule]:
        """All non-meta rules matching a packet header, highest priority
        first (deterministic tie-break on owner and out-port)."""
        cached = self._match_cache.get((src, dst))
        if cached is None:
            keys = self._by_match.get((src, dst), ())
            cached = [self._rules[k] for k in keys]
            cached.sort(key=lambda r: (-r.priority, r.cid, r.forward_to or ""))
            self._match_cache[(src, dst)] = cached
        return cached

    def is_unambiguous(self, operational: Optional[Iterable[str]] = None) -> bool:
        """Check the paper's unambiguity requirement: for every packet
        header there is at most one applicable rule.

        When ``operational`` (the usable out-neighbours) is given,
        applicability is evaluated against it; otherwise all out-ports are
        assumed usable — the stricter static check.
        """
        usable = set(operational) if operational is not None else None
        best: Dict[Tuple[str, str], List[Rule]] = {}
        for rule in self._rules.values():
            if rule.is_meta:
                continue
            if usable is not None and rule.forward_to not in usable:
                continue
            best.setdefault((rule.src, rule.dst), []).append(rule)
        for candidates in best.values():
            top = max(r.priority for r in candidates)
            top_rules = [r for r in candidates if r.priority == top]
            actions = {r.forward_to for r in top_rules}
            if len(actions) > 1:
                return False
        return True

    # -- fault hooks ------------------------------------------------------------

    def corrupt_with(self, rules: Iterable[Rule]) -> None:
        """Transient-fault hook: plant arbitrary rules, bypassing ownership
        discipline but still respecting the memory bound."""
        for rule in rules:
            self.install(replace(rule, sid=self.sid))


__all__ = [
    "Rule",
    "FlowTable",
    "META_PRIORITY",
    "EVENT_PRIMARY",
    "EVENT_START",
    "EVENT_DETOUR",
]
