"""Controller→switch command protocol (paper Figure 4).

Controllers send *command batches*: a ``newRound`` first, then any
management commands (``delMngr``/``addMngr``/``delAllRules``), then
``updateRule``, and a trailing ``query``.  The switch control module
executes a batch atomically (one atomic step, Section 3.2) and answers the
query with ⟨j, Nc(j), manager(j), rules(j)⟩.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.switch.flow_table import Rule


@dataclass(frozen=True)
class Command:
    """Base class for control commands (subclasses are the wire format)."""


@dataclass(frozen=True)
class NewRound(Command):
    """⟨'newRound', t_metaRule⟩ — update the sender's meta-rule tag."""

    tag: object


@dataclass(frozen=True)
class AddManager(Command):
    """⟨'addMngr', k⟩ — add controller ``k`` to the manager set."""

    cid: str


@dataclass(frozen=True)
class DelManager(Command):
    """⟨'delMngr', k⟩ — remove controller ``k`` from the manager set."""

    cid: str


@dataclass(frozen=True)
class DelAllRules(Command):
    """⟨'delAllRules', k⟩ — delete every rule installed by ``k``."""

    cid: str


@dataclass(frozen=True)
class UpdateRules(Command):
    """⟨'updateRule', newRules⟩ — replace all of the *sender's* rules."""

    rules: Tuple[Rule, ...]


@dataclass(frozen=True)
class Query(Command):
    """⟨'query', t_query⟩ — request the configuration snapshot."""

    tag: object


@dataclass(frozen=True)
class CommandBatch:
    """An aggregated configuration message from one controller
    (Algorithm 2, line 19)."""

    sender: str
    commands: Tuple[Command, ...]

    def __post_init__(self) -> None:
        if not self.commands:
            raise ValueError("empty command batch")

    @property
    def query_tag(self) -> Optional[object]:
        for command in self.commands:
            if isinstance(command, Query):
                return command.tag
        return None


@dataclass(frozen=True)
class QueryReply:
    """⟨ID, Nc, Mng, rules⟩ — the respondent's configuration snapshot.

    Controllers answer with empty ``managers``/``rules`` except for the
    echo meta-entry carrying the query tag (Algorithm 2, line 23); their
    replies are marked ``kind="controller"`` (the paper distinguishes them
    by the ⊥ manager field).
    """

    node: str
    neighbors: Tuple[str, ...]
    managers: Tuple[str, ...]
    rules: Tuple[Rule, ...]
    kind: str = "switch"

    def tags_of(self, cid: str) -> List[object]:
        """Tags of ``cid``'s rules in this snapshot (used by the round
        synchronization check, Algorithm 2's ``res(x)`` macro)."""
        return [r.tag for r in self.rules if r.cid == cid]


def make_batch(
    sender: str,
    round_tag: object,
    manager_dels: Sequence[str] = (),
    rule_dels: Sequence[str] = (),
    new_rules: Sequence[Rule] = (),
    query_tag: object = None,
) -> CommandBatch:
    """Assemble a batch in the paper's canonical order:
    newRound ∘ delMngr* ∘ addMngr(self) ∘ delAllRules* ∘ updateRule ∘ query.
    """
    commands: List[Command] = [NewRound(round_tag)]
    commands.extend(DelManager(cid) for cid in manager_dels)
    commands.append(AddManager(sender))
    commands.extend(DelAllRules(cid) for cid in rule_dels)
    commands.append(UpdateRules(tuple(new_rules)))
    commands.append(Query(query_tag if query_tag is not None else round_tag))
    return CommandBatch(sender=sender, commands=tuple(commands))


__all__ = [
    "Command",
    "NewRound",
    "AddManager",
    "DelManager",
    "DelAllRules",
    "UpdateRules",
    "Query",
    "CommandBatch",
    "QueryReply",
    "make_batch",
]
