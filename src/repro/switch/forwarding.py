"""Data-plane forwarding with conditional rules and detour stamping.

The paper defines a rule as *applicable* for a packet when it is the
highest-priority match whose out-port link is currently operational
(Section 2.1).  On top of that, the failover scheme stamps packets onto a
specific detour at the failure-detecting switch (see
:class:`~repro.switch.flow_table.Rule`), so concurrently installed
detours of one flow cannot bounce packets between each other:

* an **unstamped** packet follows the highest-priority applicable
  *primary* rule; if none applies (its out-link is down), it takes the
  switch's applicable ``detour_start`` rule and acquires that stamp;
* a **stamped** packet follows rules of its own detour; where none exist
  or apply, it falls back to an applicable primary rule and is unstamped
  (the detour has rejoined the intact primary suffix); as a last resort
  (multi-failure) it re-stamps onto a locally starting detour.

``next_hop`` also implements the rule-free direct-neighbour relay that
in-band control bootstraps through (Section 2.1.1).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

from repro.switch.flow_table import FlowTable, Rule


def select_rule(
    table: FlowTable,
    src: str,
    dst: str,
    operational_neighbors: Iterable[str],
    stamp: Optional[int] = None,
) -> Optional[Rule]:
    """The applicable rule for a packet (header + detour stamp)."""
    if isinstance(operational_neighbors, (set, frozenset)):
        usable: Set[str] = operational_neighbors
    else:
        usable = set(operational_neighbors)
    matches = table.matching(src, dst)
    applicable = [r for r in matches if r.forward_to in usable]
    if not applicable:
        return None
    if stamp is not None:
        own_detour = [r for r in applicable if r.detour == stamp]
        if own_detour:
            return own_detour[0]
    primaries = [r for r in applicable if r.detour is None]
    if primaries:
        return primaries[0]
    starts = [r for r in applicable if r.detour_start]
    if starts:
        return starts[0]
    return None


def next_hop(
    table: FlowTable,
    src: str,
    dst: str,
    operational_neighbors: Iterable[str],
    stamp: Optional[int] = None,
) -> Tuple[Optional[str], Optional[int]]:
    """Resolve one forwarding step; returns ``(next_hop, new_stamp)``.

    Order of resolution:

    1. destination is an operational direct neighbour → relay directly
       (rule-free last hop, enabling query-by-neighbour bootstrap);
    2. otherwise the applicable rule's out-port, updating the stamp:
       entering a detour stamps, rejoining the primary unstamps;
    3. otherwise ``(None, stamp)`` — the packet is dropped.
    """
    if isinstance(operational_neighbors, (set, frozenset)):
        usable = operational_neighbors
    else:
        usable = set(operational_neighbors)
    if dst in usable:
        return dst, stamp
    rule = select_rule(table, src, dst, usable, stamp=stamp)
    if rule is None:
        return None, stamp
    if rule.detour is None:
        return rule.forward_to, None  # on (or back on) the primary
    return rule.forward_to, rule.detour


__all__ = ["select_rule", "next_hop"]
