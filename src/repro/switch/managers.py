"""Bounded manager set (paper Section 2.1.1).

Each switch stores up to ``max_managers`` controller ids.  When the bound
is exceeded, the least-recently-stored-or-accessed manager is dropped so a
new one fits — the FIFO-with-refresh policy the paper prescribes.  A
controller that re-asserts itself every round (as Algorithm 2 does in
line 16) is therefore never evicted once the system stabilizes.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List


class ManagerSet:
    """Ordered bounded set of controller ids managing one switch."""

    def __init__(self, max_managers: int) -> None:
        if max_managers < 1:
            raise ValueError("max_managers must be >= 1")
        self.max_managers = max_managers
        self._stamp: Dict[str, int] = {}
        self._clock = itertools.count()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._stamp)

    def __contains__(self, cid: str) -> bool:
        return cid in self._stamp

    def members(self) -> List[str]:
        return sorted(self._stamp)

    def add(self, cid: str) -> None:
        """Add or refresh a manager, evicting the stalest if clogged."""
        if cid not in self._stamp and len(self._stamp) >= self.max_managers:
            victim = min(self._stamp, key=self._stamp.get)
            del self._stamp[victim]
            self.evictions += 1
        self._stamp[cid] = next(self._clock)

    def remove(self, cid: str) -> bool:
        if cid in self._stamp:
            del self._stamp[cid]
            return True
        return False

    def clear(self) -> None:
        self._stamp.clear()

    def corrupt_with(self, cids: Iterable[str]) -> None:
        """Transient-fault hook: plant arbitrary manager entries."""
        for cid in cids:
            self.add(cid)


__all__ = ["ManagerSet"]
