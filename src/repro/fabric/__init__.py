"""``repro.fabric`` — the distributed sweep fabric.

Fault-tolerant campaign execution across N independent worker processes
coordinated purely through a shared :class:`~repro.store.store.RunStore`
directory (one host or many hosts over a shared filesystem).  Workers
*claim* ``(spec, coordinate, seed)`` work units via atomic lease files,
heartbeat while executing, and publish results as the ordinary
content-addressed measurement records — so ``repro sweep`` and ``repro
report`` stay byte-identical consumers of a fabric-filled store, and a
SIGKILLed worker's unit is re-claimed after lease expiry with no lost or
duplicated repetitions.

Quickstart (single host)::

    from repro.fabric import run_local_campaign

    result = run_local_campaign("runs", "fig5", reps=8,
                                networks=("B4",), workers=4)

Shared-filesystem fleet: start ``repro fabric start --store DIR`` on any
number of hosts mounting ``DIR``, then ``repro sweep --figure fig5
--fabric DIR`` from anywhere to submit and aggregate.
"""

from repro.fabric.campaign import (
    LocalFleet,
    aggregate_campaign,
    run_fabric_campaign,
    run_local_campaign,
    submit_campaign,
    wait_for_campaign,
)
from repro.fabric.queue import (
    CampaignRequest,
    FabricError,
    Lease,
    LeaseLost,
    WorkQueue,
    WorkUnit,
    worker_identity,
)
from repro.fabric.worker import FabricWorker, worker_main

__all__ = [
    "CampaignRequest",
    "FabricError",
    "FabricWorker",
    "Lease",
    "LeaseLost",
    "LocalFleet",
    "WorkQueue",
    "WorkUnit",
    "aggregate_campaign",
    "run_fabric_campaign",
    "run_local_campaign",
    "submit_campaign",
    "wait_for_campaign",
    "worker_identity",
    "worker_main",
]
