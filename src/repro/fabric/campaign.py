"""Campaign submission, aggregation, and local fleets.

The aggregator side of the fabric: :func:`run_fabric_campaign` publishes
one campaign to a store's work queue, blocks until every unit's
measurement record exists (produced by whatever workers share the store —
local fleet, other hosts on a shared filesystem), and merges the records
through :func:`~repro.store.report.aggregate` — the runner's own merge
path, so the result is byte-identical to a serial ``run_spec`` of the
same arguments.

:class:`LocalFleet` launches N :class:`~repro.fabric.worker.FabricWorker`
processes against a store directory; :func:`run_local_campaign` is the
one-shot convenience behind ``repro fabric run`` (fleet up → campaign →
fleet down).
"""

from __future__ import annotations

import multiprocessing
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.exp.spec import ExperimentResult
from repro.obs.telemetry import active as active_telemetry
from repro.fabric.queue import CampaignRequest, FabricError, WorkQueue
from repro.fabric.worker import DEFAULT_POLL, worker_main
from repro.store.report import aggregate
from repro.store.store import RunStore


def _as_store(store: Union[str, Path, RunStore]) -> RunStore:
    return store if isinstance(store, RunStore) else RunStore(store)


def submit_campaign(
    store: Union[str, Path, RunStore],
    name: str,
    reps: Optional[int] = None,
    networks: Optional[Sequence[str]] = None,
    base_seed: int = 0,
    params: Optional[Dict[str, Any]] = None,
    queue: Optional[WorkQueue] = None,
) -> CampaignRequest:
    """Publish one campaign to the store's queue and return its request."""
    queue = queue or WorkQueue(_as_store(store))
    request = CampaignRequest(
        name=name,
        reps=reps,
        networks=tuple(networks) if networks else None,
        base_seed=base_seed,
        params=dict(params or {}),
    )
    queue.submit(request)
    return request


def wait_for_campaign(
    queue: WorkQueue,
    request: CampaignRequest,
    poll: float = DEFAULT_POLL,
    timeout: Optional[float] = None,
) -> None:
    """Block until every unit of ``request`` is done.

    Raises :class:`FabricError` when a unit is quarantined (the campaign
    can never complete: the error names the poison task) or when
    ``timeout`` seconds pass without completion.
    """
    units = queue.units_of(request)
    deadline = None if timeout is None else time.time() + timeout
    while True:
        poisoned = [u for u in units if queue.is_quarantined(u.key)]
        if poisoned:
            details = {e["key"]: e for e in queue.quarantine_entries()}
            lines = [
                f"  {u.label!r} rep {u.task.rep_index} (seed {u.task.seed}): "
                f"{details.get(u.key, {}).get('error', 'unknown error')}"
                for u in poisoned
            ]
            raise FabricError(
                f"campaign {request.name} has {len(poisoned)} quarantined "
                "unit(s) after repeated failures:\n" + "\n".join(lines)
            )
        if all(queue.is_done(u.key) for u in units):
            return
        if deadline is not None and time.time() > deadline:
            remaining = sum(1 for u in units if not queue.is_done(u.key))
            raise FabricError(
                f"campaign {request.name} timed out with {remaining}/"
                f"{len(units)} unit(s) incomplete — are any workers "
                "running against this store?"
            )
        time.sleep(poll)


def aggregate_campaign(
    store: RunStore, request: CampaignRequest
) -> ExperimentResult:
    """Merge a completed campaign's records; raises on missing ones."""
    result, missing = aggregate(
        store,
        request.name,
        reps=request.reps,
        networks=request.networks,
        base_seed=request.base_seed,
        params=request.params,
    )
    if missing:
        raise FabricError(
            f"campaign {request.name} aggregation is missing "
            f"{len(missing)} repetition(s): " + "; ".join(missing)
        )
    return result


def run_fabric_campaign(
    store: Union[str, Path, RunStore],
    name: str,
    reps: Optional[int] = None,
    networks: Optional[Sequence[str]] = None,
    base_seed: int = 0,
    params: Optional[Dict[str, Any]] = None,
    poll: float = DEFAULT_POLL,
    timeout: Optional[float] = None,
) -> ExperimentResult:
    """Submit one campaign and block as its aggregator.

    The workers are whoever shares the store; this function only
    publishes work, waits, and merges.  The merged result is
    byte-identical to ``run_spec`` with the same arguments.
    """
    store = _as_store(store)
    queue = WorkQueue(store)
    telemetry = active_telemetry()
    started = telemetry.now() if telemetry is not None else 0.0
    request = submit_campaign(store, name, reps=reps, networks=networks,
                              base_seed=base_seed, params=params, queue=queue)
    if telemetry is not None:
        # The submit span carries the unit keys, so the trace stitcher can
        # draw dispatch arrows from here to each worker's task span.
        telemetry.record_span(
            f"submit:{request.campaign_id}",
            "fabric",
            started,
            telemetry.now() - started,
            args={
                "campaign": request.campaign_id,
                "units": [u.key for u in queue.units_of(request)],
            },
        )
    wait_for_campaign(queue, request, poll=poll, timeout=timeout)
    agg_started = telemetry.now() if telemetry is not None else 0.0
    result = aggregate_campaign(store, request)
    if telemetry is not None:
        telemetry.record_span(
            f"aggregate:{request.campaign_id}",
            "fabric",
            agg_started,
            telemetry.now() - agg_started,
            args={"campaign": request.campaign_id},
        )
    queue.log_event("campaign-complete", campaign=request.campaign_id)
    return result


class LocalFleet:
    """N fabric worker processes against one store directory."""

    def __init__(
        self,
        store_dir: Union[str, Path],
        workers: int = 2,
        **worker_kwargs: Any,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker (got {workers})")
        self.store_dir = str(store_dir)
        self.n_workers = workers
        self.worker_kwargs = worker_kwargs
        self.processes: List[multiprocessing.process.BaseProcess] = []

    def __enter__(self) -> "LocalFleet":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        # Launching clears a stale stop flag so a fresh fleet on a reused
        # store directory does not exit immediately.
        WorkQueue(RunStore(self.store_dir)).clear_stop()
        for index in range(self.n_workers):
            kwargs = dict(self.worker_kwargs)
            kwargs.setdefault("worker_id", None)
            process = ctx.Process(
                target=worker_main,
                args=(self.store_dir,),
                kwargs=kwargs,
                name=f"fabric-worker-{index}",
                daemon=True,
            )
            process.start()
            self.processes.append(process)

    def stop(self, timeout: float = 30.0) -> None:
        """Raise the stop flag and join the fleet (terminate stragglers)."""
        WorkQueue(RunStore(self.store_dir)).request_stop()
        for process in self.processes:
            process.join(timeout=timeout)
        for process in self.processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self.processes = []

    def pids(self) -> List[Optional[int]]:
        return [process.pid for process in self.processes]


def run_local_campaign(
    store_dir: Union[str, Path],
    name: str,
    reps: Optional[int] = None,
    networks: Optional[Sequence[str]] = None,
    base_seed: int = 0,
    params: Optional[Dict[str, Any]] = None,
    workers: int = 2,
    poll: float = DEFAULT_POLL,
    timeout: Optional[float] = None,
    **worker_kwargs: Any,
) -> ExperimentResult:
    """One-shot local fabric run: fleet up, campaign, fleet down."""
    fleet = LocalFleet(store_dir, workers=workers, poll=poll, **worker_kwargs)
    with fleet:
        return run_fabric_campaign(
            store_dir,
            name,
            reps=reps,
            networks=networks,
            base_seed=base_seed,
            params=params,
            poll=poll,
            timeout=timeout,
        )


__all__ = [
    "LocalFleet",
    "aggregate_campaign",
    "run_fabric_campaign",
    "run_local_campaign",
    "submit_campaign",
    "wait_for_campaign",
]
