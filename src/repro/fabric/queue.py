"""Store-coordinated work claiming: the fabric's lease-based queue.

The :class:`WorkQueue` turns a :class:`~repro.store.store.RunStore`
directory into a coordination substrate for N independent worker
processes — same host or several hosts sharing the directory over a
common filesystem.  There is no broker and no network protocol: every
primitive is a filesystem operation whose atomicity POSIX guarantees.

*Work units* are the repetition tasks the runner already executes:
``(spec, coordinate, seed)`` tuples with stable content-addressed
identities (:func:`~repro.exp.runner.measurement_identity`).  A unit is
*done* exactly when its measurement record exists in the store — the
ordinary record a serial sweep would write, so ``repro sweep`` and
``repro report`` remain byte-identical consumers of a fabric-filled
store.

Coordination state lives under ``<store>/fabric/``::

    fabric/campaigns/<id>.json    # submitted campaign requests (immutable)
    fabric/leases/<key>.lease     # one claim record per in-flight unit
    fabric/quarantine/<key>.json  # poison tasks taken out of rotation
    fabric/events.jsonl           # append-only claim/complete/... journal
    fabric/stop                   # fleet shutdown flag

**Lease protocol.**  Claiming writes the lease record to a temp file and
atomically *links* it to ``leases/<key>.lease`` — ``os.link`` fails with
``FileExistsError`` when the name is taken, and the lease appears with
its full content (a reader can never observe a claimed-but-empty lease).
Leases carry a TTL; the owning worker renews (heartbeats) at ``ttl/3``
while executing.  A worker that is SIGKILLed stops renewing, its lease
expires, and the next claimant *reclaims* the unit: it atomically renames
the expired lease aside (only one renamer can win — the source vanishes
for everyone else), carries the attempt count forward, and claims
afresh.  Because results are idempotent content-addressed writes, even
the pathological interleavings (a live lease stolen in the instant
between expiry and renewal) at worst duplicate work, never lose or
double-count a repetition.

**Failure handling.**  A task that raises is re-leased to nobody for an
exponentially growing cooldown (the failed lease stays on disk with a
short expiry and no owner, so any worker retries it after the backoff);
after ``max_attempts`` total attempts the unit is quarantined — removed
from rotation with its error recorded — and the aggregator fails loudly
instead of waiting forever.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exp.runner import RepetitionTask, expand_tasks, measurement_identity
from repro.obs.telemetry import active as active_telemetry
from repro.store.hashing import SCHEMA_VERSION, canonical_json, fingerprint
from repro.store.store import RunStore, append_line

DEFAULT_TTL = 30.0
DEFAULT_MAX_ATTEMPTS = 3
DEFAULT_BACKOFF = 0.5


class FabricError(RuntimeError):
    """A fabric campaign cannot make progress (quarantine, timeout, ...)."""


class LeaseLost(FabricError):
    """A heartbeat found its lease gone or owned by someone else."""


def worker_identity() -> str:
    """A human-readable id for this worker process: host + pid."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass(frozen=True)
class CampaignRequest:
    """One submitted sweep: the exact arguments a serial ``run_spec`` or
    ``repro report`` of the same campaign would use.

    The request is the single source of truth for task expansion — the
    submitting aggregator and every worker expand the *same* unit list
    from it, so their content-addressed keys can never drift.
    """

    name: str
    reps: Optional[int] = None
    networks: Optional[Tuple[str, ...]] = None
    base_seed: int = 0
    params: Dict[str, Any] = field(default_factory=dict)

    def identity(self) -> Dict[str, Any]:
        return {
            "kind": "campaign",
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "reps": self.reps,
            "networks": list(self.networks) if self.networks else None,
            "base_seed": self.base_seed,
            "params": [[k, v] for k, v in sorted(self.params.items())],
        }

    @property
    def campaign_id(self) -> str:
        return fingerprint(self.identity())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.campaign_id,
            "name": self.name,
            "reps": self.reps,
            "networks": list(self.networks) if self.networks else None,
            "base_seed": self.base_seed,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignRequest":
        networks = data.get("networks")
        return cls(
            name=data["name"],
            reps=data.get("reps"),
            networks=tuple(networks) if networks else None,
            base_seed=data.get("base_seed", 0),
            params=dict(data.get("params") or {}),
        )


@dataclass(frozen=True)
class WorkUnit:
    """One claimable repetition: the runner task plus its store address."""

    task: RepetitionTask
    key: str
    label: str
    campaign_id: str


@dataclass
class Lease:
    """One claim on one work unit.  ``token`` is unique per acquisition:
    ownership checks compare tokens, so a worker that lost its lease (and
    had it reclaimed and re-claimed) cannot renew or release the
    successor's."""

    key: str
    worker: str
    token: str
    acquired_at: float
    expires_at: float
    attempts: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "worker": self.worker,
            "token": self.token,
            "acquired_at": self.acquired_at,
            "expires_at": self.expires_at,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Lease":
        return cls(
            key=data["key"],
            worker=data["worker"],
            token=data["token"],
            acquired_at=float(data["acquired_at"]),
            expires_at=float(data["expires_at"]),
            attempts=int(data["attempts"]),
        )


class WorkQueue:
    """Lease-coordinated access to one store's pending work units."""

    def __init__(
        self,
        store: RunStore,
        ttl: float = DEFAULT_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff: float = DEFAULT_BACKOFF,
    ) -> None:
        if ttl <= 0:
            raise ValueError(f"lease ttl must be > 0 (got {ttl})")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1 (got {max_attempts})")
        self.store = store
        self.ttl = ttl
        self.max_attempts = max_attempts
        self.backoff = backoff
        #: Campaign files are immutable once submitted, so unit expansion
        #: is memoized per campaign id for the life of this handle.
        self._units_memo: Dict[str, List[WorkUnit]] = {}
        for directory in (self.leases_dir, self.quarantine_dir, self.campaigns_dir):
            directory.mkdir(parents=True, exist_ok=True)

    # -- layout ------------------------------------------------------------

    @property
    def fabric_dir(self) -> Path:
        return self.store.root / "fabric"

    @property
    def leases_dir(self) -> Path:
        return self.fabric_dir / "leases"

    @property
    def quarantine_dir(self) -> Path:
        return self.fabric_dir / "quarantine"

    @property
    def campaigns_dir(self) -> Path:
        return self.fabric_dir / "campaigns"

    @property
    def events_path(self) -> Path:
        return self.fabric_dir / "events.jsonl"

    @property
    def stop_path(self) -> Path:
        return self.fabric_dir / "stop"

    def _lease_path(self, key: str) -> Path:
        return self.leases_dir / f"{key}.lease"

    def _quarantine_path(self, key: str) -> Path:
        return self.quarantine_dir / f"{key}.json"

    # -- atomic file primitives -------------------------------------------

    def _create_exclusive(self, path: Path, doc: Dict[str, Any]) -> bool:
        """Atomically create ``path`` with ``doc`` as content; ``False``
        when the name is already taken.

        Write-to-temp + ``os.link`` makes creation atomic *with content*:
        no reader can observe the file empty or half-written, which
        matters because a corrupt lease is treated as reclaimable.
        """
        tmp = path.parent / f".{path.name}.{os.getpid()}.{os.urandom(4).hex()}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(canonical_json(doc) + "\n")
        try:
            os.link(tmp, path)
            return True
        except FileExistsError:
            return False
        finally:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass

    def _replace(self, path: Path, doc: Dict[str, Any]) -> None:
        tmp = path.parent / f".{path.name}.{os.getpid()}.{os.urandom(4).hex()}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(canonical_json(doc) + "\n")
        os.replace(tmp, path)

    @staticmethod
    def _read_json(path: Path) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return doc if isinstance(doc, dict) else None

    def _read_lease(self, path: Path) -> Optional[Lease]:
        doc = self._read_json(path)
        if doc is None:
            return None
        try:
            return Lease.from_dict(doc)
        except (KeyError, TypeError, ValueError):
            return None

    # -- event journal -----------------------------------------------------

    def log_event(self, kind: str, **fields: Any) -> None:
        """Append one line to the fabric journal (single O_APPEND write)."""
        entry = {"t": round(time.time(), 3), "kind": kind}
        entry.update(fields)
        append_line(self.events_path, canonical_json(entry))
        telemetry = active_telemetry()
        if telemetry is not None:
            # Every journal kind doubles as a fabric counter, so one hook
            # covers claim/renew/complete/failed/reclaim/quarantine/...
            telemetry.counter(f"fabric.{kind}").inc()

    def events(self) -> List[Dict[str, Any]]:
        """Every intact journal entry, in append order (a torn tail line
        from a writer that died mid-append is skipped)."""
        entries: List[Dict[str, Any]] = []
        try:
            with open(self.events_path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        doc = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(doc, dict):
                        entries.append(doc)
        except FileNotFoundError:
            pass
        return entries

    # -- campaigns ---------------------------------------------------------

    def submit(self, request: CampaignRequest) -> str:
        """Publish a campaign for the fleet; idempotent (the id is the
        content hash, so re-submitting the same campaign is a no-op)."""
        campaign_id = request.campaign_id
        path = self.campaigns_dir / f"{campaign_id}.json"
        if self._create_exclusive(path, request.to_dict()):
            self.log_event("submit", campaign=campaign_id, spec=request.name)
        return campaign_id

    def campaigns(self) -> List[CampaignRequest]:
        """Every submitted campaign, sorted by id."""
        requests = []
        for path in sorted(self.campaigns_dir.glob("*.json")):
            doc = self._read_json(path)
            if doc is None:
                continue
            try:
                requests.append(CampaignRequest.from_dict(doc))
            except (KeyError, TypeError):
                continue
        return requests

    def units_of(self, request: CampaignRequest) -> List[WorkUnit]:
        """The campaign's full unit list — the exact tasks (and therefore
        store keys) a serial ``run_spec`` of the same arguments executes."""
        campaign_id = request.campaign_id
        memo = self._units_memo.get(campaign_id)
        if memo is not None:
            return memo
        _spec, cases, _reps, tasks = expand_tasks(
            request.name,
            reps=request.reps,
            networks=request.networks,
            base_seed=request.base_seed,
            params=request.params,
            store_dir=str(self.store.root),
        )
        units = [
            WorkUnit(
                task=task,
                key=fingerprint(
                    measurement_identity(task, cases[task.case_index].label)
                ),
                label=cases[task.case_index].label,
                campaign_id=campaign_id,
            )
            for task in tasks
        ]
        self._units_memo[campaign_id] = units
        return units

    # -- unit state --------------------------------------------------------

    def is_done(self, key: str) -> bool:
        """Whether the unit's measurement record is on disk.  Existence
        only — the aggregator's final :func:`~repro.store.report.aggregate`
        pass validates content and is authoritative."""
        return self.store.object_path(key).exists()

    def is_quarantined(self, key: str) -> bool:
        return self._quarantine_path(key).exists()

    def pending_units(
        self, requests: Optional[Sequence[CampaignRequest]] = None
    ) -> List[WorkUnit]:
        """Units not yet done and not quarantined, across ``requests``
        (default: every submitted campaign).  Leased units are included —
        pending means *unfinished*, not *claimable*."""
        pending: List[WorkUnit] = []
        for request in requests if requests is not None else self.campaigns():
            for unit in self.units_of(request):
                if not self.is_done(unit.key) and not self.is_quarantined(unit.key):
                    pending.append(unit)
        return pending

    # -- the lease protocol ------------------------------------------------

    def claim(self, unit: WorkUnit, worker: str) -> Optional[Lease]:
        """Try to acquire ``unit`` for ``worker``; ``None`` when the unit
        is done, quarantined, or validly held by someone else."""
        if self.is_done(unit.key) or self.is_quarantined(unit.key):
            return None
        path = self._lease_path(unit.key)
        now = time.time()
        token = f"{worker}.{os.urandom(8).hex()}"
        prior_attempts = 0
        prior_worker: Optional[str] = None
        reclaimed = False
        tombs_to_clear: List[Path] = []
        if path.exists():
            current = self._read_lease(path)
            if current is not None and current.expires_at > now:
                return None  # validly held (or cooling down after a failure)
            # Expired or unreadable: reclaim.  The rename is the
            # arbitration point — the source vanishes for every loser.
            # The tombstone stays on disk until the replacement lease
            # exists so the attempt count survives the rename → create
            # window (a fresh claimant backs off on seeing it below).
            tomb = path.parent / f".{path.name}.reclaim.{os.urandom(8).hex()}"
            try:
                os.rename(path, tomb)
            except FileNotFoundError:
                return None  # another claimant renamed it first
            tomb_lease = self._read_lease(tomb)
            if tomb_lease is not None and tomb_lease.expires_at > time.time():
                # We validated an expired lease but renamed a different,
                # live one: a racing reclaimer replaced the lease between
                # our read and our rename.  Put the live lease back
                # (link refuses to clobber if the path was recreated)
                # and bow out.
                try:
                    os.link(tomb, path)
                except FileExistsError:
                    pass
                os.unlink(tomb)
                return None
            prior_attempts = tomb_lease.attempts if tomb_lease else 0
            prior_worker = tomb_lease.worker if tomb_lease else None
            tombs_to_clear.append(tomb)
            reclaimed = True
        else:
            # The lease file is briefly absent while a reclaimer carries
            # the attempt count through its tombstone.  A fresh tombstone
            # means that reclaim is in flight — back off instead of
            # winning the race with a reset counter.  One older than a
            # TTL is a crashed reclaimer: adopt its count so the unit is
            # neither wedged nor granted a fresh attempt budget.
            for tomb in path.parent.glob(f".{path.name}.reclaim.*"):
                try:
                    age = now - tomb.stat().st_mtime
                except OSError:
                    continue  # unlinked under us: that reclaim finished
                if age <= self.ttl:
                    return None
                tomb_lease = self._read_lease(tomb)
                if tomb_lease is not None:
                    prior_attempts = max(prior_attempts, tomb_lease.attempts)
                tombs_to_clear.append(tomb)
        # Stamp the lease when it is granted, not when claim() was
        # entered: the TTL countdown must not be charged for the rename
        # arbitration and journal I/O above.
        acquired = time.time()
        lease = Lease(
            key=unit.key,
            worker=worker,
            token=token,
            acquired_at=acquired,
            expires_at=acquired + self.ttl,
            attempts=prior_attempts + 1,
        )
        if not self._create_exclusive(path, lease.to_dict()):
            return None  # lost the post-reclaim (or fresh-claim) race
        for tomb in tombs_to_clear:
            try:
                os.unlink(tomb)
            except FileNotFoundError:
                pass
        if reclaimed:
            self.log_event(
                "reclaim",
                key=unit.key,
                worker=worker,
                prior_attempts=prior_attempts,
                prior_worker=prior_worker,
            )
        self.log_event(
            "claim",
            key=unit.key,
            worker=worker,
            attempts=lease.attempts,
            label=unit.label,
            campaign=unit.campaign_id,
        )
        return lease

    def renew(self, lease: Lease) -> None:
        """Extend the lease's expiry by one TTL (the heartbeat).

        Raises :class:`LeaseLost` when the on-disk lease is gone or owned
        by another token — the unit was reclaimed out from under us (e.g.
        after a long GC pause or clock skew beyond the TTL); the work
        itself may continue, its idempotent result write is harmless.
        """
        path = self._lease_path(lease.key)
        current = self._read_lease(path)
        if current is None or current.token != lease.token:
            raise LeaseLost(f"lease on {lease.key} lost by {lease.worker}")
        lease.expires_at = time.time() + self.ttl
        self._replace(path, lease.to_dict())
        # Journaled so observers (`repro fabric status` / `top`) can spot a
        # wedged worker by heartbeat silence before its lease TTL expires.
        self.log_event("renew", key=lease.key, worker=lease.worker)

    def release(self, lease: Lease) -> None:
        """Drop the lease if we still own it; a lost lease is a no-op."""
        path = self._lease_path(lease.key)
        current = self._read_lease(path)
        if current is not None and current.token == lease.token:
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass

    def complete(self, lease: Lease, status: str) -> None:
        """Record a successful unit and release its lease."""
        self.log_event(
            "complete",
            key=lease.key,
            worker=lease.worker,
            attempts=lease.attempts,
            status=status,
        )
        self.release(lease)

    def fail(self, lease: Lease, error: str) -> bool:
        """Record a failed attempt.

        Below the attempt bound: the lease is rewritten as an ownerless
        cooldown whose expiry implements exponential backoff — any worker
        (including this one) reclaims it after the delay.  At the bound:
        the unit is quarantined and leaves rotation.  Returns ``True``
        when the unit was quarantined.
        """
        if lease.attempts >= self.max_attempts:
            self._create_exclusive(
                self._quarantine_path(lease.key),
                {
                    "key": lease.key,
                    "attempts": lease.attempts,
                    "worker": lease.worker,
                    "error": error,
                    "t": round(time.time(), 3),
                },
            )
            self.log_event(
                "quarantine",
                key=lease.key,
                worker=lease.worker,
                attempts=lease.attempts,
                error=error,
            )
            self.release(lease)
            return True
        delay = self.backoff * (2 ** (lease.attempts - 1))
        path = self._lease_path(lease.key)
        current = self._read_lease(path)
        if current is not None and current.token == lease.token:
            cooldown = Lease(
                key=lease.key,
                worker=lease.worker,
                token="",  # ownerless: nobody can renew a cooldown
                acquired_at=lease.acquired_at,
                expires_at=time.time() + delay,
                attempts=lease.attempts,
            )
            self._replace(path, cooldown.to_dict())
        self.log_event(
            "failed",
            key=lease.key,
            worker=lease.worker,
            attempts=lease.attempts,
            error=error,
            retry_in=round(delay, 3),
        )
        return False

    # -- introspection / maintenance ---------------------------------------

    def leases(self) -> List[Lease]:
        """Every readable lease on disk, sorted by key."""
        found = []
        for path in sorted(self.leases_dir.glob("*.lease")):
            lease = self._read_lease(path)
            if lease is not None:
                found.append(lease)
        return found

    def quarantine_entries(self) -> List[Dict[str, Any]]:
        entries = []
        for path in sorted(self.quarantine_dir.glob("*.json")):
            doc = self._read_json(path)
            if doc is not None:
                entries.append(doc)
        return entries

    def progress(self, request: CampaignRequest) -> Dict[str, int]:
        """Unit counts for one campaign: total/done/quarantined/leased."""
        units = self.units_of(request)
        done = sum(1 for u in units if self.is_done(u.key))
        quarantined = sum(1 for u in units if self.is_quarantined(u.key))
        now = time.time()
        held = {
            lease.key
            for lease in self.leases()
            if lease.expires_at > now and lease.token
        }
        leased = sum(
            1
            for u in units
            if u.key in held and not self.is_done(u.key)
        )
        return {
            "total": len(units),
            "done": done,
            "quarantined": quarantined,
            "leased": leased,
        }

    def gc(self, grace: float = 0.0) -> Dict[str, int]:
        """Prune leftovers: leases expired at least ``grace`` seconds ago
        and orphaned reclaim/temp files older than ``grace``.

        Removing an expired lease loses its carried attempt count (the
        next claim restarts at 1) — acceptable for explicit maintenance,
        and the quarantine records themselves are never touched.
        """
        cutoff = time.time() - grace
        removed_leases = 0
        for path in list(self.leases_dir.glob("*.lease")):
            lease = self._read_lease(path)
            if lease is None or lease.expires_at <= cutoff:
                try:
                    path.unlink()
                    removed_leases += 1
                except FileNotFoundError:
                    pass
        removed_orphans = 0
        for pattern in (".*.tmp", ".*.reclaim.*"):
            for path in list(self.leases_dir.glob(pattern)) + list(
                self.campaigns_dir.glob(pattern)
            ) + list(self.quarantine_dir.glob(pattern)):
                try:
                    if path.stat().st_mtime <= cutoff:
                        path.unlink()
                        removed_orphans += 1
                except FileNotFoundError:
                    continue
        if removed_leases or removed_orphans:
            self.log_event(
                "gc", leases=removed_leases, orphans=removed_orphans
            )
        return {"leases": removed_leases, "orphans": removed_orphans}

    # -- fleet stop flag ---------------------------------------------------

    def request_stop(self) -> None:
        self._create_exclusive(self.stop_path, {"t": round(time.time(), 3)})

    def clear_stop(self) -> None:
        try:
            os.unlink(self.stop_path)
        except FileNotFoundError:
            pass

    def stop_requested(self) -> bool:
        return self.stop_path.exists()


__all__ = [
    "DEFAULT_BACKOFF",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_TTL",
    "CampaignRequest",
    "FabricError",
    "Lease",
    "LeaseLost",
    "WorkQueue",
    "WorkUnit",
    "worker_identity",
]
