"""The fabric's persistent worker loop.

A :class:`FabricWorker` is one long-lived process that initializes once —
spec registry import, memoized topology-resolution cache — and then
drains work from a :class:`~repro.fabric.queue.WorkQueue`: scan the
submitted campaigns for unfinished units, claim one, execute it through
the runner's ordinary task path (so the measurement lands in the store as
the exact record a serial sweep would write), and move on.  A heartbeat
thread renews the unit's lease at ``ttl/3`` while the task runs; if the
process is SIGKILLed the heartbeat dies with it, the lease expires, and
another worker reclaims the unit.

Transient task failures are retried with exponential backoff (the queue
re-leases the unit to nobody for a growing cooldown) and quarantined as
poison after ``max_attempts`` total attempts across all workers.

Workers are address-free: they discover campaigns by polling the shared
store directory, so ``repro fabric start`` on any host that mounts the
store joins the fleet.
"""

from __future__ import annotations

import importlib
import threading
import time
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.exp.runner import _execute_task, worker_initializer
from repro.obs.telemetry import active as active_telemetry
from repro.fabric.queue import (
    DEFAULT_BACKOFF,
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_TTL,
    Lease,
    LeaseLost,
    WorkQueue,
    WorkUnit,
    worker_identity,
)
from repro.store.store import RunStore

DEFAULT_POLL = 0.2


class FabricWorker:
    """One persistent worker process draining a store's work queue."""

    def __init__(
        self,
        store_dir: Union[str, Path],
        worker_id: Optional[str] = None,
        ttl: float = DEFAULT_TTL,
        poll: float = DEFAULT_POLL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff: float = DEFAULT_BACKOFF,
        drain: bool = False,
        preload: Sequence[str] = (),
        trace: bool = False,
    ) -> None:
        self.store = RunStore(store_dir)
        self.queue = WorkQueue(
            self.store, ttl=ttl, max_attempts=max_attempts, backoff=backoff
        )
        self.worker_id = worker_id or worker_identity()
        self.poll = poll
        self.drain = drain
        self.preload = tuple(preload)
        self.trace = trace
        self.stats: Counter = Counter()

    # -- lifecycle ---------------------------------------------------------

    def initialize(self) -> None:
        """One-time per-process setup: user preload modules (extra spec
        registrations), the deferred spec registry, and the memoized
        topology-resolution cache."""
        for module in self.preload:
            importlib.import_module(module)
        worker_initializer()

    def run(self) -> Dict[str, int]:
        """Drain the queue until stopped.

        Persistent mode (the default) keeps polling for new campaigns
        until the store's stop flag appears.  ``drain=True`` exits once no
        pending unit remains — the one-shot fleet and test mode.  Returns
        the worker's completion tally.

        ``trace=True`` runs the whole loop under a private telemetry
        handle and persists it as a ``worker:<id>`` TRACE record on exit
        — the per-worker track ``repro trace stitch`` merges.  The
        private handle deliberately shadows any already-active one: a
        forked fleet worker inherits the aggregator's handle, and its
        spans must land on the worker's own track, not a dead copy of
        the parent's.
        """
        if not self.trace:
            return self._run()
        from repro.obs.export import save_trace
        from repro.obs.telemetry import Telemetry, use_telemetry

        with use_telemetry(Telemetry()) as telemetry:
            stats = self._run()
        save_trace(self.store, telemetry, label=f"worker:{self.worker_id}")
        return stats

    def _run(self) -> Dict[str, int]:
        self.initialize()
        self.queue.log_event("worker-start", worker=self.worker_id)
        try:
            while True:
                if self.queue.stop_requested():
                    break
                claimed = self._claim_next()
                if claimed is None:
                    if self.drain and not self.queue.pending_units():
                        break
                    time.sleep(self.poll)
                    continue
                self._run_unit(*claimed)
        finally:
            self.queue.log_event(
                "worker-exit", worker=self.worker_id, stats=dict(self.stats)
            )
        return dict(self.stats)

    # -- claiming ----------------------------------------------------------

    def _claim_next(self) -> Optional[Tuple[WorkUnit, Lease]]:
        """Claim the first available pending unit, scanning from a
        worker-specific offset so a fleet fans out across the unit list
        instead of contending on its head."""
        pending = self.queue.pending_units()
        if not pending:
            return None
        offset = hash(self.worker_id) % len(pending)
        for unit in self._rotated(pending, offset):
            lease = self.queue.claim(unit, self.worker_id)
            if lease is not None:
                return unit, lease
        return None

    @staticmethod
    def _rotated(units: Sequence[WorkUnit], offset: int) -> Iterable[WorkUnit]:
        return list(units[offset:]) + list(units[:offset])

    # -- execution ---------------------------------------------------------

    def _run_unit(self, unit: WorkUnit, lease: Lease) -> None:
        stop_heartbeat = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat,
            args=(lease, stop_heartbeat),
            daemon=True,
        )
        heartbeat.start()
        telemetry = active_telemetry()
        started = telemetry.now() if telemetry is not None else 0.0
        try:
            _case, _rep, _value, status = _execute_task(unit.task)
        except Exception as exc:  # noqa: BLE001 — every task error is retryable
            stop_heartbeat.set()
            heartbeat.join()
            quarantined = self.queue.fail(lease, repr(exc))
            self.stats["quarantined" if quarantined else "failed"] += 1
            status = "error"
        else:
            stop_heartbeat.set()
            heartbeat.join()
            self.queue.complete(lease, status)
            self.stats[status] += 1
        if telemetry is not None:
            telemetry.record_span(
                f"fabric:{unit.label}",
                "fabric",
                started,
                telemetry.now() - started,
                args={
                    "key": unit.key,
                    "worker": self.worker_id,
                    "status": status,
                    "attempts": lease.attempts,
                },
            )

    def _heartbeat(self, lease: Lease, stop: threading.Event) -> None:
        interval = self.queue.ttl / 3.0
        while not stop.wait(interval):
            try:
                self.queue.renew(lease)
            except LeaseLost:
                # Reclaimed out from under us (pause beyond the TTL).  The
                # running task finishes anyway; its content-addressed
                # result write is idempotent, so the worst case is
                # duplicated effort, never duplicated data.
                self.queue.log_event(
                    "lease-lost", key=lease.key, worker=self.worker_id
                )
                break
            except OSError:
                continue  # transient filesystem hiccup; retry next beat


def worker_main(store_dir: str, **kwargs) -> Dict[str, int]:
    """Top-level worker entry point (picklable for ``spawn`` contexts);
    the target of fleet processes and ``repro fabric start``."""
    return FabricWorker(store_dir, **kwargs).run()


__all__ = ["DEFAULT_POLL", "FabricWorker", "worker_main"]
